// Topic-model explorer: trains LDA models of several sizes on the same
// corpus and prints what the paper's Appendix A illustrates — coherent
// topics at the right granularity, indistinct mixtures when the topic count
// is far too low, and the prior/posterior machinery TopPriv builds on.

#include <algorithm>
#include <cstdio>

#include "corpus/generator.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "util/table.h"

int main() {
  using namespace toppriv;

  corpus::GeneratorParams params;
  params.num_docs = 1000;
  params.mean_doc_length = 100;
  corpus::CorpusGenerator generator(params);
  corpus::GroundTruthModel truth;
  corpus::Corpus corpus = generator.Generate(&truth);
  const text::Vocabulary& vocab = corpus.vocabulary();
  std::printf("corpus: %zu docs, %zu terms, %zu ground-truth topics\n\n",
              corpus.num_documents(), corpus.vocabulary_size(),
              corpus.true_topic_names().size());

  for (size_t num_topics : {5ul, 30ul, 80ul}) {
    topicmodel::TrainerOptions options;
    options.num_topics = num_topics;
    options.iterations = 70;
    topicmodel::LdaModel model =
        topicmodel::GibbsTrainer(options).Train(corpus);
    double ll = topicmodel::GibbsTrainer::LogLikelihoodPerToken(model, corpus);

    std::printf("=== LDA with %zu topics (log-likelihood/token %.3f) ===\n",
                num_topics, ll);
    // Show the 4 highest-prior topics.
    std::vector<std::pair<double, topicmodel::TopicId>> by_prior;
    for (size_t t = 0; t < num_topics; ++t) {
      by_prior.push_back({model.prior()[t],
                          static_cast<topicmodel::TopicId>(t)});
    }
    std::sort(by_prior.rbegin(), by_prior.rend());
    for (size_t i = 0; i < 4 && i < by_prior.size(); ++i) {
      std::printf("  topic %-3u prior %.3f :", by_prior[i].second,
                  by_prior[i].first);
      for (const topicmodel::WordProb& wp :
           model.TopWords(by_prior[i].second, 8)) {
        std::printf(" %s", vocab.TermString(wp.term).c_str());
      }
      std::printf("\n");
    }

    // Posterior demo: what does a weaponry query boost?
    topicmodel::LdaInferencer inferencer(model);
    std::vector<text::TermId> query;
    for (const char* w : {"army", "abrams", "tank", "apache", "helicopter",
                          "patriot", "missile"}) {
      text::TermId id = vocab.Lookup(w);
      if (id != text::kInvalidTerm) query.push_back(id);
    }
    std::vector<double> posterior = inferencer.InferQuery(query);
    size_t best = 0;
    for (size_t t = 1; t < num_topics; ++t) {
      if (posterior[t] > posterior[best]) best = t;
    }
    std::printf("  query 'army abrams tank apache helicopter patriot "
                "missile'\n");
    std::printf("    -> top topic %zu: boost %+.1f%%, words:", best,
                (posterior[best] - model.prior()[best]) * 100);
    for (const topicmodel::WordProb& wp :
         model.TopWords(static_cast<topicmodel::TopicId>(best), 8)) {
      std::printf(" %s", vocab.TermString(wp.term).c_str());
    }
    std::printf("\n\n");
  }

  std::printf("takeaway (paper Sec IV-B / Appendix A): with too few topics\n"
              "every topic is an indistinct mixture and the user intention\n"
              "cannot be localized; at a granularity near the corpus's true\n"
              "coverage the model pinpoints it, which is what TopPriv needs\n"
              "to know WHICH topics to suppress.\n");
  return 0;
}
