// Enterprise session demo: a software developer researches an image-
// compression-adjacent topic (the paper's Section I motivating scenario)
// over a whole work session, with every query protected by TopPriv.
//
// Shows:
//   * per-query privacy accounting ((eps1, eps2), |U|, exposure, v);
//   * the aggregate engine-side view (what a subpoena of the query log
//     would reveal);
//   * the usability guarantee: result lists identical to unprotected search.

#include <cstdio>
#include <map>

#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "search/engine.h"
#include "search/eval.h"
#include "search/scorer.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/client.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace toppriv;

  // Enterprise setup: corpus, engine, topic model.
  corpus::GeneratorParams params;
  params.num_docs = 1200;
  params.mean_doc_length = 100;
  corpus::CorpusGenerator generator(params);
  corpus::GroundTruthModel truth;
  corpus::Corpus corpus = generator.Generate(&truth);
  index::InvertedIndex index = index::InvertedIndex::Build(corpus);
  search::SearchEngine engine(corpus, index, search::MakeBm25Scorer());

  topicmodel::TrainerOptions trainer_options;
  trainer_options.num_topics = 50;
  trainer_options.iterations = 80;
  topicmodel::LdaModel model =
      topicmodel::GibbsTrainer(trainer_options).Train(corpus);
  topicmodel::LdaInferencer inferencer(model);

  // The user picks a strict requirement: (5%, 1%)-privacy.
  core::PrivacySpec spec;
  spec.epsilon1 = 0.05;
  spec.epsilon2 = 0.01;
  core::GhostQueryGenerator ghost_generator(model, inferencer, spec);
  core::TrustedClient client(&engine, &ghost_generator, util::Rng(2026));

  // A session of 25 queries drawn from the benchmark workload.
  corpus::WorkloadParams wp;
  wp.num_queries = 25;
  std::vector<corpus::BenchmarkQuery> session =
      corpus::WorkloadGenerator(corpus, truth, wp).Generate();

  std::printf("=== protected session: %zu queries at (%.0f%%, %.0f%%)-privacy "
              "===\n\n",
              session.size(), spec.epsilon1 * 100, spec.epsilon2 * 100);

  util::TablePrinter per_query(
      {"q", "terms", "|U|", "expo before(%)", "expo after(%)", "v",
       "results identical"});
  util::OnlineStats cycle_len, suppression;
  size_t identical_count = 0;
  for (size_t i = 0; i < session.size(); ++i) {
    const corpus::BenchmarkQuery& q = session[i];
    core::ProtectedSearchResult out = client.Search(q.term_ids, 10);
    std::vector<search::ScoredDoc> plain = engine.Evaluate(q.term_ids, 10);
    bool identical = search::SameRanking(out.results, plain, 1e-9);
    if (identical) ++identical_count;
    cycle_len.Add(static_cast<double>(out.cycle.length()));
    if (out.cycle.exposure_before > 0) {
      suppression.Add(out.cycle.exposure_after / out.cycle.exposure_before);
    }
    per_query.AddRow({std::to_string(i + 1),
                      std::to_string(q.term_ids.size()),
                      std::to_string(out.cycle.intention.size()),
                      util::FormatDouble(out.cycle.exposure_before * 100, 2),
                      util::FormatDouble(out.cycle.exposure_after * 100, 2),
                      std::to_string(out.cycle.length()),
                      identical ? "yes" : "NO"});
  }
  std::printf("%s", per_query.ToString().c_str());

  // Engine-side view.
  const search::QueryLog& log = engine.query_log();
  std::map<uint64_t, size_t> per_cycle;
  for (const search::LoggedQuery& entry : log.entries()) {
    ++per_cycle[entry.cycle_id];
  }
  std::printf("\n=== engine-side query log (the adversary's view) ===\n");
  std::printf("logged queries: %zu across %zu cycles (avg cycle %.2f)\n",
              log.size(), per_cycle.size(), cycle_len.mean());
  std::printf("the engine cannot tell which %zu of the %zu are genuine.\n",
              session.size(), log.size());

  std::printf("\n=== session summary ===\n");
  std::printf("results identical to unprotected search: %zu / %zu\n",
              identical_count, session.size());
  std::printf("mean residual exposure ratio (after/before): %.3f\n",
              suppression.mean());
  std::printf("ghost overhead: %.2fx extra queries\n", cycle_len.mean() - 1.0);
  return identical_count == session.size() ? 0 : 1;
}
