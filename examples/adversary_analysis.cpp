// Adversary's-eye-view demo: runs the Section IV-D attack suite against one
// user's traffic, with and without TopPriv, and narrates what the curious
// search engine can and cannot learn.

#include <algorithm>
#include <cstdio>

#include "adversary/attacks.h"
#include "corpus/generator.h"
#include "corpus/workload.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"
#include "toppriv/ghost_generator.h"
#include "util/table.h"

int main() {
  using namespace toppriv;

  corpus::GeneratorParams params;
  params.num_docs = 1000;
  corpus::CorpusGenerator generator(params);
  corpus::GroundTruthModel truth;
  corpus::Corpus corpus = generator.Generate(&truth);

  topicmodel::TrainerOptions trainer_options;
  trainer_options.num_topics = 40;
  trainer_options.iterations = 70;
  topicmodel::LdaModel model =
      topicmodel::GibbsTrainer(trainer_options).Train(corpus);
  topicmodel::LdaInferencer inferencer(model);

  core::PrivacySpec spec;  // (5%, 1%)
  core::GhostQueryGenerator ghost_generator(model, inferencer, spec);

  corpus::WorkloadParams wp;
  wp.num_queries = 30;
  std::vector<corpus::BenchmarkQuery> queries =
      corpus::WorkloadGenerator(corpus, truth, wp).Generate();

  // Walk one query in detail.
  util::Rng rng(11);
  const corpus::BenchmarkQuery* detailed = nullptr;
  core::QueryCycle detailed_cycle;
  for (const corpus::BenchmarkQuery& q : queries) {
    core::QueryCycle cycle = ghost_generator.Protect(q.term_ids, &rng);
    if (!cycle.intention.empty() && cycle.num_ghosts() >= 2) {
      detailed = &q;
      detailed_cycle = std::move(cycle);
      break;
    }
  }
  if (detailed == nullptr) {
    std::fprintf(stderr, "no protected query found\n");
    return 1;
  }

  std::printf("=== one protected query, in detail ===\n");
  std::printf("user query: %s\n", detailed->Text().c_str());
  std::printf("ground-truth intent: %s\n",
              corpus.true_topic_names()[detailed->intent_topics[0]].c_str());
  std::printf("|U| = %zu, exposure %.2f%% -> %.2f%%, mask %.2f%%, v = %zu\n\n",
              detailed_cycle.intention.size(),
              detailed_cycle.exposure_before * 100,
              detailed_cycle.exposure_after * 100,
              detailed_cycle.mask_level * 100, detailed_cycle.length());

  // What the adversary's belief ranking looks like for this cycle.
  std::printf("adversary's topic ranking for this cycle (top 8 by boost):\n");
  std::vector<std::pair<double, topicmodel::TopicId>> ranked;
  for (size_t t = 0; t < detailed_cycle.cycle_boost.size(); ++t) {
    ranked.push_back({detailed_cycle.cycle_boost[t],
                      static_cast<topicmodel::TopicId>(t)});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t r = 0; r < 8 && r < ranked.size(); ++r) {
    bool in_u = false;
    for (topicmodel::TopicId t : detailed_cycle.intention) {
      if (t == ranked[r].second) in_u = true;
    }
    std::string words;
    for (const topicmodel::WordProb& wp :
         model.TopWords(ranked[r].second, 5)) {
      words += corpus.vocabulary().TermString(wp.term) + " ";
    }
    std::printf("  #%zu  boost %+.2f%%  topic %-3u %s %s\n", r + 1,
                ranked[r].first * 100, ranked[r].second,
                in_u ? "[GENUINE]" : "         ", words.c_str());
  }

  // Aggregate attack statistics.
  adversary::TopicInferenceAttack topic_attack(model, inferencer);
  adversary::GhostDiscountAttack discount_attack(model, inferencer, 0.05);

  double plain_recall = 0.0, guarded_recall = 0.0, id_accuracy = 0.0;
  size_t evaluated = 0;
  util::Rng session_rng(17);
  for (const corpus::BenchmarkQuery& q : queries) {
    core::QueryCycle cycle = ghost_generator.Protect(q.term_ids, &session_rng);
    if (cycle.intention.empty()) continue;
    ++evaluated;

    adversary::CycleView guarded{cycle.queries, cycle.user_index,
                                 cycle.intention};
    adversary::CycleView plain{{q.term_ids}, 0, cycle.intention};
    plain_recall += topic_attack.Evaluate(plain, 3).recall;
    guarded_recall += topic_attack.Evaluate(guarded, 3).recall;
    id_accuracy += discount_attack.Evaluate(guarded) ? 1.0 : 0.0;
  }

  std::printf("\n=== attack suite over %zu protected queries ===\n",
              evaluated);
  util::TablePrinter table({"attack", "unprotected", "TopPriv"});
  table.AddRow({"top-3 topic inference recall",
                util::FormatDouble(plain_recall / evaluated, 3),
                util::FormatDouble(guarded_recall / evaluated, 3)});
  table.AddRow({"genuine-query identification", "1.000 (trivial)",
                util::FormatDouble(id_accuracy / evaluated, 3)});
  std::printf("%s", table.ToString().c_str());
  std::printf("\nthe engine processes every query faithfully yet cannot\n"
              "reliably reconstruct what this user was actually after.\n");
  return 0;
}
