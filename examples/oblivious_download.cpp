// Completes the paper's Fig. 1 search path: after a TopPriv-protected
// query (steps 1-5), the user downloads a result document (steps 6-7)
// WITHOUT revealing which one, using the commutative-encryption protocol
// the paper cites for this otherwise-excluded threat.

#include <cstdio>

#include "corpus/generator.h"
#include "corpus/workload.h"
#include "crypto/oblivious_retrieval.h"
#include "index/inverted_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/client.h"

int main() {
  using namespace toppriv;

  // Enterprise setup.
  corpus::GeneratorParams params;
  params.num_docs = 500;
  params.mean_doc_length = 60;
  corpus::CorpusGenerator generator(params);
  corpus::GroundTruthModel truth;
  corpus::Corpus corpus = generator.Generate(&truth);
  index::InvertedIndex index = index::InvertedIndex::Build(corpus);
  search::SearchEngine engine(corpus, index, search::MakeBm25Scorer());

  topicmodel::TrainerOptions trainer_options;
  trainer_options.num_topics = 40;
  trainer_options.iterations = 60;
  topicmodel::LdaModel model =
      topicmodel::GibbsTrainer(trainer_options).Train(corpus);
  topicmodel::LdaInferencer inferencer(model);

  core::PrivacySpec spec;
  core::GhostQueryGenerator ghosts(model, inferencer, spec);
  core::TrustedClient client(&engine, &ghosts, util::Rng(7));

  // Steps 1-5: protected query.
  corpus::WorkloadParams wp;
  wp.num_queries = 5;
  std::vector<corpus::BenchmarkQuery> queries =
      corpus::WorkloadGenerator(corpus, truth, wp).Generate();
  core::ProtectedSearchResult result = client.Search(queries[0].term_ids, 5);
  std::printf("protected query: %s\n", queries[0].Text().c_str());
  std::printf("cycle of %zu queries submitted; exposure %.2f%% -> %.2f%%\n\n",
              result.cycle.length(), result.cycle.exposure_before * 100,
              result.cycle.exposure_after * 100);

  std::printf("top-5 results:\n");
  std::vector<corpus::DocId> result_docs;
  for (const search::ScoredDoc& sd : result.results) {
    std::printf("  %s (score %.2f)\n", corpus.document(sd.doc).title.c_str(),
                sd.score);
    result_docs.push_back(sd.doc);
  }

  // Steps 6-7: oblivious download of the 3rd result.
  crypto::ObliviousDocServer doc_server(corpus, util::Rng(8));
  crypto::ObliviousDocClient doc_client(util::Rng(9));
  const size_t choice = 2;
  auto body = doc_client.Retrieve(&doc_server, result_docs, choice);
  if (!body.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 body.status().ToString().c_str());
    return 1;
  }

  std::printf("\nobliviously downloaded result #%zu (%s):\n  %.90s...\n",
              choice + 1, corpus.document(result_docs[choice]).title.c_str(),
              body.value().c_str());
  std::printf("\nserver-side view of the key exchange (blinded group "
              "elements, one per retrieval):\n");
  for (uint64_t v : doc_server.observed_values()) {
    std::printf("  %016llx  <- reveals nothing about which of the %zu "
                "results was fetched\n",
                static_cast<unsigned long long>(v), result_docs.size());
  }

  // Verify the plaintext matches the actual document.
  bool ok = body.value() ==
            crypto::RenderDocumentBody(corpus, result_docs[choice]);
  std::printf("\nplaintext matches the chosen document: %s\n",
              ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
