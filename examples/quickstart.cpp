// Quickstart: build a small corpus, train an LDA model, and run one
// (epsilon1, epsilon2)-protected search end to end.
//
// Walks through the whole TopPriv pipeline of the paper:
//   corpus -> inverted index -> search engine
//   corpus -> LDA model -> inferencer -> ghost generator -> trusted client
// and prints what the adversary (engine log) sees versus what the user gets.

#include <cstdio>

#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/client.h"
#include "toppriv/ghost_generator.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using toppriv::corpus::BenchmarkQuery;

std::string TermsToText(const toppriv::text::Vocabulary& vocab,
                        const std::vector<toppriv::text::TermId>& terms) {
  std::vector<std::string> words;
  words.reserve(terms.size());
  for (toppriv::text::TermId t : terms) words.push_back(vocab.TermString(t));
  return toppriv::util::Join(words, " ");
}

}  // namespace

int main() {
  using namespace toppriv;

  // 1. A small synthetic corpus (the WSJ stand-in).
  corpus::GeneratorParams params;
  params.num_docs = 600;
  params.mean_doc_length = 90;
  params.tail_vocab_size = 1200;
  corpus::CorpusGenerator generator(params);
  corpus::GroundTruthModel truth;
  corpus::Corpus corpus = generator.Generate(&truth);
  std::printf("corpus: %zu docs, %zu terms, %llu tokens\n",
              corpus.num_documents(), corpus.vocabulary_size(),
              static_cast<unsigned long long>(corpus.total_tokens()));

  // 2. The enterprise search engine (unmodified by the privacy layer).
  index::InvertedIndex inverted = index::InvertedIndex::Build(corpus);
  search::SearchEngine engine(corpus, inverted, search::MakeBm25Scorer());

  // 3. The topic model the client uses to reason about beliefs.
  topicmodel::TrainerOptions trainer_options;
  trainer_options.num_topics = 60;
  trainer_options.iterations = 60;
  topicmodel::GibbsTrainer trainer(trainer_options);
  topicmodel::LdaModel model = trainer.Train(corpus);
  topicmodel::LdaInferencer inferencer(model);
  std::printf("model: %zu topics, %.1f MB\n", model.num_topics(),
              static_cast<double>(model.SizeBytes()) / (1024.0 * 1024.0));

  // 4. The TopPriv client with a (5%, 1%)-privacy requirement.
  core::PrivacySpec spec;
  spec.epsilon1 = 0.05;
  spec.epsilon2 = 0.01;
  core::GhostQueryGenerator ghost_generator(model, inferencer, spec);
  core::TrustedClient client(&engine, &ghost_generator, util::Rng(42));

  // 5. A topical user query (defense procurement, like TREC query 91).
  corpus::WorkloadParams wparams;
  wparams.num_queries = 30;
  corpus::WorkloadGenerator workload_gen(corpus, truth, wparams);
  std::vector<BenchmarkQuery> workload = workload_gen.Generate();
  const BenchmarkQuery& query = workload.front();

  std::printf("\nuser query (intent: %s):\n  %s\n",
              corpus.true_topic_names()[query.intent_topics[0]].c_str(),
              query.Text().c_str());

  core::ProtectedSearchResult result = client.Search(query.term_ids, 10);

  std::printf("\ncycle submitted to the engine (%zu queries):\n",
              result.cycle.length());
  for (size_t i = 0; i < result.cycle.queries.size(); ++i) {
    std::printf("  [%zu]%s %s\n", i,
                i == result.cycle.user_index ? " <- genuine (client-only)" : "",
                TermsToText(corpus.vocabulary(), result.cycle.queries[i])
                    .c_str());
  }

  std::printf("\nprivacy: |U|=%zu  exposure %.2f%% -> %.2f%%  mask %.2f%%  "
              "met eps2: %s\n",
              result.cycle.intention.size(),
              result.cycle.exposure_before * 100.0,
              result.cycle.exposure_after * 100.0,
              result.cycle.mask_level * 100.0,
              result.cycle.met_epsilon2 ? "yes" : "no");

  std::printf("\ntop results for the genuine query:\n");
  for (const search::ScoredDoc& doc : result.results) {
    std::printf("  %-12s score %.3f\n",
                corpus.document(doc.doc).title.c_str(), doc.score);
  }

  // 6. Fidelity check: protected search returns the exact same results.
  std::vector<search::ScoredDoc> plain =
      engine.Evaluate(query.term_ids, 10);
  bool identical = plain.size() == result.results.size();
  for (size_t i = 0; identical && i < plain.size(); ++i) {
    identical = plain[i].doc == result.results[i].doc;
  }
  std::printf("\nresult fidelity vs unprotected search: %s\n",
              identical ? "identical" : "DIFFERENT (bug!)");
  return identical ? 0 : 1;
}
