// Hostile-input fuzzing of LdaModel::Deserialize (the experiment-cache
// format: dims + hyperparameters + raw float phi/theta). The dimension
// product is where a hostile header historically could demand gigabytes
// (see the PR 2 overflow fix); the decoder must reject rather than
// allocate. Accepted blobs must round-trip byte-identically.
#include <cstddef>
#include <cstdint>
#include <string>

#include "topicmodel/lda_model.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string buf(reinterpret_cast<const char*>(data), size);
  auto model = toppriv::topicmodel::LdaModel::Deserialize(buf);
  if (!model.ok()) return 0;

  const std::string canonical = model->Serialize();
  auto again = toppriv::topicmodel::LdaModel::Deserialize(canonical);
  if (!again.ok() || again->Serialize() != canonical) __builtin_trap();
  return 0;
}
