// Writes the seed corpora under fuzz/corpus/<target>/ from REAL serialized
// blobs — every seed is produced by the same encoder its fuzz target
// decodes, so the fuzzer starts from deep inside the accepted grammar
// instead of spending its budget rediscovering magic bytes and CRCs.
//
//   gen_seeds <corpus-root>
//
// Deterministic: running it twice writes identical bytes (the checked-in
// corpora under fuzz/corpus/ are its output; tests/fuzz_corpus_test.cc
// round-trips them on every plain test build).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "index/live/live_index.h"
#include "index/live/wal.h"
#include "index/posting_list.h"
#include "index/sharded_index.h"
#include "topicmodel/lda_model.h"
#include "util/filesystem.h"

namespace {

namespace fs = std::filesystem;
using namespace toppriv;  // NOLINT — a tool, touching six subsystems

void WriteSeed(const fs::path& root, const std::string& target,
               const std::string& name, const std::string& bytes) {
  const fs::path dir = root / target;
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::printf("%s/%s: %zu bytes\n", target.c_str(), name.c_str(),
              bytes.size());
}

/// A small deterministic corpus with enough term/doc variety to produce
/// multi-term postings, several shards and non-trivial df tables.
corpus::Corpus MakeCorpus() {
  corpus::Corpus c;
  text::Vocabulary& vocab = c.mutable_vocabulary();
  std::vector<text::TermId> ids;
  for (const char* w : {"tank", "missile", "stock", "market", "grain", "oil",
                        "ship", "rate", "camp", "bond"}) {
    ids.push_back(vocab.AddTerm(w));
  }
  for (int d = 0; d < 12; ++d) {
    std::vector<text::TermId> tokens;
    for (int k = 0; k <= d % 5; ++k) {
      tokens.push_back(ids[static_cast<size_t>(d + k) % ids.size()]);
    }
    tokens.push_back(ids[static_cast<size_t>(d) % ids.size()]);
    c.AddDocument("doc" + std::to_string(d), std::move(tokens));
  }
  return c;
}

std::string PostingListSeed(size_t n, uint32_t stride) {
  index::PostingList::Builder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.Append(static_cast<corpus::DocId>(1 + i * stride),
                   static_cast<uint32_t>(i % 7 + 1));
  }
  std::string out;
  builder.Build().EncodeTo(&out);
  return out;
}

std::string WalSeed(bool torn) {
  // Drive the real durable pipeline and lift the WAL file it wrote.
  util::FaultInjectingFileSystem mem;
  index::live::LiveIndexOptions options;
  auto live = index::live::LiveIndex::Recover(&mem, "db", options);
  if (!live.ok()) return {};
  (*live)->EnsureTermSpace(16);
  std::vector<index::live::StableId> ids =
      (*live)->Ingest({{0, 1, 2}, {3, 4}, {1, 1, 5}});
  (*live)->Delete(ids[1]);
  (*live)->Refresh();
  (*live)->Ingest({{6, 7}});
  const uint64_t gen = (*live)->wal_generation();
  std::string bytes =
      mem.FileBytes("db/" + index::live::WalFileName(gen));
  if (torn && bytes.size() > 9) bytes.resize(bytes.size() - 9);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  const corpus::Corpus corpus = MakeCorpus();

  WriteSeed(root, "posting_list", "dense.bin", PostingListSeed(300, 1));
  WriteSeed(root, "posting_list", "sparse.bin", PostingListSeed(40, 23));
  WriteSeed(root, "posting_list", "single.bin", PostingListSeed(1, 1));

  WriteSeed(root, "inverted_index", "small.bin",
            index::InvertedIndex::Build(corpus).Serialize());

  WriteSeed(root, "sharded_index", "three_shards.bin",
            index::ShardedIndex::Build(corpus, 3).Serialize());
  WriteSeed(root, "sharded_index", "one_shard.bin",
            index::ShardedIndex::Build(corpus, 1).Serialize());

  {
    const size_t topics = 3, vocab = corpus.vocabulary_size();
    std::vector<float> phi(topics * vocab, 1.0f / static_cast<float>(vocab));
    std::vector<float> theta(2 * topics, 1.0f / static_cast<float>(topics));
    WriteSeed(root, "lda_model", "uniform.bin",
              topicmodel::LdaModel::Create(topics, vocab, std::move(phi),
                                           std::move(theta), 0.1, 0.01)
                  .Serialize());
  }

  WriteSeed(root, "wal_replay", "mutations.bin", WalSeed(/*torn=*/false));
  WriteSeed(root, "wal_replay", "torn_tail.bin", WalSeed(/*torn=*/true));
  WriteSeed(root, "wal_replay", "header_only.bin",
            index::live::EncodeWalHeader(/*generation=*/1, /*base_seq=*/1));
  return 0;
}
