// Hostile-input fuzzing of WAL replay, two layers deep:
//  1. ParseWal over arbitrary bytes — header validation, record framing,
//     CRC checks, torn-tail detection — must never crash or over-read.
//  2. When the bytes parse as a WAL, a full LiveIndex::Recover runs over a
//     FaultInjectingFileSystem whose committed manifest is stitched to the
//     input's header (generation and base_seq taken from the fuzzed
//     header), so the replay loop, the manifest/WAL cross-checks and the
//     post-recovery checkpoint all execute against the hostile log.
//
// Replayed record VALUES are bounded harness-side before step 2: a record
// that passed its CRC was written by our own WalWriter, so absurd counts
// there are writer bugs, not decoder bugs — and unbounded ingest would
// just OOM the fuzzer, masking real findings.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/live/live_index.h"
#include "index/live/wal.h"
#include "util/filesystem.h"

namespace {

using toppriv::index::live::EncodeManifestFile;
using toppriv::index::live::LiveIndex;
using toppriv::index::live::ManifestFileName;
using toppriv::index::live::ParseWal;
using toppriv::index::live::WalFileName;
using toppriv::index::live::WalRecord;
using toppriv::util::FaultInjectingFileSystem;

constexpr uint64_t kValueBound = uint64_t{1} << 16;

// A small real index image, serialized once: the committed manifest every
// fuzzed WAL replays on top of.
const std::string& ManifestBlob() {
  static const std::string* blob = [] {
    LiveIndex live{toppriv::index::live::LiveIndexOptions()};
    live.Ingest({{0, 1, 2}, {1, 3}, {2, 2, 4}});
    return new std::string(live.Serialize());
  }();
  return *blob;
}

bool RecordsBounded(const std::vector<WalRecord>& records) {
  uint64_t cost = 0;
  for (const WalRecord& r : records) {
    cost += 1 + r.docs.size();
    for (const auto& doc : r.docs) {
      cost += doc.size();
      for (const auto term : doc) {
        if (term > kValueBound) return false;
      }
    }
    if (r.num_terms > kValueBound || r.stable > kValueBound) return false;
  }
  return cost <= kValueBound;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  auto replay = ParseWal(bytes);
  if (!replay.ok()) return 0;
  if (replay->generation == 0 || replay->generation > kValueBound) return 0;
  if (!RecordsBounded(replay->records)) return 0;

  FaultInjectingFileSystem fs;
  const std::string dir = "db";
  (void)fs.MakeDirs(dir);
  fs.SetFileBytes(dir + "/CURRENT",
                  std::to_string(replay->generation) + "\n");
  fs.SetFileBytes(dir + "/" + ManifestFileName(replay->generation),
                  EncodeManifestFile(replay->generation, replay->base_seq,
                                     ManifestBlob()));
  fs.SetFileBytes(dir + "/" + WalFileName(replay->generation), bytes);

  LiveIndex::RecoveryStats stats;
  auto live = LiveIndex::Recover(&fs, dir,
                                 toppriv::index::live::LiveIndexOptions(),
                                 &stats);
  if (live.ok()) {
    // The recovered index must serve: acquiring a snapshot exercises the
    // publish path over whatever the hostile log mutated.
    auto snapshot = (*live)->Acquire();
    if (snapshot == nullptr) __builtin_trap();
  }
  return 0;
}
