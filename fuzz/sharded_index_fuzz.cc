// Hostile-input fuzzing of the sharded-index manifest + shard blobs
// (ShardedIndex::Deserialize): truncation, inverted/overlapping ranges,
// shard payloads contradicting the manifest, trailing bytes. Accepted
// blobs must round-trip canonically.
#include <cstddef>
#include <cstdint>
#include <string>

#include "index/sharded_index.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string buf(reinterpret_cast<const char*>(data), size);
  auto index = toppriv::index::ShardedIndex::Deserialize(buf);
  if (!index.ok()) return 0;

  const std::string canonical = index->Serialize();
  auto again = toppriv::index::ShardedIndex::Deserialize(canonical);
  if (!again.ok() || again->Serialize() != canonical) __builtin_trap();
  return 0;
}
