// Hostile-input fuzzing of InvertedIndex::Deserialize. An accepted blob
// must also round-trip: Serialize() of the decoded index re-parses and
// re-serializes byte-identically (the format is canonical).
#include <cstddef>
#include <cstdint>
#include <string>

#include "index/inverted_index.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string buf(reinterpret_cast<const char*>(data), size);
  auto index = toppriv::index::InvertedIndex::Deserialize(buf);
  if (!index.ok()) return 0;

  const std::string canonical = index->Serialize();
  auto again = toppriv::index::InvertedIndex::Deserialize(canonical);
  if (!again.ok() || again->Serialize() != canonical) __builtin_trap();
  return 0;
}
