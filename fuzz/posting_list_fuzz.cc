// Hostile-input fuzzing of the posting-list wire decoder (block format and
// the legacy interleaved v0 layout it still accepts). Properties checked:
//  1. DecodeFrom never crashes, loops or reads out of bounds on arbitrary
//     bytes (the sanitizers catch violations);
//  2. anything it ACCEPTS round-trips canonically: re-encoding the decoded
//     list and decoding again must reproduce the same bytes, so the block
//     format has one representation per logical list.
#include <cstddef>
#include <cstdint>
#include <string>

#include "index/posting_list.h"

namespace {
// Matches the doc-id bound the deserializer is told to enforce; small
// enough that an accepted list is also cheap to Decode().
constexpr uint64_t kMaxDocExclusive = uint64_t{1} << 20;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string buf(reinterpret_cast<const char*>(data), size);
  size_t pos = 0;
  auto list = toppriv::index::PostingList::DecodeFrom(buf, &pos,
                                                      kMaxDocExclusive);
  if (!list.ok()) return 0;

  std::string canonical;
  list->EncodeTo(&canonical);
  size_t pos2 = 0;
  auto again = toppriv::index::PostingList::DecodeFrom(canonical, &pos2,
                                                       kMaxDocExclusive);
  if (!again.ok() || pos2 != canonical.size()) __builtin_trap();
  std::string canonical2;
  again->EncodeTo(&canonical2);
  if (canonical2 != canonical) __builtin_trap();
  return 0;
}
