// Standalone replay driver for toolchains without libFuzzer (GCC builds):
// runs every file named on the command line through the harness entry
// point. This is regression mode only — no mutation, no coverage feedback;
// the CI fuzz job links the real libFuzzer runtime instead (Clang
// -fsanitize=fuzzer drops this file and provides its own main).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::printf("replayed %d input(s)\n", ran);
  return 0;
}
