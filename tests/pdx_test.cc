// Unit tests for the PDX baseline: thesaurus and query embellisher.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "pdx/embellisher.h"
#include "pdx/thesaurus.h"
#include "tests/test_helpers.h"

namespace toppriv::pdx {
namespace {

using toppriv::testing::World;

class PdxTest : public ::testing::Test {
 protected:
  PdxTest() : thesaurus_(World().corpus, World().model) {}
  Thesaurus thesaurus_;
};

// -------------------------------------------------------------- Thesaurus --

TEST_F(PdxTest, BandsAreWithinRange) {
  for (text::TermId w = 0; w < World().corpus.vocabulary_size(); ++w) {
    EXPECT_LT(thesaurus_.SpecificityBand(w), Thesaurus::kNumBands);
    EXPECT_LT(thesaurus_.DominantTopic(w), World().model.num_topics());
  }
}

TEST_F(PdxTest, RareTermsGetHigherBandsThanCommonTerms) {
  // Find the most and least frequent indexed terms and compare bands.
  const text::Vocabulary& vocab = World().corpus.vocabulary();
  text::TermId most_common = 0, rare = 0;
  uint32_t best_df = 0;
  uint32_t worst_df = UINT32_MAX;
  for (text::TermId w = 0; w < vocab.size(); ++w) {
    uint32_t df = vocab.DocFreq(w);
    if (df > best_df) {
      best_df = df;
      most_common = w;
    }
    if (df > 0 && df < worst_df) {
      worst_df = df;
      rare = w;
    }
  }
  ASSERT_GT(best_df, worst_df);
  EXPECT_LT(thesaurus_.SpecificityBand(most_common),
            thesaurus_.SpecificityBand(rare));
  EXPECT_EQ(thesaurus_.SpecificityBand(most_common), 0u);
}

TEST_F(PdxTest, CandidatesPartitionIndexedTerms) {
  // Every indexed term appears in exactly the (dominant topic, band) pool.
  const text::Vocabulary& vocab = World().corpus.vocabulary();
  size_t pooled = 0;
  for (size_t t = 0; t < World().model.num_topics(); ++t) {
    for (size_t b = 0; b < Thesaurus::kNumBands; ++b) {
      for (text::TermId w :
           thesaurus_.Candidates(static_cast<topicmodel::TopicId>(t), b)) {
        EXPECT_EQ(thesaurus_.DominantTopic(w), t);
        EXPECT_EQ(thesaurus_.SpecificityBand(w), b);
        ++pooled;
      }
    }
  }
  size_t indexed = 0;
  for (text::TermId w = 0; w < vocab.size(); ++w) {
    if (vocab.DocFreq(w) > 0) ++indexed;
  }
  EXPECT_EQ(pooled, indexed);
}

// ------------------------------------------------------------ Embellisher --

TEST_F(PdxTest, ExpansionFactorControlsQueryLength) {
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng rng(5);
  const std::vector<text::TermId>& query = World().workload[0].term_ids;
  for (double factor : {2.0, 4.0, 8.0}) {
    EmbellishedQuery out = embellisher.Embellish(query, factor, &rng);
    size_t want_decoys = static_cast<size_t>((factor - 1.0) * query.size());
    EXPECT_EQ(out.num_decoys, want_decoys) << "factor " << factor;
    EXPECT_EQ(out.terms.size(), query.size() + out.num_decoys);
  }
}

TEST_F(PdxTest, FactorOneIsIdentity) {
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng rng(6);
  const std::vector<text::TermId>& query = World().workload[0].term_ids;
  EmbellishedQuery out = embellisher.Embellish(query, 1.0, &rng);
  EXPECT_EQ(out.num_decoys, 0u);
  EXPECT_EQ(out.terms, query);
}

TEST_F(PdxTest, GenuineTermsPreserved) {
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng rng(7);
  const std::vector<text::TermId>& query = World().workload[1].term_ids;
  EmbellishedQuery out = embellisher.Embellish(query, 4.0, &rng);
  std::set<text::TermId> embellished(out.terms.begin(), out.terms.end());
  for (text::TermId w : query) {
    EXPECT_TRUE(embellished.count(w)) << "genuine term dropped";
  }
}

TEST_F(PdxTest, NoDuplicateTerms) {
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng rng(8);
  const std::vector<text::TermId>& query = World().workload[2].term_ids;
  EmbellishedQuery out = embellisher.Embellish(query, 8.0, &rng);
  std::set<text::TermId> distinct(out.terms.begin(), out.terms.end());
  EXPECT_EQ(distinct.size(), out.terms.size());
}

TEST_F(PdxTest, DecoyTopicsAvoidGenuineDominantTopics) {
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng rng(9);
  const std::vector<text::TermId>& query = World().workload[3].term_ids;
  EmbellishedQuery out = embellisher.Embellish(query, 4.0, &rng);
  std::set<topicmodel::TopicId> genuine_topics;
  for (text::TermId w : query) {
    genuine_topics.insert(thesaurus_.DominantTopic(w));
  }
  for (topicmodel::TopicId t : out.decoy_topics) {
    EXPECT_FALSE(genuine_topics.count(t));
  }
  EXPECT_FALSE(out.decoy_topics.empty());
}

TEST_F(PdxTest, DecoysMatchSpecificityApproximately) {
  // Decoys should track genuine-term specificity: mean band difference
  // should be small (exact matches whenever pools allow).
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng rng(10);
  double total_diff = 0.0;
  size_t count = 0;
  for (size_t qi = 0; qi < 6; ++qi) {
    const std::vector<text::TermId>& query = World().workload[qi].term_ids;
    EmbellishedQuery out = embellisher.Embellish(query, 2.0, &rng);
    std::set<text::TermId> genuine(query.begin(), query.end());
    double genuine_mean = 0.0;
    for (text::TermId w : query) {
      genuine_mean += static_cast<double>(thesaurus_.SpecificityBand(w));
    }
    genuine_mean /= static_cast<double>(query.size());
    for (text::TermId w : out.terms) {
      if (genuine.count(w)) continue;
      total_diff += std::abs(
          static_cast<double>(thesaurus_.SpecificityBand(w)) - genuine_mean);
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_LT(total_diff / static_cast<double>(count), 2.5);
}

TEST_F(PdxTest, DeterministicGivenSeed) {
  PdxEmbellisher embellisher(thesaurus_);
  util::Rng a(11), b(11);
  const std::vector<text::TermId>& query = World().workload[0].term_ids;
  EXPECT_EQ(embellisher.Embellish(query, 4.0, &a).terms,
            embellisher.Embellish(query, 4.0, &b).terms);
}

}  // namespace
}  // namespace toppriv::pdx
