// Tests for the session-hardened protector, the pLSA alternative and the
// cross-cycle intersection attack (extensions beyond the paper's per-cycle
// analysis; see DESIGN.md section 5).
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/intersection.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "topicmodel/plsa.h"
#include "toppriv/session.h"

namespace toppriv {
namespace {

using toppriv::testing::World;

// ---------------------------------------------------------------- Session --

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : inferencer_(World().model) {}

  // Repeats the same user query n times through a protector, returning the
  // resulting cycle views (same-intent session).
  std::vector<adversary::CycleView> RepeatQuery(core::SessionProtector* sp,
                                                size_t query_index, size_t n,
                                                uint64_t seed) {
    util::Rng rng(seed);
    std::vector<adversary::CycleView> views;
    for (size_t i = 0; i < n; ++i) {
      core::QueryCycle cycle =
          sp->Protect(World().workload[query_index].term_ids, &rng);
      views.push_back(adversary::CycleView{cycle.queries, cycle.user_index,
                                           cycle.intention});
    }
    return views;
  }

  topicmodel::LdaInferencer inferencer_;
};

TEST_F(SessionTest, CoverStoryGrowsThenStabilizes) {
  core::PrivacySpec spec;
  core::SessionProtector protector(World().model, inferencer_, spec);
  EXPECT_TRUE(protector.cover_story().empty());
  RepeatQuery(&protector, 0, 1, 1);
  std::vector<topicmodel::TopicId> after_one = protector.cover_story();
  EXPECT_FALSE(after_one.empty());
  RepeatQuery(&protector, 0, 4, 2);
  std::vector<topicmodel::TopicId> after_five = protector.cover_story();
  // The cover story is reused, so it should not balloon with repetition.
  EXPECT_LE(after_five.size(),
            after_one.size() + 4);  // near-stable, not 4x growth
}

TEST_F(SessionTest, SessionCyclesStillMeetEpsilon2) {
  core::PrivacySpec spec;  // (5%, 1%)
  core::SessionProtector protector(World().model, inferencer_, spec);
  util::Rng rng(3);
  for (size_t i = 0; i < 6; ++i) {
    core::QueryCycle cycle =
        protector.Protect(World().workload[0].term_ids, &rng);
    if (!cycle.intention.empty()) {
      EXPECT_TRUE(cycle.met_epsilon2);
    }
  }
}

TEST_F(SessionTest, SessionReusesMaskingTopics) {
  core::PrivacySpec spec;
  core::SessionProtector protector(World().model, inferencer_, spec);
  std::vector<adversary::CycleView> views;
  util::Rng rng(4);
  std::vector<std::set<topicmodel::TopicId>> used_per_cycle;
  for (size_t i = 0; i < 5; ++i) {
    core::QueryCycle cycle =
        protector.Protect(World().workload[0].term_ids, &rng);
    used_per_cycle.push_back({cycle.masking_topics.begin(),
                              cycle.masking_topics.end()});
  }
  // Later cycles should overlap heavily with the first cycle's topics.
  size_t overlap = 0, total = 0;
  for (size_t i = 1; i < used_per_cycle.size(); ++i) {
    for (topicmodel::TopicId t : used_per_cycle[i]) {
      ++total;
      if (used_per_cycle[0].count(t)) ++overlap;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(overlap) / static_cast<double>(total), 0.6);
}

// ----------------------------------------------------------- Intersection --

TEST_F(SessionTest, IntersectionAttackBeatsStatelessTopPriv) {
  // Stateless per-cycle protection: masking topics churn, so intersecting
  // candidate sets across a same-intent session isolates the intention.
  core::PrivacySpec spec;
  topicmodel::LdaInferencer inferencer(World().model);
  core::GhostQueryGenerator stateless(World().model, inferencer, spec);

  adversary::IntersectionAttack attack(World().model, inferencer);
  double stateless_precision = 0.0, session_precision = 0.0;
  double stateless_survivors = 0.0, session_survivors = 0.0;
  size_t evaluated = 0;
  for (size_t qi = 0; qi < 6; ++qi) {
    // Build an 8-cycle same-intent session under both protectors.
    util::Rng rng(100 + qi);
    std::vector<adversary::CycleView> stateless_views;
    for (size_t i = 0; i < 8; ++i) {
      core::QueryCycle cycle =
          stateless.Protect(World().workload[qi].term_ids, &rng);
      stateless_views.push_back(adversary::CycleView{
          cycle.queries, cycle.user_index, cycle.intention});
    }
    if (stateless_views.front().true_intention.empty()) continue;

    core::SessionProtector session(World().model, inferencer, spec);
    std::vector<adversary::CycleView> session_views =
        RepeatQuery(&session, qi, 8, 200 + qi);

    stateless_precision += attack.Evaluate(stateless_views, 6).precision;
    session_precision += attack.Evaluate(session_views, 6).precision;
    stateless_survivors +=
        static_cast<double>(attack.Intersect(stateless_views, 6).size());
    session_survivors +=
        static_cast<double>(attack.Intersect(session_views, 6).size());
    ++evaluated;
  }
  ASSERT_GT(evaluated, 3u);
  // Against the stateless scheme the masking topics churn, so only a small
  // set survives the intersection and most survivors are genuine (that is
  // the new attack). The session-hardened protector keeps its cover story
  // inside the intersection, so the adversary is left with a large
  // ambiguous set and low precision (it cannot tell cover from intention).
  EXPECT_LT(stateless_survivors / evaluated, 3.0);
  EXPECT_GT(stateless_precision / evaluated, 0.4);
  EXPECT_GT(session_survivors / evaluated,
            stateless_survivors / evaluated + 1.5);
  EXPECT_LT(session_precision, stateless_precision * 0.75);
}

TEST_F(SessionTest, IntersectionSingleCycleEqualsTopM) {
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  util::Rng rng(5);
  core::QueryCycle cycle =
      generator.Protect(World().workload[0].term_ids, &rng);
  adversary::CycleView view{cycle.queries, cycle.user_index, cycle.intention};

  adversary::IntersectionAttack attack(World().model, inferencer_);
  adversary::TopicInferenceAttack single(World().model, inferencer_);
  std::vector<topicmodel::TopicId> a = attack.Intersect({view}, 4);
  std::vector<topicmodel::TopicId> b = single.GuessIntention(view, 4);
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------- pLSA --

TEST(PlsaTest, ProducesNormalizedDistributions) {
  topicmodel::PlsaOptions options;
  options.num_topics = 20;
  options.iterations = 25;
  topicmodel::LdaModel model =
      topicmodel::PlsaTrainer(options).Train(World().corpus);
  EXPECT_EQ(model.num_topics(), 20u);
  for (size_t t = 0; t < model.num_topics(); ++t) {
    double sum = 0.0;
    for (size_t w = 0; w < model.vocab_size(); ++w) {
      double p = model.Phi(static_cast<topicmodel::TopicId>(t),
                           static_cast<text::TermId>(w));
      EXPECT_GT(p, 0.0);  // smoothing guarantees support
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-3);
  }
  double prior_sum = 0.0;
  for (double p : model.prior()) prior_sum += p;
  EXPECT_NEAR(prior_sum, 1.0, 1e-6);
}

TEST(PlsaTest, DeterministicAndSeedSensitive) {
  topicmodel::PlsaOptions options;
  options.num_topics = 8;
  options.iterations = 10;
  corpus::GeneratorParams params;
  params.num_docs = 80;
  params.tail_vocab_size = 150;
  corpus::Corpus c = corpus::CorpusGenerator(params).Generate();
  topicmodel::LdaModel a = topicmodel::PlsaTrainer(options).Train(c);
  topicmodel::LdaModel b = topicmodel::PlsaTrainer(options).Train(c);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  options.seed += 1;
  topicmodel::LdaModel d = topicmodel::PlsaTrainer(options).Train(c);
  EXPECT_NE(a.Serialize(), d.Serialize());
}

TEST(PlsaTest, LearnsTopicalStructure) {
  topicmodel::PlsaOptions options;
  options.num_topics = 35;
  options.iterations = 30;
  topicmodel::LdaModel model =
      topicmodel::PlsaTrainer(options).Train(World().corpus);
  // The model should fit the corpus far better than a uniform model:
  // per-token log-likelihood above log(1/V) by a wide margin.
  double ll =
      topicmodel::GibbsTrainer::LogLikelihoodPerToken(model, World().corpus);
  double uniform_ll =
      -std::log(static_cast<double>(World().corpus.vocabulary_size()));
  EXPECT_GT(ll, uniform_ll + 1.5);
}

TEST(PlsaTest, SupportsTopPrivEndToEnd) {
  // The packaged pLSA parameters must drive the whole TopPriv pipeline.
  topicmodel::PlsaOptions options;
  options.num_topics = 25;
  options.iterations = 25;
  topicmodel::LdaModel model =
      topicmodel::PlsaTrainer(options).Train(World().corpus);
  topicmodel::LdaInferencer inferencer(model);
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(model, inferencer, spec);
  util::Rng rng(6);
  size_t suppressed = 0, with_intent = 0;
  for (size_t qi = 0; qi < 8; ++qi) {
    core::QueryCycle cycle =
        generator.Protect(World().workload[qi].term_ids, &rng);
    if (cycle.intention.empty()) continue;
    ++with_intent;
    if (cycle.exposure_after < cycle.exposure_before) ++suppressed;
  }
  ASSERT_GT(with_intent, 2u);
  EXPECT_EQ(suppressed, with_intent);
}

}  // namespace
}  // namespace toppriv
