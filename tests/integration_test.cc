// Cross-module integration tests: the full TopPriv pipeline end to end.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "search/engine.h"
#include "search/eval.h"
#include "search/scorer.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "toppriv/client.h"
#include "toppriv/ghost_generator.h"

namespace toppriv {
namespace {

using toppriv::testing::World;

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : engine_(World().corpus, World().index, search::MakeBm25Scorer()),
        inferencer_(World().model) {}

  search::SearchEngine engine_;
  topicmodel::LdaInferencer inferencer_;
};

TEST_F(PipelineTest, ProtectedSessionPreservesAllResults) {
  // Run a whole session of protected queries; every single one must return
  // exactly the results of the corresponding unprotected query (the paper's
  // usability guarantee, in contrast to query-substitution schemes).
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  core::TrustedClient client(&engine_, &generator, util::Rng(4));

  for (size_t qi = 0; qi < 20; ++qi) {
    const auto& q = World().workload[qi];
    core::ProtectedSearchResult out = client.Search(q.term_ids, 10);
    std::vector<search::ScoredDoc> plain = engine_.Evaluate(q.term_ids, 10);
    ASSERT_TRUE(search::SameRanking(out.results, plain, 1e-9))
        << "query " << qi;
  }
}

TEST_F(PipelineTest, SessionReducesExposureOnAverage) {
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  util::Rng rng(5);
  double before = 0.0, after = 0.0;
  size_t counted = 0;
  for (size_t qi = 0; qi < 20; ++qi) {
    core::QueryCycle cycle =
        generator.Protect(World().workload[qi].term_ids, &rng);
    if (cycle.intention.empty()) continue;
    before += cycle.exposure_before;
    after += cycle.exposure_after;
    ++counted;
  }
  ASSERT_GT(counted, 10u);
  EXPECT_LT(after, before * 0.35);  // strong average suppression
}

TEST_F(PipelineTest, MaskDominatesExposureAfterProtection) {
  // The paper's headline behavior (Figs. 2a/2b): irrelevant topics end up
  // with larger boosts than the genuine ones.
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  util::Rng rng(6);
  size_t dominated = 0, counted = 0;
  double mask_sum = 0.0, exposure_sum = 0.0;
  for (size_t qi = 0; qi < 15; ++qi) {
    core::QueryCycle cycle =
        generator.Protect(World().workload[qi].term_ids, &rng);
    if (cycle.intention.empty() || cycle.num_ghosts() == 0) continue;
    ++counted;
    mask_sum += cycle.mask_level;
    exposure_sum += cycle.exposure_after;
    if (cycle.mask_level > cycle.exposure_after) ++dominated;
  }
  ASSERT_GT(counted, 8u);
  // The paper reports domination on average (Figs. 2a vs 2b); per-query it
  // holds for the overwhelming majority.
  EXPECT_GT(mask_sum, exposure_sum * 1.5);
  EXPECT_GE(dominated * 5, counted * 4);  // >= 80% of queries
}

TEST_F(PipelineTest, AdversaryOnEngineLogFailsAgainstProtectedTraffic) {
  // Wire the engine's own query log into the adversary: protected cycles
  // grouped by cycle_id. This is the complete paper scenario in one test.
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  core::TrustedClient client(&engine_, &generator, util::Rng(7));

  std::vector<adversary::CycleView> views;
  for (size_t qi = 0; qi < 10; ++qi) {
    core::ProtectedSearchResult out =
        client.Search(World().workload[qi].term_ids, 5);
    adversary::CycleView view;
    view.queries = out.cycle.queries;
    view.true_user_index = out.cycle.user_index;
    view.true_intention = out.cycle.intention;
    views.push_back(std::move(view));
  }

  // Rebuild the cycles from the engine log and check they match what the
  // client submitted (the adversary sees exactly this).
  const search::QueryLog& log = engine_.query_log();
  size_t pos = 0;
  for (const adversary::CycleView& view : views) {
    for (size_t i = 0; i < view.queries.size(); ++i, ++pos) {
      ASSERT_LT(pos, log.size());
      EXPECT_EQ(log.entries()[pos].terms, view.queries[i]);
    }
  }

  adversary::TopicInferenceAttack attack(World().model, inferencer_);
  double recall = 0.0;
  size_t evaluated = 0;
  for (const adversary::CycleView& view : views) {
    if (view.true_intention.empty()) continue;
    recall += attack.Evaluate(view, 3).recall;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 4u);
  EXPECT_LT(recall / static_cast<double>(evaluated), 0.55);
}

TEST_F(PipelineTest, IntentionMatchesGroundTruthTopics) {
  // Validation the paper could not do on WSJ: the extracted intention should
  // correspond to LDA topics aligned with the query's ground-truth topics.
  // We check alignment via the ghost generator's own user_boost: the top
  // boosted LDA topic's top words should overlap the intent topic's seeds.
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  util::Rng rng(8);

  size_t aligned = 0, counted = 0;
  for (size_t qi = 0; qi < 12; ++qi) {
    const auto& q = World().workload[qi];
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    if (cycle.intention.empty()) continue;
    ++counted;

    std::set<text::TermId> intent_seeds;
    for (uint32_t t : q.intent_topics) {
      intent_seeds.insert(World().truth.seed_term_ids[t].begin(),
                          World().truth.seed_term_ids[t].end());
    }
    // Does any intention topic's top-15 word list hit the seeds?
    bool hit = false;
    for (topicmodel::TopicId t : cycle.intention) {
      size_t hits = 0;
      for (const topicmodel::WordProb& wp : World().model.TopWords(t, 15)) {
        if (intent_seeds.count(wp.term)) ++hits;
      }
      if (hits >= 5) hit = true;
    }
    if (hit) ++aligned;
  }
  ASSERT_GT(counted, 6u);
  EXPECT_GE(aligned * 4, counted * 3);  // >= 75% aligned
}

TEST_F(PipelineTest, TighterEpsilon2NeedsLongerCycles) {
  // Fig. 2c's qualitative shape: lowering epsilon2 increases cycle length.
  core::PrivacySpec loose;
  loose.epsilon2 = 0.04;
  core::PrivacySpec tight;
  tight.epsilon2 = 0.005;
  core::GhostQueryGenerator loose_gen(World().model, inferencer_, loose);
  core::GhostQueryGenerator tight_gen(World().model, inferencer_, tight);
  util::Rng rng_a(9), rng_b(9);
  double loose_len = 0.0, tight_len = 0.0;
  for (size_t qi = 0; qi < 12; ++qi) {
    loose_len += static_cast<double>(
        loose_gen.Protect(World().workload[qi].term_ids, &rng_a).length());
    tight_len += static_cast<double>(
        tight_gen.Protect(World().workload[qi].term_ids, &rng_b).length());
  }
  EXPECT_GT(tight_len, loose_len);
}

}  // namespace
}  // namespace toppriv
