// Unit and property tests for the LDA trainer, model and inferencer.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/topic_spec.h"
#include "tests/test_helpers.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "topicmodel/lda_model.h"
#include "util/io.h"

namespace toppriv::topicmodel {
namespace {

using toppriv::testing::World;

// ---------------------------------------------------------------- LdaModel --

TEST(LdaModelTest, PhiRowsAreDistributions) {
  const LdaModel& model = World().model;
  for (size_t t = 0; t < model.num_topics(); ++t) {
    util::Span<const float> row = model.PhiRow(static_cast<TopicId>(t));
    double sum = 0.0;
    for (float p : row) {
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-3) << "topic " << t;
  }
}

TEST(LdaModelTest, ThetaRowsAreDistributions) {
  const LdaModel& model = World().model;
  for (size_t d = 0; d < std::min<size_t>(model.num_docs(), 50); ++d) {
    double sum = 0.0;
    for (size_t t = 0; t < model.num_topics(); ++t) {
      double p = model.Theta(d, static_cast<TopicId>(t));
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-3) << "doc " << d;
  }
}

TEST(LdaModelTest, PriorIsEq1Average) {
  const LdaModel& model = World().model;
  const std::vector<double>& prior = model.prior();
  ASSERT_EQ(prior.size(), model.num_topics());
  double sum = std::accumulate(prior.begin(), prior.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Spot-check Eq. 1 directly for one topic.
  double manual = 0.0;
  for (size_t d = 0; d < model.num_docs(); ++d) manual += model.Theta(d, 3);
  manual /= static_cast<double>(model.num_docs());
  EXPECT_NEAR(prior[3], manual, 1e-9);
}

TEST(LdaModelTest, TopWordsSortedAndBounded) {
  const LdaModel& model = World().model;
  std::vector<WordProb> top = model.TopWords(0, 20);
  ASSERT_EQ(top.size(), 20u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].prob, top[i].prob);
  }
  // Asking for more words than the vocabulary has caps at vocab size.
  EXPECT_EQ(model.TopWords(0, 1u << 30).size(), model.vocab_size());
}

TEST(LdaModelTest, SizeBytesAccountsStructures) {
  const LdaModel& model = World().model;
  size_t expected = model.num_topics() * model.vocab_size() * sizeof(float) +
                    model.num_docs() * model.num_topics() * sizeof(float) +
                    model.num_topics() * sizeof(double);
  EXPECT_EQ(model.SizeBytes(), expected);
}

TEST(LdaModelTest, SerializeRoundtrip) {
  const LdaModel& model = World().model;
  auto restored = LdaModel::Deserialize(model.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_topics(), model.num_topics());
  EXPECT_EQ(restored->vocab_size(), model.vocab_size());
  EXPECT_EQ(restored->num_docs(), model.num_docs());
  EXPECT_DOUBLE_EQ(restored->alpha(), model.alpha());
  EXPECT_DOUBLE_EQ(restored->beta(), model.beta());
  EXPECT_FLOAT_EQ(static_cast<float>(restored->Phi(3, 7)),
                  static_cast<float>(model.Phi(3, 7)));
  EXPECT_NEAR(restored->prior()[5], model.prior()[5], 1e-12);
}

TEST(LdaModelTest, DeserializeGarbageFails) {
  EXPECT_FALSE(LdaModel::Deserialize("garbage").ok());
}

TEST(LdaModelTest, DeserializeRejectsOverflowingDimensions) {
  // Regression: num_topics * vocab_size was validated with a raw uint64
  // multiply, so dimensions chosen to wrap (2^32 * 2^32 == 0 mod 2^64)
  // "matched" an empty phi and produced a model whose PhiRow reads far out
  // of bounds. The division-based check must reject it with DataLoss.
  util::BinaryWriter w;
  w.WriteVarint(uint64_t{1} << 32);  // num_topics
  w.WriteVarint(uint64_t{1} << 32);  // vocab_size (product wraps to 0)
  w.WriteDouble(0.1);                // alpha
  w.WriteDouble(0.1);                // beta
  w.WriteFloatVector({});            // phi: empty, matches the wrapped product
  w.WriteFloatVector({});            // theta
  auto result = LdaModel::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LdaModelTest, DeserializeRejectsMismatchedPhi) {
  util::BinaryWriter w;
  w.WriteVarint(2);  // num_topics
  w.WriteVarint(3);  // vocab_size
  w.WriteDouble(0.1);
  w.WriteDouble(0.1);
  w.WriteFloatVector({0.5f, 0.5f, 0.5f, 0.5f});  // 4 floats != 2*3
  w.WriteFloatVector({});
  EXPECT_FALSE(LdaModel::Deserialize(w.data()).ok());
}

TEST(LdaModelTest, DeserializeHostileVectorCountFailsCleanly) {
  // A tiny blob whose float-vector count wraps the byte-size computation
  // must fail with DataLoss instead of attempting a huge allocation.
  util::BinaryWriter w;
  w.WriteVarint(2);
  w.WriteVarint(2);
  w.WriteDouble(0.1);
  w.WriteDouble(0.1);
  w.WriteVarint(uint64_t{1} << 62);  // phi count: 2^62 floats "fit" mod 2^64
  auto result = LdaModel::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LdaModelTest, TruncatedBlobsNeverCrash) {
  const LdaModel& model = World().model;
  std::string bytes = model.Serialize();
  // Sweep a few hundred truncation points across the blob (it is large, so
  // stride; always include the varint/double header region densely).
  for (size_t cut = 0; cut < std::min<size_t>(bytes.size(), 64); ++cut) {
    EXPECT_FALSE(LdaModel::Deserialize(bytes.substr(0, cut)).ok());
  }
  const size_t stride = std::max<size_t>(1, bytes.size() / 128);
  for (size_t cut = 64; cut < bytes.size(); cut += stride) {
    EXPECT_FALSE(LdaModel::Deserialize(bytes.substr(0, cut)).ok());
  }
}

TEST(LdaModelTest, CreateComputesUniformPriorWithoutDocs) {
  std::vector<float> phi = {0.5f, 0.5f, 0.25f, 0.75f};
  LdaModel model = LdaModel::Create(2, 2, phi, {}, 0.1, 0.1);
  EXPECT_DOUBLE_EQ(model.prior()[0], 0.5);
  EXPECT_DOUBLE_EQ(model.prior()[1], 0.5);
  EXPECT_EQ(model.num_docs(), 0u);
}

// ------------------------------------------------------------ GibbsTrainer --

TEST(GibbsTrainerTest, AlphaDefaultsToFiftyOverT) {
  const LdaModel& model = World().model;  // 40 topics
  EXPECT_NEAR(model.alpha(), 50.0 / 40.0, 1e-12);
  EXPECT_NEAR(model.beta(), 0.1, 1e-12);
}

TEST(GibbsTrainerTest, TrainingIsDeterministic) {
  corpus::GeneratorParams params;
  params.num_docs = 60;
  params.tail_vocab_size = 150;
  corpus::Corpus c = corpus::CorpusGenerator(params).Generate();
  TrainerOptions options;
  options.num_topics = 10;
  options.iterations = 15;
  LdaModel a = GibbsTrainer(options).Train(c);
  LdaModel b = GibbsTrainer(options).Train(c);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(GibbsTrainerTest, TrainingImprovesLikelihoodOverOneSweep) {
  corpus::GeneratorParams params;
  params.num_docs = 120;
  params.tail_vocab_size = 200;
  corpus::Corpus c = corpus::CorpusGenerator(params).Generate();
  TrainerOptions brief;
  brief.num_topics = 20;
  brief.iterations = 1;
  brief.estimation_samples = 1;
  TrainerOptions full = brief;
  full.iterations = 40;
  full.estimation_samples = 5;
  double ll_brief =
      GibbsTrainer::LogLikelihoodPerToken(GibbsTrainer(brief).Train(c), c);
  double ll_full =
      GibbsTrainer::LogLikelihoodPerToken(GibbsTrainer(full).Train(c), c);
  EXPECT_GT(ll_full, ll_brief + 0.1);
}

TEST(GibbsTrainerTest, RecoversPlantedTopics) {
  // Topics in the trained model should align with ground-truth topics: for
  // most LDA topics, the top words should be dominated by a single
  // ground-truth topic's seed list (topical coherence, paper Table II).
  const auto& world = World();
  const LdaModel& model = world.model;

  // Map each seed term id -> ground-truth topic.
  std::vector<int> seed_owner(world.corpus.vocabulary_size(), -1);
  for (size_t t = 0; t < world.truth.seed_term_ids.size(); ++t) {
    for (text::TermId w : world.truth.seed_term_ids[t]) {
      seed_owner[w] = static_cast<int>(t);
    }
  }

  size_t coherent = 0;
  for (size_t t = 0; t < model.num_topics(); ++t) {
    std::vector<WordProb> top = model.TopWords(static_cast<TopicId>(t), 15);
    std::vector<int> votes(world.truth.seed_term_ids.size(), 0);
    int seeded = 0;
    for (const WordProb& wp : top) {
      int owner = seed_owner[wp.term];
      if (owner >= 0) {
        ++votes[owner];
        ++seeded;
      }
    }
    int best = *std::max_element(votes.begin(), votes.end());
    if (seeded >= 5 && best * 2 >= seeded) ++coherent;
  }
  // At least a third of the topics should be crisply aligned (40 LDA topics
  // over 30 true topics leaves room for mixed/generic topics, as in the
  // paper's Table II last column).
  EXPECT_GE(coherent, model.num_topics() / 3);
}

// ------------------------------------------------------------- Inferencer --

TEST(InferencerTest, PosteriorIsDistribution) {
  const auto& world = World();
  LdaInferencer inferencer(world.model);
  for (size_t qi = 0; qi < 5; ++qi) {
    std::vector<double> posterior =
        inferencer.InferQuery(world.workload[qi].term_ids);
    ASSERT_EQ(posterior.size(), world.model.num_topics());
    double sum = std::accumulate(posterior.begin(), posterior.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double p : posterior) EXPECT_GT(p, 0.0);
  }
}

TEST(InferencerTest, DeterministicForSameQuery) {
  const auto& world = World();
  LdaInferencer inferencer(world.model);
  std::vector<double> a = inferencer.InferQuery(world.workload[0].term_ids);
  std::vector<double> b = inferencer.InferQuery(world.workload[0].term_ids);
  EXPECT_EQ(a, b);
}

TEST(InferencerTest, EmptyQueryIsUniform) {
  const auto& world = World();
  LdaInferencer inferencer(world.model);
  std::vector<double> posterior = inferencer.InferQuery({});
  for (double p : posterior) {
    EXPECT_NEAR(p, 1.0 / static_cast<double>(world.model.num_topics()), 1e-12);
  }
}

TEST(InferencerTest, OutOfVocabularyTermsIgnored) {
  const auto& world = World();
  LdaInferencer inferencer(world.model);
  std::vector<text::TermId> query = world.workload[0].term_ids;
  std::vector<double> base = inferencer.InferQuery(query);
  query.push_back(static_cast<text::TermId>(world.model.vocab_size() + 99));
  std::vector<double> with_oov = inferencer.InferQuery(query);
  EXPECT_EQ(base, with_oov);
}

TEST(InferencerTest, TopicalQueryConcentratesPosterior) {
  // A strongly topical query should lift a small number of topics far above
  // the prior; the bulk of topics should stay near it.
  const auto& world = World();
  LdaInferencer inferencer(world.model);
  std::vector<double> posterior =
      inferencer.InferQuery(world.workload[0].term_ids);
  std::vector<double> boosts;
  for (size_t t = 0; t < posterior.size(); ++t) {
    boosts.push_back(posterior[t] - world.model.prior()[t]);
  }
  std::sort(boosts.rbegin(), boosts.rend());
  EXPECT_GT(boosts[0], 0.05);   // at least one strongly-boosted topic
  EXPECT_LT(boosts[5], 0.05);   // but not many
}

TEST(InferencerTest, CyclePosteriorIsUniformMixture) {
  std::vector<std::vector<double>> posteriors = {
      {0.8, 0.1, 0.1},
      {0.2, 0.6, 0.2},
      {0.0, 0.3, 0.7},
  };
  std::vector<double> mix = LdaInferencer::CyclePosterior(posteriors);
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_NEAR(mix[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(mix[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(mix[2], 1.0 / 3.0, 1e-12);
}

TEST(InferencerTest, CyclePosteriorSingleQueryIsIdentity) {
  std::vector<std::vector<double>> posteriors = {{0.25, 0.75}};
  EXPECT_EQ(LdaInferencer::CyclePosterior(posteriors), posteriors[0]);
}

TEST(InferencerTest, MoreGhostQueriesDiluteBoost) {
  // Adding unrelated queries to a cycle must shrink the genuine topics'
  // boost — the mechanism TopPriv relies on (Eq. 2).
  const auto& world = World();
  LdaInferencer inferencer(world.model);
  std::vector<double> genuine =
      inferencer.InferQuery(world.workload[0].term_ids);
  std::vector<double> other =
      inferencer.InferQuery(world.workload[1].term_ids);

  size_t top_topic = 0;
  for (size_t t = 1; t < genuine.size(); ++t) {
    if (genuine[t] > genuine[top_topic]) top_topic = t;
  }
  double solo_boost = genuine[top_topic] - world.model.prior()[top_topic];
  std::vector<double> mixed =
      LdaInferencer::CyclePosterior({genuine, other, other, other});
  double mixed_boost = mixed[top_topic] - world.model.prior()[top_topic];
  EXPECT_LT(mixed_boost, solo_boost * 0.5);
}

}  // namespace
}  // namespace toppriv::topicmodel
