// Tests for the experiment fixture and sweep runners.
#include <cstdlib>

#include <gtest/gtest.h>

#include "experiments/fixture.h"
#include "experiments/runner.h"

namespace toppriv::experiments {
namespace {

FixtureConfig TinyConfig() {
  FixtureConfig config;
  config.corpus_params.num_docs = 150;
  config.corpus_params.mean_doc_length = 60;
  config.corpus_params.tail_vocab_size = 300;
  config.workload_params.num_queries = 12;
  config.lda_iterations = 20;
  config.cache_dir = ::testing::TempDir() + "/toppriv_fixture_cache";
  return config;
}

TEST(FixtureConfigTest, EnvOverrides) {
  ::setenv("TOPPRIV_DOCS", "123", 1);
  ::setenv("TOPPRIV_QUERIES", "17", 1);
  ::setenv("TOPPRIV_CACHE_DIR", "/tmp/somewhere", 1);
  FixtureConfig config = FixtureConfig::FromEnv();
  EXPECT_EQ(config.corpus_params.num_docs, 123u);
  EXPECT_EQ(config.workload_params.num_queries, 17u);
  EXPECT_EQ(config.cache_dir, "/tmp/somewhere");
  ::unsetenv("TOPPRIV_DOCS");
  ::unsetenv("TOPPRIV_QUERIES");
  ::unsetenv("TOPPRIV_CACHE_DIR");
}

TEST(FixtureConfigTest, InvalidEnvFallsBack) {
  ::setenv("TOPPRIV_DOCS", "not-a-number", 1);
  FixtureConfig config = FixtureConfig::FromEnv();
  EXPECT_EQ(config.corpus_params.num_docs, 1500u);
  ::unsetenv("TOPPRIV_DOCS");
}

TEST(FixtureTest, PaperModelSizes) {
  EXPECT_EQ(PaperModelSizes(),
            (std::vector<size_t>{50, 100, 150, 200, 250, 300}));
  EXPECT_EQ(ExperimentFixture::ModelName(200), "LDA200");
  EXPECT_EQ(ExperimentFixture::ModelName(50), "LDA050");
}

TEST(FixtureTest, BuildsConsistentState) {
  ExperimentFixture fixture(TinyConfig());
  EXPECT_EQ(fixture.corpus().num_documents(), 150u);
  EXPECT_EQ(fixture.workload().size(), 12u);
  EXPECT_EQ(fixture.index().num_documents(), 150u);
  const topicmodel::LdaModel& model = fixture.model(15);
  EXPECT_EQ(model.num_topics(), 15u);
  EXPECT_EQ(model.vocab_size(), fixture.corpus().vocabulary_size());
  // Second call returns the same object (memoized).
  EXPECT_EQ(&fixture.model(15), &model);
}

TEST(FixtureTest, ModelCacheRoundtrip) {
  FixtureConfig config = TinyConfig();
  std::string serialized_first;
  {
    ExperimentFixture fixture(config);
    serialized_first = fixture.model(12).Serialize();
  }
  {
    // Fresh fixture: must load the cached model, not retrain differently.
    ExperimentFixture fixture(config);
    EXPECT_EQ(fixture.model(12).Serialize(), serialized_first);
  }
}

TEST(RunnerTest, TopPrivCellProducesSaneMetrics) {
  ExperimentFixture fixture(TinyConfig());
  core::PrivacySpec spec;
  spec.epsilon1 = 0.05;
  spec.epsilon2 = 0.02;
  TopPrivCell cell = RunTopPrivCell(fixture, 15, spec);
  EXPECT_EQ(cell.num_topics, 15u);
  EXPECT_GE(cell.cycle_length, 1.0);
  EXPECT_GE(cell.mask_pct, 0.0);
  EXPECT_GE(cell.exposure_before_pct, cell.exposure_pct);
  EXPECT_GE(cell.satisfied_fraction, 0.5);
  EXPECT_GT(cell.generation_seconds, 0.0);
  EXPECT_GE(cell.num_relevant_topics, 0.0);
}

TEST(RunnerTest, PdxCellProducesSaneMetrics) {
  ExperimentFixture fixture(TinyConfig());
  PdxCell cell = RunPdxCell(fixture, 15, 0.05, 4.0);
  EXPECT_EQ(cell.num_topics, 15u);
  EXPECT_DOUBLE_EQ(cell.expansion_factor, 4.0);
  EXPECT_GT(cell.decoys, 0.0);
  EXPECT_GE(cell.exposure_pct, 0.0);
}

TEST(RunnerTest, TopPrivBeatsPdxAtMatchedBudget) {
  // The Fig. 5 headline: at equal word budgets TopPriv exposes less than
  // PDX. Checked at expansion/cycle 4 on a small fixture.
  ExperimentFixture fixture(TinyConfig());
  core::PrivacySpec spec;
  spec.epsilon1 = 0.05;
  spec.epsilon2 = 0.01;
  spec.fixed_ghost_count = 3;  // cycle length 4 == expansion factor 4
  TopPrivCell ours = RunTopPrivCell(fixture, 15, spec);
  PdxCell theirs = RunPdxCell(fixture, 15, 0.05, 4.0);
  EXPECT_LT(ours.exposure_pct, theirs.exposure_pct);
}

}  // namespace
}  // namespace toppriv::experiments
