// Parity/property suite for the live indexing subsystem.
//
// The contract under test: ingesting a corpus in ANY batch splits, with ANY
// interleaving of merges and deletes-then-reinserts, is INVISIBLE — the
// LiveSearchEngine returns bit-identical results to the monolithic engine
// over a static InvertedIndex::Build of the final collection, the
// snapshot's ComputeStats() equals the static build's exactly, snapshots
// are isolated from concurrent churn, and hostile serialized manifests die
// with clean errors instead of corrupting memory.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "index/live/live_index.h"
#include "search/engine.h"
#include "search/live_engine.h"
#include "search/scorer.h"
#include "tests/test_helpers.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace toppriv {
namespace {

using index::IndexStats;
using index::InvertedIndex;
using index::live::IndexSnapshot;
using index::live::LiveIndex;
using index::live::LiveIndexOptions;
using index::live::StableId;
using search::LiveSearchEngine;
using search::ScoredDoc;
using toppriv::testing::World;

using Doc = std::vector<text::TermId>;

std::unique_ptr<search::Scorer> MakeScorer(int which) {
  switch (which) {
    case 0:
      return search::MakeBm25Scorer();
    case 1:
      return search::MakeTfIdfScorer();
    default:
      return std::make_unique<search::LmDirichletScorer>();
  }
}

const search::EvalStrategy kStrategies[] = {search::EvalStrategy::kTAAT,
                                            search::EvalStrategy::kMaxScore};

void ExpectBitIdentical(const std::vector<ScoredDoc>& got,
                        const std::vector<ScoredDoc>& want,
                        const char* context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << context << " rank " << i;
    // Bit equality: the live engine runs the identical floating-point ops
    // in the identical order as the static engine.
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

void ExpectStatsEqual(const IndexStats& got, const IndexStats& want) {
  EXPECT_EQ(got.num_terms, want.num_terms);
  EXPECT_EQ(got.num_documents, want.num_documents);
  EXPECT_EQ(got.total_postings, want.total_postings);
  EXPECT_EQ(got.max_list_length, want.max_list_length);
  EXPECT_EQ(got.encoded_bytes, want.encoded_bytes);
  EXPECT_EQ(got.pir_padded_bytes, want.pir_padded_bytes);
  EXPECT_DOUBLE_EQ(got.avg_list_length, want.avg_list_length);
}

// A corpus holding exactly `docs` over a `vocab_size`-term vocabulary
// (synthetic surface forms; only ids matter to the index and engines).
corpus::Corpus CorpusFromDocs(size_t vocab_size, const std::vector<Doc>& docs) {
  corpus::Corpus c;
  text::Vocabulary& vocab = c.mutable_vocabulary();
  for (size_t t = 0; t < vocab_size; ++t) {
    vocab.AddTerm("t" + std::to_string(t));
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    c.AddDocument("d" + std::to_string(d), docs[d]);
  }
  return c;
}

std::vector<Doc> WorldDocs() {
  std::vector<Doc> docs;
  for (const corpus::Document& d : World().corpus.documents()) {
    docs.push_back(d.tokens);
  }
  return docs;
}

// Shared fan-out pool for the pooled parity dimension. Leaked on purpose:
// gtest runs tests in one process and a static pool sidesteps teardown
// ordering; the pool is only ever driven from the main test thread.
util::ThreadPool& EvalPool() {
  static util::ThreadPool* pool = new util::ThreadPool(3);
  return *pool;
}

// THE parity check: the live index's current state must be
// indistinguishable — results (all scorers × both strategies × sequential
// and pooled per-segment scatter) and stats — from a static build of
// `final_docs`. MaxScore runs over the engine's cached per-segment impact
// bounds (queries after the first serve from the cache), so every call
// here also locks down cached-bounds parity.
void ExpectLiveMatchesStatic(LiveIndex& live, const std::vector<Doc>& final_docs,
                             size_t vocab_size,
                             const std::vector<Doc>& queries, size_t k,
                             const char* context) {
  corpus::Corpus expected = CorpusFromDocs(vocab_size, final_docs);
  InvertedIndex static_index = InvertedIndex::Build(expected);
  std::shared_ptr<const IndexSnapshot> snapshot = live.Refresh();
  ASSERT_EQ(snapshot->num_documents(), static_index.num_documents()) << context;
  ExpectStatsEqual(snapshot->ComputeStats(), static_index.ComputeStats());
  for (int scorer_kind = 0; scorer_kind < 3; ++scorer_kind) {
    for (search::EvalStrategy strategy : kStrategies) {
      search::SearchEngine mono(expected, static_index,
                                MakeScorer(scorer_kind), strategy);
      LiveSearchEngine engine(expected, live, MakeScorer(scorer_kind),
                              strategy);
      LiveSearchEngine pooled(expected, live, MakeScorer(scorer_kind),
                              strategy, &EvalPool());
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        SCOPED_TRACE(::testing::Message()
                     << context << " scorer=" << scorer_kind << " strategy="
                     << search::EvalStrategyName(strategy) << " query=" << qi);
        const std::vector<ScoredDoc> want = mono.Evaluate(queries[qi], k);
        ExpectBitIdentical(engine.Evaluate(queries[qi], k), want, context);
        ExpectBitIdentical(pooled.Evaluate(queries[qi], k), want, context);
      }
    }
  }
}

// Workload queries, optionally truncated (the full grid is expensive).
std::vector<Doc> WorldQueries(size_t limit) {
  std::vector<Doc> queries;
  const auto& workload = World().workload;
  for (size_t i = 0; i < workload.size() && i < limit; ++i) {
    queries.push_back(workload[i].term_ids);
  }
  return queries;
}

// ----------------------------------------------------------- bit parity --

TEST(LiveIndexTest, EmptyIndexAnswersNothing) {
  LiveIndex live;
  std::shared_ptr<const IndexSnapshot> snapshot = live.Acquire();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->num_documents(), 0u);
  corpus::Corpus empty = CorpusFromDocs(4, {});
  LiveSearchEngine engine(empty, live, search::MakeBm25Scorer());
  EXPECT_TRUE(engine.Evaluate({0, 1}, 10).empty());
  EXPECT_TRUE(engine.Evaluate({}, 10).empty());
  EXPECT_TRUE(engine.Evaluate({0}, 0).empty());
}

TEST(LiveIndexParityTest, BatchSplitSchedulesMatchStaticBuild) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  const std::vector<Doc> queries = WorldQueries(10);
  // Three deliberately different split schedules (the acceptance floor),
  // plus a seeded random one: whole-corpus, a prime stride that never
  // divides the corpus, and tiny batches that force many auto-seals.
  struct Schedule {
    const char* name;
    size_t batch;
    size_t max_writer_docs;
  };
  const Schedule schedules[] = {{"one-batch", docs.size(), 1u << 20},
                                {"prime-97", 97, 1u << 20},
                                {"tiny-7", 7, 32}};
  for (const Schedule& schedule : schedules) {
    SCOPED_TRACE(schedule.name);
    LiveIndexOptions options;
    options.max_writer_docs = schedule.max_writer_docs;
    LiveIndex live(options);
    live.EnsureTermSpace(vocab);
    for (size_t begin = 0; begin < docs.size(); begin += schedule.batch) {
      const size_t end = std::min(docs.size(), begin + schedule.batch);
      live.Ingest(std::vector<Doc>(docs.begin() + begin, docs.begin() + end));
      live.Refresh();  // every batch boundary becomes a snapshot boundary
    }
    EXPECT_GT(live.num_segments(), 0u);
    ExpectLiveMatchesStatic(live, docs, vocab, queries, 10, schedule.name);
  }
  // Random split sizes, still covering the whole corpus.
  util::Rng rng(271828);
  LiveIndex live;
  live.EnsureTermSpace(vocab);
  size_t begin = 0;
  while (begin < docs.size()) {
    const size_t batch = 1 + rng.UniformInt(uint64_t{60});
    const size_t end = std::min(docs.size(), begin + batch);
    live.Ingest(std::vector<Doc>(docs.begin() + begin, docs.begin() + end));
    if (rng.UniformInt(uint64_t{3}) == 0) live.Refresh();
    begin = end;
  }
  ExpectLiveMatchesStatic(live, docs, vocab, queries, 10, "random-splits");
}

TEST(LiveIndexParityTest, FullWorkloadParityAfterStreamedIngest) {
  // One schedule, the FULL workload, under the default strategy/scorer
  // pairing the serving layer uses most.
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  LiveIndexOptions options;
  options.max_writer_docs = 64;
  LiveIndex live(options);
  live.EnsureTermSpace(vocab);
  for (size_t begin = 0; begin < docs.size(); begin += 41) {
    const size_t end = std::min(docs.size(), begin + 41);
    live.Ingest(std::vector<Doc>(docs.begin() + begin, docs.begin() + end));
    live.Refresh();
  }
  corpus::Corpus expected = CorpusFromDocs(vocab, docs);
  InvertedIndex static_index = InvertedIndex::Build(expected);
  search::SearchEngine mono(expected, static_index, search::MakeBm25Scorer());
  LiveSearchEngine engine(expected, live, search::MakeBm25Scorer());
  for (size_t qi = 0; qi < World().workload.size(); ++qi) {
    SCOPED_TRACE(qi);
    ExpectBitIdentical(engine.Evaluate(World().workload[qi].term_ids, 10),
                       mono.Evaluate(World().workload[qi].term_ids, 10),
                       "full-workload");
  }
}

TEST(LiveIndexParityTest, TieredMergesPreserveParityAndBoundSegments) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  LiveIndexOptions options;
  options.max_writer_docs = 16;
  options.merge_factor = 2;  // aggressive: merges cascade constantly
  LiveIndex live(options);
  live.EnsureTermSpace(vocab);
  for (size_t begin = 0; begin < docs.size(); begin += 10) {
    const size_t end = std::min(docs.size(), begin + 10);
    live.Ingest(std::vector<Doc>(docs.begin() + begin, docs.begin() + end));
    live.Refresh();
  }
  // 500 docs / 16-doc seals with factor-2 tiering: the policy must keep
  // the segment list logarithmic, not linear (~32 sealed segments raw).
  EXPECT_GT(live.num_segments(), 0u);
  EXPECT_LT(live.num_segments(), 12u);
  ExpectLiveMatchesStatic(live, docs, vocab, WorldQueries(10), 10, "tiered");

  live.ForceMerge();
  EXPECT_EQ(live.num_segments(), 1u);
  ExpectLiveMatchesStatic(live, docs, vocab, WorldQueries(10), 10,
                          "force-merged");
}

TEST(LiveIndexParityTest, DeleteThenReinsertMatchesStaticBuildOfFinalCorpus) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  LiveIndexOptions options;
  options.max_writer_docs = 100;
  LiveIndex live(options);
  live.EnsureTermSpace(vocab);
  std::vector<StableId> ids = live.Ingest(docs);
  live.Refresh();

  // Delete a scatter of documents, force a merge mid-way (so some
  // tombstones are compacted away and some survive), then reinsert the
  // deleted documents' content — they re-enter at the END of the stable
  // order, exactly where a static build of the final corpus puts them.
  const size_t kDeleted[] = {0, 7, 99, 100, 255, 256, 257, 480, 499};
  std::vector<Doc> final_docs;
  for (size_t d = 0; d < docs.size(); ++d) {
    bool deleted = false;
    for (size_t x : kDeleted) deleted = deleted || x == d;
    if (!deleted) final_docs.push_back(docs[d]);
  }
  size_t half = 0;
  for (size_t x : kDeleted) {
    ASSERT_TRUE(live.Delete(ids[x])) << x;
    if (++half == 4) live.ForceMerge();  // compact the first four away
  }
  std::vector<Doc> reinserted;
  for (size_t x : kDeleted) reinserted.push_back(docs[x]);
  live.Ingest(reinserted);
  for (size_t x : kDeleted) final_docs.push_back(docs[x]);

  ExpectLiveMatchesStatic(live, final_docs, vocab, WorldQueries(10), 10,
                          "delete-reinsert");
}

// The cached-bounds protocol's hard edges, exercised through PERSISTENT
// engines whose caches live across the mutations (fresh engines per stage
// would never hold a stale table):
//   - a delete dropping a term's df to zero,
//   - EnsureTermSpace growth followed by docs using the new term ids,
//   - a merge commit swapping the segment list under cached tables
//     (df-neutral: the version must NOT move, yet the merge output's
//     tables recompute on first use via segment identity).
// Every stage checks all engines bit-identical against a static build of
// the stage's corpus, evaluating twice so the second call serves from the
// cache.
TEST(LiveIndexParityTest, DfVersionEdgesKeepCachedBoundsExact) {
  const size_t kFinalVocab = 12;
  // Long-lived corpus for the engines to borrow (the live engines score
  // from snapshots; the corpus only backs corpus() consumers, so the full
  // final vocabulary up-front is safe at every stage).
  corpus::Corpus host = CorpusFromDocs(kFinalVocab, {});

  LiveIndexOptions options;
  options.max_writer_docs = 2;  // small segments → many bound tables
  options.merge_factor = 4;
  LiveIndex live(options);
  live.EnsureTermSpace(8);

  LiveSearchEngine seq_max(host, live, search::MakeBm25Scorer(),
                           search::EvalStrategy::kMaxScore);
  LiveSearchEngine pooled_max(host, live, search::MakeBm25Scorer(),
                              search::EvalStrategy::kMaxScore, &EvalPool());
  LiveSearchEngine taat(host, live, search::MakeBm25Scorer(),
                        search::EvalStrategy::kTAAT);

  std::vector<Doc> final_docs;  // mirror of the live collection
  auto check_stage = [&](size_t stage_vocab,
                         const std::vector<Doc>& queries,
                         const char* stage) {
    live.Refresh();
    corpus::Corpus expected = CorpusFromDocs(stage_vocab, final_docs);
    InvertedIndex static_index = InvertedIndex::Build(expected);
    search::SearchEngine mono(expected, static_index,
                              search::MakeBm25Scorer(),
                              search::EvalStrategy::kMaxScore);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      SCOPED_TRACE(::testing::Message() << stage << " query=" << qi);
      const std::vector<ScoredDoc> want = mono.Evaluate(queries[qi], 8);
      // Twice: the first call (re)builds the stage's tables, the second
      // must serve them from the cache with identical results.
      ExpectBitIdentical(seq_max.Evaluate(queries[qi], 8), want, stage);
      ExpectBitIdentical(seq_max.Evaluate(queries[qi], 8), want, stage);
      ExpectBitIdentical(pooled_max.Evaluate(queries[qi], 8), want, stage);
      ExpectBitIdentical(taat.Evaluate(queries[qi], 8), want, stage);
    }
  };

  // Stage 0 — baseline: populate the collection and the bound caches.
  // Term 5 appears in exactly one document (doc "1"), so deleting that
  // document later drops df[5] to zero.
  const std::vector<Doc> baseline = {
      {0, 1, 2, 2}, {3, 5, 5, 1}, {2, 4, 0}, {1, 3, 3}, {4, 4, 2, 0}};
  std::vector<StableId> ids = live.Ingest(baseline);
  for (const Doc& d : baseline) final_docs.push_back(d);
  check_stage(8, {{1, 2}, {5}, {0, 3, 4}}, "baseline");

  // Stage 1 — delete the ONLY holder of term 5: df[5] 1 → 0. A cached
  // table treating term 5 as scoreable would disagree with the static
  // build where the term simply does not occur.
  const uint64_t v_baseline = live.Acquire()->df_version();
  ASSERT_TRUE(live.Delete(ids[1]));
  final_docs.erase(final_docs.begin() + 1);
  EXPECT_GT(live.Refresh()->df_version(), v_baseline)
      << "delete must bump the df-version";
  check_stage(8, {{1, 2}, {5}, {5, 3}, {0, 3, 4}}, "df-to-zero");

  // Stage 2 — grow the term space mid-stream and ingest docs carrying the
  // new ids: cached tables are too SHORT for the new vocabulary.
  const uint64_t v_delete = live.Acquire()->df_version();
  live.EnsureTermSpace(kFinalVocab);
  const std::vector<Doc> growth = {{9, 10, 1}, {11, 11, 2, 9}, {8, 0}};
  live.Ingest(growth);
  for (const Doc& d : growth) final_docs.push_back(d);
  EXPECT_GT(live.Refresh()->df_version(), v_delete)
      << "term-space growth must bump the df-version";
  check_stage(kFinalVocab, {{9, 11}, {1, 10}, {8, 2}, {0, 4, 11}}, "growth");

  // Stage 3 — merge: the doc set (and so every df) is untouched, the
  // version must NOT move, but the segment list the cached tables were
  // keyed to is swapped out wholesale. Identity keying makes the merge
  // output recompute on first use; results stay bit-identical.
  const uint64_t v_growth = live.Acquire()->df_version();
  ASSERT_GT(live.Acquire()->num_segments(), 1u);
  live.ForceMerge();
  std::shared_ptr<const IndexSnapshot> merged = live.Refresh();
  EXPECT_EQ(merged->df_version(), v_growth)
      << "a merge preserves the live doc set and must be df-neutral";
  EXPECT_EQ(merged->num_segments(), 1u);
  check_stage(kFinalVocab, {{9, 11}, {1, 10}, {5}, {0, 4, 11}}, "merged");
}

TEST(LiveIndexTest, DeleteSemantics) {
  corpus::Corpus tiny = toppriv::testing::TinyCorpus();
  std::vector<Doc> docs;
  for (const corpus::Document& d : tiny.documents()) docs.push_back(d.tokens);

  LiveIndexOptions options;
  options.max_writer_docs = 2;
  LiveIndex live(options);
  live.EnsureTermSpace(tiny.vocabulary_size());
  std::vector<StableId> ids = live.Ingest(docs);
  ASSERT_EQ(ids.size(), 4u);

  EXPECT_FALSE(live.Delete(99));        // never assigned
  EXPECT_TRUE(live.Delete(ids[1]));     // sealed segment
  EXPECT_FALSE(live.Delete(ids[1]));    // already tombstoned
  EXPECT_TRUE(live.Delete(ids[3]));     // still buffered: flush-then-delete
  live.ForceMerge();                    // compacts both tombstones away
  EXPECT_FALSE(live.Delete(ids[1]));    // gone entirely
  EXPECT_FALSE(live.Delete(ids[3]));

  std::shared_ptr<const IndexSnapshot> snapshot = live.Refresh();
  EXPECT_EQ(snapshot->num_documents(), 2u);
  // Survivors keep their stable identity through the merge.
  EXPECT_EQ(snapshot->ToStableId(0), ids[0]);
  EXPECT_EQ(snapshot->ToStableId(1), ids[2]);
}

TEST(LiveIndexTest, FullyTombstonedSegmentIsDropped) {
  corpus::Corpus tiny = toppriv::testing::TinyCorpus();
  std::vector<Doc> docs;
  for (const corpus::Document& d : tiny.documents()) docs.push_back(d.tokens);

  LiveIndexOptions options;
  options.max_writer_docs = 2;       // two docs per segment
  options.compact_deleted_ratio = 0.51;  // a half-dead segment survives...
  LiveIndex live(options);
  live.EnsureTermSpace(tiny.vocabulary_size());
  std::vector<StableId> ids = live.Ingest(docs);
  live.Refresh();
  ASSERT_EQ(live.num_segments(), 2u);
  // ...but a fully-dead one compacts to nothing.
  EXPECT_TRUE(live.Delete(ids[0]));
  EXPECT_TRUE(live.Delete(ids[1]));
  EXPECT_EQ(live.num_segments(), 1u);
  std::vector<Doc> final_docs = {docs[2], docs[3]};
  ExpectLiveMatchesStatic(live, final_docs, tiny.vocabulary_size(),
                          {{0}, {1}, {2}, {3}, {0, 2}}, 4, "drop-dead-segment");
}

// ---------------------------------------------------- snapshot isolation --

TEST(LiveIndexTest, SnapshotsAreIsolatedFromChurn) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  LiveIndex live;
  live.EnsureTermSpace(vocab);
  std::vector<StableId> ids =
      live.Ingest(std::vector<Doc>(docs.begin(), docs.begin() + 300));
  std::shared_ptr<const IndexSnapshot> pinned = live.Refresh();

  corpus::Corpus expected =
      CorpusFromDocs(vocab, std::vector<Doc>(docs.begin(), docs.begin() + 300));
  LiveSearchEngine engine(expected, live, search::MakeBm25Scorer());
  const std::vector<Doc> queries = WorldQueries(8);
  std::vector<std::vector<ScoredDoc>> before;
  for (const Doc& q : queries) before.push_back(engine.EvaluateOn(*pinned, q, 10));
  IndexStats stats_before = pinned->ComputeStats();

  // Churn: more ingest, deletes, merges, refreshes.
  live.Ingest(std::vector<Doc>(docs.begin() + 300, docs.end()));
  for (size_t x : {0u, 5u, 17u}) ASSERT_TRUE(live.Delete(ids[x]));
  live.Refresh();
  live.ForceMerge();

  // The pinned snapshot must not have moved a bit.
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectBitIdentical(engine.EvaluateOn(*pinned, queries[i], 10), before[i],
                       "pinned-snapshot");
  }
  ExpectStatsEqual(pinned->ComputeStats(), stats_before);
  EXPECT_EQ(pinned->num_documents(), 300u);
  // While the current snapshot sees everything.
  EXPECT_EQ(live.Acquire()->num_documents(), docs.size() - 3);
}

// ----------------------------------------------------------- properties --

// Randomized delete/reinsert/merge schedules across 16 RNG streams: a
// reference model (the live docs in stable order) is maintained in
// parallel, and the live index must match a static build of the model at
// every checkpoint.
TEST(LiveIndexPropertyTest, RandomSchedulesAcross16Streams) {
  const size_t kVocab = 60;
  for (uint64_t stream = 0; stream < 16; ++stream) {
    SCOPED_TRACE(::testing::Message() << "stream=" << stream);
    util::Rng rng = util::Rng(977).Fork(stream);
    LiveIndexOptions options;
    options.max_writer_docs = 8;
    options.merge_factor = 2;  // constant merge churn
    LiveIndex live(options);
    live.EnsureTermSpace(kVocab);

    // Model: live (stable id, tokens) pairs in stable order.
    std::vector<std::pair<StableId, Doc>> model;
    std::vector<Doc> graveyard;  // content available for reinsertion

    auto random_doc = [&]() {
      Doc d;
      const size_t len = 2 + rng.UniformInt(uint64_t{10});
      for (size_t i = 0; i < len; ++i) {
        d.push_back(static_cast<text::TermId>(rng.UniformInt(uint64_t{kVocab})));
      }
      return d;
    };

    for (int op = 0; op < 140; ++op) {
      const uint64_t kind = rng.UniformInt(uint64_t{10});
      if (kind < 5 || model.empty()) {
        // Ingest a fresh batch.
        std::vector<Doc> batch;
        const size_t n = 1 + rng.UniformInt(uint64_t{6});
        for (size_t i = 0; i < n; ++i) batch.push_back(random_doc());
        std::vector<StableId> ids = live.Ingest(batch);
        for (size_t i = 0; i < batch.size(); ++i) {
          model.emplace_back(ids[i], batch[i]);
        }
      } else if (kind < 8) {
        // Delete a random live doc.
        const size_t pick = rng.UniformInt(uint64_t{model.size()});
        ASSERT_TRUE(live.Delete(model[pick].first));
        graveyard.push_back(model[pick].second);
        model.erase(model.begin() + pick);
      } else if (kind == 8 && !graveyard.empty()) {
        // Reinsert previously deleted content (fresh stable id, goes to
        // the end — the delete-then-reinsert pattern).
        const size_t pick = rng.UniformInt(uint64_t{graveyard.size()});
        Doc tokens = graveyard[pick];
        graveyard.erase(graveyard.begin() + pick);
        std::vector<StableId> ids = live.Ingest({tokens});
        model.emplace_back(ids[0], tokens);
      } else {
        if (rng.UniformInt(uint64_t{4}) == 0) {
          live.ForceMerge();
        } else {
          live.Refresh();
        }
      }
    }

    // Checkpoint: full parity against a static build of the model.
    std::vector<Doc> final_docs;
    for (const auto& [sid, tokens] : model) final_docs.push_back(tokens);
    std::vector<Doc> queries;
    for (int q = 0; q < 12; ++q) {
      Doc query;
      const size_t len = 1 + rng.UniformInt(uint64_t{4});
      for (size_t i = 0; i < len; ++i) {
        // Draw past the vocabulary now and then to hit empty lists.
        query.push_back(static_cast<text::TermId>(
            rng.UniformInt(uint64_t{kVocab + (q % 2 ? 10 : 0)})));
      }
      queries.push_back(query);
    }
    ExpectLiveMatchesStatic(live, final_docs, kVocab, queries, 7, "property");
  }
}

// -------------------------------------------------------- serialization --

// A small live index with multiple segments and a live tombstone, the
// baseline for the hostile-mutation tests.
std::string SmallLiveBlob() {
  corpus::Corpus tiny = toppriv::testing::TinyCorpus();
  LiveIndexOptions options;
  options.max_writer_docs = 2;
  options.compact_deleted_ratio = 1.1;  // keep tombstones in the manifest
  LiveIndex live(options);
  live.EnsureTermSpace(tiny.vocabulary_size());
  std::vector<Doc> docs;
  for (const corpus::Document& d : tiny.documents()) docs.push_back(d.tokens);
  std::vector<StableId> ids = live.Ingest(docs);
  live.Delete(ids[2]);
  return live.Serialize();
}

TEST(LiveIndexSerializationTest, RoundTripPreservesEverything) {
  std::string bytes = SmallLiveBlob();
  auto restored = LiveIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Byte-stable: re-serializing reproduces the identical blob.
  EXPECT_EQ((*restored)->Serialize(), bytes);

  corpus::Corpus tiny = toppriv::testing::TinyCorpus();
  std::vector<Doc> final_docs;
  for (size_t d = 0; d < tiny.num_documents(); ++d) {
    if (d != 2) final_docs.push_back(tiny.documents()[d].tokens);
  }
  ExpectLiveMatchesStatic(**restored, final_docs, tiny.vocabulary_size(),
                          {{0}, {1}, {2}, {3}, {0, 1, 2, 3}}, 4, "roundtrip");
  // The restored index keeps ingesting where the original left off.
  std::vector<StableId> ids = (*restored)->Ingest({{0, 2}});
  EXPECT_EQ(ids[0], 4u);
}

TEST(LiveIndexSerializationTest, FormatTagVersioning) {
  // Serialize leads with a format-version tag whose value can never
  // collide with a legacy blob's leading num_terms field.
  const std::string tagged = SmallLiveBlob();
  util::BinaryReader reader(tagged);
  uint64_t tag = 0;
  ASSERT_TRUE(reader.ReadVarint(&tag).ok());
  EXPECT_EQ(tag, (uint64_t{1} << 32) | 1);

  // A pre-versioning blob (no tag) still decodes, to the identical index:
  // re-serializing it reproduces today's tagged bytes exactly.
  const std::string legacy = tagged.substr(reader.position());
  auto from_legacy = LiveIndex::Deserialize(legacy);
  ASSERT_TRUE(from_legacy.ok()) << from_legacy.status().ToString();
  EXPECT_EQ((*from_legacy)->Serialize(), tagged);

  // A tag from a future format version is refused outright — never
  // misparsed as data.
  std::string future;
  util::AppendVarint((uint64_t{2} << 32) | 1, &future);
  future += legacy;
  auto result = LiveIndex::Deserialize(future);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexSerializationTest, TruncatedBlobsNeverCrash) {
  std::string bytes = SmallLiveBlob();
  ASSERT_TRUE(LiveIndex::Deserialize(bytes).ok());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = LiveIndex::Deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut " << cut;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss)
        << "cut " << cut;
  }
}

TEST(LiveIndexSerializationTest, TrailingBytesRejected) {
  std::string bytes = SmallLiveBlob() + "x";
  auto result = LiveIndex::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexSerializationTest, ByteFlipSweepNeverCrashes) {
  std::string bytes = SmallLiveBlob();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    LiveIndex::Deserialize(mutated);  // must not crash or OOM
  }
  SUCCEED();
}

// Hand-built hostile manifests. Layout mirrors LiveIndex::Serialize: a
// two-doc segment of TinyCorpus docs {0,1} re-framed with attacker-chosen
// manifest fields.
struct HostileParts {
  uint64_t num_terms = 4;
  uint64_t next_stable = 4;
  std::vector<uint64_t> seg1_stable_deltas = {0, 1};  // ids {0, 1}
  uint64_t seg1_begin = 0;
  std::vector<uint64_t> seg2_stable_deltas = {0, 1};  // ids {2, 3}
  uint64_t seg2_begin = 2;
  std::vector<uint64_t> tombstone_deltas;  // segment 2's deleted locals
};

std::string BuildHostileBlob(const HostileParts& parts) {
  corpus::Corpus tiny = toppriv::testing::TinyCorpus();
  // Two honest per-segment indexes: docs {0,1} and {2,3}.
  InvertedIndex seg1 = InvertedIndex::BuildRange(tiny, 0, 2);
  InvertedIndex seg2 = InvertedIndex::BuildRange(tiny, 2, 4);
  util::BinaryWriter w;
  w.WriteVarint(parts.num_terms);
  w.WriteVarint(parts.next_stable);
  w.WriteVarint(2);  // segments
  w.WriteVarint(parts.seg1_begin);
  w.WriteVarint(parts.seg1_stable_deltas.size());
  for (uint64_t d : parts.seg1_stable_deltas) w.WriteVarint(d);
  w.WriteVarint(0);  // no tombstones in segment 1
  w.WriteString(seg1.Serialize());
  w.WriteVarint(parts.seg2_begin);
  w.WriteVarint(parts.seg2_stable_deltas.size());
  for (uint64_t d : parts.seg2_stable_deltas) w.WriteVarint(d);
  w.WriteVarint(parts.tombstone_deltas.size());
  for (uint64_t d : parts.tombstone_deltas) w.WriteVarint(d);
  w.WriteString(seg2.Serialize());
  return w.data();
}

TEST(LiveIndexHostileTest, HonestHandBuiltBlobLoads) {
  ASSERT_TRUE(LiveIndex::Deserialize(BuildHostileBlob(HostileParts())).ok());
}

TEST(LiveIndexHostileTest, OverlappingSegmentRangesRejected) {
  HostileParts parts;
  parts.seg2_begin = 1;  // overlaps segment 1's ids {0, 1}
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, OutOfOrderSegmentRangesRejected) {
  HostileParts parts;
  parts.seg1_begin = 2;
  parts.seg2_begin = 0;  // second segment behind the first
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, NonAscendingStableIdsRejected) {
  HostileParts parts;
  parts.seg2_stable_deltas = {0, 0};  // duplicate stable id
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, StableIdBeyondDeclaredSpaceRejected) {
  HostileParts parts;
  parts.seg2_stable_deltas = {0, 7};  // id 9 >= next_stable 4
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, StaleTombstoneOutOfRangeRejected) {
  HostileParts parts;
  parts.tombstone_deltas = {5};  // local id 5 in a two-doc segment
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, StaleTombstoneDuplicateRejected) {
  HostileParts parts;
  parts.tombstone_deltas = {1, 0};  // local 1 twice (zero delta)
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, MoreTombstonesThanDocsRejected) {
  HostileParts parts;
  parts.tombstone_deltas = {0, 1, 1};  // three deletes, two docs
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, SegmentTermSpaceExceedingManifestRejected) {
  HostileParts parts;
  parts.num_terms = 2;  // segments genuinely hold 4 terms
  auto result = LiveIndex::Deserialize(BuildHostileBlob(parts));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, ImplausibleTermSpaceRejectedBeforeAlloc) {
  util::BinaryWriter w;
  w.WriteVarint(uint64_t{1} << 40);  // df table would be terabytes
  w.WriteVarint(0);
  w.WriteVarint(0);
  auto result = LiveIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(LiveIndexHostileTest, ZeroDocSegmentRejected) {
  util::BinaryWriter w;
  w.WriteVarint(4);  // terms
  w.WriteVarint(4);  // next stable
  w.WriteVarint(1);  // one segment
  w.WriteVarint(0);  // begin
  w.WriteVarint(0);  // zero docs
  auto result = LiveIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

// ----------------------------------------------------------- edge cases --

TEST(LiveIndexTest, EmptyBatchIngestIsInvisible) {
  const std::vector<Doc> docs = {{0, 1}, {1, 2, 3}, {0, 3}};
  LiveIndexOptions options;
  options.max_writer_docs = 2;
  LiveIndex live(options);
  live.EnsureTermSpace(4);
  EXPECT_TRUE(live.Ingest({}).empty());  // empty batch on an empty index
  live.Ingest({docs[0]});
  EXPECT_TRUE(live.Ingest({}).empty());  // empty batch mid-stream
  live.Ingest({docs[1], docs[2]});
  EXPECT_TRUE(live.Ingest({}).empty());  // empty batch after an auto-seal
  EXPECT_EQ(live.next_stable_id(), 3u);  // no phantom ids were assigned
  ExpectLiveMatchesStatic(live, docs, 4, {{0}, {1}, {2}, {3}, {0, 1, 2, 3}}, 3,
                          "empty-batches");
}

TEST(LiveIndexTest, DeleteOfNeverIngestedIdIsRefusedWithoutDamage) {
  const std::vector<Doc> docs = {{0, 1}, {1, 2}};
  LiveIndex live;
  live.EnsureTermSpace(3);
  EXPECT_FALSE(live.Delete(0));  // nothing ingested yet
  std::vector<StableId> ids = live.Ingest(docs);
  EXPECT_FALSE(live.Delete(ids.back() + 1));    // one past the assigned space
  EXPECT_FALSE(live.Delete(ids.back() + 100));  // far past it
  ExpectLiveMatchesStatic(live, docs, 3, {{0}, {1}, {2}, {0, 1, 2}}, 2,
                          "bogus-deletes");
}

TEST(LiveIndexTest, FlushOnEmptyWriterIsIdempotent) {
  const std::vector<Doc> docs = {{0, 1, 2}, {2, 0}};
  LiveIndex live;
  live.EnsureTermSpace(3);
  live.Flush();  // nothing buffered: must not create a segment
  EXPECT_EQ(live.num_segments(), 0u);
  live.Ingest(docs);
  live.Flush();
  const size_t sealed = live.num_segments();
  live.Flush();  // writer already empty: segmentation must not change
  live.Flush();
  EXPECT_EQ(live.num_segments(), sealed);
  ExpectLiveMatchesStatic(live, docs, 3, {{0}, {1}, {2}, {0, 1, 2}}, 2,
                          "redundant-flushes");
}

// ---------------------------------------------------- snapshot lifetime --

// A snapshot is a self-contained refcounted view: dropping the LiveIndex
// that published it must leave every byte the snapshot points at alive.
// The ASan CI job turns any violation into a use-after-free report.
TEST(LiveIndexTest, SnapshotOutlivesItsLiveIndex) {
  const std::vector<Doc> docs = {{0, 1, 2}, {1, 2, 3}, {0, 3}, {2, 2, 1}};
  corpus::Corpus corpus_ref = CorpusFromDocs(4, docs);
  std::shared_ptr<const IndexSnapshot> snapshot;
  std::vector<ScoredDoc> before;
  IndexStats stats_before;
  auto live = std::make_unique<LiveIndex>();
  live->EnsureTermSpace(4);
  std::vector<StableId> ids = live->Ingest(docs);
  live->Delete(ids[1]);
  snapshot = live->Refresh();
  LiveSearchEngine engine(corpus_ref, *live, search::MakeBm25Scorer());
  before = engine.EvaluateOn(*snapshot, {0, 1, 2, 3}, 4);
  stats_before = snapshot->ComputeStats();
  ASSERT_FALSE(before.empty());

  live.reset();  // the index dies; the snapshot must not care

  EXPECT_EQ(snapshot->num_documents(), 3u);
  ExpectStatsEqual(snapshot->ComputeStats(), stats_before);
  std::vector<ScoredDoc> after = engine.EvaluateOn(*snapshot, {0, 1, 2, 3}, 4);
  ExpectBitIdentical(after, before, "snapshot-outlives-index");
  for (const ScoredDoc& sd : after) {
    EXPECT_LT(snapshot->ToStableId(sd.doc), 4u);
    EXPECT_GT(snapshot->DocLength(sd.doc), 0u);
  }
}

// ------------------------------------------------------- mixed workload --

// Concurrent ingest + delete + merge + query: the race surface the
// ThreadSanitizer job exists for. Readers hammer the engine while a writer
// streams the corpus in and tombstones every 40th doc; the final state
// must equal the static build of the surviving docs.
TEST(LiveIndexConcurrencyTest, ConcurrentIngestQueryMergeIsSafeAndConverges) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  util::ThreadPool merge_pool(2);
  LiveIndexOptions options;
  options.max_writer_docs = 32;
  options.merge_pool = &merge_pool;
  LiveIndex live(options);
  live.EnsureTermSpace(vocab);

  corpus::Corpus corpus_ref = CorpusFromDocs(vocab, docs);
  LiveSearchEngine engine(corpus_ref, live, search::MakeBm25Scorer());
  const std::vector<Doc> queries = WorldQueries(12);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<uint64_t> sink{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      uint64_t local = 0;
      size_t qi = static_cast<size_t>(r);
      while (!done.load(std::memory_order_relaxed)) {
        std::vector<ScoredDoc> results =
            engine.Evaluate(queries[qi % queries.size()], 10);
        local += results.size();
        for (const ScoredDoc& sd : results) local += sd.doc;
        ++qi;
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }

  std::vector<Doc> final_docs;
  std::vector<StableId> deleted;
  for (size_t begin = 0; begin < docs.size(); begin += 25) {
    const size_t end = std::min(docs.size(), begin + 25);
    std::vector<StableId> ids =
        live.Ingest(std::vector<Doc>(docs.begin() + begin, docs.begin() + end));
    for (size_t i = 0; i < ids.size(); ++i) {
      const size_t d = begin + i;
      if (d % 40 == 17) {
        ASSERT_TRUE(live.Delete(ids[i]));
        deleted.push_back(ids[i]);
      } else {
        final_docs.push_back(docs[d]);
      }
    }
    live.Refresh();
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  live.WaitForMerges();
  EXPECT_GT(sink.load(), 0u);

  ExpectLiveMatchesStatic(live, final_docs, vocab, WorldQueries(10), 10,
                          "concurrent-converged");
}

// Regression for the snapshot-publication refactor: Acquire() takes only
// the snapshot pointer lock, so readers must keep making progress while
// Refresh() runs its O(segments × terms) aggregation off the writer mutex.
// Readers hammer Acquire in a tight loop and assert the generations they
// observe never move backwards — the publish-race invariant — while a
// writer publishes after every tiny batch to maximize rebuild pressure.
// The TSan job turns any mutex-discipline slip in this path into a report.
TEST(LiveIndexConcurrencyTest, AcquireDuringRefreshMakesProgressAndIsOrdered) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  util::ThreadPool merge_pool(2);
  LiveIndexOptions options;
  options.max_writer_docs = 8;  // many segments → expensive publishes
  options.merge_factor = 2;
  options.merge_pool = &merge_pool;
  LiveIndex live(options);
  live.EnsureTermSpace(vocab);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> acquires{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last_generation = 0;
      uint64_t local = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::shared_ptr<const IndexSnapshot> snap = live.Acquire();
        // Published snapshots are monotone: a reader can never observe
        // the generation clock running backwards, no matter which of two
        // racing publishers wins.
        EXPECT_GE(snap->generation(), last_generation);
        last_generation = snap->generation();
        ++local;
      }
      acquires.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (size_t begin = 0; begin < docs.size(); begin += 4) {
    const size_t end = std::min(docs.size(), begin + 4);
    live.Ingest(std::vector<Doc>(docs.begin() + begin, docs.begin() + end));
    live.Refresh();  // publish per tiny batch: maximal rebuild churn
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  live.WaitForMerges();

  // Rough progress floor: with Acquire reduced to a pointer copy, readers
  // lap the writer's publishes by orders of magnitude; a deadlock or a
  // reader serialized behind every rebuild would land far below this.
  EXPECT_GT(acquires.load(), docs.size());
  ExpectLiveMatchesStatic(live, docs, vocab, WorldQueries(10), 10,
                          "acquire-hammer");
}

// Regression for the set_eval_strategy race: the setter used to write the
// strategy field unguarded while concurrent Evaluate calls read it, an
// undiagnosed data race (and on the monolithic engine the lazy MaxScore
// bound build doubled as an unguarded publication). Both engines now keep
// the strategy behind a mutex and each Evaluate runs under the strategy it
// snapshotted. Flippers toggle TAAT↔MaxScore as fast as they can while
// readers evaluate; the TSan job turns any residual race into a report,
// and since both strategies are bit-identical by the parity contract,
// every result must match the reference no matter when the flip lands.
TEST(LiveIndexConcurrencyTest, StrategyFlipsDuringEvaluationAreRaceFree) {
  const std::vector<Doc> docs = WorldDocs();
  const size_t vocab = World().corpus.vocabulary_size();
  corpus::Corpus corpus_ref = CorpusFromDocs(vocab, docs);
  InvertedIndex static_index = InvertedIndex::Build(corpus_ref);
  search::SearchEngine mono(corpus_ref, static_index,
                            search::MakeBm25Scorer(),
                            search::EvalStrategy::kTAAT);

  LiveIndex live;
  live.EnsureTermSpace(vocab);
  live.Ingest(docs);
  live.Refresh();
  LiveSearchEngine live_engine(corpus_ref, live, search::MakeBm25Scorer(),
                               search::EvalStrategy::kTAAT, &EvalPool());

  const std::vector<Doc> queries = WorldQueries(8);
  std::vector<std::vector<ScoredDoc>> want;
  for (const Doc& q : queries) want.push_back(mono.Evaluate(q, 10));

  std::atomic<bool> done{false};
  std::thread flip_mono([&] {
    bool taat = false;
    while (!done.load(std::memory_order_relaxed)) {
      mono.set_eval_strategy(taat ? search::EvalStrategy::kTAAT
                                  : search::EvalStrategy::kMaxScore);
      taat = !taat;
    }
  });
  std::thread flip_live([&] {
    bool taat = false;
    while (!done.load(std::memory_order_relaxed)) {
      live_engine.set_eval_strategy(taat ? search::EvalStrategy::kTAAT
                                         : search::EvalStrategy::kMaxScore);
      taat = !taat;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      for (size_t iter = 0; iter < 60; ++iter) {
        const size_t qi = (static_cast<size_t>(r) + iter) % queries.size();
        ExpectBitIdentical(mono.Evaluate(queries[qi], 10), want[qi],
                           "mono under strategy flips");
        ExpectBitIdentical(live_engine.Evaluate(queries[qi], 10), want[qi],
                           "live under strategy flips");
      }
    });
  }
  for (std::thread& t : readers) t.join();
  done.store(true);
  flip_mono.join();
  flip_live.join();
}

}  // namespace
}  // namespace toppriv
