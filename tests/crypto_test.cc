// Tests for the commutative cipher and the oblivious document retrieval
// protocol (the paper's excluded Step 6/7 threat, covered via [15]).
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/commutative.h"
#include "crypto/modmath.h"
#include "crypto/oblivious_retrieval.h"
#include "tests/test_helpers.h"

namespace toppriv::crypto {
namespace {

// ---------------------------------------------------------------- ModMath --

TEST(ModMathTest, MulModNoOverflow) {
  uint64_t big = 0xfffffffffffffff0ull;
  EXPECT_EQ(MulMod(big, big, 97), (static_cast<unsigned __int128>(big) * big) % 97);
  EXPECT_EQ(MulMod(7, 8, 100), 56u);
}

TEST(ModMathTest, PowModKnownValues) {
  EXPECT_EQ(PowMod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(PowMod(5, 0, 13), 1u);
  EXPECT_EQ(PowMod(3, 100, 7), PowMod(3, 100 % 6, 7));  // Fermat
}

TEST(ModMathTest, GcdAndInverse) {
  EXPECT_EQ(Gcd(48, 36), 12u);
  EXPECT_EQ(Gcd(17, 5), 1u);
  uint64_t m = 1000000007;
  for (uint64_t a : {2ull, 3ull, 999999999ull, 123456789ull}) {
    uint64_t inv = InvMod(a, m);
    EXPECT_EQ(MulMod(a, inv, m), 1u) << a;
  }
}

TEST(ModMathTest, MillerRabinKnownPrimes) {
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_TRUE(IsPrime(1000000007));
  EXPECT_TRUE(IsPrime(2147483647));            // 2^31 - 1
  EXPECT_TRUE(IsPrime(2305843009213693951ull));  // 2^61 - 1
  EXPECT_FALSE(IsPrime(1));
  EXPECT_FALSE(IsPrime(561));        // Carmichael
  EXPECT_FALSE(IsPrime(1000000008));
  EXPECT_FALSE(IsPrime(3215031751ull));  // strong pseudoprime to 2,3,5,7
}

TEST(ModMathTest, SafePrimeIsSafe) {
  uint64_t p = SafePrime();
  EXPECT_TRUE(IsPrime(p));
  EXPECT_TRUE(IsPrime((p - 1) / 2));
  EXPECT_GT(p, 1ull << 60);
}

// ----------------------------------------------------------- Commutative --

TEST(CommutativeCipherTest, EncryptDecryptRoundtrip) {
  util::Rng rng(1);
  CommutativeCipher cipher(&rng);
  for (uint64_t m : std::vector<uint64_t>{1, 2, 424242, SafePrime() - 1}) {
    EXPECT_EQ(cipher.Decrypt(cipher.Encrypt(m)), m) << m;
  }
}

TEST(CommutativeCipherTest, CommutativityHolds) {
  util::Rng rng(2);
  CommutativeCipher a(&rng), b(&rng);
  for (uint64_t m : {7ull, 123456789ull, 999999999999ull}) {
    EXPECT_EQ(a.Encrypt(b.Encrypt(m)), b.Encrypt(a.Encrypt(m))) << m;
    // Either party can strip its own layer regardless of order.
    EXPECT_EQ(a.Decrypt(b.Decrypt(a.Encrypt(b.Encrypt(m)))), m) << m;
  }
}

TEST(CommutativeCipherTest, DifferentKeysDifferentCiphertexts) {
  util::Rng rng(3);
  CommutativeCipher a(&rng), b(&rng);
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.Encrypt(42), b.Encrypt(42));
}

TEST(CommutativeCipherTest, ExplicitKeyConstructor) {
  // 65537 is coprime to p-1 for any odd p (it is prime and p-1 is even but
  // 65537 is odd); verify it works.
  CommutativeCipher cipher(65537);
  EXPECT_EQ(cipher.Decrypt(cipher.Encrypt(31337)), 31337u);
}

// ----------------------------------------------------------- StreamCipher --

TEST(StreamCipherTest, RoundtripAndKeySensitivity) {
  std::string plaintext = "apache helicopter procurement memo";
  std::string ciphertext = StreamCipher(plaintext, 0xdeadbeef);
  EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(StreamCipher(ciphertext, 0xdeadbeef), plaintext);
  EXPECT_NE(StreamCipher(ciphertext, 0xdeadbee0), plaintext);
  EXPECT_EQ(StreamCipher("", 1), "");
}

// ---------------------------------------------------- ObliviousRetrieval --

TEST(ObliviousRetrievalTest, ClientGetsChosenDocument) {
  const auto& world = toppriv::testing::World();
  ObliviousDocServer server(world.corpus, util::Rng(5));
  ObliviousDocClient client(util::Rng(6));

  std::vector<corpus::DocId> results = {3, 17, 42, 99, 123};
  for (size_t choice = 0; choice < results.size(); ++choice) {
    auto body = client.Retrieve(&server, results, choice);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body.value(),
              RenderDocumentBody(world.corpus, results[choice]));
  }
}

TEST(ObliviousRetrievalTest, EncryptedBodiesAreUnreadable) {
  const auto& world = toppriv::testing::World();
  ObliviousDocServer server(world.corpus, util::Rng(7));
  std::string plain = RenderDocumentBody(world.corpus, 0);
  EXPECT_NE(server.EncryptedBody(0), plain);
}

TEST(ObliviousRetrievalTest, ServerObservationIndependentOfChoice) {
  // The value the server sees in StripServerLayer is the client-blinded
  // group element; with fresh client keys, retrieving different positions
  // is indistinguishable. We check the weaker, testable property: the
  // observed values never equal any blinded key the server handed out
  // (i.e. the client layer actually blinds), and repeated retrievals of
  // the SAME position yield different observations.
  const auto& world = toppriv::testing::World();
  ObliviousDocServer server(world.corpus, util::Rng(8));
  std::vector<corpus::DocId> results = {1, 2, 3, 4};

  util::Rng client_seed(9);
  std::set<uint64_t> observations;
  for (int round = 0; round < 5; ++round) {
    ObliviousDocClient client(client_seed.Fork(round));
    auto body = client.Retrieve(&server, results, 2);  // same choice
    ASSERT_TRUE(body.ok());
  }
  for (uint64_t v : server.observed_values()) {
    EXPECT_TRUE(observations.insert(v).second)
        << "repeated observation betrays the choice";
  }
}

TEST(ObliviousRetrievalTest, BadInputsAreRejected) {
  const auto& world = toppriv::testing::World();
  ObliviousDocServer server(world.corpus, util::Rng(10));
  ObliviousDocClient client(util::Rng(11));
  std::vector<corpus::DocId> results = {1, 2};
  EXPECT_FALSE(client.Retrieve(&server, results, 5).ok());
  EXPECT_FALSE(server.StripServerLayer(999, 12345).ok());
}

}  // namespace
}  // namespace toppriv::crypto
