// Deterministic chaos harness — scripted fault schedules composed across
// the failure-domain layers.
//
// Three fault planes, all deterministic (no wall clock, no real sleeps):
//
//  * storage:  util::FaultInjectingFileSystem fails/short-writes the n-th
//    filesystem op, degrading the LiveIndex (WAL self-healing under test);
//  * query:    search::FaultInjectingEngine fails/delays/hangs the n-th
//    evaluation, with virtual time on a shared util::ManualClock so a
//    "stuck shard" is a modelable event rather than a real hang;
//  * time:     util::Deadline built on the same ManualClock, so expiry is
//    a pure function of the fault schedule.
//
// The invariants asserted everywhere:
//  1. an ACCEPTED query returns results bit-identical to the no-fault run
//     (the deadline/fault machinery may reject work, never perturb it);
//  2. a REJECTED call carries a typed status (kDeadlineExceeded,
//     kUnavailable, kResourceExhausted) — no crashes, no empty-success
//     lies;
//  3. a degraded index refuses mutations with kUnavailable, keeps serving
//     reads, and Repair() returns it to Healthy with nothing acknowledged
//     lost.
//
// ChaosSmoke.* runs a FIXED schedule and compares an order-sensitive
// digest against a reference computed from the unwrapped engine — the
// Release CI step executes exactly that filter and fails on divergence.
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "index/live/live_index.h"
#include "index/sharded_index.h"
#include "search/engine.h"
#include "search/fault_injecting_engine.h"
#include "search/live_engine.h"
#include "search/scorer.h"
#include "search/sharded_engine.h"
#include "util/deadline.h"
#include "util/filesystem.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace toppriv {
namespace {

using index::InvertedIndex;
using index::ShardedIndex;
using index::live::DurabilityPolicy;
using index::live::LiveIndex;
using index::live::LiveIndexOptions;
using search::EngineFault;
using search::FaultInjectingEngine;
using search::ScoredDoc;
using util::Deadline;
using util::FaultInjectingFileSystem;
using util::ManualClock;
using FaultMode = util::FaultInjectingFileSystem::FaultMode;
using Doc = std::vector<text::TermId>;

constexpr char kDir[] = "db";

// ----------------------------------------------------------- tiny world --

Doc SynthDoc(util::Rng& rng, size_t vocab, size_t min_len = 3,
             size_t max_len = 9) {
  const size_t len = min_len + rng.UniformInt(uint64_t{max_len - min_len});
  Doc d;
  d.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    d.push_back(static_cast<text::TermId>(rng.UniformInt(uint64_t{vocab})));
  }
  return d;
}

corpus::Corpus SynthCorpus(size_t vocab, size_t num_docs, uint64_t seed) {
  util::Rng rng(seed);
  corpus::Corpus c;
  text::Vocabulary& v = c.mutable_vocabulary();
  for (size_t t = 0; t < vocab; ++t) v.AddTerm("t" + std::to_string(t));
  for (size_t d = 0; d < num_docs; ++d) {
    c.AddDocument("d" + std::to_string(d), SynthDoc(rng, vocab));
  }
  return c;
}

std::vector<Doc> SynthQueries(size_t vocab, size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Doc> queries;
  for (size_t q = 0; q < n; ++q) queries.push_back(SynthDoc(rng, vocab, 1, 4));
  return queries;
}

void ExpectBitIdentical(const std::vector<ScoredDoc>& got,
                        const std::vector<ScoredDoc>& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << context << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

uint64_t MixResults(uint64_t h, const std::vector<ScoredDoc>& docs) {
  for (const ScoredDoc& sd : docs) {
    h = util::Fnv1aStep(h, sd.doc);
    uint64_t bits;
    std::memcpy(&bits, &sd.score, sizeof(bits));
    h = util::Fnv1aStep(h, bits);
  }
  return h;
}

/// Current value of a process-wide counter (0 if never registered). The
/// chaos scenarios assert counter DELTAS across a fault schedule, so other
/// suites' traffic in the same binary cannot interfere.
uint64_t CounterNow(const std::string& name) {
  for (const auto& c : util::MetricsRegistry::Default().Snap().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// ------------------------------------------------- query-plane schedules --

TEST(ChaosEngineTest, AcceptedCallsAreBitIdenticalRejectionsAreTyped) {
  const size_t vocab = 16;
  corpus::Corpus corpus = SynthCorpus(vocab, 24, 0xBEEF);
  InvertedIndex index = InvertedIndex::Build(corpus);
  search::SearchEngine inner(corpus, index, search::MakeBm25Scorer(),
                             search::EvalStrategy::kMaxScore);
  ManualClock clock;
  FaultInjectingEngine chaos(&inner, &clock);
  const std::vector<Doc> queries = SynthQueries(vocab, 8, 0xF00D);
  const uint64_t faults_before = CounterNow("chaos.faults_injected");
  const uint64_t expired_before = CounterNow("search.deadline_exceeded");

  // Schedule: errors, a hang (expires any finite deadline), and a delay
  // short enough to make the deadline anyway.
  chaos.ScheduleFault({/*at_call=*/2, EngineFault::Kind::kError, 0});
  chaos.ScheduleFault({/*at_call=*/5, EngineFault::Kind::kHang, 0});
  EngineFault delay;
  delay.at_call = 9;
  delay.kind = EngineFault::Kind::kDelay;
  delay.delay_nanos = 2'000'000;  // 2ms against a 50ms deadline
  chaos.ScheduleFault(delay);

  size_t accepted = 0, unavailable = 0, expired = 0;
  for (size_t call = 0; call < 16; ++call) {
    const Doc& q = queries[call % queries.size()];
    Deadline deadline = Deadline::After(0.05, &clock);
    search::QueryOptions options;
    options.deadline = &deadline;
    auto result = chaos.EvaluateWithOptions(q, 5, options);
    const std::string context = "call=" + std::to_string(call);
    if (result.ok()) {
      ++accepted;
      // Invariant 1: the wrapper (and a survivable delay) never perturbs
      // an accepted query's results.
      ExpectBitIdentical(*result, inner.Evaluate(q, 5), context);
    } else if (result.status().code() == util::StatusCode::kUnavailable) {
      ++unavailable;
      EXPECT_EQ(call, 2u) << context;
    } else {
      ASSERT_EQ(result.status().code(),
                util::StatusCode::kDeadlineExceeded) << context;
      ++expired;
      EXPECT_EQ(call, 5u) << context;
    }
  }
  EXPECT_EQ(accepted, 14u);
  EXPECT_EQ(unavailable, 1u);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(chaos.calls(), 16u);
  EXPECT_EQ(chaos.faults_fired(), 3u);
#ifdef TOPPRIV_METRICS
  // The observability layer saw the same story the statuses told: every
  // fired fault counted, and the hang's expiry recorded as a
  // deadline-exceeded rejection at the engine layer.
  EXPECT_EQ(CounterNow("chaos.faults_injected") - faults_before, 3u);
  EXPECT_EQ(CounterNow("search.deadline_exceeded") - expired_before, 1u);
#else
  (void)faults_before;
  (void)expired_before;
#endif

  // A hang under an INFINITE deadline still completes bit-identically —
  // the wrapper models lost time, never lost work.
  chaos.ScheduleFault({/*at_call=*/16, EngineFault::Kind::kHang, 0});
  auto result = chaos.EvaluateWithOptions(queries[0], 5, search::QueryOptions());
  ASSERT_TRUE(result.ok());
  ExpectBitIdentical(*result, inner.Evaluate(queries[0], 5), "infinite");
}

TEST(ChaosEngineTest, ExpiredDeadlineRejectsAcrossEveryEngineShape) {
  const size_t vocab = 16;
  corpus::Corpus corpus = SynthCorpus(vocab, 24, 0xBEEF);
  InvertedIndex index = InvertedIndex::Build(corpus);
  ShardedIndex sharded = ShardedIndex::Build(corpus, 3);
  LiveIndex live{LiveIndexOptions()};
  live.EnsureTermSpace(corpus.vocabulary().size());
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    live.Ingest({corpus.document(d).tokens});
  }
  live.Refresh();

  search::SearchEngine mono(corpus, index, search::MakeBm25Scorer());
  search::ShardedSearchEngine fanout(corpus, sharded,
                                     search::MakeBm25Scorer(), 2);
  search::LiveSearchEngine over_live(corpus, live, search::MakeBm25Scorer(),
                                     search::EvalStrategy::kTAAT);
  ManualClock clock;
  Deadline dead = Deadline::After(0.001, &clock);
  clock.Advance(2'000'000);  // 2ms past a 1ms deadline: expired before work
  search::QueryOptions options;
  options.deadline = &dead;
  const Doc query = {0, 1};
  for (search::QueryEngine* engine :
       std::initializer_list<search::QueryEngine*>{&mono, &fanout,
                                                   &over_live}) {
    auto result = engine->EvaluateWithOptions(query, 5, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  }
  // The same engines, same query, no deadline: full parity.
  ExpectBitIdentical(*fanout.EvaluateWithOptions(query, 5, {}),
                     mono.Evaluate(query, 5), "fanout-parity");
  ExpectBitIdentical(*over_live.EvaluateWithOptions(query, 5, {}),
                     mono.Evaluate(query, 5), "live-parity");
}

TEST(ChaosEngineTest, ConcurrentFleetSurvivesScriptedFaults) {
  const size_t vocab = 16;
  corpus::Corpus corpus = SynthCorpus(vocab, 24, 0xBEEF);
  ShardedIndex sharded = ShardedIndex::Build(corpus, 3);
  search::ShardedSearchEngine inner(corpus, sharded, search::MakeBm25Scorer(),
                                    /*num_threads=*/2,
                                    search::EvalStrategy::kMaxScore);
  ManualClock clock;
  FaultInjectingEngine chaos(&inner, &clock);
  const std::vector<Doc> queries = SynthQueries(vocab, 8, 0xF00D);
  // Reference results per query, from the unwrapped engine.
  std::vector<std::vector<ScoredDoc>> want;
  for (const Doc& q : queries) want.push_back(inner.Evaluate(q, 5));

  constexpr size_t kThreads = 4;
  constexpr size_t kCallsPerThread = 25;
  constexpr size_t kTotalCalls = kThreads * kCallsPerThread;
  size_t scheduled = 0;
  for (uint64_t call = 0; call < kTotalCalls; ++call) {
    if (call % 11 == 4) {
      chaos.ScheduleFault({call, EngineFault::Kind::kError, 0});
      ++scheduled;
    } else if (call % 13 == 6) {
      chaos.ScheduleFault({call, EngineFault::Kind::kHang, 0});
      ++scheduled;
    }
  }

  // Which THREAD draws which fault is scheduling-dependent; the assertions
  // are per-call-outcome, so the test is race-proof: every accepted call
  // must be bit-identical FOR ITS QUERY, every rejection typed.
  std::vector<size_t> accepted(kThreads, 0), rejected(kThreads, 0);
  std::vector<std::thread> fleet;
  for (size_t w = 0; w < kThreads; ++w) {
    fleet.emplace_back([&, w] {
      for (size_t i = 0; i < kCallsPerThread; ++i) {
        const size_t qi = (w * kCallsPerThread + i) % queries.size();
        Deadline deadline = Deadline::After(0.05, &clock);
        search::QueryOptions options;
        options.deadline = &deadline;
        auto result = chaos.EvaluateWithOptions(queries[qi], 5, options);
        if (result.ok()) {
          ++accepted[w];
          ExpectBitIdentical(*result, want[qi],
                             "worker=" + std::to_string(w) +
                                 " call=" + std::to_string(i));
        } else {
          ++rejected[w];
          const util::StatusCode code = result.status().code();
          EXPECT_TRUE(code == util::StatusCode::kUnavailable ||
                      code == util::StatusCode::kDeadlineExceeded)
              << result.status().ToString();
        }
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  size_t total_accepted = 0, total_rejected = 0;
  for (size_t w = 0; w < kThreads; ++w) {
    total_accepted += accepted[w];
    total_rejected += rejected[w];
  }
  EXPECT_EQ(chaos.calls(), kTotalCalls);
  EXPECT_EQ(chaos.faults_fired(), scheduled);
  // Every fault rejects its own call, and a hang's clock jump can ALSO
  // expire sibling in-flight deadlines (a wedged shard stalls the virtual
  // world — collateral expiry is the cancellation doing its job), so the
  // rejection count is bounded below by the schedule, not equal to it.
  EXPECT_GE(total_rejected, scheduled);
  EXPECT_EQ(total_accepted + total_rejected, kTotalCalls);
  EXPECT_GT(total_accepted, 0u);
}

// ----------------------------------------------- storage-plane schedules --

LiveIndexOptions DurableOptions() {
  LiveIndexOptions options;
  options.durability = DurabilityPolicy::kPerBatch;
  options.max_writer_docs = 4;
  options.merge_factor = 2;
  return options;
}

TEST(ChaosWalTest, DegradedIndexHealsAndLosesNothingAcknowledged) {
  FaultInjectingFileSystem fs;
  const LiveIndexOptions options = DurableOptions();
  const uint64_t degraded_before =
      CounterNow("live.health.degraded_transitions");
  const uint64_t repaired_before =
      CounterNow("live.health.repaired_transitions");
  auto live = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(live.ok()) << live.status().message();
  (*live)->EnsureTermSpace(16);
  auto first = (*live)->IngestChecked({{0, 1, 2}, {1, 2, 3}});
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 2u);
  EXPECT_EQ((*live)->health(), LiveIndex::Health::kHealthy);
  EXPECT_TRUE((*live)->last_error().ok());
  auto before = (*live)->Refresh();

  // The degrading event: the next WAL append dies.
  fs.ArmFault(0, FaultMode::kFailOp);
  auto doomed = (*live)->IngestChecked({{3, 4}});
  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), util::StatusCode::kUnavailable);
  ASSERT_TRUE(fs.fault_fired());
  fs.DisarmFault();
  EXPECT_EQ((*live)->health(), LiveIndex::Health::kDegraded);
  EXPECT_FALSE((*live)->last_error().ok());
#ifdef TOPPRIV_METRICS
  // The Healthy->Degraded EDGE counted exactly once — the refused
  // mutations below re-latch the same error without re-counting.
  EXPECT_EQ(CounterNow("live.health.degraded_transitions") - degraded_before,
            1u);
#endif

  // Degraded: every mutation refused with a TYPED status, reads still
  // serve the pre-fault state.
  EXPECT_EQ((*live)->IngestChecked({{5}}).status().code(),
            util::StatusCode::kUnavailable);
  EXPECT_EQ((*live)->DeleteChecked(0).code(), util::StatusCode::kUnavailable);
  EXPECT_EQ((*live)->Acquire()->num_documents(), before->num_documents());

  // Repair: re-checkpoints memory into a fresh generation + empty WAL.
  ManualClock clock;
  util::RetryPolicy policy;
  const uint64_t degraded_generation = (*live)->wal_generation();
  ASSERT_TRUE((*live)->Repair(policy, &clock).ok());
  EXPECT_EQ((*live)->health(), LiveIndex::Health::kHealthy);
  EXPECT_GT((*live)->wal_generation(), degraded_generation);
#ifdef TOPPRIV_METRICS
  EXPECT_EQ(CounterNow("live.health.degraded_transitions") - degraded_before,
            1u);
  EXPECT_EQ(CounterNow("live.health.repaired_transitions") - repaired_before,
            1u);
#else
  (void)degraded_before;
  (void)repaired_before;
#endif
  // last_error is STICKY across repair — the post-mortem survives.
  EXPECT_FALSE((*live)->last_error().ok());
  EXPECT_TRUE((*live)->wal_status().ok());

  // Healed: mutations flow again, with exact semantics.
  auto again = (*live)->IngestChecked({{3, 4}});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*live)->DeleteChecked(0).ok());
  EXPECT_EQ((*live)->DeleteChecked(999).code(), util::StatusCode::kNotFound);

  // The crash image after the whole ordeal recovers every acknowledged
  // mutation: docs {1,2,3} and {3,4} live, doc0 deleted, doomed batch out.
  live->reset();
  fs.PowerCut();
  auto recovered = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_TRUE((*recovered)->healthy());
  auto snapshot = (*recovered)->Refresh();
  EXPECT_EQ(snapshot->num_documents(), 2u);
  EXPECT_EQ(snapshot->DocFreq(1), 1u);   // only {1,2,3} carries term 1
  EXPECT_EQ(snapshot->DocFreq(4), 1u);   // only {3,4} carries term 4
  EXPECT_EQ(snapshot->DocFreq(0), 0u);   // doc0 deleted; doomed batch absent
  EXPECT_EQ(snapshot->DocFreq(3), 2u);
}

TEST(ChaosWalTest, RepairBacksOffDeterministicallyUntilTheDiskHeals) {
  FaultInjectingFileSystem fs;
  const LiveIndexOptions options = DurableOptions();
  auto live = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(live.ok());
  (*live)->EnsureTermSpace(8);
  ASSERT_TRUE((*live)->IngestChecked({{0, 1}, {1, 2}}).ok());

  fs.ArmFault(0, FaultMode::kFailOp);
  ASSERT_FALSE((*live)->IngestChecked({{2, 3}}).ok());
  ASSERT_TRUE(fs.fault_fired());
  fs.DisarmFault();

  // Doom the FIRST repair attempt too (the checkpoint's tmp write); the
  // one-shot fault then clears and the retry must succeed.
  fs.ArmFault(0, FaultMode::kFailOp);
  ManualClock clock;
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  ASSERT_TRUE((*live)->Repair(policy, &clock).ok());
  EXPECT_EQ((*live)->health(), LiveIndex::Health::kHealthy);
  // Exactly one backoff sleep happened (before attempt 1), and its length
  // is the policy's deterministic jittered value — virtual time proves it.
  EXPECT_EQ(clock.NowNanos(), policy.BackoffNanos(0));

  // A healthy index repairs as a no-op; an in-memory one is refused.
  const uint64_t generation = (*live)->wal_generation();
  EXPECT_TRUE((*live)->Repair(policy, &clock).ok());
  EXPECT_EQ((*live)->wal_generation(), generation);
  LiveIndex in_memory{LiveIndexOptions()};
  EXPECT_EQ(in_memory.Repair(policy, &clock).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(ChaosWalTest, ConcurrentMutatorFleetDegradesCleanlyAndHeals) {
  constexpr size_t kThreads = 4;
  constexpr size_t kDocsPerThread = 24;
  const size_t vocab = kThreads * kDocsPerThread;
  FaultInjectingFileSystem fs;
  LiveIndexOptions options = DurableOptions();
  options.max_writer_docs = 8;
  auto live = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(live.ok());
  (*live)->EnsureTermSpace(vocab);

  // Storage fails partway through a 4-writer ingest storm. Writers record
  // which calls were acknowledged; acked ⊆ recovered is the contract, and
  // each doc's term is unique to (writer, i) so the final image proves
  // every call individually.
  fs.ArmFault(120, FaultMode::kFailOp);
  std::vector<std::vector<bool>> acked(kThreads,
                                       std::vector<bool>(kDocsPerThread));
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kDocsPerThread; ++i) {
        const text::TermId term =
            static_cast<text::TermId>(w * kDocsPerThread + i);
        auto r = (*live)->IngestChecked({{term, term}});
        if (r.ok()) {
          acked[w][i] = true;
        } else {
          EXPECT_EQ(r.status().code(), util::StatusCode::kUnavailable);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  fs.DisarmFault();
  ASSERT_TRUE(fs.fault_fired());
  EXPECT_EQ((*live)->health(), LiveIndex::Health::kDegraded);

  ManualClock clock;
  ASSERT_TRUE((*live)->Repair(util::RetryPolicy(), &clock).ok());
  EXPECT_EQ((*live)->health(), LiveIndex::Health::kHealthy);

  // After healing, every acknowledged write is present and queryable, and
  // post-repair traffic lands on top. A REFUSED write may also be present:
  // when the armed fault lands on the group-commit fsync (rather than an
  // append), the batch was already logged and applied before the sync
  // verdict, so the refusal is indeterminate — standard WAL semantics.
  // The contract is therefore acked ⊆ visible ⊆ submitted, not equality.
  auto extra = (*live)->IngestChecked({{0, 1, 2}});
  ASSERT_TRUE(extra.ok());
  auto snapshot = (*live)->Refresh();
  size_t total_acked = 0;
  for (size_t w = 0; w < kThreads; ++w) {
    for (size_t i = 0; i < kDocsPerThread; ++i) {
      const text::TermId term =
          static_cast<text::TermId>(w * kDocsPerThread + i);
      if (acked[w][i]) {
        ++total_acked;
        EXPECT_GE(snapshot->DocFreq(term), 1u) << "term " << term;
      }
    }
  }
  EXPECT_GE(snapshot->num_documents(), total_acked + 1);
  EXPECT_LE(snapshot->num_documents(), kThreads * kDocsPerThread + 1);

  // And the crash image agrees with the healed live image EXACTLY: Repair
  // re-checkpointed everything memory held and the post-repair batch was
  // acked per-batch, so the crash may neither lose nor resurrect a doc.
  const size_t live_docs = snapshot->num_documents();
  live->reset();
  fs.PowerCut();
  auto recovered = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->Refresh()->num_documents(), live_docs);
}

// --------------------------------------------------- fixed-schedule smoke --
// The Release CI job runs --gtest_filter=ChaosSmoke.* and fails the build
// on digest divergence. Single-threaded on purpose: the accepted set is a
// pure function of the schedule, so ONE digest covers results, statuses,
// fault accounting and the health state machine.

TEST(ChaosSmoke, FixedScheduleDigestMatchesNoFaultReference) {
  const size_t vocab = 16;
  corpus::Corpus corpus = SynthCorpus(vocab, 24, 0xBEEF);
  InvertedIndex index = InvertedIndex::Build(corpus);
  search::SearchEngine inner(corpus, index, search::MakeBm25Scorer(),
                             search::EvalStrategy::kMaxScore);
  ManualClock clock;
  FaultInjectingEngine chaos(&inner, &clock);
  const std::vector<Doc> queries = SynthQueries(vocab, 8, 0xF00D);

  // The fixed schedule.
  chaos.ScheduleFault({3, EngineFault::Kind::kError, 0});
  chaos.ScheduleFault({7, EngineFault::Kind::kHang, 0});
  EngineFault delay;
  delay.at_call = 11;
  delay.kind = EngineFault::Kind::kDelay;
  delay.delay_nanos = 2'000'000;
  chaos.ScheduleFault(delay);
  chaos.ScheduleFault({15, EngineFault::Kind::kError, 0});

  constexpr size_t kCalls = 24;
  uint64_t digest = util::kFnv1aOffsetBasis;
  for (size_t call = 0; call < kCalls; ++call) {
    const Doc& q = queries[call % queries.size()];
    Deadline deadline = Deadline::After(0.05, &clock);
    search::QueryOptions options;
    options.deadline = &deadline;
    auto result = chaos.EvaluateWithOptions(q, 5, options);
    if (result.ok()) {
      digest = util::Fnv1aStep(digest, 1);
      digest = MixResults(digest, *result);
    } else {
      digest = util::Fnv1aStep(digest, 0);
      digest = util::Fnv1aStep(digest,
                               static_cast<uint64_t>(result.status().code()));
    }
  }
  EXPECT_EQ(chaos.calls(), kCalls);
  EXPECT_EQ(chaos.faults_fired(), 4u);

  // Reference: the unwrapped engine plus the schedule's known outcomes.
  uint64_t want = util::kFnv1aOffsetBasis;
  for (size_t call = 0; call < kCalls; ++call) {
    const Doc& q = queries[call % queries.size()];
    if (call == 3 || call == 15) {
      want = util::Fnv1aStep(want, 0);
      want = util::Fnv1aStep(
          want, static_cast<uint64_t>(util::StatusCode::kUnavailable));
    } else if (call == 7) {
      want = util::Fnv1aStep(want, 0);
      want = util::Fnv1aStep(
          want, static_cast<uint64_t>(util::StatusCode::kDeadlineExceeded));
    } else {
      want = util::Fnv1aStep(want, 1);
      want = MixResults(want, inner.Evaluate(q, 5));
    }
  }
  EXPECT_EQ(digest, want) << "chaos digest diverged from the no-fault "
                             "reference: an accepted query's bits changed "
                             "or a rejection lost its typed status";
}

TEST(ChaosSmoke, FixedStorageScheduleHealsToHealthy) {
  FaultInjectingFileSystem fs;
  const LiveIndexOptions options = DurableOptions();
  auto live = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(live.ok());
  (*live)->EnsureTermSpace(8);
  ASSERT_TRUE((*live)->IngestChecked({{0, 1}, {2, 3}}).ok());
  fs.ArmFault(0, FaultMode::kFailOp);
  ASSERT_EQ((*live)->IngestChecked({{4, 5}}).status().code(),
            util::StatusCode::kUnavailable);
  fs.DisarmFault();
  ASSERT_EQ((*live)->health(), LiveIndex::Health::kDegraded);
  ManualClock clock;
  ASSERT_TRUE((*live)->Repair(util::RetryPolicy(), &clock).ok());
  ASSERT_EQ((*live)->health(), LiveIndex::Health::kHealthy);
  ASSERT_TRUE((*live)->IngestChecked({{4, 5}}).ok());
  EXPECT_EQ((*live)->Refresh()->num_documents(), 3u);
}

}  // namespace
}  // namespace toppriv
