// Crash-recovery suite for the durable live index.
//
// The contract under test: whatever byte the writer dies at — every WAL
// byte-boundary truncation, every injected I/O fault, a power cut under
// any DurabilityPolicy — LiveIndex::Recover() (a) never crashes, (b) never
// loses a mutation the policy acknowledged as durable, and (c) yields a
// state whose Search() (all three scorers × TAAT/MaxScore) and
// ComputeStats() are bit-identical to a reference replay of the recovered
// operation prefix. Hostile WAL/manifest/CURRENT bytes (bit flips,
// truncations, stale generations, trailing garbage) are rejected with
// clean DataLoss statuses or recovered to the last committed point. All
// fault injection flows through util::FaultInjectingFileSystem — the
// production code has no test-only branches.
#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "index/live/live_index.h"
#include "index/live/wal.h"
#include "search/engine.h"
#include "search/live_engine.h"
#include "search/scorer.h"
#include "util/deadline.h"
#include "util/filesystem.h"
#include "util/rng.h"

namespace toppriv {
namespace {

using index::IndexStats;
using index::InvertedIndex;
using index::live::DurabilityPolicy;
using index::live::EncodeWalHeader;
using index::live::IndexSnapshot;
using index::live::LiveIndex;
using index::live::LiveIndexOptions;
using index::live::ManifestFileName;
using index::live::StableId;
using index::live::WalFileName;
using search::LiveSearchEngine;
using search::ScoredDoc;
using util::FaultInjectingFileSystem;
using FaultMode = util::FaultInjectingFileSystem::FaultMode;

using Doc = std::vector<text::TermId>;

constexpr char kDir[] = "db";

std::unique_ptr<search::Scorer> MakeScorer(int which) {
  switch (which) {
    case 0:
      return search::MakeBm25Scorer();
    case 1:
      return search::MakeTfIdfScorer();
    default:
      return std::make_unique<search::LmDirichletScorer>();
  }
}

const search::EvalStrategy kStrategies[] = {search::EvalStrategy::kTAAT,
                                            search::EvalStrategy::kMaxScore};

corpus::Corpus CorpusFromDocs(size_t vocab_size, const std::vector<Doc>& docs) {
  corpus::Corpus c;
  text::Vocabulary& vocab = c.mutable_vocabulary();
  for (size_t t = 0; t < vocab_size; ++t) {
    vocab.AddTerm("t" + std::to_string(t));
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    c.AddDocument("d" + std::to_string(d), docs[d]);
  }
  return c;
}

// ------------------------------------------------------------ op scripts --
// A recovery test is: run a SCRIPT of logical operations against a durable
// index, crash it somewhere, recover, and compare against an in-test model
// replayed over the prefix the WAL proves. Ingests (even empty batches),
// deletes (even no-ops) and term-space declarations each map to exactly one
// WAL record; a SEAL only emits a record when the writer actually holds
// documents (the idle-refresh WAL-leak fix), so the op↔record mapping is
// computed by ScriptTrace — a test-side simulation of the writer's fill
// level — rather than assumed 1:1.

struct Op {
  enum Kind { kIngest, kDelete, kSeal, kTermSpace } kind;
  std::vector<Doc> docs;   // kIngest
  StableId stable = 0;     // kDelete
  size_t num_terms = 0;    // kTermSpace
};

Op IngestOp(std::vector<Doc> docs) {
  Op op;
  op.kind = Op::kIngest;
  op.docs = std::move(docs);
  return op;
}
Op DeleteOp(StableId stable) {
  Op op;
  op.kind = Op::kDelete;
  op.stable = stable;
  return op;
}
Op SealOp() {
  Op op;
  op.kind = Op::kSeal;
  return op;
}
Op TermSpaceOp(size_t n) {
  Op op;
  op.kind = Op::kTermSpace;
  op.num_terms = n;
  return op;
}

/// Mirrors the writer's fill level across a script to predict which ops
/// append WAL records. The rules are exactly LiveIndex's: each ingested
/// doc bumps the writer and an auto-seal at max_writer_docs empties it
/// (unlogged — it is part of the ingest's own record); deleting a doc
/// still buffered in the writer seals it first (also unlogged); an
/// explicit Seal appends a record ONLY when the writer is non-empty; and
/// ForceMerge/Checkpoint seal the writer with no record at all
/// (NoteUnloggedSeal). From the per-op emission list the trace answers the
/// two questions every sweep needs: how many records the first N ops
/// produced, and which op prefix a recovered record prefix proves.
class ScriptTrace {
 public:
  explicit ScriptTrace(const LiveIndexOptions& options)
      : max_writer_docs_(std::max<size_t>(1, options.max_writer_docs)) {}

  /// Feeds the next op; returns true when it appends a WAL record.
  bool Feed(const Op& op) {
    bool emits = true;
    switch (op.kind) {
      case Op::kIngest:
        for (size_t d = 0; d < op.docs.size(); ++d) {
          ++next_stable_;
          ++writer_docs_;
          if (writer_docs_ >= max_writer_docs_) writer_docs_ = 0;
        }
        break;
      case Op::kDelete:
        if (op.stable < next_stable_ && writer_docs_ > 0 &&
            op.stable >= next_stable_ - writer_docs_) {
          writer_docs_ = 0;  // the delete seals the writer first, unlogged
        }
        break;
      case Op::kSeal:
        emits = writer_docs_ > 0;
        writer_docs_ = 0;
        break;
      case Op::kTermSpace:
        break;
    }
    if (emits) record_op_.push_back(op_index_);
    ++op_index_;
    return emits;
  }

  /// Models an unlogged writer seal (ForceMerge, Checkpoint).
  void NoteUnloggedSeal() { writer_docs_ = 0; }

  /// Total records the fed ops appended.
  size_t total_records() const { return record_op_.size(); }

  /// Records appended by the first `op_count` ops.
  size_t RecordsBefore(size_t op_count) const {
    size_t n = 0;
    while (n < record_op_.size() && record_op_[n] < op_count) ++n;
    return n;
  }

  /// Op prefix a recovered prefix of `record_count` records proves: every
  /// op through the emitter of the last record. Ops past it that emitted
  /// nothing are record-less seals — logical no-ops either way.
  size_t OpsCovered(size_t record_count) const {
    if (record_count == 0) return 0;
    return record_op_[record_count - 1] + 1;
  }

  /// Whether the writer currently buffers documents (i.e. whether the NEXT
  /// explicit seal — including the one inside Refresh() — would log).
  bool writer_nonempty() const { return writer_docs_ > 0; }

 private:
  size_t max_writer_docs_;
  StableId next_stable_ = 0;
  size_t writer_docs_ = 0;
  size_t op_index_ = 0;
  std::vector<size_t> record_op_;
};

ScriptTrace TraceOf(const std::vector<Op>& ops,
                    const LiveIndexOptions& options) {
  ScriptTrace trace(options);
  for (const Op& op : ops) trace.Feed(op);
  return trace;
}

/// Applies ops [begin, end) through the public API (the same calls WAL
/// replay makes). Returns how many the index acknowledged — once it turns
/// unhealthy, the rest are refused and not counted.
size_t ApplyOpsRange(LiveIndex& live, const std::vector<Op>& ops, size_t begin,
                     size_t end) {
  size_t acked = 0;
  for (size_t i = begin; i < end && i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case Op::kIngest:
        live.Ingest(ops[i].docs);
        break;
      case Op::kDelete:
        live.Delete(ops[i].stable);
        break;
      case Op::kSeal:
        live.Flush();
        break;
      case Op::kTermSpace:
        live.EnsureTermSpace(ops[i].num_terms);
        break;
    }
    if (!live.healthy()) break;
    ++acked;
  }
  return acked;
}

size_t ApplyOps(LiveIndex& live, const std::vector<Op>& ops, size_t count) {
  return ApplyOpsRange(live, ops, 0, count);
}

/// The logical collection after the first `count` ops: live documents in
/// stable-ingest order (exactly what a static build would index).
std::vector<Doc> ModelDocs(const std::vector<Op>& ops, size_t count) {
  std::vector<Doc> by_stable;
  std::vector<bool> deleted;
  for (size_t i = 0; i < count && i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (op.kind == Op::kIngest) {
      for (const Doc& d : op.docs) {
        by_stable.push_back(d);
        deleted.push_back(false);
      }
    } else if (op.kind == Op::kDelete) {
      if (op.stable < by_stable.size()) deleted[op.stable] = true;
    }
  }
  std::vector<Doc> live_docs;
  for (size_t s = 0; s < by_stable.size(); ++s) {
    if (!deleted[s]) live_docs.push_back(by_stable[s]);
  }
  return live_docs;
}

void ExpectBitIdentical(const std::vector<ScoredDoc>& got,
                        const std::vector<ScoredDoc>& want,
                        const char* context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << context << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

void ExpectStatsEqual(const IndexStats& got, const IndexStats& want,
                      const char* context) {
  EXPECT_EQ(got.num_terms, want.num_terms) << context;
  EXPECT_EQ(got.num_documents, want.num_documents) << context;
  EXPECT_EQ(got.total_postings, want.total_postings) << context;
  EXPECT_EQ(got.max_list_length, want.max_list_length) << context;
  EXPECT_EQ(got.encoded_bytes, want.encoded_bytes) << context;
  EXPECT_EQ(got.pir_padded_bytes, want.pir_padded_bytes) << context;
  EXPECT_DOUBLE_EQ(got.avg_list_length, want.avg_list_length) << context;
}

/// THE recovery parity check: `live` must be search- and stats-
/// indistinguishable from a static build of `final_docs`, across all
/// three scorers and both evaluation strategies.
void ExpectLiveMatchesStatic(LiveIndex& live, const std::vector<Doc>& final_docs,
                             size_t vocab_size, const std::vector<Doc>& queries,
                             size_t k, const char* context) {
  // The static corpus always declares the full vocabulary; a recovered
  // prefix may predate the script's kTermSpace record, so re-level here
  // (a logical no-op whenever that record was recovered).
  live.EnsureTermSpace(vocab_size);
  corpus::Corpus expected = CorpusFromDocs(vocab_size, final_docs);
  InvertedIndex static_index = InvertedIndex::Build(expected);
  std::shared_ptr<const IndexSnapshot> snapshot = live.Refresh();
  ASSERT_EQ(snapshot->num_documents(), static_index.num_documents()) << context;
  ExpectStatsEqual(snapshot->ComputeStats(), static_index.ComputeStats(),
                   context);
  for (int scorer_kind = 0; scorer_kind < 3; ++scorer_kind) {
    for (search::EvalStrategy strategy : kStrategies) {
      search::SearchEngine mono(expected, static_index, MakeScorer(scorer_kind),
                                strategy);
      LiveSearchEngine engine(expected, live, MakeScorer(scorer_kind),
                              strategy);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        SCOPED_TRACE(::testing::Message()
                     << context << " scorer=" << scorer_kind << " strategy="
                     << search::EvalStrategyName(strategy) << " query=" << qi);
        ExpectBitIdentical(engine.Evaluate(queries[qi], k),
                           mono.Evaluate(queries[qi], k), context);
      }
    }
  }
}

/// Recovers from `fs` and asserts full parity against the model replay of
/// the op prefix the recovered RECORD prefix proves (via `trace`). Returns
/// the recovered record-prefix length.
size_t RecoverAndCheck(util::FileSystem* fs, const LiveIndexOptions& options,
                       const std::vector<Op>& ops, const ScriptTrace& trace,
                       size_t vocab, const std::vector<Doc>& queries,
                       const char* context) {
  LiveIndex::RecoveryStats stats;
  auto recovered = LiveIndex::Recover(fs, kDir, options, &stats);
  EXPECT_TRUE(recovered.ok()) << context << ": " << recovered.status().message();
  if (!recovered.ok()) return 0;
  const size_t prefix = static_cast<size_t>((*recovered)->wal_sequence());
  EXPECT_LE(prefix, trace.total_records()) << context;
  ExpectLiveMatchesStatic(**recovered, ModelDocs(ops, trace.OpsCovered(prefix)),
                          vocab, queries, 5, context);
  return prefix;
}

// Deterministic small-doc generator (seeded Rng; no wall clock).
Doc SynthDoc(util::Rng& rng, size_t vocab, size_t min_len = 3,
             size_t max_len = 9) {
  const size_t len = min_len + rng.UniformInt(uint64_t{max_len - min_len});
  Doc d;
  d.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    d.push_back(static_cast<text::TermId>(rng.UniformInt(uint64_t{vocab})));
  }
  return d;
}

/// The standard small script used by the exhaustive sweeps: term-space
/// declaration, multi-doc batches (some crossing the auto-seal threshold),
/// deletes of live and bogus ids, explicit seals, an empty batch. Small
/// enough that full 3-scorer × 2-strategy parity at EVERY WAL byte
/// boundary stays fast.
std::vector<Op> SmallScript(size_t vocab) {
  util::Rng rng(20260808);
  std::vector<Op> ops;
  ops.push_back(TermSpaceOp(vocab));
  StableId next = 0;
  for (int batch = 0; batch < 7; ++batch) {
    std::vector<Doc> docs;
    const size_t n = 1 + rng.UniformInt(uint64_t{4});
    for (size_t i = 0; i < n; ++i) docs.push_back(SynthDoc(rng, vocab));
    next += docs.size();
    ops.push_back(IngestOp(std::move(docs)));
    if (batch == 2 || batch == 5) {
      ops.push_back(SealOp());
      // A back-to-back seal finds the writer empty and must append NO
      // record (the idle-refresh fix) — a mid-script record-less op that
      // every sweep's op↔record mapping has to get right.
      if (batch == 5) ops.push_back(SealOp());
    }
    if (batch >= 1) {
      ops.push_back(DeleteOp(rng.UniformInt(next)));  // usually live
    }
  }
  ops.push_back(DeleteOp(next + 1000));  // never-assigned id: no-op
  ops.push_back(IngestOp({}));           // empty batch: no-op, still logged
  ops.push_back(SealOp());
  ops.push_back(SealOp());  // trailing record-less seal
  return ops;
}

LiveIndexOptions SmallOptions(DurabilityPolicy policy) {
  LiveIndexOptions options;
  options.max_writer_docs = 8;  // force auto-seals mid-script
  options.merge_factor = 2;     // force tiered merges
  options.durability = policy;
  return options;
}

std::vector<Doc> SmallQueries(size_t vocab) {
  util::Rng rng(17);
  std::vector<Doc> queries;
  for (int q = 0; q < 4; ++q) queries.push_back(SynthDoc(rng, vocab, 1, 4));
  return queries;
}

// --------------------------------------------------- byte-boundary sweep --

TEST(WalRecoveryTest, EveryByteBoundaryTruncationRecoversWithParity) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  const ScriptTrace trace = TraceOf(ops, options);
  // The script must exercise the seal-skip: fewer records than ops.
  ASSERT_LT(trace.total_records(), ops.size());

  // Run the whole script durably, then crash at EVERY byte of the WAL.
  FaultInjectingFileSystem fs;
  auto live = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(live.ok()) << live.status().message();
  ASSERT_EQ(ApplyOps(**live, ops, ops.size()), ops.size());
  ASSERT_EQ((*live)->wal_sequence(), trace.total_records());
  const uint64_t generation = (*live)->wal_generation();
  const std::string wal_path = std::string(kDir) + "/" + WalFileName(generation);
  const std::string wal_bytes = fs.FileBytes(wal_path);
  ASSERT_GT(wal_bytes.size(), 100u);  // the sweep must actually cover records
  live->reset();  // destroy the writer before recovering its crash images

  // Cuts inside the header model corruption, not a crash (the header was
  // fsync'd before CURRENT named this generation), so they must be REFUSED.
  const size_t header_len = EncodeWalHeader(generation, 0).size();
  size_t prev_prefix = 0;
  size_t distinct_prefixes = 0;
  for (size_t cut = 0; cut <= wal_bytes.size(); ++cut) {
    auto crash = fs.Clone();
    crash->Truncate(wal_path, cut);
    const std::string context = "cut=" + std::to_string(cut);
    if (cut < header_len) {
      auto r = LiveIndex::Recover(crash.get(), kDir, options);
      ASSERT_FALSE(r.ok()) << context;
      EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss) << context;
      continue;
    }
    const size_t prefix = RecoverAndCheck(crash.get(), options, ops, trace,
                                          vocab, queries, context.c_str());
    // More surviving bytes can only ever reveal MORE committed ops.
    EXPECT_GE(prefix, prev_prefix) << context;
    if (prefix > prev_prefix) ++distinct_prefixes;
    prev_prefix = prefix;
  }
  // The full WAL replays fully, and every record boundary was hit.
  EXPECT_EQ(prev_prefix, trace.total_records());
  EXPECT_EQ(distinct_prefixes, trace.total_records());
}

// --------------------------------------------------------- fault sweeps --

void FaultSweep(FaultMode mode) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  const ScriptTrace trace = TraceOf(ops, options);

  for (uint64_t fault_at = 0;; ++fault_at) {
    ASSERT_LT(fault_at, 10000u) << "fault sweep failed to terminate";
    FaultInjectingFileSystem fs;
    fs.ArmFault(fault_at, mode);
    size_t acked = 0;
    {
      // The victim: the fault can hit the fresh-directory checkpoint, any
      // WAL append, or any sync. Whatever happens must not crash.
      auto live = LiveIndex::Recover(&fs, kDir, options);
      if (live.ok()) {
        acked = ApplyOps(**live, ops, ops.size());
      }
    }
    const bool fired = fs.fault_fired();
    fs.DisarmFault();
    fs.PowerCut();  // un-synced bytes vanish with the process
    const std::string context =
        std::string(mode == FaultMode::kFailOp ? "fail" : "short") + "-at-" +
        std::to_string(fault_at) + " acked=" + std::to_string(acked);
    const size_t prefix = RecoverAndCheck(&fs, options, ops, trace, vocab,
                                          queries, context.c_str());
    // Durability floor: under kPerBatch every acknowledged op's records
    // (record-less seals ack without one) were synced before its call
    // returned, so recovery may never come back short of them.
    EXPECT_GE(prefix, trace.RecordsBefore(acked)) << context;
    if (!fired) {
      // The fault index outran the script's total I/O: sweep complete.
      EXPECT_EQ(acked, ops.size());
      EXPECT_EQ(prefix, trace.total_records());
      break;
    }
  }
}

TEST(WalRecoveryTest, EveryFailOpFaultPointRecoversWithParity) {
  FaultSweep(FaultMode::kFailOp);
}

TEST(WalRecoveryTest, EveryShortWriteFaultPointRecoversWithParity) {
  FaultSweep(FaultMode::kShortWrite);
}

TEST(WalRecoveryTest, FaultedIndexRefusesMutationsButKeepsServing) {
  FaultInjectingFileSystem fs;
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  auto live = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(live.ok());
  (*live)->Ingest({{0, 1, 2}, {1, 2, 3}});
  auto before = (*live)->Refresh();
  ASSERT_TRUE((*live)->healthy());

  fs.ArmFault(0, FaultMode::kFailOp);
  EXPECT_TRUE((*live)->Ingest({{2, 3}}).empty());  // the doomed write
  EXPECT_FALSE((*live)->healthy());
  EXPECT_FALSE((*live)->wal_status().ok());
  // Every further mutation is refused — memory must never outrun the log.
  EXPECT_TRUE((*live)->Ingest({{0}}).empty());
  EXPECT_FALSE((*live)->Delete(0));
  EXPECT_FALSE((*live)->Checkpoint().ok());
  EXPECT_FALSE((*live)->SyncWal().ok());
  // ...but reads keep serving the pre-fault state.
  auto after = (*live)->Acquire();
  EXPECT_EQ(after->num_documents(), before->num_documents());
}

// ------------------------------------------------- power cut per policy --

TEST(WalRecoveryTest, PerBatchPolicyLosesNothingAtPowerCut) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  const ScriptTrace trace = TraceOf(ops, options);
  FaultInjectingFileSystem fs;
  {
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok());
    ASSERT_EQ(ApplyOps(**live, ops, ops.size()), ops.size());
  }
  fs.PowerCut();
  EXPECT_EQ(RecoverAndCheck(&fs, options, ops, trace, vocab, queries,
                            "per-batch"),
            trace.total_records());
}

TEST(WalRecoveryTest, PerRefreshPolicyKeepsExactlyTheRefreshedPrefix) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerRefresh);
  // Sync points = Refresh() calls. Power-cut after each one in turn and
  // check recovery lands exactly on the refreshed boundary (appended-but-
  // unsynced suffix records die with the page cache — even though the
  // index acknowledged them in memory).
  for (size_t refresh_after : {size_t{3}, size_t{9}, ops.size()}) {
    ScriptTrace partial(options);
    for (size_t i = 0; i < refresh_after; ++i) partial.Feed(ops[i]);
    // Refresh appends one more seal record only when the writer holds
    // documents at the boundary; either way it syncs every appended record.
    const size_t refreshed =
        partial.total_records() + (partial.writer_nonempty() ? 1 : 0);
    FaultInjectingFileSystem fs;
    {
      auto live = LiveIndex::Recover(&fs, kDir, options);
      ASSERT_TRUE(live.ok());
      ASSERT_EQ(ApplyOps(**live, ops, refresh_after), refresh_after);
      (*live)->Refresh();
      ApplyOpsRange(**live, ops, refresh_after, ops.size());  // never synced
    }
    fs.PowerCut();
    const std::string context =
        "per-refresh boundary=" + std::to_string(refresh_after);
    auto recovered = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(recovered.ok()) << context;
    EXPECT_EQ((*recovered)->wal_sequence(), refreshed) << context;
    // The model ignores seals, so parity over the raw prefix holds.
    ExpectLiveMatchesStatic(**recovered, ModelDocs(ops, refresh_after), vocab,
                            queries, 5, context.c_str());
  }
}

TEST(WalRecoveryTest, ManualPolicyLosesEverythingPastTheLastSync) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kManual);
  const ScriptTrace trace = TraceOf(ops, options);
  for (size_t sync_after : {size_t{0}, size_t{5}, ops.size()}) {
    FaultInjectingFileSystem fs;
    {
      auto live = LiveIndex::Recover(&fs, kDir, options);
      ASSERT_TRUE(live.ok());
      ASSERT_EQ(ApplyOps(**live, ops, sync_after), sync_after);
      ASSERT_TRUE((*live)->SyncWal().ok());
      ApplyOpsRange(**live, ops, sync_after, ops.size());  // never synced
    }
    fs.PowerCut();
    const std::string context = "manual sync=" + std::to_string(sync_after);
    auto recovered = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(recovered.ok()) << context;
    EXPECT_EQ((*recovered)->wal_sequence(), trace.RecordsBefore(sync_after))
        << context;
    ExpectLiveMatchesStatic(**recovered, ModelDocs(ops, sync_after), vocab,
                            queries, 5, context.c_str());
  }
}

// ------------------------------------------- idle churn + group commit --

TEST(WalRecoveryTest, IdleRefreshLeavesTheWalByteForByteUnchanged) {
  // THE headline bugfix. Flush()/Refresh()/Serialize() used to append a
  // kSeal record even with an empty writer, so a serving loop that calls
  // Refresh() on a timer grew the WAL without bound while ingest was idle
  // — and under kPerBatch paid an fsync per call. Now an idle cycle leaves
  // the log byte-for-byte unchanged and issues zero filesystem ops.
  for (DurabilityPolicy policy :
       {DurabilityPolicy::kPerBatch, DurabilityPolicy::kPerRefresh,
        DurabilityPolicy::kManual}) {
    FaultInjectingFileSystem fs;
    const LiveIndexOptions options = SmallOptions(policy);
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok()) << live.status().message();
    (*live)->EnsureTermSpace(8);
    (*live)->Ingest({{0, 1, 2}, {1, 2}});
    (*live)->Refresh();  // seals + (non-manual) syncs the real work
    if (policy == DurabilityPolicy::kManual) {
      ASSERT_TRUE((*live)->SyncWal().ok());
    }
    const std::string wal_path =
        std::string(kDir) + "/" + WalFileName((*live)->wal_generation());
    const std::string bytes_before = fs.FileBytes(wal_path);
    const uint64_t seq_before = (*live)->wal_sequence();
    const uint64_t io_before = fs.op_count();
    for (int i = 0; i < 200; ++i) {
      (*live)->Refresh();
      (*live)->Flush();
      (void)(*live)->Serialize();
    }
    // Not one byte appended, not one record logged, not one I/O issued.
    EXPECT_EQ(fs.FileBytes(wal_path), bytes_before);
    EXPECT_EQ((*live)->wal_sequence(), seq_before);
    EXPECT_EQ(fs.op_count(), io_before);
    live->reset();
    // The idle-churned log recovers exactly the pre-churn state.
    fs.PowerCut();
    auto recovered = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ((*recovered)->wal_sequence(), seq_before);
    ExpectLiveMatchesStatic(**recovered, {{0, 1, 2}, {1, 2}}, 8,
                            {{1}, {0, 2}}, 5, "idle-churn");
  }
}

TEST(WalRecoveryTest, GroupCommitConcurrentWritersLoseNoAcknowledgedWrite) {
  // kPerBatch's group commit: concurrent writers share fsyncs through the
  // synced-sequence watermark (a follower whose record a leader's fsync
  // already covered acks for free). The loss bound must be exactly the
  // sequential one: every acknowledged call survives a power cut, one
  // record per call, in WAL sequence order.
  constexpr size_t kThreads = 4;
  constexpr size_t kDocsPerThread = 32;
  const size_t vocab = kThreads * kDocsPerThread;
  LiveIndexOptions options;
  options.durability = DurabilityPolicy::kPerBatch;
  options.max_writer_docs = 8;
  options.merge_factor = 2;
  FaultInjectingFileSystem fs;
  {
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok()) << live.status().message();
    (*live)->EnsureTermSpace(vocab);
    std::vector<std::thread> writers;
    std::vector<size_t> acked(kThreads, 0);
    for (size_t w = 0; w < kThreads; ++w) {
      writers.emplace_back([&live, &acked, w] {
        for (size_t i = 0; i < kDocsPerThread; ++i) {
          // One single-term doc per call, the term unique to (writer, i),
          // so the recovered image proves every call independently.
          const text::TermId term =
              static_cast<text::TermId>(w * kDocsPerThread + i);
          if (!(*live)->Ingest({{term, term}}).empty()) ++acked[w];
        }
      });
    }
    for (std::thread& t : writers) t.join();
    for (size_t w = 0; w < kThreads; ++w) {
      ASSERT_EQ(acked[w], kDocsPerThread) << "writer " << w;
    }
    // One record per ingest plus the term-space declaration; auto-seals
    // ride inside the ingest records.
    EXPECT_EQ((*live)->wal_sequence(), 1 + kThreads * kDocsPerThread);
  }
  fs.PowerCut();  // acknowledged ⇒ fsynced: nothing may be lost
  auto recovered = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->wal_sequence(), 1 + kThreads * kDocsPerThread);
  auto snapshot = (*recovered)->Refresh();
  ASSERT_EQ(snapshot->num_documents(), kThreads * kDocsPerThread);
  for (size_t t = 0; t < vocab; ++t) {
    EXPECT_EQ(snapshot->DocFreq(static_cast<text::TermId>(t)), 1u)
        << "term " << t;
  }
}

TEST(WalRecoveryTest, PowerCutDuringGroupCommitSyncFaultKeepsAckExact) {
  // The nasty corner of group commit: a follower is parked on the
  // synced-seq watermark when the leader's fsync DIES. The follower must
  // observe the latched WAL error and return un-acked — a false ack here
  // would be an acknowledged write the power cut then erases. Sweep the
  // one-shot fault across the storm's whole I/O range so it lands on
  // appends, leader fsyncs and (at high contention) mid-wait watermark
  // checks alike; after every landing, power-cut and prove ack-exactness:
  // under kPerBatch an un-acked single-doc ingest's record can never have
  // been covered by a SUCCESSFUL sync (syncs stop at the latch), so the
  // recovered image must hold EXACTLY the acknowledged docs — acked in,
  // un-acked out.
  constexpr size_t kThreads = 4;
  constexpr size_t kDocsPerThread = 16;
  const size_t vocab = kThreads * kDocsPerThread;
  LiveIndexOptions options;
  options.durability = DurabilityPolicy::kPerBatch;
  options.max_writer_docs = 8;
  options.merge_factor = 2;
  for (uint64_t fault_at : {uint64_t{10}, uint64_t{40}, uint64_t{90}}) {
    FaultInjectingFileSystem fs;
    std::vector<std::vector<bool>> acked(kThreads,
                                         std::vector<bool>(kDocsPerThread));
    {
      auto live = LiveIndex::Recover(&fs, kDir, options);
      ASSERT_TRUE(live.ok()) << live.status().message();
      (*live)->EnsureTermSpace(vocab);
      fs.ArmFault(fault_at, FaultMode::kFailOp);
      std::vector<std::thread> writers;
      for (size_t w = 0; w < kThreads; ++w) {
        writers.emplace_back([&live, &acked, w] {
          for (size_t i = 0; i < kDocsPerThread; ++i) {
            // One single-term doc per call, the term unique to (writer, i),
            // so the crash image proves every ack individually.
            const text::TermId term =
                static_cast<text::TermId>(w * kDocsPerThread + i);
            if (!(*live)->Ingest({{term, term}}).empty()) acked[w][i] = true;
          }
        });
      }
      for (std::thread& t : writers) t.join();
      ASSERT_TRUE(fs.fault_fired()) << "fault_at=" << fault_at;
      fs.DisarmFault();
      // The fleet ran into the latch: the index is degraded and says so
      // through the typed mutation API.
      EXPECT_FALSE((*live)->healthy());
      EXPECT_EQ((*live)->health(), LiveIndex::Health::kDegraded);
      EXPECT_EQ((*live)->IngestChecked({{0}}).status().code(),
                util::StatusCode::kUnavailable);
      EXPECT_FALSE((*live)->last_error().ok());
    }
    fs.PowerCut();  // un-synced bytes die with the machine
    auto recovered = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(recovered.ok())
        << "fault_at=" << fault_at << ": " << recovered.status().message();
    auto snapshot = (*recovered)->Refresh();
    size_t total_acked = 0;
    for (size_t w = 0; w < kThreads; ++w) {
      for (size_t i = 0; i < kDocsPerThread; ++i) {
        const text::TermId term =
            static_cast<text::TermId>(w * kDocsPerThread + i);
        const size_t df = snapshot->DocFreq(term);
        if (acked[w][i]) {
          ++total_acked;
          EXPECT_EQ(df, 1u) << "acked term " << term << " lost (fault_at="
                            << fault_at << ")";
        } else {
          EXPECT_EQ(df, 0u) << "un-acked term " << term
                            << " fabricated (fault_at=" << fault_at << ")";
        }
      }
    }
    EXPECT_EQ(snapshot->num_documents(), total_acked)
        << "fault_at=" << fault_at;
    // A freshly recovered image is healthy; Repair is a clean no-op.
    util::ManualClock clock;
    EXPECT_TRUE((*recovered)->Repair(util::RetryPolicy(), &clock).ok());
    EXPECT_TRUE((*recovered)->healthy());
  }
}

// ---------------------------------------------- checkpoint + generations --

TEST(WalRecoveryTest, CheckpointCollapsesTheWalAndSurvivesPowerCut) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kManual);
  const ScriptTrace trace = TraceOf(ops, options);
  FaultInjectingFileSystem fs;
  uint64_t generation = 0;
  {
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok());
    ApplyOps(**live, ops, 6);
    ASSERT_TRUE((*live)->Checkpoint().ok());  // ops 0..5 now in the manifest
    generation = (*live)->wal_generation();
    ApplyOpsRange(**live, ops, 6, ops.size());  // new WAL, never synced
  }
  // The superseded generation's files are gone.
  EXPECT_FALSE(
      fs.Exists(std::string(kDir) + "/" + WalFileName(generation - 1)));
  EXPECT_FALSE(
      fs.Exists(std::string(kDir) + "/" + ManifestFileName(generation - 1)));
  fs.PowerCut();
  // Manual policy: the post-checkpoint suffix was never synced, so
  // recovery lands exactly on the checkpoint — from the manifest alone.
  LiveIndex::RecoveryStats stats;
  auto recovered = LiveIndex::Recover(&fs, kDir, options, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.manifest_generation, generation);
  EXPECT_EQ(stats.replayed_records, 0u);
  EXPECT_EQ((*recovered)->wal_sequence(), trace.RecordsBefore(6));
  ExpectLiveMatchesStatic(**recovered, ModelDocs(ops, 6), vocab, queries, 5,
                          "post-checkpoint");
}

TEST(WalRecoveryTest, RecoverIsIdempotent) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  const ScriptTrace trace = TraceOf(ops, options);
  FaultInjectingFileSystem fs;
  {
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok());
    ApplyOps(**live, ops, ops.size());
  }
  fs.PowerCut();
  std::string first_blob;
  for (size_t round = 0; round < 3; ++round) {
    auto recovered = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(recovered.ok()) << "round " << round;
    // Recovery checkpoints (sealing any replayed writer tail with no
    // record), so Serialize() finds an empty writer and appends NOTHING:
    // the logical clock is a fixed point across rounds. Before the seal-
    // skip fix it grew by one per round — each round's Serialize logged a
    // gratuitous empty seal for the next recovery to replay.
    EXPECT_EQ((*recovered)->wal_sequence(), trace.total_records())
        << "round " << round;
    const std::string blob = (*recovered)->Serialize();
    if (round == 0) {
      first_blob = blob;
    } else {
      // Recovery is a fixed point: recovering a recovered directory
      // reproduces the identical physical index, byte for byte.
      EXPECT_EQ(blob, first_blob) << "round " << round;
    }
  }
  auto final_round = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(final_round.ok());
  ExpectLiveMatchesStatic(**final_round, ModelDocs(ops, ops.size()), vocab,
                          queries, 5, "idempotent");
}

TEST(WalRecoveryTest, RecoveredPhysicalStateMatchesReferenceReplayByteForByte) {
  // Stronger than search parity: with identical options and inline merges,
  // recovery must rebuild the exact segment layout a reference replay
  // produces, so the two Serialize() blobs collide byte for byte.
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  FaultInjectingFileSystem fs;
  {
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok());
    ApplyOps(**live, ops, ops.size());
  }
  fs.PowerCut();
  auto recovered = LiveIndex::Recover(&fs, kDir, options);
  ASSERT_TRUE(recovered.ok());
  LiveIndex reference(options);  // in-memory twin of the same script
  ApplyOps(reference, ops, ops.size());
  EXPECT_EQ((*recovered)->Serialize(), reference.Serialize());
}

// ------------------------------------------------------- hostile inputs --

/// Builds a committed directory image with the full script applied under
/// kPerBatch, for corruption tests to deface. Outputs the live generation
/// and its WAL path.
std::unique_ptr<FaultInjectingFileSystem> BuildCommittedImage(
    const std::vector<Op>& ops, const LiveIndexOptions& options,
    std::string* wal_path, uint64_t* generation) {
  auto fs = std::make_unique<FaultInjectingFileSystem>();
  auto live = LiveIndex::Recover(fs.get(), kDir, options);
  if (!live.ok()) {
    ADD_FAILURE() << "building image: " << live.status().message();
    return nullptr;
  }
  ApplyOps(**live, ops, ops.size());
  *generation = (*live)->wal_generation();
  *wal_path = std::string(kDir) + "/" + WalFileName(*generation);
  return fs;
}

TEST(WalRecoveryTest, WalBitFlipsNeverCrashAndNeverFabricateState) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  const ScriptTrace trace = TraceOf(ops, options);
  std::string wal_path;
  uint64_t generation = 0;
  auto image = BuildCommittedImage(ops, options, &wal_path, &generation);
  ASSERT_NE(image, nullptr);
  const size_t wal_len = image->FileBytes(wal_path).size();
  ASSERT_GT(wal_len, 0u);

  for (size_t offset = 0; offset < wal_len; ++offset) {
    auto crash = image->Clone();
    crash->CorruptByte(wal_path, offset, 0x20);
    const std::string context = "flip@" + std::to_string(offset);
    auto recovered = LiveIndex::Recover(crash.get(), kDir, options);
    if (!recovered.ok()) {
      // Header damage: the file is untrustworthy end to end. Refusal must
      // be the clean kind.
      EXPECT_EQ(recovered.status().code(), util::StatusCode::kDataLoss)
          << context;
      continue;
    }
    // Record damage: replay stops at the flip, never past it, and the
    // recovered prefix is internally consistent (full parity).
    const size_t prefix = static_cast<size_t>((*recovered)->wal_sequence());
    EXPECT_LE(prefix, trace.total_records()) << context;
    ExpectLiveMatchesStatic(**recovered, ModelDocs(ops, trace.OpsCovered(prefix)),
                            vocab, queries, 5, context.c_str());
  }
}

TEST(WalRecoveryTest, TrailingGarbageIsDiscardedNotFatal) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const std::vector<Doc> queries = SmallQueries(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  std::string wal_path;
  uint64_t generation = 0;
  auto image = BuildCommittedImage(ops, options, &wal_path, &generation);
  ASSERT_NE(image, nullptr);
  std::string bytes = image->FileBytes(wal_path);
  bytes += std::string("\x7f\x00garbage\xff\xfe trailing", 20);
  image->SetFileBytes(wal_path, bytes);

  LiveIndex::RecoveryStats stats;
  auto recovered = LiveIndex::Recover(image.get(), kDir, options, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(stats.wal_tail_lost);
  EXPECT_EQ((*recovered)->wal_sequence(), TraceOf(ops, options).total_records());
  ExpectLiveMatchesStatic(**recovered, ModelDocs(ops, ops.size()), vocab,
                          queries, 5, "trailing-garbage");
}

TEST(WalRecoveryTest, StaleGenerationWalIsRejected) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  std::string wal_path;
  uint64_t generation = 0;
  auto image = BuildCommittedImage(ops, options, &wal_path, &generation);
  ASSERT_NE(image, nullptr);
  // A WAL whose header claims a DIFFERENT generation than CURRENT names —
  // e.g. a stale file resurrected by a broken backup — must not replay:
  // its sequence numbers describe a different manifest's suffix.
  image->SetFileBytes(wal_path, EncodeWalHeader(generation + 7, 0));
  auto recovered = LiveIndex::Recover(image.get(), kDir, options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), util::StatusCode::kDataLoss);
}

TEST(WalRecoveryTest, MissingOrCorruptCommittedFilesAreDataLoss) {
  const size_t vocab = 16;
  const std::vector<Op> ops = SmallScript(vocab);
  const LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  std::string wal_path;
  uint64_t generation = 0;
  auto image = BuildCommittedImage(ops, options, &wal_path, &generation);
  ASSERT_NE(image, nullptr);
  const std::string manifest_path =
      std::string(kDir) + "/" + ManifestFileName(generation);

  {
    auto broken = image->Clone();
    ASSERT_TRUE(broken->Remove(manifest_path).ok());
    auto r = LiveIndex::Recover(broken.get(), kDir, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  }
  {
    auto broken = image->Clone();
    ASSERT_TRUE(broken->Remove(wal_path).ok());
    auto r = LiveIndex::Recover(broken.get(), kDir, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  }
  {
    // Every byte of the committed manifest is load-bearing: any flip is
    // caught by the CRC (or a structural check) and refused cleanly.
    const size_t len = image->FileBytes(manifest_path).size();
    for (size_t offset = 0; offset < len; offset += 7) {
      auto broken = image->Clone();
      broken->CorruptByte(manifest_path, offset, 0x10);
      auto r = LiveIndex::Recover(broken.get(), kDir, options);
      ASSERT_FALSE(r.ok()) << "manifest flip@" << offset;
      EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss)
          << "manifest flip@" << offset;
    }
  }
  {
    auto broken = image->Clone();
    broken->SetFileBytes(std::string(kDir) + "/CURRENT", "not a number\n");
    auto r = LiveIndex::Recover(broken.get(), kDir, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  }
}

// ------------------------------------------- random 16-stream schedules --

TEST(WalRecoveryTest, RandomSixteenStreamSchedulesSurviveRandomCrashes) {
  // Sixteen independent logical ingest/delete streams interleaved by a
  // seeded scheduler, over a bigger vocabulary, with auto-seals, tiered
  // merges and periodic ForceMerge — which is NOT logged, so recovery must
  // be merge-schedule-invariant. Crash at sampled WAL byte offsets and
  // check full parity each time.
  const size_t vocab = 48;
  util::Rng rng(0xC0FFEE);
  struct Stream {
    util::Rng rng;
    size_t ingested = 0;
  };
  std::vector<Stream> streams;
  for (int s = 0; s < 16; ++s) {
    streams.push_back(Stream{util::Rng(1000 + s), 0});
  }
  std::vector<Op> ops;
  ops.push_back(TermSpaceOp(vocab));
  std::vector<StableId> assigned;  // all stable ids ever ingested
  for (int step = 0; step < 140; ++step) {
    Stream& stream = streams[rng.UniformInt(uint64_t{16})];
    const uint64_t kind = stream.rng.UniformInt(uint64_t{10});
    if (kind < 6 || assigned.empty()) {
      std::vector<Doc> docs;
      const size_t n = 1 + stream.rng.UniformInt(uint64_t{5});
      for (size_t i = 0; i < n; ++i) {
        assigned.push_back(assigned.size());
        docs.push_back(SynthDoc(stream.rng, vocab));
      }
      stream.ingested += docs.size();
      ops.push_back(IngestOp(std::move(docs)));
    } else if (kind < 9) {
      ops.push_back(
          DeleteOp(assigned[stream.rng.UniformInt(assigned.size())]));
    } else {
      ops.push_back(SealOp());
    }
  }

  LiveIndexOptions options = SmallOptions(DurabilityPolicy::kPerBatch);
  options.max_writer_docs = 16;
  // The trace must mirror the run below exactly — including ForceMerge's
  // unlogged writer seals, which change whether LATER explicit seals log.
  ScriptTrace trace(options);
  for (size_t i = 0; i < ops.size(); ++i) {
    trace.Feed(ops[i]);
    if (i % 37 == 36) trace.NoteUnloggedSeal();
  }
  FaultInjectingFileSystem fs;
  uint64_t generation = 0;
  {
    auto live = LiveIndex::Recover(&fs, kDir, options);
    ASSERT_TRUE(live.ok());
    for (size_t i = 0; i < ops.size(); ++i) {
      ApplyOpsRange(**live, ops, i, i + 1);
      if (i % 37 == 36) (*live)->ForceMerge();  // unlogged physical churn
    }
    ASSERT_TRUE((*live)->healthy());
    ASSERT_EQ((*live)->wal_sequence(), trace.total_records());
    generation = (*live)->wal_generation();
  }
  const std::string wal_path = std::string(kDir) + "/" + WalFileName(generation);
  const std::string wal_bytes = fs.FileBytes(wal_path);
  ASSERT_GT(wal_bytes.size(), 1000u);
  const size_t header_len = EncodeWalHeader(generation, 0).size();

  const std::vector<Doc> queries = SmallQueries(vocab);
  // ~20 crash points spread over the file, plus both ends.
  size_t prev_prefix = 0;
  for (size_t sample = 0; sample <= 20; ++sample) {
    const size_t cut = sample * wal_bytes.size() / 20;
    auto crash = fs.Clone();
    crash->Truncate(wal_path, cut);
    const std::string context = "stream-cut=" + std::to_string(cut);
    if (cut < header_len) {
      auto r = LiveIndex::Recover(crash.get(), kDir, options);
      ASSERT_FALSE(r.ok()) << context;
      EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss) << context;
      continue;
    }
    const size_t prefix = RecoverAndCheck(crash.get(), options, ops, trace,
                                          vocab, queries, context.c_str());
    EXPECT_GE(prefix, prev_prefix) << context;
    prev_prefix = prefix;
  }
  EXPECT_EQ(prev_prefix, trace.total_records());
}

// ------------------------------------------------------ wire-format unit --

TEST(WalFormatTest, RecordRoundTripAllTypes) {
  using index::live::EncodeWalRecord;
  using index::live::ParseWal;
  using index::live::WalRecord;
  using index::live::WalRecordType;

  std::string file = EncodeWalHeader(3, 40);
  WalRecord ingest;
  ingest.seq = 40;
  ingest.type = WalRecordType::kIngest;
  ingest.docs = {{1, 2, 7}, {}, {5}};
  WalRecord del;
  del.seq = 41;
  del.type = WalRecordType::kDelete;
  del.stable = 123456789;
  WalRecord seal;
  seal.seq = 42;
  seal.type = WalRecordType::kSeal;
  WalRecord terms;
  terms.seq = 43;
  terms.type = WalRecordType::kTermSpace;
  terms.num_terms = 99;
  for (const WalRecord* r : {&ingest, &del, &seal, &terms}) {
    file += EncodeWalRecord(*r);
  }

  auto replay = ParseWal(file);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->generation, 3u);
  EXPECT_EQ(replay->base_seq, 40u);
  EXPECT_FALSE(replay->tail_lost);
  EXPECT_EQ(replay->next_seq, 44u);
  ASSERT_EQ(replay->records.size(), 4u);
  EXPECT_EQ(replay->records[0].docs, ingest.docs);
  EXPECT_EQ(replay->records[1].stable, del.stable);
  EXPECT_EQ(replay->records[2].type, WalRecordType::kSeal);
  EXPECT_EQ(replay->records[3].num_terms, 99u);
}

TEST(WalFormatTest, SequenceGapStopsReplay) {
  using index::live::EncodeWalRecord;
  using index::live::ParseWal;
  using index::live::WalRecord;
  using index::live::WalRecordType;

  std::string file = EncodeWalHeader(1, 0);
  WalRecord a;
  a.seq = 0;
  a.type = WalRecordType::kSeal;
  WalRecord stitched;
  stitched.seq = 5;  // CRC-valid record from some other life; wrong seq
  stitched.type = WalRecordType::kSeal;
  file += EncodeWalRecord(a);
  file += EncodeWalRecord(stitched);
  auto replay = ParseWal(file);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 1u);
  EXPECT_TRUE(replay->tail_lost);
}

TEST(WalFormatTest, ManifestFileRejectsEveryDefect) {
  using index::live::EncodeManifestFile;
  using index::live::ParseManifestFile;

  const std::string good = EncodeManifestFile(7, 1234, "payload-bytes");
  auto parsed = ParseManifestFile(good);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->generation, 7u);
  EXPECT_EQ(parsed->base_seq, 1234u);
  EXPECT_EQ(parsed->blob, "payload-bytes");

  EXPECT_FALSE(ParseManifestFile("").ok());
  EXPECT_FALSE(ParseManifestFile(good + "x").ok());          // trailing bytes
  EXPECT_FALSE(ParseManifestFile(good.substr(0, 10)).ok());  // truncated
  std::string flipped = good;
  flipped[8] = static_cast<char>(flipped[8] ^ 0x01);
  EXPECT_FALSE(ParseManifestFile(flipped).ok());             // bit flip
}

}  // namespace
}  // namespace toppriv
