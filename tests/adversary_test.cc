// Unit tests for the adversary suite (paper Section IV-D attack scenarios).
#include <vector>

#include <gtest/gtest.h>

#include "adversary/attacks.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"
#include "toppriv/ghost_generator.h"

namespace toppriv::adversary {
namespace {

using toppriv::testing::World;

class AdversaryTest : public ::testing::Test {
 protected:
  AdversaryTest() : inferencer_(World().model) {}

  // Builds a protected CycleView for workload query `qi`.
  CycleView MakeProtectedCycle(size_t qi, uint64_t seed = 3) {
    core::PrivacySpec spec;
    core::GhostQueryGenerator generator(World().model, inferencer_, spec);
    util::Rng rng(seed);
    core::QueryCycle cycle =
        generator.Protect(World().workload[qi].term_ids, &rng);
    CycleView view;
    view.queries = cycle.queries;
    view.true_user_index = cycle.user_index;
    view.true_intention = cycle.intention;
    return view;
  }

  // Unprotected view: the bare user query.
  CycleView MakeUnprotectedCycle(size_t qi) {
    core::BeliefProfile profile = core::MakeBeliefProfile(
        World().model, inferencer_.InferQuery(World().workload[qi].term_ids));
    CycleView view;
    view.queries = {World().workload[qi].term_ids};
    view.true_user_index = 0;
    view.true_intention = core::ExtractIntention(profile, 0.05);
    return view;
  }

  topicmodel::LdaInferencer inferencer_;
};

// ---------------------------------------------------------- ScoreRecovery --

TEST(ScoreRecoveryTest, KnownCases) {
  RecoveryScore s = ScoreRecovery({1, 2, 3}, {2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  s = ScoreRecovery({}, {1});
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  s = ScoreRecovery({1}, {});
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  s = ScoreRecovery({7, 8}, {7, 8});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

// ----------------------------------------------------- TopicInferenceAttack --

TEST_F(AdversaryTest, RecoversIntentionFromUnprotectedQuery) {
  TopicInferenceAttack attack(World().model, inferencer_);
  double total_recall = 0.0;
  size_t evaluated = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    CycleView view = MakeUnprotectedCycle(qi);
    if (view.true_intention.empty()) continue;
    RecoveryScore score = attack.Evaluate(view, 3);
    total_recall += score.recall;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 4u);
  // Without protection the top-boost topics ARE the intention.
  EXPECT_GT(total_recall / static_cast<double>(evaluated), 0.9);
}

TEST_F(AdversaryTest, ProtectionCollapsesTopicRecovery) {
  TopicInferenceAttack attack(World().model, inferencer_);
  double protected_recall = 0.0, plain_recall = 0.0;
  size_t evaluated = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    CycleView plain = MakeUnprotectedCycle(qi);
    if (plain.true_intention.empty()) continue;
    CycleView guarded = MakeProtectedCycle(qi);
    plain_recall += attack.Evaluate(plain, 3).recall;
    protected_recall += attack.Evaluate(guarded, 3).recall;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 4u);
  EXPECT_LT(protected_recall, plain_recall * 0.6);
}

TEST_F(AdversaryTest, GuessedIntentionSizeIsM) {
  TopicInferenceAttack attack(World().model, inferencer_);
  CycleView view = MakeProtectedCycle(0);
  EXPECT_EQ(attack.GuessIntention(view, 5).size(), 5u);
  EXPECT_EQ(attack.GuessIntention(view, 1).size(), 1u);
}

// ------------------------------------------------------ GhostDiscountAttack --

TEST_F(AdversaryTest, UserQueryIdentificationNearChance) {
  // Over many protected cycles, identifying the genuine query should work
  // at roughly chance level 1/v (the paper's resilience claim). We allow a
  // generous margin but require it to be far from reliable.
  GhostDiscountAttack attack(World().model, inferencer_, 0.05);
  size_t correct = 0, total = 0;
  double chance_sum = 0.0;
  for (size_t qi = 0; qi < 12; ++qi) {
    CycleView view = MakeProtectedCycle(qi, 100 + qi);
    if (view.queries.size() < 2) continue;
    if (attack.Evaluate(view)) ++correct;
    chance_sum += 1.0 / static_cast<double>(view.queries.size());
    ++total;
  }
  ASSERT_GT(total, 6u);
  double accuracy = static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_LT(accuracy, 0.75);  // far from reliable identification
}

TEST_F(AdversaryTest, SingletonCycleIsTriviallyIdentified) {
  GhostDiscountAttack attack(World().model, inferencer_, 0.05);
  CycleView view = MakeUnprotectedCycle(0);
  EXPECT_EQ(attack.IdentifyUserQuery(view), 0u);
}

// ---------------------------------------------------- TermEliminationAttack --

TEST_F(AdversaryTest, TermEliminationHasNoSafeDiscountDepth) {
  // The paper's defense against term elimination is that the adversary does
  // not know how many exposed topics to discount: too few leaves masking
  // topics in place, too many eliminates the genuine terms along with the
  // ghosts (the "apache" example). REPRODUCTION NOTE: with a shallow
  // discount the attack recovers more here than the paper suggests, because
  // our synthetic topics have nearly disjoint seed vocabularies (WSJ topics
  // share terms, which is exactly what blunts the attack there); see
  // EXPERIMENTS.md. What must still hold is the no-safe-depth property:
  // discounting deeply (past the typical masking-topic count) destroys the
  // recovery that shallow discounting achieves.
  TermEliminationAttack attack(World().model, inferencer_);
  double total_recall = 0.0, deep_recall = 0.0;
  size_t evaluated = 0, depths = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    CycleView view = MakeProtectedCycle(qi, 200 + qi);
    if (view.true_intention.empty()) continue;
    for (size_t m : {2u, 3u, 6u, 12u}) {
      total_recall += attack.Evaluate(view, m, /*guess_m=*/3).recall;
      ++depths;
    }
    deep_recall += attack.Evaluate(view, /*discount_m=*/12,
                                   /*guess_m=*/3).recall;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 4u);
  EXPECT_LT(total_recall / static_cast<double>(depths), 0.35);
  EXPECT_LT(deep_recall / static_cast<double>(evaluated), 0.2);
}

TEST_F(AdversaryTest, TermEliminationHandlesEmptyResidual) {
  TermEliminationAttack attack(World().model, inferencer_);
  CycleView view;
  view.queries = {{0}};  // single term; discounting its topic empties the bag
  view.true_intention = {0};
  std::vector<topicmodel::TopicId> guess = attack.GuessIntention(
      view, World().model.num_topics(), 3);
  EXPECT_TRUE(guess.empty());
}

// ----------------------------------------------------------- ProbingAttack --

TEST_F(AdversaryTest, ReplayCannotReproduceGhosts) {
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  ProbingAttack attack(&generator);
  util::Rng rng(999);
  double total_rate = 0.0;
  size_t cycles = 0;
  for (size_t qi = 0; qi < 5; ++qi) {
    CycleView view = MakeProtectedCycle(qi, 300 + qi);
    if (view.queries.size() < 2) continue;
    total_rate += attack.BestReplayMatchRate(view, &rng);
    ++cycles;
  }
  ASSERT_GT(cycles, 2u);
  // Randomized topic/word selection makes exact reproduction essentially
  // impossible (paper Section IV-D, probing queries).
  EXPECT_LT(total_rate / static_cast<double>(cycles), 0.05);
}

TEST_F(AdversaryTest, ProbingSingletonCycleIsZero) {
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(World().model, inferencer_, spec);
  ProbingAttack attack(&generator);
  util::Rng rng(1);
  CycleView view = MakeUnprotectedCycle(0);
  EXPECT_DOUBLE_EQ(attack.BestReplayMatchRate(view, &rng), 0.0);
}

}  // namespace
}  // namespace toppriv::adversary
