// Cross-module property tests: parameterized sweeps of the invariants the
// (epsilon1, epsilon2) model and its substrates must satisfy for EVERY
// configuration, not just the defaults the unit tests pin down.
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"
#include "toppriv/ghost_generator.h"

namespace toppriv {
namespace {

using toppriv::testing::World;

// ------------------------------------------------ (eps1, eps2) grid sweep --

struct SpecPoint {
  double eps1;
  double eps2;
};

class PrivacyModelGrid : public ::testing::TestWithParam<SpecPoint> {};

TEST_P(PrivacyModelGrid, InvariantsHoldAcrossThresholds) {
  core::PrivacySpec spec;
  spec.epsilon1 = GetParam().eps1;
  spec.epsilon2 = GetParam().eps2;
  ASSERT_TRUE(spec.Validate().ok());

  topicmodel::LdaInferencer inferencer(World().model);
  core::GhostQueryGenerator generator(World().model, inferencer, spec);
  util::Rng rng(4242);

  for (size_t qi = 0; qi < 8; ++qi) {
    core::QueryCycle cycle =
        generator.Protect(World().workload[qi].term_ids, &rng);

    // I1: the genuine query is in the cycle at user_index, unmodified.
    ASSERT_LT(cycle.user_index, cycle.queries.size());
    EXPECT_EQ(cycle.user_query(), World().workload[qi].term_ids);

    // I2: exposure never increases.
    EXPECT_LE(cycle.exposure_after, cycle.exposure_before + 1e-12);

    // I3: every intention topic exceeded eps1 on the raw query; every
    // non-intention topic did not.
    for (size_t t = 0; t < cycle.user_boost.size(); ++t) {
      bool in_u = false;
      for (topicmodel::TopicId u : cycle.intention) {
        if (u == t) in_u = true;
      }
      if (in_u) {
        EXPECT_GT(cycle.user_boost[t], spec.epsilon1);
      } else {
        EXPECT_LE(cycle.user_boost[t], spec.epsilon1);
      }
    }

    // I4: met_epsilon2 agrees with the final exposure.
    EXPECT_EQ(cycle.met_epsilon2,
              cycle.exposure_after <= spec.epsilon2);

    // I5: masking topics are distinct, outside U, and one per ghost.
    EXPECT_EQ(cycle.masking_topics.size(), cycle.num_ghosts());
    std::set<topicmodel::TopicId> distinct(cycle.masking_topics.begin(),
                                           cycle.masking_topics.end());
    EXPECT_EQ(distinct.size(), cycle.masking_topics.size());
    for (topicmodel::TopicId t : cycle.masking_topics) {
      for (topicmodel::TopicId u : cycle.intention) EXPECT_NE(t, u);
    }

    // I6: no empty ghost queries.
    for (const auto& q : cycle.queries) EXPECT_FALSE(q.empty());

    // I7: termination bound — at most one ghost or rejection per topic.
    EXPECT_LE(cycle.masking_topics.size() + cycle.rejected_topics.size(),
              World().model.num_topics());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdGrid, PrivacyModelGrid,
    ::testing::Values(SpecPoint{0.05, 0.05}, SpecPoint{0.05, 0.03},
                      SpecPoint{0.05, 0.01}, SpecPoint{0.05, 0.005},
                      SpecPoint{0.03, 0.03}, SpecPoint{0.03, 0.01},
                      SpecPoint{0.02, 0.02}, SpecPoint{0.01, 0.01},
                      SpecPoint{0.10, 0.02}));

// -------------------------------------------------- fixed-cycle-count grid --

class FixedCountGrid : public ::testing::TestWithParam<size_t> {};

TEST_P(FixedCountGrid, ExactGhostCountAndMonotoneDilution) {
  core::PrivacySpec spec;
  spec.fixed_ghost_count = GetParam();
  topicmodel::LdaInferencer inferencer(World().model);
  core::GhostQueryGenerator generator(World().model, inferencer, spec);
  util::Rng rng(5);
  core::QueryCycle cycle =
      generator.Protect(World().workload[1].term_ids, &rng);
  EXPECT_EQ(cycle.num_ghosts(), GetParam());
  EXPECT_LE(cycle.exposure_after, cycle.exposure_before + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Counts, FixedCountGrid,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ----------------------------------------------------- inference sweeps --

class InferenceDistribution : public ::testing::TestWithParam<size_t> {};

TEST_P(InferenceDistribution, PosteriorsAreDistributionsForAllQueries) {
  topicmodel::LdaInferencer inferencer(World().model);
  const auto& q = World().workload[GetParam()];
  std::vector<double> posterior = inferencer.InferQuery(q.term_ids);
  double sum = std::accumulate(posterior.begin(), posterior.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double p : posterior) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  // Boost sums to ~0 (both posterior and prior are distributions).
  core::BeliefProfile profile =
      core::MakeBeliefProfile(World().model, posterior);
  double boost_sum =
      std::accumulate(profile.boost.begin(), profile.boost.end(), 0.0);
  EXPECT_NEAR(boost_sum, 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Queries, InferenceDistribution,
                         ::testing::Range<size_t>(0, 20));

TEST(InferencePropertyTest, CyclePosteriorIsConvexCombination) {
  topicmodel::LdaInferencer inferencer(World().model);
  std::vector<std::vector<double>> posteriors;
  for (size_t qi = 0; qi < 4; ++qi) {
    posteriors.push_back(inferencer.InferQuery(World().workload[qi].term_ids));
  }
  std::vector<double> mix =
      topicmodel::LdaInferencer::CyclePosterior(posteriors);
  for (size_t t = 0; t < mix.size(); ++t) {
    double lo = posteriors[0][t], hi = posteriors[0][t];
    for (const auto& p : posteriors) {
      lo = std::min(lo, p[t]);
      hi = std::max(hi, p[t]);
    }
    EXPECT_GE(mix[t], lo - 1e-12);
    EXPECT_LE(mix[t], hi + 1e-12);
  }
  // k copies of one posterior mix to itself.
  std::vector<std::vector<double>> copies(5, posteriors[0]);
  std::vector<double> self = topicmodel::LdaInferencer::CyclePosterior(copies);
  for (size_t t = 0; t < self.size(); ++t) {
    EXPECT_NEAR(self[t], posteriors[0][t], 1e-12);
  }
}

// ---------------------------------------------- corpus/index size sweeps --

class CorpusScale : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusScale, EndToEndConsistencyAtEveryScale) {
  corpus::GeneratorParams params;
  params.num_docs = GetParam();
  params.tail_vocab_size = 200;
  corpus::CorpusGenerator generator(params);
  corpus::Corpus corpus = generator.Generate();

  // Vocabulary statistics agree with a direct recount.
  uint64_t token_count = 0;
  for (const corpus::Document& d : corpus.documents()) {
    token_count += d.tokens.size();
  }
  EXPECT_EQ(token_count, corpus.total_tokens());
  EXPECT_EQ(corpus.vocabulary().total_tokens(), corpus.total_tokens());

  // Index invariants: postings count per term == df == DocFreq.
  index::InvertedIndex index = index::InvertedIndex::Build(corpus);
  uint64_t posting_tf_total = 0;
  for (text::TermId t = 0; t < corpus.vocabulary_size(); ++t) {
    const index::PostingList& list = index.Postings(t);
    EXPECT_EQ(list.size(), corpus.vocabulary().DocFreq(t));
    uint64_t cf = 0;
    for (auto it = list.begin(); it.Valid(); it.Next()) cf += it.Get().tf;
    EXPECT_EQ(cf, corpus.vocabulary().CollectionFreq(t));
    posting_tf_total += cf;
  }
  EXPECT_EQ(posting_tf_total, corpus.total_tokens());

  // Serialization roundtrips at this scale.
  auto corpus2 = corpus::Corpus::Deserialize(corpus.Serialize());
  ASSERT_TRUE(corpus2.ok());
  EXPECT_EQ(corpus2->Serialize(), corpus.Serialize());
  auto index2 = index::InvertedIndex::Deserialize(index.Serialize());
  ASSERT_TRUE(index2.ok());
  EXPECT_EQ(index2->Serialize(), index.Serialize());
}

INSTANTIATE_TEST_SUITE_P(Scales, CorpusScale,
                         ::testing::Values(1, 5, 40, 150, 400));

// --------------------------------------------------------- scorer sweeps --

class ScorerRankingSanity : public ::testing::TestWithParam<int> {};

TEST_P(ScorerRankingSanity, AllScorersRankMatchingDocsAboveNonMatching) {
  const auto& world = World();
  std::unique_ptr<search::Scorer> scorer;
  switch (GetParam()) {
    case 0:
      scorer = search::MakeTfIdfScorer();
      break;
    case 1:
      scorer = search::MakeBm25Scorer();
      break;
    default:
      scorer = std::make_unique<search::LmDirichletScorer>();
      break;
  }
  search::SearchEngine engine(world.corpus, world.index, std::move(scorer));
  for (size_t qi = 0; qi < 5; ++qi) {
    const auto& q = world.workload[qi];
    std::vector<search::ScoredDoc> results = engine.Evaluate(q.term_ids, 10);
    ASSERT_FALSE(results.empty());
    std::set<text::TermId> terms(q.term_ids.begin(), q.term_ids.end());
    for (const search::ScoredDoc& sd : results) {
      // Every returned document must contain at least one query term.
      bool contains = false;
      for (text::TermId t : world.corpus.document(sd.doc).tokens) {
        if (terms.count(t)) contains = true;
      }
      EXPECT_TRUE(contains) << "scorer " << GetParam();
    }
    // Scores descend.
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_GE(results[i - 1].score, results[i].score - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scorers, ScorerRankingSanity,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace toppriv
