// Tests for representative-corpus sampling (the paper's Section V-A future
// work) and query-log segmentation (the threat model's grouping assumption).
#include <set>

#include <gtest/gtest.h>

#include "adversary/log_segmentation.h"
#include "corpus/sampling.h"
#include "tests/test_helpers.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"

namespace toppriv {
namespace {

using toppriv::testing::World;

// --------------------------------------------------------------- Sampling --

TEST(SamplingTest, ImpactfulTermsRankedAndTruncated) {
  std::vector<text::TermId> half =
      corpus::ImpactfulTerms(World().corpus, 0.5);
  std::vector<text::TermId> all = corpus::ImpactfulTerms(World().corpus, 1.0);
  EXPECT_LT(half.size(), all.size());
  EXPECT_GE(half.size(), all.size() / 2);
  // The retained half must be a subset of the full ranking's prefix.
  std::set<text::TermId> half_set(half.begin(), half.end());
  for (size_t i = 0; i < half.size(); ++i) {
    EXPECT_TRUE(half_set.count(all[i])) << "rank " << i;
  }
}

TEST(SamplingTest, DocumentFractionControlsSize) {
  corpus::SamplingOptions options;
  options.document_fraction = 0.25;
  corpus::Corpus sample = corpus::SampleCorpus(World().corpus, options);
  EXPECT_NEAR(static_cast<double>(sample.num_documents()),
              0.25 * static_cast<double>(World().corpus.num_documents()),
              2.0);
  // Term-id space preserved.
  EXPECT_EQ(sample.vocabulary_size(), World().corpus.vocabulary_size());
  EXPECT_EQ(sample.true_topic_names(), World().corpus.true_topic_names());
}

TEST(SamplingTest, VocabularyFractionDropsTokens) {
  corpus::SamplingOptions options;
  options.vocabulary_fraction = 0.3;
  corpus::Corpus sample = corpus::SampleCorpus(World().corpus, options);
  EXPECT_EQ(sample.num_documents(), World().corpus.num_documents());
  EXPECT_LT(sample.total_tokens(), World().corpus.total_tokens());
  // Every surviving token is in the impactful set.
  std::vector<text::TermId> kept =
      corpus::ImpactfulTerms(World().corpus, 0.3);
  std::set<text::TermId> kept_set(kept.begin(), kept.end());
  for (const corpus::Document& d : sample.documents()) {
    for (text::TermId t : d.tokens) {
      EXPECT_TRUE(kept_set.count(t));
    }
  }
}

TEST(SamplingTest, FullFractionsAreIdentityOnContent) {
  corpus::SamplingOptions options;  // 1.0 / 1.0
  corpus::Corpus sample = corpus::SampleCorpus(World().corpus, options);
  ASSERT_EQ(sample.num_documents(), World().corpus.num_documents());
  for (size_t d = 0; d < sample.num_documents(); ++d) {
    EXPECT_EQ(sample.documents()[d].tokens, World().corpus.documents()[d].tokens);
  }
}

TEST(SamplingTest, Deterministic) {
  corpus::SamplingOptions options;
  options.document_fraction = 0.5;
  options.vocabulary_fraction = 0.5;
  corpus::Corpus a = corpus::SampleCorpus(World().corpus, options);
  corpus::Corpus b = corpus::SampleCorpus(World().corpus, options);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(SamplingTest, SampleTrainedModelStillFindsIntention) {
  // The future-work claim: a model trained on a reduced corpus should still
  // extract (roughly) the same intention for topical queries.
  corpus::SamplingOptions options;
  options.document_fraction = 0.5;
  options.vocabulary_fraction = 0.6;
  corpus::Corpus sample = corpus::SampleCorpus(World().corpus, options);

  topicmodel::TrainerOptions trainer_options;
  trainer_options.num_topics = 40;
  trainer_options.iterations = 50;
  trainer_options.seed = 99;
  topicmodel::LdaModel sampled_model =
      topicmodel::GibbsTrainer(trainer_options).Train(sample);
  ASSERT_EQ(sampled_model.vocab_size(), World().corpus.vocabulary_size());

  topicmodel::LdaInferencer full(World().model);
  topicmodel::LdaInferencer reduced(sampled_model);
  size_t both = 0, full_only = 0;
  for (size_t qi = 0; qi < 15; ++qi) {
    const auto& q = World().workload[qi];
    bool has_full = !core::ExtractIntention(
                         core::MakeBeliefProfile(World().model,
                                                 full.InferQuery(q.term_ids)),
                         0.05)
                         .empty();
    bool has_reduced =
        !core::ExtractIntention(
             core::MakeBeliefProfile(sampled_model,
                                     reduced.InferQuery(q.term_ids)),
             0.05)
             .empty();
    if (has_full && has_reduced) ++both;
    if (has_full && !has_reduced) ++full_only;
  }
  // Most queries with an intention under the full model keep one under the
  // reduced model.
  EXPECT_GE(both, full_only);
  EXPECT_GT(both, 5u);
}

// ----------------------------------------------------------- Segmentation --

std::vector<search::LoggedQuery> MakeLog(
    const std::vector<size_t>& cycle_sizes) {
  std::vector<search::LoggedQuery> log;
  uint64_t seq = 0;
  for (size_t c = 0; c < cycle_sizes.size(); ++c) {
    for (size_t i = 0; i < cycle_sizes[c]; ++i) {
      search::LoggedQuery entry;
      entry.sequence = seq++;
      entry.cycle_id = c + 1;
      entry.terms = {static_cast<text::TermId>(c)};
      log.push_back(std::move(entry));
    }
  }
  return log;
}

TEST(SegmentationTest, PerfectRecoveryWithBurstTraffic) {
  std::vector<search::LoggedQuery> log = MakeLog({4, 1, 6, 3, 5});
  util::Rng rng(1);
  adversary::SimulateArrivalTimes(&log, /*burst_spacing=*/0.05,
                                  /*min_think=*/5.0, /*max_think=*/60.0,
                                  /*pacing_jitter=*/0.0, &rng);
  std::vector<adversary::Segment> segments =
      adversary::SegmentByGaps(log, /*gap_threshold_seconds=*/1.0);
  ASSERT_EQ(segments.size(), 5u);
  adversary::SegmentationScore score =
      adversary::ScoreSegmentation(segments, log);
  EXPECT_DOUBLE_EQ(score.pair_precision, 1.0);
  EXPECT_DOUBLE_EQ(score.pair_recall, 1.0);
  EXPECT_DOUBLE_EQ(score.exact_cycles, 1.0);
}

TEST(SegmentationTest, PacingJitterDegradesRecovery) {
  std::vector<search::LoggedQuery> log = MakeLog({5, 5, 5, 5, 5, 5, 5, 5});
  util::Rng rng(2);
  // Countermeasure: the client stretches intra-cycle spacing to think-time
  // scales, so the gap signal vanishes.
  adversary::SimulateArrivalTimes(&log, 0.05, 5.0, 60.0,
                                  /*pacing_jitter=*/40.0, &rng);
  std::vector<adversary::Segment> segments =
      adversary::SegmentByGaps(log, 1.0);
  adversary::SegmentationScore score =
      adversary::ScoreSegmentation(segments, log);
  EXPECT_LT(score.exact_cycles, 0.3);
  EXPECT_LT(score.pair_recall, 0.5);
}

TEST(SegmentationTest, ThresholdExtremes) {
  std::vector<search::LoggedQuery> log = MakeLog({3, 3});
  util::Rng rng(3);
  adversary::SimulateArrivalTimes(&log, 0.05, 5.0, 10.0, 0.0, &rng);
  // Huge threshold: everything is one segment (recall 1, precision low).
  auto one = adversary::SegmentByGaps(log, 1e9);
  ASSERT_EQ(one.size(), 1u);
  auto score_one = adversary::ScoreSegmentation(one, log);
  EXPECT_DOUBLE_EQ(score_one.pair_recall, 1.0);
  EXPECT_LT(score_one.pair_precision, 1.0);
  // Zero threshold: every query its own segment (no pairs at all).
  auto atomized = adversary::SegmentByGaps(log, 0.0);
  EXPECT_EQ(atomized.size(), log.size());
  auto score_atom = adversary::ScoreSegmentation(atomized, log);
  EXPECT_DOUBLE_EQ(score_atom.pair_recall, 0.0);
}

TEST(SegmentationTest, EmptyLog) {
  std::vector<search::LoggedQuery> log;
  EXPECT_TRUE(adversary::SegmentByGaps(log, 1.0).empty());
  auto score = adversary::ScoreSegmentation({}, log);
  EXPECT_DOUBLE_EQ(score.pair_precision, 0.0);
}

}  // namespace
}  // namespace toppriv
