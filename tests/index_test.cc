// Unit and property tests for posting lists and the inverted index.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "tests/test_helpers.h"
#include "util/io.h"

namespace toppriv::index {
namespace {

// ------------------------------------------------------------ PostingList --

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.Decode().empty());
  EXPECT_FALSE(list.begin().Valid());
}

TEST(PostingListTest, SingleAndMultiplePostings) {
  PostingList::Builder builder;
  builder.Append(5, 2);
  builder.Append(9, 1);
  builder.Append(1000000, 7);
  PostingList list = builder.Build();
  EXPECT_EQ(list.size(), 3u);
  std::vector<Posting> decoded = list.Decode();
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], (Posting{5, 2}));
  EXPECT_EQ(decoded[1], (Posting{9, 1}));
  EXPECT_EQ(decoded[2], (Posting{1000000, 7}));
}

TEST(PostingListTest, DeltaEncodingIsCompact) {
  PostingList::Builder builder;
  // 100 consecutive docs with tf=1: 1 byte delta + 1 byte tf each, plus the
  // slightly larger first doc id.
  for (corpus::DocId d = 1000; d < 1100; ++d) builder.Append(d, 1);
  PostingList list = builder.Build();
  EXPECT_LE(list.ByteSize(), 2u * 100 + 2);
}

TEST(PostingListTest, BuilderReusableAfterBuild) {
  PostingList::Builder builder;
  builder.Append(1, 1);
  PostingList first = builder.Build();
  builder.Append(2, 3);  // fresh sequence; doc ids restart
  PostingList second = builder.Build();
  EXPECT_EQ(first.Decode()[0], (Posting{1, 1}));
  EXPECT_EQ(second.Decode()[0], (Posting{2, 3}));
}

class PostingListRoundtrip : public ::testing::TestWithParam<size_t> {};

TEST_P(PostingListRoundtrip, EncodeDecodeRandomLists) {
  util::Rng rng(GetParam() * 7919 + 1);
  PostingList::Builder builder;
  std::vector<Posting> expected;
  corpus::DocId doc = 0;
  for (size_t i = 0; i < GetParam(); ++i) {
    doc += 1 + static_cast<corpus::DocId>(rng.UniformInt(uint64_t{1000}));
    uint32_t tf = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{50}));
    builder.Append(doc, tf);
    expected.push_back({doc, tf});
  }
  PostingList list = builder.Build();
  EXPECT_EQ(list.Decode(), expected);

  // Serialization roundtrip.
  std::string bytes;
  list.EncodeTo(&bytes);
  size_t pos = 0;
  auto restored = PostingList::DecodeFrom(bytes, &pos);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(restored->Decode(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PostingListRoundtrip,
                         ::testing::Values(1, 2, 10, 100, 1000, 5000));

TEST(PostingListTest, DecodeFromTruncatedFails) {
  PostingList::Builder builder;
  builder.Append(10, 2);
  builder.Append(20, 2);
  PostingList list = builder.Build();
  std::string bytes;
  list.EncodeTo(&bytes);
  bytes.resize(bytes.size() - 2);
  size_t pos = 0;
  EXPECT_FALSE(PostingList::DecodeFrom(bytes, &pos).ok());
}

// ---------------------------------------------------------- InvertedIndex --

TEST(InvertedIndexTest, MatchesNaiveCountsOnTinyCorpus) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex index = InvertedIndex::Build(c);
  EXPECT_EQ(index.num_documents(), 4u);
  EXPECT_EQ(index.num_terms(), 4u);

  text::TermId tank = c.vocabulary().Lookup("tank");
  std::vector<Posting> postings = index.Postings(tank).Decode();
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], (Posting{0, 2}));  // war1: tank x2
  EXPECT_EQ(postings[1], (Posting{1, 1}));  // war2
  EXPECT_EQ(postings[2], (Posting{3, 1}));  // mix1

  text::TermId stock = c.vocabulary().Lookup("stock");
  EXPECT_EQ(index.DocFreq(stock), 2u);
  EXPECT_EQ(index.DocLength(2), 5u);
  EXPECT_DOUBLE_EQ(index.avg_doc_length(), 12.0 / 4.0);
}

TEST(InvertedIndexTest, MatchesBruteForceOnGeneratedCorpus) {
  corpus::GeneratorParams params;
  params.num_docs = 80;
  params.tail_vocab_size = 200;
  corpus::Corpus c = corpus::CorpusGenerator(params).Generate();
  InvertedIndex index = InvertedIndex::Build(c);

  // Brute-force df/cf per term from raw documents.
  std::map<text::TermId, std::map<corpus::DocId, uint32_t>> brute;
  for (const corpus::Document& d : c.documents()) {
    for (text::TermId t : d.tokens) ++brute[t][d.id];
  }
  for (const auto& [term, docs] : brute) {
    std::vector<Posting> postings = index.Postings(term).Decode();
    ASSERT_EQ(postings.size(), docs.size()) << "term " << term;
    size_t i = 0;
    for (const auto& [doc, tf] : docs) {
      EXPECT_EQ(postings[i].doc, doc);
      EXPECT_EQ(postings[i].tf, tf);
      ++i;
    }
  }
  // Terms never used have empty lists.
  for (text::TermId t = 0; t < c.vocabulary_size(); ++t) {
    if (!brute.count(t)) {
      EXPECT_TRUE(index.Postings(t).empty());
    }
  }
}

TEST(InvertedIndexTest, OutOfRangeTermIsEmpty) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex index = InvertedIndex::Build(c);
  EXPECT_TRUE(index.Postings(9999).empty());
  EXPECT_EQ(index.DocFreq(9999), 0u);
}

TEST(InvertedIndexTest, StatsMatchPaperArithmetic) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex index = InvertedIndex::Build(c);
  IndexStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_terms, 4u);
  EXPECT_EQ(stats.num_documents, 4u);
  // tank:3 missile:2 stock:2 market:1 postings.
  EXPECT_EQ(stats.total_postings, 8u);
  EXPECT_EQ(stats.max_list_length, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_list_length, 2.0);
  // PIR padding: every list padded to max length at 8 bytes per pair.
  EXPECT_EQ(stats.pir_padded_bytes, 4u * 3u * 8u);
  EXPECT_GT(stats.encoded_bytes, 0u);
  EXPECT_LT(stats.encoded_bytes, stats.pir_padded_bytes);
}

TEST(InvertedIndexTest, SerializeRoundtrip) {
  const auto& world = toppriv::testing::World();
  std::string bytes = world.index.Serialize();
  auto restored = InvertedIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_documents(), world.index.num_documents());
  EXPECT_EQ(restored->num_terms(), world.index.num_terms());
  EXPECT_DOUBLE_EQ(restored->avg_doc_length(), world.index.avg_doc_length());
  for (text::TermId t = 0; t < 50 && t < world.index.num_terms(); ++t) {
    EXPECT_EQ(restored->Postings(t).Decode(), world.index.Postings(t).Decode());
  }
  IndexStats a = restored->ComputeStats();
  IndexStats b = world.index.ComputeStats();
  EXPECT_EQ(a.total_postings, b.total_postings);
  EXPECT_EQ(a.encoded_bytes, b.encoded_bytes);
}

TEST(InvertedIndexTest, DeserializeGarbageFails) {
  EXPECT_FALSE(InvertedIndex::Deserialize("garbage!").ok());
}

TEST(InvertedIndexTest, HostileDocCountIsRejectedWithoutAllocating) {
  // A few bytes claiming billions of documents: resize(num_docs) used to
  // run before any payload was read, demanding gigabytes. The count must
  // be bounded by the remaining payload instead.
  for (uint64_t hostile : {uint64_t{1} << 30, uint64_t{1} << 45,
                           uint64_t{0xffffffffffffffff}}) {
    util::BinaryWriter w;
    w.WriteVarint(hostile);
    w.WriteVarint(3);  // one plausible doc length
    auto result = InvertedIndex::Deserialize(w.data());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }
}

TEST(InvertedIndexTest, HostileTermCountIsRejected) {
  util::BinaryWriter w;
  w.WriteVarint(1);                    // num_docs
  w.WriteVarint(5);                    // doc length
  w.WriteVarint(uint64_t{1} << 40);    // num_terms >> body size
  w.WriteString("tiny");               // 4-byte body cannot hold 2^40 lists
  auto result = InvertedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(InvertedIndexTest, PostingDocIdOutOfRangeIsRejected) {
  // The contiguous score accumulator and doc-length lookups index
  // per-document arrays by posting doc id; a blob whose postings point
  // past num_docs must die at Deserialize, not corrupt memory later.
  PostingList::Builder builder;
  builder.Append(5, 2);  // doc 5 in a 1-doc index
  std::string body;
  builder.Build().EncodeTo(&body);
  util::BinaryWriter w;
  w.WriteVarint(1);  // num_docs
  w.WriteVarint(3);  // doc length
  w.WriteVarint(1);  // num_terms
  w.WriteString(body);
  auto result = InvertedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(InvertedIndexTest, HostileDocLengthIsRejected) {
  util::BinaryWriter w;
  w.WriteVarint(1);                     // num_docs
  w.WriteVarint(uint64_t{1} << 40);     // doc length overflows u32
  w.WriteVarint(0);                     // num_terms
  w.WriteString("");
  EXPECT_FALSE(InvertedIndex::Deserialize(w.data()).ok());
}

TEST(InvertedIndexTest, TruncatedBlobsNeverCrash) {
  // Fuzz-style sweep: every truncation of a valid serialization must fail
  // cleanly (or succeed, if the prefix happens to parse) — no crash, no
  // huge allocation. Covers the varint header, the doc-length array, the
  // term count and the posting-list body.
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  std::string bytes = InvertedIndex::Build(c).Serialize();
  ASSERT_TRUE(InvertedIndex::Deserialize(bytes).ok());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = InvertedIndex::Deserialize(bytes.substr(0, cut));
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss)
          << "cut " << cut;
    }
  }
  // Bit-flip sweep on the header region (counts and lengths).
  for (size_t i = 0; i < std::min<size_t>(bytes.size(), 16); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      InvertedIndex::Deserialize(mutated);  // must not crash or OOM
    }
  }
}

TEST(InvertedIndexTest, IndexGrowsLinearlyWithCorpus) {
  // The Fig. 6 premise: posting data grows roughly linearly in documents.
  corpus::GeneratorParams params;
  params.tail_vocab_size = 400;
  params.num_docs = 100;
  uint64_t size100 =
      InvertedIndex::Build(corpus::CorpusGenerator(params).Generate())
          .ComputeStats()
          .encoded_bytes;
  params.num_docs = 400;
  uint64_t size400 =
      InvertedIndex::Build(corpus::CorpusGenerator(params).Generate())
          .ComputeStats()
          .encoded_bytes;
  EXPECT_GT(size400, size100 * 3);
  EXPECT_LT(size400, size100 * 6);
}

}  // namespace
}  // namespace toppriv::index
