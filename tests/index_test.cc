// Unit and property tests for posting lists and the inverted index.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "tests/test_helpers.h"
#include "util/io.h"

namespace toppriv::index {
namespace {

// ------------------------------------------------------------ PostingList --

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.Decode().empty());
  EXPECT_FALSE(list.begin().Valid());
}

TEST(PostingListTest, SingleAndMultiplePostings) {
  PostingList::Builder builder;
  builder.Append(5, 2);
  builder.Append(9, 1);
  builder.Append(1000000, 7);
  PostingList list = builder.Build();
  EXPECT_EQ(list.size(), 3u);
  std::vector<Posting> decoded = list.Decode();
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], (Posting{5, 2}));
  EXPECT_EQ(decoded[1], (Posting{9, 1}));
  EXPECT_EQ(decoded[2], (Posting{1000000, 7}));
}

TEST(PostingListTest, DeltaEncodingIsCompact) {
  PostingList::Builder builder;
  // 100 consecutive docs with tf=1: 1 byte delta + 1 byte tf each, plus the
  // slightly larger first doc id.
  for (corpus::DocId d = 1000; d < 1100; ++d) builder.Append(d, 1);
  PostingList list = builder.Build();
  EXPECT_LE(list.ByteSize(), 2u * 100 + 2);
}

TEST(PostingListTest, BuilderReusableAfterBuild) {
  PostingList::Builder builder;
  builder.Append(1, 1);
  PostingList first = builder.Build();
  builder.Append(2, 3);  // fresh sequence; doc ids restart
  PostingList second = builder.Build();
  EXPECT_EQ(first.Decode()[0], (Posting{1, 1}));
  EXPECT_EQ(second.Decode()[0], (Posting{2, 3}));
}

class PostingListRoundtrip : public ::testing::TestWithParam<size_t> {};

TEST_P(PostingListRoundtrip, EncodeDecodeRandomLists) {
  util::Rng rng(GetParam() * 7919 + 1);
  PostingList::Builder builder;
  std::vector<Posting> expected;
  corpus::DocId doc = 0;
  for (size_t i = 0; i < GetParam(); ++i) {
    doc += 1 + static_cast<corpus::DocId>(rng.UniformInt(uint64_t{1000}));
    uint32_t tf = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{50}));
    builder.Append(doc, tf);
    expected.push_back({doc, tf});
  }
  PostingList list = builder.Build();
  EXPECT_EQ(list.Decode(), expected);

  // Serialization roundtrip.
  std::string bytes;
  list.EncodeTo(&bytes);
  size_t pos = 0;
  auto restored = PostingList::DecodeFrom(bytes, &pos);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(restored->Decode(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PostingListRoundtrip,
                         ::testing::Values(1, 2, 10, 100, 1000, 5000));

// ------------------------------------------------------ block structure --

class PostingBlockProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(PostingBlockProperty, RoundTripsThroughBlocksAtEverySize) {
  // Sizes straddle the 128-posting block boundary: 0, 1, 127, 128, 129,
  // 1000 (the ISSUE's property grid) — empty list, single partial block,
  // exactly one block, one block + 1, and many blocks with a partial tail.
  const size_t n = GetParam();
  util::Rng rng(n * 131 + 5);
  PostingList::Builder builder;
  std::vector<Posting> expected;
  corpus::DocId doc = 0;
  uint32_t want_max_tf = 0;
  for (size_t i = 0; i < n; ++i) {
    doc += 1 + static_cast<corpus::DocId>(rng.UniformInt(uint64_t{700}));
    uint32_t tf = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{90}));
    builder.Append(doc, tf);
    expected.push_back({doc, tf});
    want_max_tf = std::max(want_max_tf, tf);
  }
  PostingList list = builder.Build();

  // In-memory block directory invariants.
  EXPECT_EQ(list.size(), n);
  EXPECT_EQ(list.num_blocks(), (n + 127) / 128);
  EXPECT_EQ(list.max_tf(), want_max_tf);
  EXPECT_EQ(list.Decode(), expected);
  size_t covered = 0;
  uint32_t directory_max_tf = 0;
  index::PostingBlock block;
  for (size_t b = 0; b < list.num_blocks(); ++b) {
    const PostingList::BlockInfo& info = list.block(b);
    list.DecodeBlock(b, &block);
    ASSERT_EQ(block.count, info.count);
    ASSERT_LE(info.count, index::kPostingBlockSize);
    uint32_t block_max_tf = 0;
    for (uint32_t i = 0; i < block.count; ++i) {
      EXPECT_EQ(block.docs[i], expected[covered + i].doc);
      EXPECT_EQ(block.tfs[i], expected[covered + i].tf);
      block_max_tf = std::max(block_max_tf, block.tfs[i]);
    }
    EXPECT_EQ(info.first_doc, block.docs[0]);
    EXPECT_EQ(info.last_doc, block.docs[block.count - 1]);
    EXPECT_EQ(info.max_tf, block_max_tf);
    directory_max_tf = std::max(directory_max_tf, info.max_tf);
    covered += block.count;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(directory_max_tf, want_max_tf);

  // Wire round trip: decode reproduces everything, re-encode is
  // byte-stable, and the decoder leaves `pos` exactly at the end.
  std::string bytes;
  list.EncodeTo(&bytes);
  size_t pos = 0;
  auto restored = PostingList::DecodeFrom(bytes, &pos);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(restored->Decode(), expected);
  EXPECT_EQ(restored->max_tf(), want_max_tf);
  EXPECT_EQ(restored->num_blocks(), list.num_blocks());
  EXPECT_EQ(restored->ByteSize(), list.ByteSize());
  std::string again;
  restored->EncodeTo(&again);
  EXPECT_EQ(again, bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PostingBlockProperty,
                         ::testing::Values(0, 1, 127, 128, 129, 1000));

TEST(PostingListTest, ByteSizeMatchesClassicDeltaVarintPricing) {
  // The grouped block layout reorders varints but never adds bytes:
  // ByteSize() must equal the interleaved delta+varint pricing the paper's
  // §II arithmetic (and ShardedIndex::ComputeStats) assume.
  util::Rng rng(99);
  PostingList::Builder builder;
  uint64_t priced = 0;
  corpus::DocId doc = 0, prev = 0;
  for (size_t i = 0; i < 777; ++i) {
    doc += 1 + static_cast<corpus::DocId>(rng.UniformInt(uint64_t{30000}));
    uint32_t tf = 1 + static_cast<uint32_t>(rng.UniformInt(uint64_t{300}));
    builder.Append(doc, tf);
    priced += util::VarintSize(i == 0 ? doc : doc - prev) +
              util::VarintSize(tf);
    prev = doc;
  }
  EXPECT_EQ(builder.Build().ByteSize(), priced);
}

TEST(PostingListTest, LegacyV0BlobsStillDecode) {
  // Hand-encode the pre-block wire format: count, nbytes, interleaved
  // (delta, tf) varint pairs. DecodeFrom must transparently transcode it
  // into the block layout.
  std::vector<Posting> expected = {{7, 2}, {9, 1}, {300, 5}, {301, 1}};
  std::string body;
  corpus::DocId prev = 0;
  bool first = true;
  for (const Posting& p : expected) {
    util::AppendVarint(first ? p.doc : p.doc - prev, &body);
    util::AppendVarint(p.tf, &body);
    prev = p.doc;
    first = false;
  }
  std::string bytes;
  util::AppendVarint(expected.size(), &bytes);
  util::AppendVarint(body.size(), &bytes);
  bytes += body;

  size_t pos = 0;
  auto list = PostingList::DecodeFrom(bytes, &pos);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(list->Decode(), expected);
  EXPECT_EQ(list->max_tf(), 5u);
  EXPECT_EQ(list->num_blocks(), 1u);
  // ByteSize is layout-independent, so it survives the transcode.
  EXPECT_EQ(list->ByteSize(), body.size());

  // Legacy empty list: two zero varints.
  std::string empty_bytes;
  util::AppendVarint(0, &empty_bytes);
  util::AppendVarint(0, &empty_bytes);
  pos = 0;
  auto empty = PostingList::DecodeFrom(empty_bytes, &pos);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(PostingListTest, HostileBlockBlobsRejectedCleanly) {
  // A healthy two-block v1 blob to mutate.
  PostingList::Builder builder;
  for (corpus::DocId d = 1; d <= 200; ++d) builder.Append(d * 3, 1 + d % 7);
  PostingList list = builder.Build();
  std::string bytes;
  list.EncodeTo(&bytes);

  // Every truncation dies with DataLoss, never a crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t pos = 0;
    auto result = PostingList::DecodeFrom(bytes.substr(0, cut), &pos);
    EXPECT_FALSE(result.ok()) << "cut " << cut;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss)
        << "cut " << cut;
  }

  // Trailing bytes inside the declared body (count says fewer postings
  // than the body holds): tag, count=1, nbytes=body+1, body, junk byte.
  {
    std::string body;
    util::AppendVarint(5, &body);  // delta
    util::AppendVarint(1, &body);  // tf
    std::string blob;
    util::AppendVarint((uint64_t{1} << 32) | 1, &blob);
    util::AppendVarint(1, &blob);
    util::AppendVarint(body.size() + 1, &blob);
    blob += body;
    blob += 'x';
    size_t pos = 0;
    auto result = PostingList::DecodeFrom(blob + "suffix", &pos);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }

  // Unknown format tag (a future version we do not speak).
  {
    std::string blob;
    util::AppendVarint((uint64_t{1} << 32) | 2, &blob);
    util::AppendVarint(0, &blob);
    util::AppendVarint(0, &blob);
    size_t pos = 0;
    auto result = PostingList::DecodeFrom(blob, &pos);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }

  // Hostile bodies under the v1 tag: zero tf, zero delta (duplicate doc),
  // doc id past the bound, doc id wrapping u32.
  auto v1_blob = [](std::vector<std::pair<uint64_t, uint64_t>> pairs) {
    std::string body;
    for (const auto& [delta, tf] : pairs) util::AppendVarint(delta, &body);
    for (const auto& [delta, tf] : pairs) util::AppendVarint(tf, &body);
    std::string blob;
    util::AppendVarint((uint64_t{1} << 32) | 1, &blob);
    util::AppendVarint(pairs.size(), &blob);
    util::AppendVarint(body.size(), &blob);
    blob += body;
    return blob;
  };
  for (const auto& [blob, what] :
       {std::make_pair(v1_blob({{3, 0}}), "zero tf"),
        std::make_pair(v1_blob({{3, 1}, {0, 1}}), "zero delta"),
        std::make_pair(v1_blob({{3, 1}, {uint64_t{1} << 40, 1}}),
                       "u32 overflow"),
        std::make_pair(v1_blob({{3, 1}, {2, uint64_t{1} << 40}}),
                       "tf overflow")}) {
    size_t pos = 0;
    auto result = PostingList::DecodeFrom(blob, &pos);
    EXPECT_FALSE(result.ok()) << what;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss) << what;
  }
  {
    // In-range doc ids but above the caller's max_doc_exclusive.
    size_t pos = 0;
    auto result =
        PostingList::DecodeFrom(v1_blob({{3, 1}, {4, 2}}), &pos, /*max=*/5);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }

  // Bit-flip sweep over the whole healthy blob: reject or accept, never
  // crash or over-allocate.
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      size_t pos = 0;
      PostingList::DecodeFrom(mutated, &pos, 10000);
    }
  }
  SUCCEED();
}

TEST(PostingListTest, DecodeFromTruncatedFails) {
  PostingList::Builder builder;
  builder.Append(10, 2);
  builder.Append(20, 2);
  PostingList list = builder.Build();
  std::string bytes;
  list.EncodeTo(&bytes);
  bytes.resize(bytes.size() - 2);
  size_t pos = 0;
  EXPECT_FALSE(PostingList::DecodeFrom(bytes, &pos).ok());
}

// ---------------------------------------------------------- InvertedIndex --

TEST(InvertedIndexTest, MatchesNaiveCountsOnTinyCorpus) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex index = InvertedIndex::Build(c);
  EXPECT_EQ(index.num_documents(), 4u);
  EXPECT_EQ(index.num_terms(), 4u);

  text::TermId tank = c.vocabulary().Lookup("tank");
  std::vector<Posting> postings = index.Postings(tank).Decode();
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], (Posting{0, 2}));  // war1: tank x2
  EXPECT_EQ(postings[1], (Posting{1, 1}));  // war2
  EXPECT_EQ(postings[2], (Posting{3, 1}));  // mix1

  text::TermId stock = c.vocabulary().Lookup("stock");
  EXPECT_EQ(index.DocFreq(stock), 2u);
  EXPECT_EQ(index.DocLength(2), 5u);
  EXPECT_DOUBLE_EQ(index.avg_doc_length(), 12.0 / 4.0);
}

TEST(InvertedIndexTest, MatchesBruteForceOnGeneratedCorpus) {
  corpus::GeneratorParams params;
  params.num_docs = 80;
  params.tail_vocab_size = 200;
  corpus::Corpus c = corpus::CorpusGenerator(params).Generate();
  InvertedIndex index = InvertedIndex::Build(c);

  // Brute-force df/cf per term from raw documents.
  std::map<text::TermId, std::map<corpus::DocId, uint32_t>> brute;
  for (const corpus::Document& d : c.documents()) {
    for (text::TermId t : d.tokens) ++brute[t][d.id];
  }
  for (const auto& [term, docs] : brute) {
    std::vector<Posting> postings = index.Postings(term).Decode();
    ASSERT_EQ(postings.size(), docs.size()) << "term " << term;
    size_t i = 0;
    for (const auto& [doc, tf] : docs) {
      EXPECT_EQ(postings[i].doc, doc);
      EXPECT_EQ(postings[i].tf, tf);
      ++i;
    }
  }
  // Terms never used have empty lists.
  for (text::TermId t = 0; t < c.vocabulary_size(); ++t) {
    if (!brute.count(t)) {
      EXPECT_TRUE(index.Postings(t).empty());
    }
  }
}

TEST(InvertedIndexTest, OutOfRangeTermIsEmpty) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex index = InvertedIndex::Build(c);
  EXPECT_TRUE(index.Postings(9999).empty());
  EXPECT_EQ(index.DocFreq(9999), 0u);
}

TEST(InvertedIndexTest, StatsMatchPaperArithmetic) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex index = InvertedIndex::Build(c);
  IndexStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_terms, 4u);
  EXPECT_EQ(stats.num_documents, 4u);
  // tank:3 missile:2 stock:2 market:1 postings.
  EXPECT_EQ(stats.total_postings, 8u);
  EXPECT_EQ(stats.max_list_length, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_list_length, 2.0);
  // PIR padding: every list padded to max length at 8 bytes per pair.
  EXPECT_EQ(stats.pir_padded_bytes, 4u * 3u * 8u);
  EXPECT_GT(stats.encoded_bytes, 0u);
  EXPECT_LT(stats.encoded_bytes, stats.pir_padded_bytes);
}

TEST(InvertedIndexTest, SerializeRoundtrip) {
  const auto& world = toppriv::testing::World();
  std::string bytes = world.index.Serialize();
  auto restored = InvertedIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_documents(), world.index.num_documents());
  EXPECT_EQ(restored->num_terms(), world.index.num_terms());
  EXPECT_DOUBLE_EQ(restored->avg_doc_length(), world.index.avg_doc_length());
  for (text::TermId t = 0; t < 50 && t < world.index.num_terms(); ++t) {
    EXPECT_EQ(restored->Postings(t).Decode(), world.index.Postings(t).Decode());
  }
  IndexStats a = restored->ComputeStats();
  IndexStats b = world.index.ComputeStats();
  EXPECT_EQ(a.total_postings, b.total_postings);
  EXPECT_EQ(a.encoded_bytes, b.encoded_bytes);
}

TEST(InvertedIndexTest, DeserializeGarbageFails) {
  EXPECT_FALSE(InvertedIndex::Deserialize("garbage!").ok());
}

TEST(InvertedIndexTest, HostileDocCountIsRejectedWithoutAllocating) {
  // A few bytes claiming billions of documents: resize(num_docs) used to
  // run before any payload was read, demanding gigabytes. The count must
  // be bounded by the remaining payload instead.
  for (uint64_t hostile : {uint64_t{1} << 30, uint64_t{1} << 45,
                           uint64_t{0xffffffffffffffff}}) {
    util::BinaryWriter w;
    w.WriteVarint(hostile);
    w.WriteVarint(3);  // one plausible doc length
    auto result = InvertedIndex::Deserialize(w.data());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
  }
}

TEST(InvertedIndexTest, HostileTermCountIsRejected) {
  util::BinaryWriter w;
  w.WriteVarint(1);                    // num_docs
  w.WriteVarint(5);                    // doc length
  w.WriteVarint(uint64_t{1} << 40);    // num_terms >> body size
  w.WriteString("tiny");               // 4-byte body cannot hold 2^40 lists
  auto result = InvertedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(InvertedIndexTest, PostingDocIdOutOfRangeIsRejected) {
  // The contiguous score accumulator and doc-length lookups index
  // per-document arrays by posting doc id; a blob whose postings point
  // past num_docs must die at Deserialize, not corrupt memory later.
  PostingList::Builder builder;
  builder.Append(5, 2);  // doc 5 in a 1-doc index
  std::string body;
  builder.Build().EncodeTo(&body);
  util::BinaryWriter w;
  w.WriteVarint(1);  // num_docs
  w.WriteVarint(3);  // doc length
  w.WriteVarint(1);  // num_terms
  w.WriteString(body);
  auto result = InvertedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(InvertedIndexTest, HostileDocLengthIsRejected) {
  util::BinaryWriter w;
  w.WriteVarint(1);                     // num_docs
  w.WriteVarint(uint64_t{1} << 40);     // doc length overflows u32
  w.WriteVarint(0);                     // num_terms
  w.WriteString("");
  EXPECT_FALSE(InvertedIndex::Deserialize(w.data()).ok());
}

TEST(InvertedIndexTest, TruncatedBlobsNeverCrash) {
  // Fuzz-style sweep: every truncation of a valid serialization must fail
  // cleanly (or succeed, if the prefix happens to parse) — no crash, no
  // huge allocation. Covers the varint header, the doc-length array, the
  // term count and the posting-list body.
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  std::string bytes = InvertedIndex::Build(c).Serialize();
  ASSERT_TRUE(InvertedIndex::Deserialize(bytes).ok());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = InvertedIndex::Deserialize(bytes.substr(0, cut));
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss)
          << "cut " << cut;
    }
  }
  // Bit-flip sweep on the header region (counts and lengths).
  for (size_t i = 0; i < std::min<size_t>(bytes.size(), 16); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      InvertedIndex::Deserialize(mutated);  // must not crash or OOM
    }
  }
}

TEST(InvertedIndexTest, IndexGrowsLinearlyWithCorpus) {
  // The Fig. 6 premise: posting data grows roughly linearly in documents.
  corpus::GeneratorParams params;
  params.tail_vocab_size = 400;
  params.num_docs = 100;
  uint64_t size100 =
      InvertedIndex::Build(corpus::CorpusGenerator(params).Generate())
          .ComputeStats()
          .encoded_bytes;
  params.num_docs = 400;
  uint64_t size400 =
      InvertedIndex::Build(corpus::CorpusGenerator(params).Generate())
          .ComputeStats()
          .encoded_bytes;
  EXPECT_GT(size400, size100 * 3);
  EXPECT_LT(size400, size100 * 6);
}

}  // namespace
}  // namespace toppriv::index
