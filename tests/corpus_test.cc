// Unit and property tests for the synthetic corpus and workload generators.
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "corpus/topic_spec.h"
#include "corpus/workload.h"
#include "tests/test_helpers.h"

namespace toppriv::corpus {
namespace {

// ------------------------------------------------------------- TopicSpec --

TEST(TopicSpecTest, CatalogIsSane) {
  const std::vector<TopicSpec>& topics = BuiltinTopics();
  EXPECT_GE(topics.size(), 25u);
  std::set<std::string> names;
  for (const TopicSpec& t : topics) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(t.seed_words.size(), 15u) << t.name;
    names.insert(t.name);
    std::set<std::string> distinct(t.seed_words.begin(), t.seed_words.end());
    EXPECT_EQ(distinct.size(), t.seed_words.size())
        << "duplicate seed word in " << t.name;
  }
  EXPECT_EQ(names.size(), topics.size()) << "duplicate topic names";
}

TEST(TopicSpecTest, PaperRunningExamplesPresent) {
  // The paper's example query 91 terms and ghost-query topics must exist so
  // the demos can reproduce the narrative: weaponry, aviation, finance,
  // technology, education.
  const std::vector<TopicSpec>& topics = BuiltinTopics();
  std::set<std::string> all_words;
  for (const TopicSpec& t : topics) {
    all_words.insert(t.seed_words.begin(), t.seed_words.end());
  }
  for (const char* w : {"apache", "abrams", "tank", "patriot", "helicopter",
                        "dow", "stock", "computer", "school", "students"}) {
    EXPECT_TRUE(all_words.count(w)) << w;
  }
}

TEST(TopicSpecTest, GeneralWordsNonEmptyAndDistinctFromSeeds) {
  EXPECT_GE(GeneralWords().size(), 80u);
}

// ------------------------------------------------------------ PseudoWords --

TEST(PseudoWordTest, DeterministicAndDistinct) {
  std::unordered_set<std::string> words;
  for (size_t i = 0; i < 4000; ++i) {
    std::string w = MakePseudoWord(i);
    EXPECT_EQ(w, MakePseudoWord(i));
    EXPECT_TRUE(words.insert(w).second) << "collision at " << i << ": " << w;
    EXPECT_GE(w.size(), 2u);
  }
}

// ----------------------------------------------------------------- Corpus --

TEST(CorpusTest, AddDocumentUpdatesStatistics) {
  Corpus c = toppriv::testing::TinyCorpus();
  EXPECT_EQ(c.num_documents(), 4u);
  EXPECT_EQ(c.vocabulary_size(), 4u);
  EXPECT_EQ(c.total_tokens(), 12u);
  const text::Vocabulary& v = c.vocabulary();
  text::TermId tank = v.Lookup("tank");
  ASSERT_NE(tank, text::kInvalidTerm);
  EXPECT_EQ(v.DocFreq(tank), 3u);         // war1, war2, mix1
  EXPECT_EQ(v.CollectionFreq(tank), 4u);  // 2 + 1 + 1
}

TEST(CorpusTest, SerializeRoundtrip) {
  Corpus c = toppriv::testing::TinyCorpus();
  c.set_true_topic_names({"war", "finance"});
  auto restored = Corpus::Deserialize(c.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_documents(), c.num_documents());
  EXPECT_EQ(restored->vocabulary_size(), c.vocabulary_size());
  EXPECT_EQ(restored->total_tokens(), c.total_tokens());
  EXPECT_EQ(restored->true_topic_names(),
            (std::vector<std::string>{"war", "finance"}));
  for (size_t d = 0; d < c.num_documents(); ++d) {
    EXPECT_EQ(restored->documents()[d].tokens, c.documents()[d].tokens);
    EXPECT_EQ(restored->documents()[d].title, c.documents()[d].title);
  }
  text::TermId tank = restored->vocabulary().Lookup("tank");
  EXPECT_EQ(restored->vocabulary().DocFreq(tank), 3u);
}

TEST(CorpusTest, DeserializeGarbageFails) {
  EXPECT_FALSE(Corpus::Deserialize("not a corpus").ok());
}

// -------------------------------------------------------------- Generator --

TEST(GeneratorTest, ProducesRequestedShape) {
  GeneratorParams params;
  params.num_docs = 120;
  params.mean_doc_length = 60;
  params.tail_vocab_size = 500;
  CorpusGenerator generator(params);
  GroundTruthModel truth;
  Corpus corpus = generator.Generate(&truth);

  EXPECT_EQ(corpus.num_documents(), 120u);
  EXPECT_EQ(corpus.true_topic_names().size(), BuiltinTopics().size());
  // Vocabulary covers seeds + general pool + tail.
  EXPECT_GT(corpus.vocabulary_size(), 500u);
  EXPECT_EQ(truth.term_weights.size(), BuiltinTopics().size());
  EXPECT_EQ(truth.seed_term_ids.size(), BuiltinTopics().size());
  for (const Document& d : corpus.documents()) {
    EXPECT_GE(d.tokens.size(), 8u);
    EXPECT_EQ(d.true_mixture.size(), BuiltinTopics().size());
    float sum = 0.f;
    for (float p : d.true_mixture) sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-3f);
  }
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  GeneratorParams params;
  params.num_docs = 50;
  params.tail_vocab_size = 200;
  Corpus a = CorpusGenerator(params).Generate();
  Corpus b = CorpusGenerator(params).Generate();
  ASSERT_EQ(a.num_documents(), b.num_documents());
  for (size_t d = 0; d < a.num_documents(); ++d) {
    EXPECT_EQ(a.documents()[d].tokens, b.documents()[d].tokens);
  }
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(GeneratorTest, SeedChangesOutput) {
  GeneratorParams params;
  params.num_docs = 50;
  params.tail_vocab_size = 200;
  Corpus a = CorpusGenerator(params).Generate();
  params.seed += 1;
  Corpus b = CorpusGenerator(params).Generate();
  EXPECT_NE(a.Serialize(), b.Serialize());
}

TEST(GeneratorTest, TopicalDocumentsUseTopicSeedWords) {
  // A document dominated by one ground-truth topic should contain several
  // of that topic's seed words.
  GeneratorParams params;
  params.num_docs = 400;
  params.tail_vocab_size = 300;
  CorpusGenerator generator(params);
  GroundTruthModel truth;
  Corpus corpus = generator.Generate(&truth);

  size_t checked = 0;
  for (const Document& d : corpus.documents()) {
    // Find the dominant ground-truth topic.
    size_t best_t = 0;
    for (size_t t = 1; t < d.true_mixture.size(); ++t) {
      if (d.true_mixture[t] > d.true_mixture[best_t]) best_t = t;
    }
    if (d.true_mixture[best_t] < 0.75f) continue;  // want strongly-topical docs
    ++checked;
    std::unordered_set<text::TermId> seeds(
        truth.seed_term_ids[best_t].begin(), truth.seed_term_ids[best_t].end());
    size_t hits = 0;
    for (text::TermId tok : d.tokens) {
      if (seeds.count(tok)) ++hits;
    }
    // seed_mass * purity ~= 0.62 * 0.75 ~= 0.46 of tokens; require > 1/4.
    EXPECT_GT(hits, d.tokens.size() / 4) << "doc " << d.id;
  }
  EXPECT_GT(checked, 5u);  // sparse Dirichlet yields several near-pure docs
}

// --------------------------------------------------------------- Workload --

class WorkloadProperties
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(WorkloadProperties, TermCountsWithinBounds) {
  const auto& world = toppriv::testing::World();
  WorkloadParams params;
  params.num_queries = 30;
  params.min_terms = GetParam().first;
  params.max_terms = GetParam().second;
  WorkloadGenerator generator(world.corpus, world.truth, params);
  std::vector<BenchmarkQuery> queries = generator.Generate();
  ASSERT_EQ(queries.size(), 30u);
  for (const BenchmarkQuery& q : queries) {
    EXPECT_GE(q.term_ids.size(), params.min_terms);
    EXPECT_LE(q.term_ids.size(), params.max_terms);
    EXPECT_EQ(q.term_ids.size(), q.terms.size());
    // No duplicate terms.
    std::set<text::TermId> distinct(q.term_ids.begin(), q.term_ids.end());
    EXPECT_EQ(distinct.size(), q.term_ids.size());
    // Intent topics valid.
    ASSERT_FALSE(q.intent_topics.empty());
    for (uint32_t t : q.intent_topics) {
      EXPECT_LT(t, world.corpus.true_topic_names().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, WorkloadProperties,
                         ::testing::Values(std::make_pair(2u, 20u),
                                           std::make_pair(2u, 5u),
                                           std::make_pair(10u, 12u),
                                           std::make_pair(1u, 3u)));

TEST(WorkloadTest, Deterministic) {
  const auto& world = toppriv::testing::World();
  WorkloadParams params;
  params.num_queries = 10;
  std::vector<BenchmarkQuery> a =
      WorkloadGenerator(world.corpus, world.truth, params).Generate();
  std::vector<BenchmarkQuery> b =
      WorkloadGenerator(world.corpus, world.truth, params).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].term_ids, b[i].term_ids);
    EXPECT_EQ(a[i].intent_topics, b[i].intent_topics);
  }
}

TEST(WorkloadTest, QueriesAreTopical) {
  // Most query terms should come from the intent topics' seed vocabulary.
  const auto& world = toppriv::testing::World();
  size_t topical = 0, total = 0;
  for (const BenchmarkQuery& q : world.workload) {
    std::unordered_set<text::TermId> intent_seeds;
    for (uint32_t t : q.intent_topics) {
      intent_seeds.insert(world.truth.seed_term_ids[t].begin(),
                          world.truth.seed_term_ids[t].end());
    }
    for (text::TermId w : q.term_ids) {
      ++total;
      if (intent_seeds.count(w)) ++topical;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(topical) / static_cast<double>(total), 0.6);
}

TEST(WorkloadTest, TextJoinsTerms) {
  BenchmarkQuery q;
  q.terms = {"apache", "helicopter"};
  EXPECT_EQ(q.Text(), "apache helicopter");
}

}  // namespace
}  // namespace toppriv::corpus
