// Tests for the observability layer: striped counter/gauge/histogram
// merge correctness (including under a concurrent writer fleet — the
// ThreadSanitizer target for this subsystem), histogram bucket edges,
// deterministic trace spans under a ManualClock, ring-buffer eviction,
// and the locked determinism contract: instrumentation toggled on or off
// must not move a single digest bit.
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "search/engine.h"
#include "search/scorer.h"
#include "serving/session_driver.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "util/deadline.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace toppriv::util {
namespace {

using toppriv::testing::World;

// Every test gets a private registry so the process-wide Default() (which
// product instrumentation writes to) never leaks state across tests.
class MetricsTest : public ::testing::Test {
 protected:
  MetricsRegistry registry_;
};

TEST_F(MetricsTest, CounterSumsAcrossStripes) {
  Counter* c = registry_.GetCounter("c");
  EXPECT_EQ(c->Sum(), 0u);
  c->Add(5);
  c->Increment();
  EXPECT_EQ(c->Sum(), 6u);
  c->Reset();
  EXPECT_EQ(c->Sum(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = registry_.GetCounter("same");
  Counter* b = registry_.GetCounter("same");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry_.GetCounter("other"), a);
  // First registration wins for histogram bounds.
  Histogram* h = registry_.GetHistogram("h", {1, 2, 3});
  Histogram* again = registry_.GetHistogram("h", {10, 20});
  EXPECT_EQ(h, again);
  EXPECT_EQ(again->bounds(), (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(MetricsTest, ConcurrentWritersLoseNoIncrements) {
  // The striped write path's core claim: relaxed per-stripe adds merge to
  // the exact total. 8 threads x 100k increments, no locks anywhere.
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  Counter* c = registry_.GetCounter("concurrent");
  Gauge* g = registry_.GetGauge("level");
  Histogram* h = registry_.GetHistogram("obs", {10, 100});
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Observe(t);
      }
      g->Add(1);
      g->Add(-1);
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(c->Sum(), kThreads * kPerThread);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_GE(g->Peak(), 1);
  Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // Every observed value (thread index 0..7) lands in the <=10 bucket.
  EXPECT_EQ(snap.counts[0], kThreads * kPerThread);
}

TEST_F(MetricsTest, GaugeTracksPeakWatermark) {
  Gauge* g = registry_.GetGauge("queue");
  g->Add(3);
  g->Add(4);   // level 7, peak 7
  g->Add(-5);  // level 2
  g->Add(1);   // level 3: below the watermark, peak stays
  EXPECT_EQ(g->Value(), 3);
  EXPECT_EQ(g->Peak(), 7);
  g->Set(100);
  EXPECT_EQ(g->Peak(), 100);
  g->Set(1);
  EXPECT_EQ(g->Peak(), 100);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreUpperInclusive) {
  Histogram* h = registry_.GetHistogram("lat", {10, 100, 1000});
  h->Observe(0);     // <= 10
  h->Observe(10);    // <= 10 (inclusive edge)
  h->Observe(11);    // <= 100
  h->Observe(100);   // <= 100 (inclusive edge)
  h->Observe(1000);  // <= 1000
  h->Observe(1001);  // overflow
  h->Observe(~0ull); // overflow
  Histogram::Snapshot snap = h->Snap();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 2u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 100 + 1000 + 1001 + ~0ull);
}

TEST_F(MetricsTest, ExponentialBucketLadders) {
  EXPECT_EQ(ExponentialBuckets(1, 2, 4), (std::vector<uint64_t>{1, 2, 4, 8}));
  // The canonical ladders are strictly increasing (Observe's scan relies
  // on it) and sized as documented.
  for (const std::vector<uint64_t>* ladder :
       {&LatencyBucketsUs(), &CountBuckets()}) {
    for (size_t i = 1; i < ladder->size(); ++i) {
      EXPECT_LT((*ladder)[i - 1], (*ladder)[i]);
    }
  }
  EXPECT_EQ(LatencyBucketsUs().size(), 12u);
  EXPECT_EQ(CountBuckets().front(), 1u);
  EXPECT_EQ(CountBuckets().back(), 1024u);
}

TEST_F(MetricsTest, SnapshotAndJsonExportCoverEveryMetric) {
  registry_.GetCounter("a")->Add(2);
  registry_.GetGauge("b")->Set(-3);
  registry_.GetHistogram("c", {1})->Observe(1);
  MetricsRegistry::Snapshot snap = registry_.Snap();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].snap.count, 1u);

  JsonWriter w;
  registry_.ExportJson(&w);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  registry_.ResetAll();
  EXPECT_EQ(registry_.Snap().counters[0].value, 0u);
  EXPECT_EQ(registry_.Snap().histograms[0].snap.count, 0u);
}

// ------------------------------------------------------------------ traces --

TEST(TraceTest, NestedSpansAreDeterministicUnderManualClock) {
  ManualClock clock;
  TraceSink sink(/*capacity=*/16, &clock);
  {
    TraceSpan root(&sink, "cycle");
    clock.Advance(10);
    {
      TraceSpan child(&sink, "query");
      clock.Advance(5);
      {
        TraceSpan grandchild(&sink, "segment");
        clock.Advance(1);
      }
      clock.Advance(2);
    }
    clock.Advance(3);
  }
  std::vector<TraceEvent> events = sink.Events();
  // Completion order: deepest first, root last.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "segment");
  EXPECT_EQ(events[1].name, "query");
  EXPECT_EQ(events[2].name, "cycle");
  // Ids are allocated in creation order starting at 1; all three spans
  // share the root's trace id; parent links reconstruct the nesting.
  EXPECT_EQ(events[2].span_id, 1u);
  EXPECT_EQ(events[1].span_id, 2u);
  EXPECT_EQ(events[0].span_id, 3u);
  for (const TraceEvent& e : events) EXPECT_EQ(e.trace_id, 1u);
  EXPECT_EQ(events[2].parent_id, 0u);  // root
  EXPECT_EQ(events[1].parent_id, 1u);
  EXPECT_EQ(events[0].parent_id, 2u);
  // ManualClock timestamps, bit-exact.
  EXPECT_EQ(events[2].start_nanos, 0);
  EXPECT_EQ(events[2].end_nanos, 21);
  EXPECT_EQ(events[1].start_nanos, 10);
  EXPECT_EQ(events[1].end_nanos, 18);
  EXPECT_EQ(events[0].start_nanos, 15);
  EXPECT_EQ(events[0].end_nanos, 16);
  // Parent intervals contain child intervals.
  EXPECT_LE(events[2].start_nanos, events[1].start_nanos);
  EXPECT_GE(events[2].end_nanos, events[1].end_nanos);
}

TEST(TraceTest, SiblingRootsStartFreshTraces) {
  ManualClock clock;
  TraceSink sink(8, &clock);
  { TraceSpan a(&sink, "first"); }
  { TraceSpan b(&sink, "second"); }
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].parent_id, 0u);
  EXPECT_NE(events[0].trace_id, events[1].trace_id);
}

TEST(TraceTest, RingEvictsOldestAndCountsDrops) {
  ManualClock clock;
  TraceSink sink(2, &clock);
  for (int i = 0; i < 5; ++i) {
    TraceSpan s(&sink, i % 2 == 0 ? "even" : "odd");
  }
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  // Oldest-first: spans 4 and 5 survive.
  EXPECT_EQ(events[0].span_id, 4u);
  EXPECT_EQ(events[1].span_id, 5u);
  sink.Clear();
  EXPECT_TRUE(sink.Events().empty());
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceTest, NullSinkIsInert) {
  // The default production state: no global sink, spans cost nothing and
  // record nothing. Must not crash, allocate ids, or touch any clock.
  TraceSpan orphan(nullptr, "nothing");
  EXPECT_EQ(orphan.span_id(), 0u);
  EXPECT_EQ(orphan.trace_id(), 0u);
}

TEST(TraceTest, JsonExportNestsSpansByParentId) {
  ManualClock clock;
  TraceSink sink(8, &clock);
  {
    TraceSpan root(&sink, "root");
    clock.Advance(2);
    TraceSpan child(&sink, "child");
    clock.Advance(1);
  }
  JsonWriter w;
  sink.ExportJson(&w);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"child\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":1"), std::string::npos);  // child -> root
  EXPECT_NE(json.find("\"start_ns\":2"), std::string::npos);
}

TEST(TraceTest, ConcurrentSpansKeepPerThreadNesting) {
  // Many threads open root+child spans against one sink. Ids interleave
  // (allocation is global) but every child must link to ITS thread's root
  // and inherit its trace id — the thread-local stack does not leak across
  // threads. Also the TSan workout for Record's ring buffer.
  ManualClock clock;
  TraceSink sink(4096, &clock);
  constexpr size_t kThreads = 8;
  constexpr size_t kSpansPerThread = 64;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        TraceSpan root(&sink, "root");
        TraceSpan child(&sink, "child");
        EXPECT_EQ(child.trace_id(), root.trace_id());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), kThreads * kSpansPerThread * 2);
  EXPECT_EQ(sink.dropped(), 0u);
  std::set<uint64_t> span_ids;
  std::set<uint64_t> root_ids;
  for (const TraceEvent& e : events) {
    EXPECT_TRUE(span_ids.insert(e.span_id).second) << "duplicate span id";
    if (e.parent_id == 0) root_ids.insert(e.span_id);
  }
  for (const TraceEvent& e : events) {
    if (e.parent_id != 0) {
      // A child's parent is a real root and its trace id is that root.
      EXPECT_TRUE(root_ids.count(e.parent_id));
      EXPECT_EQ(e.trace_id, e.parent_id);
    }
  }
}

// ------------------------------------------------------- determinism gate --

serving::ServingReport RunDriver() {
  topicmodel::LdaInferencer inferencer(World().model);
  search::SearchEngine engine(World().corpus, World().index,
                              search::MakeBm25Scorer(),
                              search::EvalStrategy::kMaxScore);
  std::vector<std::vector<text::TermId>> queries;
  for (size_t i = 0; i < 6; ++i) {
    queries.push_back(World().workload[i].term_ids);
  }
  serving::DriverOptions options;
  options.num_threads = 2;
  options.seed = 7;
  serving::SessionDriver driver(World().model, inferencer, engine, options);
  return driver.Run(serving::DealSessions(queries, 3));
}

TEST(MetricsDeterminismTest, DigestsIdenticalWithInstrumentationOnAndOff) {
  // The contract every instrumentation site must honor: metrics and traces
  // observe the request path without perturbing it. Run the serving driver
  // fully instrumented (registry enabled + a live global trace sink), then
  // fully quiesced — the per-session digests must be bit-identical, and
  // under a TOPPRIV_METRICS=ON build the instrumented run must actually
  // have recorded something (the test would pass vacuously otherwise).
  MetricsRegistry& registry = MetricsRegistry::Default();
  const bool was_enabled = registry.enabled();

  registry.set_enabled(true);
  TraceSink sink(1 << 16);
  TraceSink::SetGlobal(&sink);
  serving::ServingReport instrumented = RunDriver();
  TraceSink::SetGlobal(nullptr);

  registry.set_enabled(false);
  serving::ServingReport quiesced = RunDriver();
  registry.set_enabled(was_enabled);

  ASSERT_EQ(instrumented.sessions.size(), quiesced.sessions.size());
  for (size_t s = 0; s < instrumented.sessions.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(instrumented.sessions[s].digest, quiesced.sessions[s].digest);
    EXPECT_EQ(instrumented.sessions[s].exposure_after_sum,
              quiesced.sessions[s].exposure_after_sum);
  }

#ifdef TOPPRIV_METRICS
  // Non-vacuity: the instrumented run recorded cycles and spans.
  uint64_t cycles = 0;
  for (const auto& c : registry.Snap().counters) {
    if (c.name == "serving.cycles") cycles = c.value;
  }
  EXPECT_GT(cycles, 0u);
  EXPECT_FALSE(sink.Events().empty());
  // Spans nest: at least one serving.query under a serving.cycle.
  bool found_child = false;
  for (const TraceEvent& e : sink.Events()) {
    if (e.name == "serving.query" && e.parent_id != 0) found_child = true;
  }
  EXPECT_TRUE(found_child);
#endif
}

TEST(MetricsDeterminismTest, RuntimeDisableStopsRecording) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(false);
  TOPPRIV_COUNTER_ADD("metrics_test.disabled_counter", 100);
  registry.set_enabled(true);
  TOPPRIV_COUNTER_ADD("metrics_test.disabled_counter", 1);
  registry.set_enabled(was_enabled);
  uint64_t value = 0;
  bool registered = false;
  for (const auto& c : registry.Snap().counters) {
    if (c.name == "metrics_test.disabled_counter") {
      value = c.value;
      registered = true;
    }
  }
#ifdef TOPPRIV_METRICS
  ASSERT_TRUE(registered);
  EXPECT_EQ(value, 1u);  // only the enabled-time add landed
#else
  EXPECT_FALSE(registered);  // macros compiled away entirely
  EXPECT_EQ(value, 0u);
#endif
}

}  // namespace
}  // namespace toppriv::util
