// Tests for the multi-session serving layer: thread-count-independent
// results, session independence, workload dealing, and the mixed
// read/write phase (concurrent sessions over a LiveSearchEngine while the
// corpus streams in).
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/live/live_index.h"
#include "search/engine.h"
#include "search/live_engine.h"
#include "search/scorer.h"
#include "serving/session_driver.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "util/thread_pool.h"

namespace toppriv::serving {
namespace {

using toppriv::testing::World;

class SessionDriverTest : public ::testing::Test {
 protected:
  SessionDriverTest()
      : inferencer_(World().model),
        engine_(World().corpus, World().index, search::MakeBm25Scorer()) {}

  std::vector<SessionWorkload> MakeSessions(size_t num_sessions,
                                            size_t queries_each) {
    std::vector<std::vector<text::TermId>> queries;
    for (size_t i = 0; i < num_sessions * queries_each; ++i) {
      queries.push_back(World().workload[i % World().workload.size()].term_ids);
    }
    return DealSessions(queries, num_sessions);
  }

  ServingReport RunWith(size_t num_threads,
                        const std::vector<SessionWorkload>& sessions,
                        uint64_t seed = 7) {
    DriverOptions options;
    options.num_threads = num_threads;
    options.seed = seed;
    SessionDriver driver(World().model, inferencer_, engine_, options);
    return driver.Run(sessions);
  }

  topicmodel::LdaInferencer inferencer_;
  search::SearchEngine engine_;
};

TEST_F(SessionDriverTest, RunsEverySessionAndQuery) {
  std::vector<SessionWorkload> sessions = MakeSessions(3, 2);
  ServingReport report = RunWith(1, sessions);
  ASSERT_EQ(report.sessions.size(), 3u);
  EXPECT_EQ(report.total_cycles, 6u);
  for (const SessionStats& s : report.sessions) {
    EXPECT_EQ(s.cycles, 2u);
    // Every cycle submits at least the genuine query.
    EXPECT_GE(s.queries_submitted, s.cycles);
    EXPECT_EQ(s.queries_submitted, s.cycles + s.ghosts);
    EXPECT_NE(s.digest, 0u);
  }
  EXPECT_EQ(report.total_queries,
            report.sessions[0].queries_submitted +
                report.sessions[1].queries_submitted +
                report.sessions[2].queries_submitted);
  EXPECT_GT(report.cycles_per_second, 0.0);
}

TEST_F(SessionDriverTest, ResultsIndependentOfThreadCount) {
  // The tentpole determinism property: per-session output must not depend
  // on how many workers the driver uses or which worker ran which session.
  std::vector<SessionWorkload> sessions = MakeSessions(5, 2);
  ServingReport one = RunWith(1, sessions);
  ServingReport four = RunWith(4, sessions);
  ServingReport hw = RunWith(0, sessions);  // hardware concurrency
  ASSERT_EQ(one.sessions.size(), four.sessions.size());
  ASSERT_EQ(one.sessions.size(), hw.sessions.size());
  for (size_t s = 0; s < one.sessions.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(one.sessions[s].digest, four.sessions[s].digest);
    EXPECT_EQ(one.sessions[s].digest, hw.sessions[s].digest);
    EXPECT_EQ(one.sessions[s].cycles, four.sessions[s].cycles);
    EXPECT_EQ(one.sessions[s].queries_submitted,
              four.sessions[s].queries_submitted);
    EXPECT_EQ(one.sessions[s].ghosts, four.sessions[s].ghosts);
    EXPECT_EQ(one.sessions[s].met_epsilon2, four.sessions[s].met_epsilon2);
    // Bit-identical, not approximately equal: same RNG stream, same FP ops.
    EXPECT_EQ(one.sessions[s].exposure_after_sum,
              four.sessions[s].exposure_after_sum);
  }
}

TEST_F(SessionDriverTest, SessionsHaveIndependentRandomness) {
  // Two sessions given the SAME queries must produce different cycles
  // (forked RNG streams), else ghost traffic would be trivially linkable.
  std::vector<std::vector<text::TermId>> queries = {
      World().workload[0].term_ids, World().workload[0].term_ids};
  std::vector<SessionWorkload> sessions = DealSessions(queries, 2);
  ASSERT_EQ(sessions[0].queries, sessions[1].queries);
  ServingReport report = RunWith(1, sessions);
  EXPECT_NE(report.sessions[0].digest, report.sessions[1].digest);
}

TEST_F(SessionDriverTest, SeedChangesOutput) {
  std::vector<SessionWorkload> sessions = MakeSessions(2, 2);
  ServingReport a = RunWith(1, sessions, 7);
  ServingReport b = RunWith(1, sessions, 8);
  EXPECT_NE(a.sessions[0].digest, b.sessions[0].digest);
}

TEST_F(SessionDriverTest, RepeatedRunsAreIdentical) {
  std::vector<SessionWorkload> sessions = MakeSessions(2, 2);
  ServingReport a = RunWith(2, sessions);
  ServingReport b = RunWith(2, sessions);
  for (size_t s = 0; s < a.sessions.size(); ++s) {
    EXPECT_EQ(a.sessions[s].digest, b.sessions[s].digest);
  }
}

// The mixed read/write phase: a session fleet serves ghost-query cycles
// over a LiveSearchEngine WHILE a writer streams the rest of the corpus in
// (with background merges on a shared pool) — the live-traffic scenario
// the static engines cannot model, and the serving-side ThreadSanitizer
// target for the new subsystem. Mid-stream results depend on snapshot
// timing (inherently schedule-dependent), so the deterministic assertion
// is convergence: once ingest completes, a fresh driver run over the live
// engine produces digests bit-identical to the same driver over the
// static engine.
TEST(LiveServingTest, MixedIngestAndServingConvergesToStaticDigests) {
  const auto& world = World();
  topicmodel::LdaInferencer inferencer(world.model);

  util::ThreadPool merge_pool(2);
  index::live::LiveIndexOptions live_options;
  live_options.max_writer_docs = 64;
  live_options.merge_pool = &merge_pool;
  index::live::LiveIndex live(live_options);
  live.EnsureTermSpace(world.corpus.vocabulary_size());

  // Half the corpus is ingested up-front, the rest streams during serving.
  const size_t upfront = world.corpus.num_documents() / 2;
  std::vector<std::vector<text::TermId>> batch;
  for (size_t d = 0; d < upfront; ++d) {
    batch.push_back(world.corpus.documents()[d].tokens);
  }
  live.Ingest(batch);
  live.Refresh();

  search::LiveSearchEngine engine(world.corpus, live,
                                  search::MakeBm25Scorer());
  std::vector<std::vector<text::TermId>> queries;
  for (size_t i = 0; i < 8; ++i) {
    queries.push_back(world.workload[i % world.workload.size()].term_ids);
  }
  std::vector<SessionWorkload> sessions = DealSessions(queries, 4);

  DriverOptions options;
  options.num_threads = 4;
  options.seed = 33;
  SessionDriver driver(world.model, inferencer, engine, options);

  std::thread writer([&] {
    index::live::StreamCorpus(world.corpus, upfront,
                              world.corpus.num_documents(), /*batch_size=*/20,
                              &live);
  });
  ServingReport mixed = driver.Run(sessions);  // races the writer by design
  writer.join();
  live.WaitForMerges();
  live.Refresh();
  EXPECT_EQ(mixed.sessions.size(), 4u);
  EXPECT_GT(mixed.total_queries, 0u);

  // Post-convergence determinism: live vs static digests, bit for bit.
  search::SearchEngine static_engine(world.corpus, world.index,
                                     search::MakeBm25Scorer());
  SessionDriver static_driver(world.model, inferencer, static_engine, options);
  SessionDriver live_driver(world.model, inferencer, engine, options);
  ServingReport want = static_driver.Run(sessions);
  ServingReport got = live_driver.Run(sessions);
  ASSERT_EQ(got.sessions.size(), want.sessions.size());
  for (size_t s = 0; s < got.sessions.size(); ++s) {
    EXPECT_EQ(got.sessions[s].digest, want.sessions[s].digest) << s;
    EXPECT_EQ(got.sessions[s].queries_submitted,
              want.sessions[s].queries_submitted);
  }
}

TEST(DealSessionsTest, RoundRobinAssignment) {
  std::vector<std::vector<text::TermId>> queries = {
      {0}, {1}, {2}, {3}, {4}};
  std::vector<SessionWorkload> sessions = DealSessions(queries, 2);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].queries,
            (std::vector<std::vector<text::TermId>>{{0}, {2}, {4}}));
  EXPECT_EQ(sessions[1].queries,
            (std::vector<std::vector<text::TermId>>{{1}, {3}}));
}

TEST(DealSessionsTest, MoreSessionsThanQueriesLeavesSomeEmpty) {
  std::vector<std::vector<text::TermId>> queries = {{0}};
  std::vector<SessionWorkload> sessions = DealSessions(queries, 3);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0].queries.size(), 1u);
  EXPECT_TRUE(sessions[1].queries.empty());
  EXPECT_TRUE(sessions[2].queries.empty());
}

}  // namespace
}  // namespace toppriv::serving
