// Unit and property tests for the util substrate.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <cstdio>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/filesystem.h"
#include "util/io.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace toppriv::util {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad eps");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
  EXPECT_EQ(Status::IoError("x").ToString(), "IO_ERROR: x");
  EXPECT_EQ(Status::DataLoss("x").ToString(), "DATA_LOSS: x");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(uint64_t{1000000}) == b.UniformInt(uint64_t{1000000})) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsIndependentOfParentDraws) {
  Rng a(7);
  Rng child1 = a.Fork(3);
  a.Uniform();  // consume from parent
  Rng b(7);
  Rng child2 = b.Fork(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.Uniform(), child2.Uniform());
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(uint64_t{7});
    EXPECT_LT(v, 7u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-3}, int64_t{4});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 10.0, 0.0, 1.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[1], counts[3] * 5);
}

TEST(RngTest, DiscreteFromCdfMatchesDiscrete) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> cdf = BuildCdf(weights);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.back(), 10.0);
  Rng rng(13);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.DiscreteFromCdf(cdf)];
  // Expected proportions 0.1, 0.2, 0.3, 0.4.
  EXPECT_NEAR(counts[3] / 20000.0, 0.4, 0.03);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.03);
}

TEST(RngTest, BuildCdfAllZeroIsEmpty) {
  EXPECT_TRUE(BuildCdf({0.0, 0.0}).empty());
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(17);
  for (double alpha : {0.05, 0.5, 5.0}) {
    std::vector<double> d = rng.DirichletSymmetric(alpha, 25);
    double sum = std::accumulate(d.begin(), d.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double v : d) EXPECT_GE(v, 0.0);
  }
}

TEST(RngTest, SparseDirichletConcentrates) {
  Rng rng(19);
  // With tiny alpha, most mass should sit on a few components.
  std::vector<double> d = rng.DirichletSymmetric(0.02, 30);
  std::sort(d.rbegin(), d.rend());
  EXPECT_GT(d[0] + d[1] + d[2], 0.9);
}

TEST(RngTest, GammaPositiveAndMeanRoughlyShape) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gamma(2.5);
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(0.1);
  EXPECT_NEAR(sum / n, 0.1, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(12.0);
  EXPECT_NEAR(sum / n, 12.0, 0.3);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  std::vector<size_t> s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(41);
  std::vector<size_t> s = rng.SampleWithoutReplacement(10, 10);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 2, 3, 4, 5, 5, 5};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ZipfSkewsTowardsHead) {
  Rng rng(47);
  int head = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2) < 5) ++head;
  }
  EXPECT_GT(head, n / 3);  // top-5 of 100 gets a large share under Zipf
}

// -------------------------------------------------------------------- IO --

class VarintRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundtrip, EncodesAndDecodes) {
  std::string buf;
  AppendVarint(GetParam(), &buf);
  size_t pos = 0;
  uint64_t decoded = 0;
  ASSERT_TRUE(DecodeVarint(buf, &pos, &decoded));
  EXPECT_EQ(decoded, GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundtrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, 0xffffffffffffffffull));

TEST(VarintTest, DecodeOverrunFails) {
  std::string buf;
  AppendVarint(1ull << 40, &buf);
  buf.pop_back();  // truncate the terminator byte
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(DecodeVarint(buf, &pos, &v));
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string buf;
  AppendVarint(100, &buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(BinaryIoTest, RoundtripAllTypes) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x1122334455667788ull);
  w.WriteDouble(3.14159);
  w.WriteFloat(2.5f);
  w.WriteVarint(299792458ull);
  w.WriteString("hello world");
  w.WriteDoubleVector({1.0, -2.0, 3.5});
  w.WriteFloatVector({0.5f, 1.5f});
  w.WriteU32Vector({1, 100, 10000});

  BinaryReader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64, var;
  double d;
  float f;
  std::string s;
  std::vector<double> dv;
  std::vector<float> fv;
  std::vector<uint32_t> uv;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadFloat(&f).ok());
  ASSERT_TRUE(r.ReadVarint(&var).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadDoubleVector(&dv).ok());
  ASSERT_TRUE(r.ReadFloatVector(&fv).ok());
  ASSERT_TRUE(r.ReadU32Vector(&uv).ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_FLOAT_EQ(f, 2.5f);
  EXPECT_EQ(var, 299792458ull);
  EXPECT_EQ(s, "hello world");
  EXPECT_EQ(dv, (std::vector<double>{1.0, -2.0, 3.5}));
  EXPECT_EQ(fv, (std::vector<float>{0.5f, 1.5f}));
  EXPECT_EQ(uv, (std::vector<uint32_t>{1, 100, 10000}));
}

TEST(BinaryIoTest, ReaderOverrunReturnsDataLoss) {
  BinaryReader r(std::string("ab"));
  uint32_t v;
  Status s = r.ReadU32(&v);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, StringOverrunReturnsDataLoss) {
  BinaryWriter w;
  w.WriteVarint(1000);  // claims a 1000-byte string with no body
  BinaryReader r(w.data());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, HostileVectorCountsReturnDataLossWithoutAllocating) {
  // A count whose byte size wraps uint64 (n * sizeof(element) == tiny) used
  // to sail past the bounds check and hand resize() a multi-exabyte demand.
  for (uint64_t hostile :
       {uint64_t{1} << 62, (uint64_t{1} << 62) + 3, uint64_t{0xffffffffffffffff}}) {
    BinaryWriter w;
    w.WriteVarint(hostile);
    w.WriteU32(0);  // a few plausible payload bytes
    BinaryReader fr(w.data());
    std::vector<float> fv;
    EXPECT_EQ(fr.ReadFloatVector(&fv).code(), StatusCode::kDataLoss);
    BinaryReader dr(w.data());
    std::vector<double> dv;
    EXPECT_EQ(dr.ReadDoubleVector(&dv).code(), StatusCode::kDataLoss);
    BinaryReader ur(w.data());
    std::vector<uint32_t> uv;
    EXPECT_EQ(ur.ReadU32Vector(&uv).code(), StatusCode::kDataLoss);
  }
}

TEST(BinaryIoTest, HugeStringLengthDoesNotWrapBoundsCheck) {
  // pos_ + n used to overflow, making Need() accept any length.
  BinaryWriter w;
  w.WriteVarint(0xffffffffffffffffull);
  BinaryReader r(w.data());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, RemainingTracksPosition) {
  BinaryWriter w;
  w.WriteU32(1);
  w.WriteU32(2);
  BinaryReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  uint32_t v;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(FileIoTest, WriteReadRoundtrip) {
  std::string path = ::testing::TempDir() + "/toppriv_io_test.bin";
  std::string payload = "binary\0payload";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  auto readback = ReadFileToString(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), payload);
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  auto result = ReadFileToString("/nonexistent/path/file.bin");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(FileExists("/nonexistent/path/file.bin"));
}

TEST(FileIoTest, MakeDirsCreatesNested) {
  std::string base = ::testing::TempDir() + "/toppriv_mkdir/a/b/c";
  ASSERT_TRUE(MakeDirs(base).ok());
  ASSERT_TRUE(WriteFile(base + "/f.txt", "x").ok());
  EXPECT_TRUE(FileExists(base + "/f.txt"));
}

// ----------------------------------------------------------------- Stats --

TEST(OnlineStatsTest, MatchesNaiveComputation) {
  std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  OnlineStats stats;
  for (double x : xs) stats.Add(x);
  double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeEqualsBulk) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  OnlineStats a, b, all;
  for (size_t i = 0; i < xs.size(); ++i) {
    (i < 4 ? a : b).Add(xs[i]);
    all.Add(xs[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 75), 5.0);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,,b, c", ", "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("Hello World-42"), "hello world-42");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("toppriv", "top"));
  EXPECT_FALSE(StartsWith("top", "toppriv"));
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndReuse) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
  std::atomic<int> counter{0};
  pool.ParallelFor(5, [&counter](size_t) { counter.fetch_add(1); });
  pool.ParallelFor(5, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ZeroThreadsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after completing pending tasks
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

// -------------------------------------------------------------- JsonWriter --

TEST(JsonWriterTest, NestedDocumentWithCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Field("bench", "serving_throughput");
  w.Field("count", uint64_t{3});
  w.Field("ok", true);
  w.Key("cells");
  w.BeginArray();
  w.BeginObject();
  w.Field("qps", 1.5);
  w.EndObject();
  w.BeginObject();
  w.Field("qps", int64_t{-2});
  w.Key("missing");
  w.Null();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"bench\":\"serving_throughput\",\"count\":3,\"ok\":true,"
            "\"cells\":[{\"qps\":1.5},{\"qps\":-2,\"missing\":null}]}");
}

TEST(JsonWriterTest, EscapesAndNonFiniteDoubles) {
  JsonWriter w;
  w.BeginObject();
  w.Field("s", "a\"b\\c\nd\te\x01");
  w.Key("inf");
  w.Double(std::numeric_limits<double>::infinity());
  w.Key("nan");
  w.Double(std::nan(""));
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\",\"inf\":null,"
            "\"nan\":null}");
}

TEST(JsonWriterTest, DoubleRoundTripsPrecision) {
  JsonWriter w;
  w.BeginArray();
  w.Double(0.1);
  w.Double(1e300);
  w.EndArray();
  // %.17g keeps the exact bits recoverable.
  EXPECT_EQ(w.str(), "[0.10000000000000001,1.0000000000000001e+300]");
}

// ---------------------------------------------------------------- Crc32 ---

TEST(Crc32Test, KnownVector) {
  // The canonical CRC32C check value (RFC 3720 appendix / iSCSI).
  EXPECT_EQ(Crc32::Compute("123456789"), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32::Compute(""), 0u); }

TEST(Crc32Test, ExtendMatchesOneShot) {
  const std::string a = "hello, ";
  const std::string b = "world";
  uint32_t state = Crc32::kInit;
  state = Crc32::Extend(state, a.data(), a.size());
  state = Crc32::Extend(state, b.data(), b.size());
  EXPECT_EQ(state ^ Crc32::kInit, Crc32::Compute(a + b));
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string s = "payload bytes under test";
  const uint32_t base = Crc32::Compute(s);
  for (size_t i = 0; i < s.size(); ++i) {
    std::string flipped = s;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    EXPECT_NE(Crc32::Compute(flipped), base) << "byte " << i;
  }
}

// ----------------------------------------------------- fault file system ---

TEST(FaultFsTest, AppendSyncReadRoundTrip) {
  FaultInjectingFileSystem fs;
  ASSERT_TRUE(fs.MakeDirs("d").ok());
  auto file = fs.OpenForAppend("d/log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  ASSERT_TRUE((*file)->Append("def").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  auto bytes = fs.Read("d/log");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "abcdef");
  EXPECT_TRUE(fs.Exists("d/log"));
  EXPECT_FALSE(fs.Exists("d/other"));
}

TEST(FaultFsTest, PowerCutDropsUnsyncedSuffixOnly) {
  FaultInjectingFileSystem fs;
  auto file = fs.OpenForAppend("log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());
  fs.PowerCut();
  EXPECT_EQ(fs.FileBytes("log"), "durable");
  // Metadata is journaled: the file itself survives even if never synced.
  auto other = fs.OpenForAppend("meta-only");
  ASSERT_TRUE(other.ok());
  fs.PowerCut();
  EXPECT_TRUE(fs.Exists("meta-only"));
}

TEST(FaultFsTest, NthOpFaultFiresExactlyOnce) {
  FaultInjectingFileSystem fs;
  auto file = fs.OpenForAppend("log");  // op 0
  ASSERT_TRUE(file.ok());
  fs.ArmFault(1, FaultInjectingFileSystem::FaultMode::kFailOp);
  EXPECT_TRUE((*file)->Append("a").ok());   // op 1: survives
  EXPECT_FALSE((*file)->Append("b").ok());  // op 2: injected failure
  EXPECT_TRUE(fs.fault_fired());
  EXPECT_TRUE((*file)->Append("c").ok());  // one-shot: works again
  EXPECT_EQ(fs.FileBytes("log"), "ac");
}

TEST(FaultFsTest, ShortWriteKeepsPrefix) {
  FaultInjectingFileSystem fs;
  auto file = fs.OpenForAppend("log");
  ASSERT_TRUE(file.ok());
  fs.ArmFault(0, FaultInjectingFileSystem::FaultMode::kShortWrite);
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  EXPECT_EQ(fs.FileBytes("log"), "01234");  // half the append landed
  // The torn bytes were never synced, so a power cut erases them.
  fs.PowerCut();
  EXPECT_EQ(fs.FileBytes("log"), "");
}

TEST(FaultFsTest, FailedSyncDoesNotAdvanceWatermark) {
  FaultInjectingFileSystem fs;
  auto file = fs.OpenForAppend("log");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  fs.ArmFault(0, FaultInjectingFileSystem::FaultMode::kFailOp);
  EXPECT_FALSE((*file)->Sync().ok());
  fs.PowerCut();
  EXPECT_EQ(fs.FileBytes("log"), "");
}

TEST(FaultFsTest, RenameReplacesAtomically) {
  FaultInjectingFileSystem fs;
  fs.SetFileBytes("a.tmp", "new");
  fs.SetFileBytes("a", "old");
  ASSERT_TRUE(fs.Rename("a.tmp", "a").ok());
  EXPECT_EQ(fs.FileBytes("a"), "new");
  EXPECT_FALSE(fs.Exists("a.tmp"));
  EXPECT_FALSE(fs.Rename("missing", "x").ok());
}

TEST(FaultFsTest, ListReturnsDirectChildrenSorted) {
  FaultInjectingFileSystem fs;
  fs.SetFileBytes("d/b", "");
  fs.SetFileBytes("d/a", "");
  fs.SetFileBytes("d/sub/c", "");
  fs.SetFileBytes("other", "");
  auto names = fs.List("d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b"}));
}

TEST(FaultFsTest, CloneIsIndependent) {
  FaultInjectingFileSystem fs;
  fs.SetFileBytes("f", "base");
  auto copy = fs.Clone();
  fs.SetFileBytes("f", "changed");
  EXPECT_EQ(copy->FileBytes("f"), "base");
  copy->CorruptByte("f", 0, 0xff);
  EXPECT_NE(copy->FileBytes("f")[0], 'b');
  EXPECT_EQ(fs.FileBytes("f"), "changed");
}

TEST(RealFsTest, AppendRenameListRoundTrip) {
  FileSystem* fs = GetRealFileSystem();
  const std::string dir = "/tmp/toppriv_fs_test";
  ASSERT_TRUE(fs->MakeDirs(dir).ok());
  // Clean slate from any previous run.
  auto stale = fs->List(dir);
  if (stale.ok()) {
    for (const auto& name : *stale) (void)fs->Remove(dir + "/" + name);
  }
  auto file = fs->OpenForAppend(dir + "/wal.tmp");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("disk").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(fs->Rename(dir + "/wal.tmp", dir + "/wal").ok());
  EXPECT_TRUE(fs->Exists(dir + "/wal"));
  EXPECT_FALSE(fs->Exists(dir + "/wal.tmp"));
  auto bytes = fs->Read(dir + "/wal");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "hello disk");
  auto names = fs->List(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"wal"}));
  ASSERT_TRUE(fs->Remove(dir + "/wal").ok());
  EXPECT_FALSE(fs->Remove(dir + "/wal").ok());
}

}  // namespace
}  // namespace toppriv::util
