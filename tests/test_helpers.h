// Shared fixtures for the test suite: a small deterministic corpus and a
// trained LDA model, built once per test binary (training is the slow part).
#ifndef TOPPRIV_TESTS_TEST_HELPERS_H_
#define TOPPRIV_TESTS_TEST_HELPERS_H_

#include <memory>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/lda_model.h"

namespace toppriv::testing {

/// Everything the cross-module tests need, built once.
struct SharedWorld {
  corpus::GeneratorParams params;
  corpus::Corpus corpus;
  corpus::GroundTruthModel truth;
  index::InvertedIndex index;
  topicmodel::LdaModel model;  // 40 topics
  std::vector<corpus::BenchmarkQuery> workload;
};

/// Returns the lazily-built shared world (500 docs, 40-topic model,
/// 40 queries). Deterministic across runs.
inline const SharedWorld& World() {
  static const SharedWorld* world = [] {
    auto* w = new SharedWorld();
    w->params.num_docs = 500;
    w->params.mean_doc_length = 80;
    w->params.tail_vocab_size = 800;
    corpus::CorpusGenerator generator(w->params);
    w->corpus = generator.Generate(&w->truth);
    w->index = index::InvertedIndex::Build(w->corpus);
    topicmodel::TrainerOptions options;
    options.num_topics = 40;
    options.iterations = 50;
    options.seed = 99;
    w->model = topicmodel::GibbsTrainer(options).Train(w->corpus);
    corpus::WorkloadParams wp;
    wp.num_queries = 40;
    w->workload =
        corpus::WorkloadGenerator(w->corpus, w->truth, wp).Generate();
    return w;
  }();
  return *world;
}

/// A tiny hand-rolled corpus with two crisp topics, for unit tests that
/// need full control (index/search correctness checks).
inline corpus::Corpus TinyCorpus() {
  corpus::Corpus c;
  text::Vocabulary& vocab = c.mutable_vocabulary();
  // Terms 0..3: "tank" "missile" "stock" "market".
  text::TermId tank = vocab.AddTerm("tank");
  text::TermId missile = vocab.AddTerm("missile");
  text::TermId stock = vocab.AddTerm("stock");
  text::TermId market = vocab.AddTerm("market");
  c.AddDocument("war1", {tank, tank, missile});
  c.AddDocument("war2", {missile, tank});
  c.AddDocument("fin1", {stock, market, market, stock, stock});
  c.AddDocument("mix1", {tank, stock});
  return c;
}

}  // namespace toppriv::testing

#endif  // TOPPRIV_TESTS_TEST_HELPERS_H_
