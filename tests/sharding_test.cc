// Parity/property suite for the sharded retrieval subsystem.
//
// The contract under test: document-partitioning the index and
// scatter-gathering queries across the shards is INVISIBLE — for any shard
// count and any thread count, the sharded engine returns bit-identical
// results to the monolithic engine, the aggregated statistics equal the
// monolithic statistics exactly, and hostile serialized blobs die with
// clean errors instead of corrupting memory.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "index/sharded_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "search/sharded_engine.h"
#include "serving/session_driver.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace toppriv {
namespace {

using index::IndexStats;
using index::InvertedIndex;
using index::ShardedIndex;
using index::ShardRange;
using search::ScoredDoc;
using toppriv::testing::World;

// Shard counts the suite sweeps: 1 (degenerate), even splits, and a prime
// that does not divide the corpus (uneven ranges).
const size_t kShardCounts[] = {1, 2, 4, 7};

std::unique_ptr<search::Scorer> MakeScorer(int which) {
  switch (which) {
    case 0:
      return search::MakeBm25Scorer();
    case 1:
      return search::MakeTfIdfScorer();
    default:
      return std::make_unique<search::LmDirichletScorer>();
  }
}

void ExpectBitIdentical(const std::vector<ScoredDoc>& got,
                        const std::vector<ScoredDoc>& want,
                        const char* context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << context << " rank " << i;
    // Bit equality, not EXPECT_NEAR: the shards run the identical
    // floating-point ops in the identical order.
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

// ----------------------------------------------------------- bit parity --

TEST(ShardingParityTest, EveryWorkloadQueryMatchesMonolithicBitForBit) {
  const auto& world = World();
  // All three scorers: LmDirichlet is the one whose Normalize depends on
  // collection statistics, so it would catch a shard-local stats leak the
  // other two cannot.
  for (int scorer_kind = 0; scorer_kind < 3; ++scorer_kind) {
    search::SearchEngine mono(world.corpus, world.index,
                              MakeScorer(scorer_kind));
    for (size_t num_shards : kShardCounts) {
      ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
      for (size_t threads : {size_t{1}, size_t{4}}) {
        search::ShardedSearchEngine engine(world.corpus, sharded,
                                           MakeScorer(scorer_kind), threads);
        for (size_t qi = 0; qi < world.workload.size(); ++qi) {
          SCOPED_TRACE(::testing::Message()
                       << "scorer=" << scorer_kind << " shards=" << num_shards
                       << " threads=" << threads << " query=" << qi);
          std::vector<ScoredDoc> want =
              mono.Evaluate(world.workload[qi].term_ids, 10);
          std::vector<ScoredDoc> got =
              engine.Evaluate(world.workload[qi].term_ids, 10);
          ExpectBitIdentical(got, want, "workload");
        }
      }
    }
  }
}

TEST(ShardingParityTest, MaxScoreMatchesTaatAcrossShardGrid) {
  // The evaluation-strategy face of the parity invariant: for K ∈
  // {1, 2, 4, 7} shards × both strategies, every workload query returns
  // the bit-identical top-k the monolithic TAAT engine returns. MaxScore
  // prunes per shard against per-shard thresholds, so this also proves
  // pruning composes with the scatter-gather merge.
  const auto& world = World();
  search::SearchEngine mono(world.corpus, world.index,
                            search::MakeBm25Scorer());
  search::SearchEngine mono_maxscore(world.corpus, world.index,
                                     search::MakeBm25Scorer(),
                                     search::EvalStrategy::kMaxScore);
  for (size_t num_shards : kShardCounts) {
    ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
    for (search::EvalStrategy strategy :
         {search::EvalStrategy::kTAAT, search::EvalStrategy::kMaxScore}) {
      search::ShardedSearchEngine engine(world.corpus, sharded,
                                         search::MakeBm25Scorer(),
                                         /*num_threads=*/1, strategy);
      ASSERT_EQ(engine.eval_strategy(), strategy);
      for (size_t qi = 0; qi < world.workload.size(); ++qi) {
        SCOPED_TRACE(::testing::Message()
                     << "shards=" << num_shards << " strategy="
                     << search::EvalStrategyName(strategy) << " query=" << qi);
        std::vector<ScoredDoc> want =
            mono.Evaluate(world.workload[qi].term_ids, 10);
        ExpectBitIdentical(engine.Evaluate(world.workload[qi].term_ids, 10),
                           want, "strategy-grid");
        ExpectBitIdentical(
            mono_maxscore.Evaluate(world.workload[qi].term_ids, 10), want,
            "mono-maxscore");
      }
    }
  }
}

TEST(ShardingParityTest, RandomQueriesIncludingRepeatsAndUnknownTerms) {
  const auto& world = World();
  search::SearchEngine mono(world.corpus, world.index, search::MakeBm25Scorer());
  util::Rng rng(4242);
  for (size_t num_shards : {size_t{2}, size_t{7}}) {
    ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
    search::ShardedSearchEngine engine(world.corpus, sharded,
                                       search::MakeBm25Scorer());
    for (int trial = 0; trial < 40; ++trial) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << num_shards << " trial=" << trial);
      size_t len = 1 + rng.UniformInt(uint64_t{6});
      std::vector<text::TermId> query;
      for (size_t i = 0; i < len; ++i) {
        // Every other trial draws past the vocabulary to hit empty lists.
        uint64_t space = world.corpus.vocabulary_size() + (trial % 2 ? 50 : 0);
        query.push_back(static_cast<text::TermId>(rng.UniformInt(space)));
      }
      // Duplicate a term half the time: qtf collapse must match too.
      if (len > 1 && trial % 2 == 0) query.push_back(query[0]);
      ExpectBitIdentical(engine.Evaluate(query, 15), mono.Evaluate(query, 15),
                         "random");
    }
  }
}

TEST(ShardingParityTest, KLargerThanCorpusLeavesEmptyShards) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  InvertedIndex mono_index = InvertedIndex::Build(c);
  search::SearchEngine mono(c, mono_index, search::MakeBm25Scorer());
  ShardedIndex sharded = ShardedIndex::Build(c, 7);  // 4 docs, 7 shards
  ASSERT_EQ(sharded.num_shards(), 7u);
  EXPECT_EQ(sharded.num_documents(), 4u);
  search::ShardedSearchEngine engine(c, sharded, search::MakeBm25Scorer());
  for (text::TermId t = 0; t < 4; ++t) {
    ExpectBitIdentical(engine.Evaluate({t}, 10), mono.Evaluate({t}, 10),
                       "tiny");
  }
}

TEST(ShardingParityTest, EmptyQueryAndZeroKReturnNothing) {
  const auto& world = World();
  ShardedIndex sharded = ShardedIndex::Build(world.corpus, 4);
  search::ShardedSearchEngine engine(world.corpus, sharded,
                                     search::MakeBm25Scorer());
  EXPECT_TRUE(engine.Evaluate({}, 10).empty());
  EXPECT_TRUE(engine.Evaluate({0}, 0).empty());
}

TEST(ShardingParityTest, SearchLogsLikeMonolithic) {
  const auto& world = World();
  ShardedIndex sharded = ShardedIndex::Build(world.corpus, 2);
  search::ShardedSearchEngine engine(world.corpus, sharded,
                                     search::MakeBm25Scorer());
  engine.Search({1, 2}, 5, /*cycle_id=*/9);
  engine.Evaluate({3}, 5);  // must NOT log
  ASSERT_EQ(engine.query_log().size(), 1u);
  EXPECT_EQ(engine.query_log().entries()[0].cycle_id, 9u);
  EXPECT_EQ(engine.query_log().entries()[0].terms,
            (std::vector<text::TermId>{1, 2}));
}

// ------------------------------------------------------------ tie-break --

// Regression for doc-id-deterministic merge ordering: construct documents
// with IDENTICAL content in DIFFERENT shards, so their scores tie exactly
// (same tf, same length, same collection statistics → same double bits).
// The merged ranking must order them by doc id no matter how many shards
// evaluated them or in which order the shard results arrived.
TEST(ShardingTieBreakTest, ExactCrossShardTiesOrderByDocId) {
  corpus::Corpus c;
  text::Vocabulary& vocab = c.mutable_vocabulary();
  text::TermId a = vocab.AddTerm("alpha");
  text::TermId b = vocab.AddTerm("beta");
  text::TermId filler = vocab.AddTerm("filler");
  // Six docs; docs 0, 2 and 5 are identical (same tf, same length → the
  // same BM25 double bits); doc 3 matches but is longer, so it scores
  // strictly lower.
  c.AddDocument("d0", {a, b});
  c.AddDocument("d1", {filler, filler});
  c.AddDocument("d2", {a, b});
  c.AddDocument("d3", {a, filler, filler});
  c.AddDocument("d4", {filler});
  c.AddDocument("d5", {a, b});

  InvertedIndex mono_index = InvertedIndex::Build(c);
  search::SearchEngine mono(c, mono_index, search::MakeBm25Scorer());
  std::vector<ScoredDoc> want = mono.Evaluate({a}, 6);
  // The tie really is exact: three equal leading scores.
  ASSERT_GE(want.size(), 3u);
  ASSERT_EQ(want[0].score, want[1].score);
  ASSERT_EQ(want[1].score, want[2].score);
  EXPECT_EQ(want[0].doc, 0u);
  EXPECT_EQ(want[1].doc, 2u);
  EXPECT_EQ(want[2].doc, 5u);

  for (size_t num_shards : {size_t{2}, size_t{3}, size_t{6}}) {
    SCOPED_TRACE(num_shards);
    ShardedIndex sharded = ShardedIndex::Build(c, num_shards);
    // The tied docs must actually span shards for the test to bite.
    if (num_shards > 1) {
      EXPECT_NE(sharded.ShardOf(0), sharded.ShardOf(5));
    }
    search::ShardedSearchEngine engine(c, sharded, search::MakeBm25Scorer());
    ExpectBitIdentical(engine.Evaluate({a}, 6), want, "tie/full");
    // Truncation through the tie must keep the lower doc ids.
    std::vector<ScoredDoc> top2 = engine.Evaluate({a}, 2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].doc, 0u);
    EXPECT_EQ(top2[1].doc, 2u);
  }
}

// ------------------------------------------------------- parallel build --

void ExpectStatsEqual(const IndexStats& got, const IndexStats& want);

// Shard construction fans out over ThreadPool::ParallelFor (shards are
// independent doc ranges). The pooled build must be indistinguishable from
// the serial one: identical serialized bytes, identical stats, identical
// query results.
TEST(ShardingParallelBuildTest, PooledBuildMatchesSerialBitForBit) {
  const auto& world = World();
  util::ThreadPool pool(4);
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE(num_shards);
    ShardedIndex serial = ShardedIndex::Build(world.corpus, num_shards);
    ShardedIndex pooled = ShardedIndex::Build(world.corpus, num_shards, &pool);
    // Byte equality implies every shard's postings, lengths and manifest
    // agree exactly; stats equality re-checks the aggregates.
    EXPECT_EQ(pooled.Serialize(), serial.Serialize());
    ExpectStatsEqual(pooled.ComputeStats(), serial.ComputeStats());
    search::ShardedSearchEngine serial_engine(world.corpus, serial,
                                              search::MakeBm25Scorer());
    search::ShardedSearchEngine pooled_engine(world.corpus, pooled,
                                              search::MakeBm25Scorer());
    for (size_t qi = 0; qi < 10; ++qi) {
      ExpectBitIdentical(
          pooled_engine.Evaluate(world.workload[qi].term_ids, 10),
          serial_engine.Evaluate(world.workload[qi].term_ids, 10),
          "parallel-build");
    }
  }
}

// ------------------------------------------------------ stats properties --

void ExpectStatsEqual(const IndexStats& got, const IndexStats& want) {
  EXPECT_EQ(got.num_terms, want.num_terms);
  EXPECT_EQ(got.num_documents, want.num_documents);
  EXPECT_EQ(got.total_postings, want.total_postings);
  EXPECT_EQ(got.max_list_length, want.max_list_length);
  EXPECT_EQ(got.encoded_bytes, want.encoded_bytes);
  EXPECT_EQ(got.pir_padded_bytes, want.pir_padded_bytes);
  EXPECT_DOUBLE_EQ(got.avg_list_length, want.avg_list_length);
}

TEST(ShardingStatsTest, AggregatedStatsEqualMonolithicExactly) {
  const auto& world = World();
  IndexStats want = world.index.ComputeStats();
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE(num_shards);
    ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
    // Every aggregate — including encoded_bytes, which cannot be recovered
    // by summing shard ByteSize()s (each shard re-anchors its first
    // posting) — must match the monolithic index exactly: the paper's §II
    // PIR arithmetic is partition-invariant.
    ExpectStatsEqual(sharded.ComputeStats(), want);
    // Collection-level accessors too.
    EXPECT_EQ(sharded.num_documents(), world.index.num_documents());
    EXPECT_EQ(sharded.num_terms(), world.index.num_terms());
    EXPECT_EQ(sharded.total_tokens(), world.index.total_tokens());
    EXPECT_DOUBLE_EQ(sharded.avg_doc_length(), world.index.avg_doc_length());
  }
}

TEST(ShardingStatsTest, PerShardPostingsSumToMonolithic) {
  const auto& world = World();
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE(num_shards);
    ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
    uint64_t postings = 0;
    size_t docs = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      IndexStats shard_stats = sharded.shard(s).ComputeStats();
      postings += shard_stats.total_postings;
      docs += shard_stats.num_documents;
      EXPECT_EQ(shard_stats.num_documents,
                sharded.manifest().ranges[s].size());
    }
    IndexStats want = world.index.ComputeStats();
    EXPECT_EQ(postings, want.total_postings);
    EXPECT_EQ(docs, want.num_documents);
  }
}

TEST(ShardingStatsTest, DocFreqAndDocLengthRoundTripThroughShardMapping) {
  const auto& world = World();
  util::Rng rng(1337);
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE(num_shards);
    ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
    for (int trial = 0; trial < 200; ++trial) {
      text::TermId term = static_cast<text::TermId>(
          rng.UniformInt(uint64_t{world.corpus.vocabulary_size()}));
      EXPECT_EQ(sharded.DocFreq(term), world.index.DocFreq(term))
          << "term " << term;
      // Per-shard dfs must additionally SUM to the global df.
      uint32_t sum = 0;
      for (size_t s = 0; s < sharded.num_shards(); ++s) {
        sum += sharded.shard(s).DocFreq(term);
      }
      EXPECT_EQ(sum, world.index.DocFreq(term)) << "term " << term;

      corpus::DocId doc = static_cast<corpus::DocId>(
          rng.UniformInt(uint64_t{world.corpus.num_documents()}));
      EXPECT_EQ(sharded.DocLength(doc), world.index.DocLength(doc))
          << "doc " << doc;
      // The owning shard really owns it.
      size_t s = sharded.ShardOf(doc);
      const ShardRange& range = sharded.manifest().ranges[s];
      EXPECT_GE(doc, range.begin);
      EXPECT_LT(doc, range.end);
    }
    // Out-of-vocabulary terms have zero frequency everywhere.
    EXPECT_EQ(sharded.DocFreq(static_cast<text::TermId>(
                  world.corpus.vocabulary_size() + 3)),
              0u);
  }
}

TEST(ShardingStatsTest, RangesTileTheDocSpace) {
  const auto& world = World();
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE(num_shards);
    ShardedIndex sharded = ShardedIndex::Build(world.corpus, num_shards);
    ASSERT_EQ(sharded.manifest().ranges.size(), num_shards);
    corpus::DocId expected_begin = 0;
    for (const ShardRange& r : sharded.manifest().ranges) {
      EXPECT_EQ(r.begin, expected_begin);
      EXPECT_LE(r.begin, r.end);
      expected_begin = r.end;
    }
    EXPECT_EQ(expected_begin, world.corpus.num_documents());
  }
}

// ---------------------------------------------------------- serialization --

TEST(ShardedIndexSerializationTest, RoundTripPreservesEverything) {
  const auto& world = World();
  for (size_t num_shards : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(num_shards);
    ShardedIndex original = ShardedIndex::Build(world.corpus, num_shards);
    std::string bytes = original.Serialize();
    auto restored = ShardedIndex::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    // Byte-stable: re-serializing reproduces the identical blob.
    EXPECT_EQ(restored->Serialize(), bytes);
    ExpectStatsEqual(restored->ComputeStats(), original.ComputeStats());
    // Query results survive the round trip bit for bit.
    search::ShardedSearchEngine before(world.corpus, original,
                                       search::MakeBm25Scorer());
    search::ShardedSearchEngine after(world.corpus, *restored,
                                      search::MakeBm25Scorer());
    for (size_t qi = 0; qi < 10; ++qi) {
      ExpectBitIdentical(after.Evaluate(world.workload[qi].term_ids, 10),
                         before.Evaluate(world.workload[qi].term_ids, 10),
                         "roundtrip");
    }
  }
}

// Builds a syntactically valid sharded blob for TinyCorpus (4 docs) with
// hand-controlled manifest fields, for hostile-mutation tests.
std::string TinyShardedBlob() {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  return ShardedIndex::Build(c, 2).Serialize();
}

// Re-encodes a 2-shard TinyCorpus blob with attacker-chosen ranges.
std::string BlobWithRanges(uint64_t b0, uint64_t e0, uint64_t b1, uint64_t e1,
                           uint64_t declared_docs) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  ShardedIndex honest = ShardedIndex::Build(c, 2);
  util::BinaryWriter w;
  w.WriteVarint(2);                          // shard count
  w.WriteVarint(honest.num_terms());         // term space
  w.WriteVarint(declared_docs);              // document count
  w.WriteVarint(b0);
  w.WriteVarint(e0);
  w.WriteVarint(b1);
  w.WriteVarint(e1);
  w.WriteString(honest.shard(0).Serialize());
  w.WriteString(honest.shard(1).Serialize());
  return w.data();
}

TEST(ShardedIndexHostileTest, TruncatedBlobsNeverCrash) {
  std::string bytes = TinyShardedBlob();
  ASSERT_TRUE(ShardedIndex::Deserialize(bytes).ok());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = ShardedIndex::Deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut " << cut;
    EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss)
        << "cut " << cut;
  }
}

TEST(ShardedIndexHostileTest, ZeroShardsRejected) {
  util::BinaryWriter w;
  w.WriteVarint(0);
  auto result = ShardedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, ShardCountExceedingPayloadRejectedBeforeAlloc) {
  // A few bytes claiming billions of shards must die at the bound check,
  // not after a giant reserve.
  util::BinaryWriter w;
  w.WriteVarint(uint64_t{1} << 40);
  auto result = ShardedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, InvertedRangeRejected) {
  auto result = ShardedIndex::Deserialize(BlobWithRanges(2, 0, 2, 4, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, OverlappingRangesRejected) {
  auto result = ShardedIndex::Deserialize(BlobWithRanges(0, 3, 2, 4, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, GappedRangesRejected) {
  auto result = ShardedIndex::Deserialize(BlobWithRanges(0, 1, 2, 4, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, RangesNotCoveringDeclaredCountRejected) {
  auto result = ShardedIndex::Deserialize(BlobWithRanges(0, 2, 2, 3, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, RangeBeyondDocIdSpaceRejected) {
  auto result = ShardedIndex::Deserialize(
      BlobWithRanges(0, 2, 2, (uint64_t{1} << 33), uint64_t{1} << 33));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, ShardPayloadRangeMismatchRejected) {
  // Ranges claim shard 0 owns three docs, but its blob holds two.
  auto result = ShardedIndex::Deserialize(BlobWithRanges(0, 3, 3, 4, 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, ShardTermSpaceMismatchRejected) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  ShardedIndex honest = ShardedIndex::Build(c, 2);
  util::BinaryWriter w;
  w.WriteVarint(2);
  w.WriteVarint(honest.num_terms() + 1);  // lie about the term space
  w.WriteVarint(4);
  w.WriteVarint(0);
  w.WriteVarint(2);
  w.WriteVarint(2);
  w.WriteVarint(4);
  w.WriteString(honest.shard(0).Serialize());
  w.WriteString(honest.shard(1).Serialize());
  auto result = ShardedIndex::Deserialize(w.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, TrailingBytesRejected) {
  std::string bytes = TinyShardedBlob() + "x";
  auto result = ShardedIndex::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDataLoss);
}

TEST(ShardedIndexHostileTest, CorruptShardBlobPropagatesShardHardening) {
  // Flip bytes inside the first shard's payload: either the inner
  // (hardened) InvertedIndex deserializer rejects it, or the manifest
  // cross-checks do. Nothing may crash.
  std::string bytes = TinyShardedBlob();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
    ShardedIndex::Deserialize(mutated);  // must not crash or OOM
  }
  SUCCEED();
}

// ------------------------------------------------------- serving parity --

// The full-stack invariant: a SessionDriver serving many concurrent
// sessions over a sharded fleet produces digests bit-identical to the same
// driver over the monolithic engine, at every driver thread count × shard
// fan-out combination. This is also the suite's ThreadSanitizer target for
// the scatter path (concurrent sessions share one shard pool).
TEST(ShardedServingTest, DriverDigestsMatchMonolithicAcrossThreadCounts) {
  const auto& world = World();
  topicmodel::LdaInferencer inferencer(world.model);

  std::vector<std::vector<text::TermId>> queries;
  for (size_t i = 0; i < 8; ++i) {
    queries.push_back(world.workload[i % world.workload.size()].term_ids);
  }
  std::vector<serving::SessionWorkload> sessions =
      serving::DealSessions(queries, 4);

  auto run = [&](const search::QueryEngine& engine, size_t driver_threads) {
    serving::DriverOptions options;
    options.num_threads = driver_threads;
    options.seed = 21;
    serving::SessionDriver driver(world.model, inferencer, engine, options);
    return driver.Run(sessions);
  };

  search::SearchEngine mono(world.corpus, world.index,
                            search::MakeBm25Scorer());
  serving::ServingReport want = run(mono, 1);

  ShardedIndex sharded = ShardedIndex::Build(world.corpus, 4);
  for (size_t engine_threads : {size_t{1}, size_t{4}}) {
    for (search::EvalStrategy strategy :
         {search::EvalStrategy::kTAAT, search::EvalStrategy::kMaxScore}) {
    search::ShardedSearchEngine engine(world.corpus, sharded,
                                       search::MakeBm25Scorer(),
                                       engine_threads, strategy);
    for (size_t driver_threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE(::testing::Message() << "engine_threads=" << engine_threads
                                        << " strategy="
                                        << search::EvalStrategyName(strategy)
                                        << " driver_threads="
                                        << driver_threads);
      serving::ServingReport got = run(engine, driver_threads);
      ASSERT_EQ(got.sessions.size(), want.sessions.size());
      for (size_t s = 0; s < got.sessions.size(); ++s) {
        EXPECT_EQ(got.sessions[s].digest, want.sessions[s].digest)
            << "session " << s;
        EXPECT_EQ(got.sessions[s].queries_submitted,
                  want.sessions[s].queries_submitted);
      }
    }
    }
  }
}

}  // namespace
}  // namespace toppriv
