// Tests for the TrackMeNot and Murugesan-Clifton baselines.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/canonical.h"
#include "baselines/trackmenot.h"
#include "tests/test_helpers.h"
#include "topicmodel/lsa.h"

namespace toppriv::baselines {
namespace {

using toppriv::testing::World;

// ------------------------------------------------------------- TrackMeNot --

TEST(TrackMeNotTest, CycleContainsGenuineQuery) {
  TrackMeNot tmn(World().corpus, TrackMeNotMode::kUniformRandom);
  util::Rng rng(1);
  size_t user_index = 99;
  auto cycle = tmn.MakeCycle(World().workload[0].term_ids, 5, &rng,
                             &user_index);
  ASSERT_EQ(cycle.size(), 6u);
  ASSERT_LT(user_index, cycle.size());
  EXPECT_EQ(cycle[user_index], World().workload[0].term_ids);
}

TEST(TrackMeNotTest, GhostsAreNonEmptyAndInVocabulary) {
  for (TrackMeNotMode mode : {TrackMeNotMode::kUniformRandom,
                              TrackMeNotMode::kFrequencyWeighted}) {
    TrackMeNot tmn(World().corpus, mode);
    util::Rng rng(2);
    size_t user_index = 0;
    auto cycle = tmn.MakeCycle(World().workload[1].term_ids, 8, &rng,
                               &user_index);
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i == user_index) continue;
      EXPECT_FALSE(cycle[i].empty()) << i;
      std::set<text::TermId> distinct(cycle[i].begin(), cycle[i].end());
      EXPECT_EQ(distinct.size(), cycle[i].size());
      for (text::TermId w : cycle[i]) {
        EXPECT_LT(w, World().corpus.vocabulary_size());
      }
    }
  }
}

TEST(TrackMeNotTest, FrequencyModeFavorsCommonTerms) {
  TrackMeNot uniform(World().corpus, TrackMeNotMode::kUniformRandom);
  TrackMeNot frequent(World().corpus, TrackMeNotMode::kFrequencyWeighted);
  const text::Vocabulary& vocab = World().corpus.vocabulary();
  util::Rng rng_a(3), rng_b(3);
  double cf_uniform = 0.0, cf_frequent = 0.0;
  size_t n_uniform = 0, n_frequent = 0;
  for (int round = 0; round < 20; ++round) {
    size_t idx;
    for (const auto& q :
         uniform.MakeCycle(World().workload[2].term_ids, 4, &rng_a, &idx)) {
      for (text::TermId w : q) {
        cf_uniform += static_cast<double>(vocab.CollectionFreq(w));
        ++n_uniform;
      }
    }
    for (const auto& q :
         frequent.MakeCycle(World().workload[2].term_ids, 4, &rng_b, &idx)) {
      for (text::TermId w : q) {
        cf_frequent += static_cast<double>(vocab.CollectionFreq(w));
        ++n_frequent;
      }
    }
  }
  EXPECT_GT(cf_frequent / n_frequent, cf_uniform / n_uniform);
}

// -------------------------------------------------------------------- LSA --

class LsaTest : public ::testing::Test {
 protected:
  static const topicmodel::LsaModel& Model() {
    static const topicmodel::LsaModel* model = [] {
      topicmodel::LsaOptions options;
      options.num_factors = 16;
      options.power_iterations = 20;
      return new topicmodel::LsaModel(
          topicmodel::LsaTrainer(options).Train(World().corpus));
    }();
    return *model;
  }
};

TEST_F(LsaTest, SingularValuesDescendingPositive) {
  const auto& sv = Model().singular_values();
  ASSERT_EQ(sv.size(), 16u);
  for (size_t i = 0; i < sv.size(); ++i) {
    EXPECT_GT(sv[i], 0.f);
    if (i > 0) {
      EXPECT_LE(sv[i], sv[i - 1] * 1.0001f);
    }
  }
}

TEST_F(LsaTest, RelatedTermsCloserThanUnrelated) {
  // Terms from the same ground-truth topic should have higher cosine than
  // terms from different topics, on average.
  const auto& truth = World().truth;
  double same_sum = 0.0, diff_sum = 0.0;
  size_t same_n = 0, diff_n = 0;
  for (size_t t = 0; t + 1 < truth.seed_term_ids.size() && t < 8; ++t) {
    const auto& a = truth.seed_term_ids[t];
    const auto& b = truth.seed_term_ids[t + 1];
    for (size_t i = 0; i + 1 < a.size() && i < 5; ++i) {
      same_sum += topicmodel::LsaModel::Cosine(Model().TermVector(a[i]),
                                               Model().TermVector(a[i + 1]));
      ++same_n;
      diff_sum += topicmodel::LsaModel::Cosine(Model().TermVector(a[i]),
                                               Model().TermVector(b[i]));
      ++diff_n;
    }
  }
  EXPECT_GT(same_sum / same_n, diff_sum / diff_n + 0.1);
}

TEST_F(LsaTest, QueryProjectionNearItsTopicTerms) {
  const auto& truth = World().truth;
  // Project a query made of topic-0 seeds; it should be closer to another
  // topic-0 seed than to a topic-5 seed.
  std::vector<text::TermId> query(truth.seed_term_ids[0].begin(),
                                  truth.seed_term_ids[0].begin() + 4);
  std::vector<float> projection = Model().ProjectQuery(query);
  double own = topicmodel::LsaModel::Cosine(
      projection, Model().TermVector(truth.seed_term_ids[0][5]));
  double other = topicmodel::LsaModel::Cosine(
      projection, Model().TermVector(truth.seed_term_ids[5][0]));
  EXPECT_GT(own, other);
}

TEST_F(LsaTest, CosineEdgeCases) {
  std::vector<float> zero(16, 0.f), unit(16, 0.f);
  unit[0] = 1.f;
  EXPECT_DOUBLE_EQ(topicmodel::LsaModel::Cosine(zero, unit), 0.0);
  EXPECT_NEAR(topicmodel::LsaModel::Cosine(unit, unit), 1.0, 1e-9);
}

// -------------------------------------------------- CanonicalQueryScheme --

class CanonicalTest : public ::testing::Test {
 protected:
  static const topicmodel::LsaModel& Lsa() {
    static const topicmodel::LsaModel* model = [] {
      topicmodel::LsaOptions options;
      options.num_factors = 16;
      options.power_iterations = 15;
      return new topicmodel::LsaModel(
          topicmodel::LsaTrainer(options).Train(World().corpus));
    }();
    return *model;
  }
  static const CanonicalQueryScheme& Scheme() {
    static const CanonicalQueryScheme* scheme = [] {
      CanonicalOptions options;
      options.terms_per_query = 5;
      options.group_size = 4;
      options.max_terms_considered = 800;
      return new CanonicalQueryScheme(World().corpus, Lsa(), options);
    }();
    return *scheme;
  }
};

TEST_F(CanonicalTest, BuildsDisjointCanonicalQueries) {
  const auto& queries = Scheme().canonical_queries();
  ASSERT_GT(queries.size(), 20u);
  std::set<text::TermId> seen;
  for (const CanonicalQuery& q : queries) {
    EXPECT_EQ(q.terms.size(), 5u);
    EXPECT_GT(q.popularity, 0.0);
    for (text::TermId w : q.terms) {
      EXPECT_TRUE(seen.insert(w).second) << "term in two canonical queries";
    }
  }
  EXPECT_GT(Scheme().num_groups(), 2u);
}

TEST_F(CanonicalTest, EveryQueryBelongsToItsGroup) {
  const auto& queries = Scheme().canonical_queries();
  for (const CanonicalQuery& q : queries) {
    EXPECT_LT(q.group, Scheme().num_groups());
  }
}

TEST_F(CanonicalTest, SubstituteReturnsWholeGroup) {
  util::Rng rng(4);
  size_t position = 1234;
  auto cycle =
      Scheme().Substitute(World().workload[0].term_ids, &rng, &position);
  ASSERT_GE(cycle.size(), 2u);
  ASSERT_LT(position, cycle.size());
  // The substituted entry is the canonical query closest to the original.
  size_t canonical = Scheme().ClosestCanonical(World().workload[0].term_ids);
  EXPECT_EQ(cycle[position],
            Scheme().canonical_queries()[canonical].terms);
}

TEST_F(CanonicalTest, ClosestCanonicalSharesTopicWithQuery) {
  // For a strongly topical query, the substituted canonical query should
  // contain at least one term of the query's ground-truth topic family
  // most of the time (that is the usability premise of [10]).
  size_t aligned = 0, total = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    const corpus::BenchmarkQuery& q = World().workload[qi];
    size_t canonical = Scheme().ClosestCanonical(q.term_ids);
    const CanonicalQuery& c = Scheme().canonical_queries()[canonical];
    std::set<text::TermId> intent_seeds;
    for (uint32_t t : q.intent_topics) {
      intent_seeds.insert(World().truth.seed_term_ids[t].begin(),
                          World().truth.seed_term_ids[t].end());
    }
    bool hit = false;
    for (text::TermId w : c.terms) {
      if (intent_seeds.count(w)) hit = true;
    }
    ++total;
    if (hit) ++aligned;
  }
  EXPECT_GE(aligned * 2, total);  // at least half align
}

}  // namespace
}  // namespace toppriv::baselines
