// Unit tests for the text-analysis substrate.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace toppriv::text {
namespace {

// -------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, HyphenatedCompoundsSplit) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("clean-room AH-64"),
            (std::vector<std::string>{"clean", "room", "ah", "64"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  Tokenizer tok;  // min length 2
  EXPECT_EQ(tok.Tokenize("a bc d ef"),
            (std::vector<std::string>{"bc", "ef"}));
}

TEST(TokenizerTest, MinLengthOne) {
  TokenizerOptions opts;
  opts.min_token_length = 1;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("a bc"), (std::vector<std::string>{"a", "bc"}));
}

TEST(TokenizerTest, DropsOversizedRunsEntirely) {
  TokenizerOptions opts;
  opts.max_token_length = 5;
  Tokenizer tok(opts);
  // The 9-char run must be dropped, not truncated to a 5-char prefix.
  EXPECT_EQ(tok.Tokenize("abcdefghi ok"),
            (std::vector<std::string>{"ok"}));
}

TEST(TokenizerTest, NumberHandling) {
  TokenizerOptions keep;
  keep.keep_numbers = true;
  EXPECT_EQ(Tokenizer(keep).Tokenize("sq 333 changi"),
            (std::vector<std::string>{"sq", "333", "changi"}));
  TokenizerOptions drop;
  drop.keep_numbers = false;
  EXPECT_EQ(Tokenizer(drop).Tokenize("sq 333 changi"),
            (std::vector<std::string>{"sq", "changi"}));
}

TEST(TokenizerTest, EmptyAndDelimiterOnlyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("... --- !!!").empty());
}

// -------------------------------------------------------------- Stopwords --

TEST(StopwordsTest, CommonWordsPresent) {
  const StopwordList& sw = DefaultStopwords();
  EXPECT_TRUE(sw.Contains("the"));
  EXPECT_TRUE(sw.Contains("a"));
  EXPECT_TRUE(sw.Contains("because"));
  EXPECT_FALSE(sw.Contains("helicopter"));
  EXPECT_FALSE(sw.Contains("tank"));
  EXPECT_GT(sw.size(), 100u);
}

// ----------------------------------------------------------------- Porter --

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterKnownVectors : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterKnownVectors, StemsCorrectly) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().word), GetParam().stem)
      << "word: " << GetParam().word;
}

// Vectors cross-checked against Porter's reference implementation.
INSTANTIATE_TEST_SUITE_P(
    Vectors, PorterKnownVectors,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"digitizer", "digit"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"formaliti", "formal"}, StemCase{"triplicate", "triplic"},
        StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
        StemCase{"electricity", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"homologou", "homolog"}, StemCase{"communism", "commun"},
        StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
        StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

TEST(PorterTest, ShortWordsUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("at"), "at");
  EXPECT_EQ(stemmer.Stem("by"), "by");
}

TEST(PorterTest, NonAlphaUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("ah-64"), "ah-64");
  EXPECT_EQ(stemmer.Stem("123"), "123");
}

// ------------------------------------------------------------- Vocabulary --

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  TermId a1 = vocab.AddTerm("apache");
  TermId a2 = vocab.AddTerm("apache");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(vocab.size(), 1u);
  EXPECT_EQ(vocab.TermString(a1), "apache");
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.AddTerm("tank");
  EXPECT_EQ(vocab.Lookup("helicopter"), kInvalidTerm);
  EXPECT_TRUE(vocab.Contains("tank"));
  EXPECT_FALSE(vocab.Contains("helicopter"));
}

TEST(VocabularyTest, IdsAreDense) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.AddTerm("a"), 0u);
  EXPECT_EQ(vocab.AddTerm("b"), 1u);
  EXPECT_EQ(vocab.AddTerm("c"), 2u);
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary vocab;
  TermId t = vocab.AddTerm("stock");
  vocab.AddCounts(t, 1, 3);
  vocab.AddCounts(t, 1, 2);
  EXPECT_EQ(vocab.DocFreq(t), 2u);
  EXPECT_EQ(vocab.CollectionFreq(t), 5u);
  EXPECT_EQ(vocab.total_tokens(), 5u);
}

TEST(VocabularyTest, SerializeRoundtrip) {
  Vocabulary vocab;
  TermId a = vocab.AddTerm("alpha");
  TermId b = vocab.AddTerm("beta");
  vocab.AddCounts(a, 2, 7);
  vocab.AddCounts(b, 1, 1);
  auto restored = Vocabulary::Deserialize(vocab.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->Lookup("alpha"), a);
  EXPECT_EQ(restored->DocFreq(a), 2u);
  EXPECT_EQ(restored->CollectionFreq(a), 7u);
  EXPECT_EQ(restored->total_tokens(), 8u);
}

TEST(VocabularyTest, DeserializeGarbageFails) {
  EXPECT_FALSE(Vocabulary::Deserialize("!!!garbage").ok());
}

// --------------------------------------------------------------- Analyzer --

TEST(AnalyzerTest, RemovesStopwords) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.Analyze("the apache helicopter is a weapon"),
            (std::vector<std::string>{"apache", "helicopter", "weapon"}));
}

TEST(AnalyzerTest, KeepStopwordsWhenDisabled) {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  Analyzer analyzer(opts);
  EXPECT_EQ(analyzer.Analyze("the tank"),
            (std::vector<std::string>{"the", "tank"}));
}

TEST(AnalyzerTest, StemmingPipeline) {
  AnalyzerOptions opts;
  opts.stem = true;
  Analyzer analyzer(opts);
  EXPECT_EQ(analyzer.Analyze("helicopters flying"),
            (std::vector<std::string>{"helicopt", "fly"}));
}

TEST(AnalyzerTest, InternAndLookupPaths) {
  Analyzer analyzer;
  Vocabulary vocab;
  std::vector<TermId> ids =
      analyzer.AnalyzeAndIntern("apache helicopter apache", &vocab);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(vocab.size(), 2u);

  // Lookup path drops unknown terms instead of interning them.
  std::vector<TermId> lookup =
      analyzer.AnalyzeWithVocabulary("apache submarine", vocab);
  EXPECT_EQ(lookup, (std::vector<TermId>{ids[0]}));
  EXPECT_EQ(vocab.size(), 2u);
}

}  // namespace
}  // namespace toppriv::text
