// Tests for query-log anonymization (paper Section III, identity layer).
#include <set>

#include <gtest/gtest.h>

#include "search/log_anonymizer.h"
#include "tests/test_helpers.h"

namespace toppriv::search {
namespace {

using toppriv::testing::World;

std::vector<LoggedQuery> SampleLog() {
  std::vector<LoggedQuery> log;
  for (size_t qi = 0; qi < 5; ++qi) {
    LoggedQuery entry;
    entry.sequence = qi;
    entry.cycle_id = qi / 2;
    entry.timestamp = static_cast<double>(qi) * 1800.0;
    entry.terms = World().workload[qi].term_ids;
    log.push_back(std::move(entry));
  }
  return log;
}

TEST(LogAnonymizerTest, PseudonymsAreStableAndKeyed) {
  AnonymizerPolicy policy;
  LogAnonymizer anonymizer(World().corpus.vocabulary(), policy);
  EXPECT_EQ(anonymizer.Pseudonym(42), anonymizer.Pseudonym(42));
  EXPECT_NE(anonymizer.Pseudonym(42), anonymizer.Pseudonym(43));
  AnonymizerPolicy other_key = policy;
  other_key.key = policy.key + 1;
  LogAnonymizer rekeyed(World().corpus.vocabulary(), other_key);
  EXPECT_NE(anonymizer.Pseudonym(42), rekeyed.Pseudonym(42));
}

TEST(LogAnonymizerTest, TermsHashedNotPlain) {
  AnonymizerPolicy policy;
  policy.min_doc_freq_to_keep = 0;
  LogAnonymizer anonymizer(World().corpus.vocabulary(), policy);
  std::vector<AnonymizedQuery> out = anonymizer.Anonymize(7, SampleLog());
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].hashed_terms.size(),
              World().workload[i].term_ids.size());
    for (size_t j = 0; j < out[i].hashed_terms.size(); ++j) {
      // Hash is keyed and far from the raw id.
      EXPECT_NE(out[i].hashed_terms[j], World().workload[i].term_ids[j]);
    }
  }
}

TEST(LogAnonymizerTest, RareTermsDropped) {
  // Find a rare and a common term in the corpus.
  const text::Vocabulary& vocab = World().corpus.vocabulary();
  text::TermId rare = text::kInvalidTerm, common = text::kInvalidTerm;
  for (text::TermId w = 0; w < vocab.size(); ++w) {
    if (vocab.DocFreq(w) == 1) rare = w;
    if (vocab.DocFreq(w) > 50) common = w;
  }
  ASSERT_NE(rare, text::kInvalidTerm);
  ASSERT_NE(common, text::kInvalidTerm);

  AnonymizerPolicy policy;
  policy.min_doc_freq_to_keep = 3;
  LogAnonymizer anonymizer(vocab, policy);
  LoggedQuery entry;
  entry.terms = {rare, common};
  std::vector<AnonymizedQuery> out = anonymizer.Anonymize(1, {entry});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].hashed_terms.size(), 1u);
  EXPECT_EQ(out[0].hashed_terms[0], anonymizer.HashTerm(common));
}

TEST(LogAnonymizerTest, TimeBucketsCoarsen) {
  AnonymizerPolicy policy;
  policy.time_bucket_seconds = 3600.0;
  LogAnonymizer anonymizer(World().corpus.vocabulary(), policy);
  std::vector<AnonymizedQuery> out = anonymizer.Anonymize(9, SampleLog());
  // Timestamps 0, 1800, 3600, 5400, 7200 -> buckets 0,0,1,1,2.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].time_bucket, 0u);
  EXPECT_EQ(out[1].time_bucket, 0u);
  EXPECT_EQ(out[2].time_bucket, 1u);
  EXPECT_EQ(out[3].time_bucket, 1u);
  EXPECT_EQ(out[4].time_bucket, 2u);
}

TEST(LogAnonymizerTest, SameTermSameHashAcrossQueries) {
  AnonymizerPolicy policy;
  policy.min_doc_freq_to_keep = 0;
  LogAnonymizer anonymizer(World().corpus.vocabulary(), policy);
  // Co-occurrence analysis remains possible (hashing is deterministic); the
  // protection is pseudonymity, not unlinkability -- same as [44].
  EXPECT_EQ(anonymizer.HashTerm(5), anonymizer.HashTerm(5));
  EXPECT_NE(anonymizer.HashTerm(5), anonymizer.HashTerm(6));
}

}  // namespace
}  // namespace toppriv::search
