// Unit and property tests for the TopPriv core: belief bookkeeping, the
// privacy model and the ghost-query generation algorithm.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "search/engine.h"
#include "search/eval.h"
#include "search/scorer.h"
#include "tests/test_helpers.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"
#include "toppriv/client.h"
#include "toppriv/ghost_generator.h"
#include "toppriv/privacy_spec.h"

namespace toppriv::core {
namespace {

using toppriv::testing::World;

// ----------------------------------------------------------- PrivacySpec --

TEST(PrivacySpecTest, DefaultIsValid) {
  PrivacySpec spec;
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_DOUBLE_EQ(spec.epsilon1, 0.05);
  EXPECT_DOUBLE_EQ(spec.epsilon2, 0.01);
}

TEST(PrivacySpecTest, RejectsEpsilon2AboveEpsilon1) {
  // Paper Section IV-A: epsilon1 >= epsilon2 is required, otherwise null
  // ghost queries could satisfy the model.
  PrivacySpec spec;
  spec.epsilon1 = 0.01;
  spec.epsilon2 = 0.05;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(PrivacySpecTest, RejectsOutOfRangeThresholds) {
  PrivacySpec spec;
  spec.epsilon1 = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.epsilon1 = 1.5;
  EXPECT_FALSE(spec.Validate().ok());
  spec.epsilon1 = 0.05;
  spec.epsilon2 = -0.1;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(PrivacySpecTest, RejectsBadLengthMultipliers) {
  PrivacySpec spec;
  spec.min_length_mult = 0.0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.min_length_mult = 2.0;
  spec.max_length_mult = 1.0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(PrivacySpecTest, EqualThresholdsAllowed) {
  PrivacySpec spec;
  spec.epsilon1 = spec.epsilon2 = 0.02;
  EXPECT_TRUE(spec.Validate().ok());
}

// ---------------------------------------------------------------- Belief --

TEST(BeliefTest, BoostIsPosteriorMinusPrior) {
  const auto& world = World();
  std::vector<double> posterior(world.model.num_topics(), 0.0);
  posterior[0] = 1.0;
  BeliefProfile profile = MakeBeliefProfile(world.model, posterior);
  EXPECT_NEAR(profile.boost[0], 1.0 - world.model.prior()[0], 1e-12);
  EXPECT_NEAR(profile.boost[1], -world.model.prior()[1], 1e-12);
}

TEST(BeliefTest, ExtractIntentionThreshold) {
  BeliefProfile profile;
  profile.boost = {0.10, 0.02, 0.06, -0.01};
  EXPECT_EQ(ExtractIntention(profile, 0.05),
            (std::vector<topicmodel::TopicId>{0, 2}));
  EXPECT_EQ(ExtractIntention(profile, 0.5).size(), 0u);
  // Strict inequality: boost exactly at the threshold is NOT relevant.
  profile.boost = {0.05};
  EXPECT_TRUE(ExtractIntention(profile, 0.05).empty());
}

TEST(BeliefTest, ExposureAndMask) {
  std::vector<double> boost = {0.10, 0.02, 0.06, -0.01};
  std::vector<topicmodel::TopicId> intention = {0, 2};
  EXPECT_DOUBLE_EQ(Exposure(boost, intention), 0.10);
  EXPECT_DOUBLE_EQ(MaskLevel(boost, intention), 0.02);
  EXPECT_DOUBLE_EQ(Exposure(boost, {}), 0.0);
  // Mask over all-negative outsiders is the (negative) max.
  EXPECT_DOUBLE_EQ(MaskLevel({-0.1, -0.2}, {}), -0.1);
}

TEST(BeliefTest, BestRankOfIntention) {
  std::vector<double> boost = {0.10, 0.02, 0.06, -0.01};
  // Ranking: t0 (0.10), t2 (0.06), t1 (0.02), t3 (-0.01).
  EXPECT_EQ(BestRankOfIntention(boost, {0}), 1u);
  EXPECT_EQ(BestRankOfIntention(boost, {2}), 2u);
  EXPECT_EQ(BestRankOfIntention(boost, {1, 2}), 2u);
  EXPECT_EQ(BestRankOfIntention(boost, {3}), 4u);
  EXPECT_EQ(BestRankOfIntention(boost, {}), 0u);
}

// --------------------------------------------------------- GhostGenerator --

class GhostGeneratorTest : public ::testing::Test {
 protected:
  GhostGeneratorTest()
      : inferencer_(World().model) {}

  QueryCycle ProtectQuery(size_t query_index, const PrivacySpec& spec,
                          GeneratorOptions options = {}, uint64_t seed = 5) {
    GhostQueryGenerator generator(World().model, inferencer_, spec, options);
    util::Rng rng(seed);
    return generator.Protect(World().workload[query_index].term_ids, &rng);
  }

  topicmodel::LdaInferencer inferencer_;
};

TEST_F(GhostGeneratorTest, CycleContainsGenuineQueryAtUserIndex) {
  PrivacySpec spec;
  QueryCycle cycle = ProtectQuery(0, spec);
  ASSERT_LT(cycle.user_index, cycle.queries.size());
  EXPECT_EQ(cycle.user_query(), World().workload[0].term_ids);
}

TEST_F(GhostGeneratorTest, SuppressesExposureBelowEpsilon2) {
  PrivacySpec spec;  // (5%, 1%)
  size_t satisfied = 0, with_intent = 0;
  for (size_t qi = 0; qi < 15; ++qi) {
    QueryCycle cycle = ProtectQuery(qi, spec);
    if (cycle.intention.empty()) continue;
    ++with_intent;
    EXPECT_GT(cycle.exposure_before, spec.epsilon1);
    if (cycle.met_epsilon2) {
      ++satisfied;
      EXPECT_LE(cycle.exposure_after, spec.epsilon2 + 1e-12);
    }
    // Exposure must never increase.
    EXPECT_LE(cycle.exposure_after, cycle.exposure_before + 1e-12);
  }
  ASSERT_GT(with_intent, 5u);
  // The paper reports epsilon2=1% is met down to ~3%; most queries succeed.
  EXPECT_GE(satisfied * 3, with_intent * 2);
}

TEST_F(GhostGeneratorTest, GhostsOmitGenuineTerms) {
  // Step 3b picks ghost words from masking topics only; the algorithm never
  // needs genuine search terms in ghosts ("qg does not need to include any
  // of the genuine search terms in qu"). With coherent topics the overlap
  // should be rare; assert it stays small rather than zero, since a general
  // word can legitimately appear in a masking topic.
  PrivacySpec spec;
  size_t overlap = 0, ghost_terms = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    QueryCycle cycle = ProtectQuery(qi, spec);
    std::set<text::TermId> genuine(cycle.user_query().begin(),
                                   cycle.user_query().end());
    for (size_t i = 0; i < cycle.queries.size(); ++i) {
      if (i == cycle.user_index) continue;
      for (text::TermId w : cycle.queries[i]) {
        ++ghost_terms;
        if (genuine.count(w)) ++overlap;
      }
    }
  }
  ASSERT_GT(ghost_terms, 0u);
  EXPECT_LT(static_cast<double>(overlap) / static_cast<double>(ghost_terms),
            0.1);
}

TEST_F(GhostGeneratorTest, GhostLengthsWithinMultipliers) {
  PrivacySpec spec;
  spec.min_length_mult = 0.5;
  spec.max_length_mult = 2.0;
  for (size_t qi = 0; qi < 8; ++qi) {
    QueryCycle cycle = ProtectQuery(qi, spec);
    size_t qu_len = cycle.user_query().size();
    for (size_t i = 0; i < cycle.queries.size(); ++i) {
      if (i == cycle.user_index) continue;
      size_t len = cycle.queries[i].size();
      EXPECT_GE(len + 1, static_cast<size_t>(0.5 * qu_len));  // rounding slack
      EXPECT_LE(len, static_cast<size_t>(2.0 * qu_len) + 1);
    }
  }
}

TEST_F(GhostGeneratorTest, MaskingTopicsAvoidIntention) {
  PrivacySpec spec;
  for (size_t qi = 0; qi < 8; ++qi) {
    QueryCycle cycle = ProtectQuery(qi, spec);
    std::set<topicmodel::TopicId> intent(cycle.intention.begin(),
                                         cycle.intention.end());
    std::set<topicmodel::TopicId> used;
    for (topicmodel::TopicId t : cycle.masking_topics) {
      EXPECT_FALSE(intent.count(t)) << "masking topic inside U";
      EXPECT_TRUE(used.insert(t).second) << "masking topic reused";
    }
  }
}

TEST_F(GhostGeneratorTest, DeterministicGivenSeed) {
  PrivacySpec spec;
  // Use a query that actually needs ghosts, so the seed matters.
  size_t qi = 0;
  while (qi < World().workload.size() &&
         ProtectQuery(qi, spec, {}, 77).num_ghosts() == 0) {
    ++qi;
  }
  ASSERT_LT(qi, World().workload.size());
  QueryCycle a = ProtectQuery(qi, spec, {}, 77);
  QueryCycle b = ProtectQuery(qi, spec, {}, 77);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.user_index, b.user_index);
  QueryCycle c = ProtectQuery(qi, spec, {}, 78);
  // Different randomness virtually always yields a different cycle.
  EXPECT_NE(a.queries, c.queries);
}

TEST_F(GhostGeneratorTest, TerminatesUnderExtremeEpsilon2) {
  // epsilon2 ~ 0 forces the loop to either drive the boost to ~zero (enough
  // ghost dilution can push the Eq. 2 posterior below the prior) or exhaust
  // all masking topics; either way it must terminate with at most |T\U|
  // ghosts (paper: "the algorithm is guaranteed to terminate").
  PrivacySpec spec;
  spec.epsilon1 = 0.05;
  spec.epsilon2 = 1e-9;
  QueryCycle cycle = ProtectQuery(0, spec);
  EXPECT_LE(cycle.length(), World().model.num_topics() + 1);
  if (!cycle.met_epsilon2) {
    // Exhausted path: every non-intention topic was used or rejected.
    EXPECT_EQ(cycle.masking_topics.size() + cycle.rejected_topics.size() +
                  cycle.intention.size(),
              World().model.num_topics());
  }
}

TEST_F(GhostGeneratorTest, FixedGhostCountMode) {
  PrivacySpec spec;
  spec.fixed_ghost_count = 7;
  QueryCycle cycle = ProtectQuery(1, spec);
  EXPECT_EQ(cycle.num_ghosts(), 7u);
  EXPECT_EQ(cycle.length(), 8u);
}

TEST_F(GhostGeneratorTest, FixedCountLargerThanTopics) {
  // Forces the masking-topic reset path.
  PrivacySpec spec;
  spec.fixed_ghost_count = World().model.num_topics() + 5;
  QueryCycle cycle = ProtectQuery(1, spec);
  EXPECT_EQ(cycle.num_ghosts(), World().model.num_topics() + 5);
}

TEST_F(GhostGeneratorTest, NoIntentionMeansNoGhosts) {
  // With a huge epsilon1 no topic is relevant, so the loop never runs and
  // the cycle is the bare user query.
  PrivacySpec spec;
  spec.epsilon1 = 0.9;
  spec.epsilon2 = 0.9;
  QueryCycle cycle = ProtectQuery(0, spec);
  EXPECT_TRUE(cycle.intention.empty());
  EXPECT_EQ(cycle.length(), 1u);
  EXPECT_TRUE(cycle.met_epsilon2);
}

TEST_F(GhostGeneratorTest, RejectionTestRecordsIneffectiveTopics) {
  PrivacySpec spec;
  spec.epsilon2 = 0.002;  // hard target forces many attempts
  size_t total_rejected = 0;
  for (size_t qi = 0; qi < 6; ++qi) {
    QueryCycle cycle = ProtectQuery(qi, spec);
    total_rejected += cycle.rejected_topics.size();
    // Rejected topics must not appear among masking topics.
    std::set<topicmodel::TopicId> used(cycle.masking_topics.begin(),
                                       cycle.masking_topics.end());
    for (topicmodel::TopicId t : cycle.rejected_topics) {
      EXPECT_FALSE(used.count(t));
    }
  }
  EXPECT_GT(total_rejected, 0u);  // at least some topics are ineffective
}

TEST_F(GhostGeneratorTest, AblationWithoutRejectionStillTerminates) {
  PrivacySpec spec;
  GeneratorOptions options;
  options.use_rejection_test = false;
  QueryCycle cycle = ProtectQuery(0, spec, options);
  EXPECT_LE(cycle.exposure_after, cycle.exposure_before + 1e-9);
}

TEST_F(GhostGeneratorTest, AblationIncoherentGhosts) {
  PrivacySpec spec;
  GeneratorOptions options;
  options.coherent_ghosts = false;
  QueryCycle cycle = ProtectQuery(0, spec, options);
  EXPECT_GE(cycle.length(), 1u);
}

TEST_F(GhostGeneratorTest, FixedGhostLengthOption) {
  PrivacySpec spec;
  GeneratorOptions options;
  options.fixed_ghost_length = 5;
  QueryCycle cycle = ProtectQuery(0, spec, options);
  for (size_t i = 0; i < cycle.queries.size(); ++i) {
    if (i == cycle.user_index) continue;
    EXPECT_EQ(cycle.queries[i].size(), 5u);
  }
}

TEST_F(GhostGeneratorTest, SharedCdfTableMatchesOwnedTable) {
  // The serving driver lends one TopicCdfTable to every session; cycles
  // must be identical to a generator that built its own table.
  PrivacySpec spec;
  TopicCdfTable table(World().model);
  GeneratorOptions shared;
  shared.shared_topic_cdfs = &table;
  QueryCycle a = ProtectQuery(1, spec, shared, 99);
  QueryCycle b = ProtectQuery(1, spec, {}, 99);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.user_index, b.user_index);
  EXPECT_EQ(a.masking_topics, b.masking_topics);
}

TEST_F(GhostGeneratorTest, CachedGhostsHonorRequestedLength) {
  // Regression: the ghost cache used to replay the memoized ghost VERBATIM,
  // ignoring the requested length — so a cycle for a short |qu| could carry
  // ghosts sized for a long one (an adversary-visible marker), and every
  // cycle reused the byte-identical ghost, weakening the Section IV-D
  // randomized-choice defense. Cache hits must now honor the request:
  // truncate when shorter, extend (prefix-stable) when longer.
  PrivacySpec spec;
  std::map<topicmodel::TopicId, std::vector<text::TermId>> cache;

  GeneratorOptions short_options;
  short_options.fixed_ghost_length = 3;
  short_options.ghost_cache = &cache;
  GhostQueryGenerator short_gen(World().model, inferencer_, spec,
                                short_options);
  util::Rng rng(41);
  QueryCycle first = short_gen.Protect(World().workload[0].term_ids, &rng);
  ASSERT_GT(first.num_ghosts(), 0u);
  for (size_t i = 0; i < first.queries.size(); ++i) {
    if (i == first.user_index) continue;
    EXPECT_EQ(first.queries[i].size(), 3u);
  }

  // Same session cache, different |qg| request (a different |qu| draws a
  // different multiplier; fixed lengths make the assertion exact).
  GeneratorOptions long_options;
  long_options.fixed_ghost_length = 7;
  long_options.ghost_cache = &cache;
  GhostQueryGenerator long_gen(World().model, inferencer_, spec,
                               long_options);
  QueryCycle second = long_gen.Protect(World().workload[0].term_ids, &rng);
  ASSERT_GT(second.num_ghosts(), 0u);
  for (size_t i = 0; i < second.queries.size(); ++i) {
    if (i == second.user_index) continue;
    const std::vector<text::TermId>& ghost = second.queries[i];
    // Correctly sized for THIS cycle, not replayed at the cached size.
    EXPECT_EQ(ghost.size(), 7u);
  }
  // Ghost sets must differ between the cycles (different sizes alone
  // guarantees non-identity; check explicitly for clarity).
  for (size_t i = 0; i < second.queries.size(); ++i) {
    if (i == second.user_index) continue;
    for (size_t j = 0; j < first.queries.size(); ++j) {
      if (j == first.user_index) continue;
      EXPECT_NE(second.queries[i], first.queries[j]);
    }
  }
}

TEST_F(GhostGeneratorTest, CachedGhostExtensionIsPrefixStable) {
  // The cover-story property behind the cache: later, longer requests for
  // the same masking topic must extend the memoized ghost, not resample it
  // from scratch — and shorter requests take a prefix of it.
  PrivacySpec spec;
  std::map<topicmodel::TopicId, std::vector<text::TermId>> cache;
  GeneratorOptions options;
  options.fixed_ghost_length = 4;
  options.ghost_cache = &cache;
  GhostQueryGenerator generator(World().model, inferencer_, spec, options);
  util::Rng rng(43);
  QueryCycle cycle = generator.Protect(World().workload[0].term_ids, &rng);
  ASSERT_GT(cycle.num_ghosts(), 0u);
  std::map<topicmodel::TopicId, std::vector<text::TermId>> snapshot = cache;
  ASSERT_FALSE(snapshot.empty());

  GeneratorOptions longer;
  longer.fixed_ghost_length = 9;
  longer.ghost_cache = &cache;
  GhostQueryGenerator long_gen(World().model, inferencer_, spec, longer);
  QueryCycle second = long_gen.Protect(World().workload[0].term_ids, &rng);
  ASSERT_GT(second.num_ghosts(), 0u);
  for (const auto& [topic, old_ghost] : snapshot) {
    const std::vector<text::TermId>& now = cache.at(topic);
    ASSERT_GE(now.size(), old_ghost.size());
    EXPECT_TRUE(std::equal(old_ghost.begin(), old_ghost.end(), now.begin()))
        << "topic " << topic << " ghost was resampled, not extended";
  }
}

// ------------------------------------------------------------------ Client --

TEST(TrustedClientTest, ReturnsExactGenuineResults) {
  const auto& world = World();
  search::SearchEngine engine(world.corpus, world.index,
                              search::MakeBm25Scorer());
  topicmodel::LdaInferencer inferencer(world.model);
  PrivacySpec spec;
  GhostQueryGenerator generator(world.model, inferencer, spec);
  TrustedClient client(&engine, &generator, util::Rng(1));

  for (size_t qi = 0; qi < 8; ++qi) {
    const auto& q = world.workload[qi];
    ProtectedSearchResult protected_result = client.Search(q.term_ids, 10);
    std::vector<search::ScoredDoc> plain = engine.Evaluate(q.term_ids, 10);
    EXPECT_TRUE(search::SameRanking(protected_result.results, plain, 1e-9))
        << "query " << qi;
  }
}

TEST(TrustedClientTest, EngineLogSeesWholeCycle) {
  const auto& world = World();
  search::SearchEngine engine(world.corpus, world.index,
                              search::MakeBm25Scorer());
  topicmodel::LdaInferencer inferencer(world.model);
  PrivacySpec spec;
  GhostQueryGenerator generator(world.model, inferencer, spec);
  TrustedClient client(&engine, &generator, util::Rng(2));

  ProtectedSearchResult result = client.Search(world.workload[0].term_ids, 5);
  const search::QueryLog& log = engine.query_log();
  ASSERT_EQ(log.size(), result.cycle.length());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log.entries()[i].cycle_id, result.cycle_id);
    EXPECT_EQ(log.entries()[i].terms, result.cycle.queries[i]);
  }
}

TEST(TrustedClientTest, CycleIdsDistinct) {
  const auto& world = World();
  search::SearchEngine engine(world.corpus, world.index,
                              search::MakeBm25Scorer());
  topicmodel::LdaInferencer inferencer(world.model);
  PrivacySpec spec;
  GhostQueryGenerator generator(world.model, inferencer, spec);
  TrustedClient client(&engine, &generator, util::Rng(3));
  auto r1 = client.Search(world.workload[0].term_ids, 5);
  auto r2 = client.Search(world.workload[1].term_ids, 5);
  EXPECT_NE(r1.cycle_id, r2.cycle_id);
}

}  // namespace
}  // namespace toppriv::core
