// Round-trips every checked-in fuzz seed (fuzz/corpus/<target>/*) through
// the deserializer its fuzz target exercises, under the PLAIN test build —
// so corpus rot (a format change that silently invalidates the seeds, or a
// gen_seeds drift) fails CI long before the weekly fuzz job would notice
// its starting points all parse as garbage.
//
// The repo location comes in via TOPPRIV_SOURCE_DIR (a compile definition;
// see tests/CMakeLists.txt) because ctest's working directory is the build
// tree.
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "index/live/wal.h"
#include "index/posting_list.h"
#include "index/sharded_index.h"
#include "topicmodel/lda_model.h"

namespace toppriv {
namespace {

namespace stdfs = std::filesystem;

stdfs::path CorpusDir(const std::string& target) {
  return stdfs::path(TOPPRIV_SOURCE_DIR) / "fuzz" / "corpus" / target;
}

std::vector<std::pair<std::string, std::string>> LoadSeeds(
    const std::string& target) {
  std::vector<std::pair<std::string, std::string>> seeds;
  for (const auto& entry : stdfs::directory_iterator(CorpusDir(target))) {
    std::ifstream in(entry.path(), std::ios::binary);
    EXPECT_TRUE(in.good()) << entry.path();
    seeds.emplace_back(entry.path().filename().string(),
                       std::string((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>()));
  }
  EXPECT_FALSE(seeds.empty()) << "no seeds for " << target
                              << " — run gen_seeds fuzz/corpus";
  return seeds;
}

TEST(FuzzCorpusTest, PostingListSeedsRoundTrip) {
  for (const auto& [name, bytes] : LoadSeeds("posting_list")) {
    size_t pos = 0;
    auto list = index::PostingList::DecodeFrom(bytes, &pos);
    ASSERT_TRUE(list.ok()) << name << ": " << list.status().message();
    EXPECT_EQ(pos, bytes.size()) << name;
    std::string encoded;
    list->EncodeTo(&encoded);
    EXPECT_EQ(encoded, bytes) << name << " is not canonical";
  }
}

TEST(FuzzCorpusTest, InvertedIndexSeedsRoundTrip) {
  for (const auto& [name, bytes] : LoadSeeds("inverted_index")) {
    auto idx = index::InvertedIndex::Deserialize(bytes);
    ASSERT_TRUE(idx.ok()) << name << ": " << idx.status().message();
    EXPECT_EQ(idx->Serialize(), bytes) << name << " is not canonical";
  }
}

TEST(FuzzCorpusTest, ShardedIndexSeedsRoundTrip) {
  for (const auto& [name, bytes] : LoadSeeds("sharded_index")) {
    auto idx = index::ShardedIndex::Deserialize(bytes);
    ASSERT_TRUE(idx.ok()) << name << ": " << idx.status().message();
    EXPECT_EQ(idx->Serialize(), bytes) << name << " is not canonical";
  }
}

TEST(FuzzCorpusTest, LdaModelSeedsRoundTrip) {
  for (const auto& [name, bytes] : LoadSeeds("lda_model")) {
    auto model = topicmodel::LdaModel::Deserialize(bytes);
    ASSERT_TRUE(model.ok()) << name << ": " << model.status().message();
    EXPECT_EQ(model->Serialize(), bytes) << name << " is not canonical";
  }
}

TEST(FuzzCorpusTest, WalSeedsParse) {
  for (const auto& [name, bytes] : LoadSeeds("wal_replay")) {
    auto replay = index::live::ParseWal(bytes);
    ASSERT_TRUE(replay.ok()) << name << ": " << replay.status().message();
    // The deliberately torn seed loses its tail; the intact ones must not.
    if (name.find("torn") == std::string::npos) {
      EXPECT_FALSE(replay->tail_lost) << name;
    } else {
      EXPECT_TRUE(replay->tail_lost) << name;
    }
  }
}

}  // namespace
}  // namespace toppriv
