// Negative-compile probe: reads a GUARDED_BY member without holding its
// mutex. Under Clang with -Werror=thread-safety-analysis this translation
// unit MUST FAIL to compile; the configure-time check in
// tests/CMakeLists.txt raises FATAL_ERROR if it ever succeeds, because
// that would mean the capability macros rotted into no-ops and every
// annotation in the tree stopped being machine-checked.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  toppriv::util::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  int ReadUnlocked() { return value; }  // the violation under test
};

}  // namespace

int main() {
  Counter c;
  return c.ReadUnlocked();
}
