// Negative-compile probe shaped like the bug this PR fixed: an engine
// whose eval-strategy setter WRITES a GUARDED_BY member without taking the
// mutex (the pre-fix SearchEngine::set_eval_strategy, racing concurrent
// Evaluate readers). Under Clang with -Werror=thread-safety-analysis this
// translation unit MUST FAIL to compile; the configure-time check in
// tests/CMakeLists.txt raises FATAL_ERROR if it ever succeeds. The probe
// pins the WRITE side specifically — unlocked_access.cc already pins the
// read side — so neither direction of the annotation can rot alone.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

enum class Strategy { kA, kB };

struct Engine {
  mutable toppriv::util::Mutex mu;
  Strategy strategy GUARDED_BY(mu) = Strategy::kA;

  void set_strategy(Strategy s) { strategy = s; }  // the violation under test
};

}  // namespace

int main() {
  Engine e;
  e.set_strategy(Strategy::kB);
  return 0;
}
