// Positive control for the thread-safety negative-compile check: correctly
// locked access to a GUARDED_BY member. If THIS stops compiling under
// -Werror=thread-safety-analysis, the macros or the Mutex wrapper broke —
// and the paired rejection of unlocked_access.cc would be meaningless.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  toppriv::util::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  int Read() EXCLUDES(mu) {
    toppriv::util::MutexLock lock(&mu);
    return value;
  }
};

}  // namespace

int main() {
  Counter c;
  return c.Read();
}
