// Unit and property tests for the search engine substrate.
#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "search/engine.h"
#include "search/eval.h"
#include "search/scorer.h"
#include "search/topk.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace toppriv::search {
namespace {

// ------------------------------------------------------------------ TopK --

TEST(TopKTest, KeepsHighestScores) {
  TopK topk(3);
  topk.Offer(0, 1.0);
  topk.Offer(1, 5.0);
  topk.Offer(2, 3.0);
  topk.Offer(3, 4.0);
  topk.Offer(4, 0.5);
  std::vector<ScoredDoc> out = topk.Finish();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].doc, 1u);
  EXPECT_EQ(out[1].doc, 3u);
  EXPECT_EQ(out[2].doc, 2u);
}

TEST(TopKTest, TiesBreakTowardsLowerDocIds) {
  TopK topk(2);
  topk.Offer(9, 1.0);
  topk.Offer(3, 1.0);
  topk.Offer(5, 1.0);
  std::vector<ScoredDoc> out = topk.Finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 3u);
  EXPECT_EQ(out[1].doc, 5u);
}

TEST(TopKTest, FewerThanK) {
  TopK topk(10);
  topk.Offer(1, 2.0);
  topk.Offer(0, 1.0);
  std::vector<ScoredDoc> out = topk.Finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 1u);
}

class TopKProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKProperty, MatchesNaiveSort) {
  util::Rng rng(GetParam() * 31 + 7);
  const size_t n = 500;
  std::vector<ScoredDoc> all;
  TopK topk(GetParam());
  for (size_t i = 0; i < n; ++i) {
    double score = rng.Uniform() * 10.0;
    // Duplicate scores occasionally to exercise tie-breaking.
    if (rng.Bernoulli(0.3)) score = std::floor(score);
    all.push_back({static_cast<corpus::DocId>(i), score});
    topk.Offer(static_cast<corpus::DocId>(i), score);
  }
  std::sort(all.begin(), all.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  all.resize(std::min(GetParam(), n));
  std::vector<ScoredDoc> got = topk.Finish();
  ASSERT_EQ(got.size(), all.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, all[i].doc) << "rank " << i;
    EXPECT_DOUBLE_EQ(got[i].score, all[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKProperty,
                         ::testing::Values(1, 2, 5, 10, 50, 499, 500, 600));

// ---------------------------------------------------------------- Scorers --

TEST(ScorerTest, Bm25MonotoneInTf) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  CollectionStats stats = CollectionStats::Of(index);
  Bm25Scorer scorer;
  double s1 = scorer.TermScore(stats, index.DocLength(0), 1, 2, 1);
  double s2 = scorer.TermScore(stats, index.DocLength(0), 3, 2, 1);
  EXPECT_GT(s2, s1);
  EXPECT_GT(s1, 0.0);
}

TEST(ScorerTest, Bm25RarerTermsScoreHigher) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  CollectionStats stats = CollectionStats::Of(index);
  Bm25Scorer scorer;
  double rare = scorer.TermScore(stats, index.DocLength(0), 2, 1, 1);
  double common = scorer.TermScore(stats, index.DocLength(0), 2, 4, 1);
  EXPECT_GT(rare, common);
}

TEST(ScorerTest, TfIdfNormalizationDividesBySqrtLength) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  TfIdfCosineScorer scorer;
  // doc 2 has length 5.
  EXPECT_NEAR(scorer.Normalize(CollectionStats::Of(index), index.DocLength(2),
                               10.0),
              10.0 / std::sqrt(5.0), 1e-12);
}

TEST(ScorerTest, TfIdfZeroDfIsZero) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  TfIdfCosineScorer scorer;
  EXPECT_DOUBLE_EQ(
      scorer.TermScore(CollectionStats::Of(index), index.DocLength(0), 3, 0, 1),
      0.0);
}

TEST(ScorerTest, LmDirichletPrefersMatchingDocs) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  LmDirichletScorer scorer(100.0);
  double with_term =
      scorer.TermScore(CollectionStats::Of(index), index.DocLength(0), 2, 3, 1);
  EXPECT_GT(with_term, 0.0);
}

TEST(ScorerTest, Names) {
  EXPECT_EQ(TfIdfCosineScorer().Name(), "tfidf-cosine");
  EXPECT_EQ(Bm25Scorer().Name(), "bm25");
  EXPECT_EQ(LmDirichletScorer().Name(), "lm-dirichlet");
}

// ----------------------------------------------------------------- Engine --

TEST(EngineTest, FindsMatchingDocuments) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  SearchEngine engine(c, index, MakeBm25Scorer());
  text::TermId tank = c.vocabulary().Lookup("tank");
  std::vector<ScoredDoc> results = engine.Search({tank}, 10);
  // Docs 0, 1, 3 contain "tank"; doc 2 does not.
  ASSERT_EQ(results.size(), 3u);
  for (const ScoredDoc& sd : results) EXPECT_NE(sd.doc, 2u);
  // war1 has tank twice in 3 tokens: highest score.
  EXPECT_EQ(results[0].doc, 0u);
}

TEST(EngineTest, MatchesBruteForceScoring) {
  const auto& world = toppriv::testing::World();
  SearchEngine engine(world.corpus, world.index, MakeBm25Scorer());
  Bm25Scorer reference;

  util::Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    // Random 3-term query over the vocabulary.
    std::vector<text::TermId> query;
    for (int i = 0; i < 3; ++i) {
      query.push_back(static_cast<text::TermId>(
          rng.UniformInt(uint64_t{world.corpus.vocabulary_size()})));
    }
    std::vector<ScoredDoc> got = engine.Evaluate(query, 20);

    // Brute force: score every document directly.
    CollectionStats stats = CollectionStats::Of(world.index);
    std::map<text::TermId, uint32_t> qtf;
    for (text::TermId t : query) ++qtf[t];
    TopK expected(20);
    for (const corpus::Document& d : world.corpus.documents()) {
      std::map<text::TermId, uint32_t> tf;
      for (text::TermId t : d.tokens) ++tf[t];
      double score = 0.0;
      bool any = false;
      for (const auto& [term, qcount] : qtf) {
        auto it = tf.find(term);
        if (it == tf.end()) continue;
        any = true;
        score += reference.TermScore(stats, world.index.DocLength(d.id),
                                     it->second, world.index.DocFreq(term),
                                     qcount);
      }
      if (any) expected.Offer(d.id, score);
    }
    std::vector<ScoredDoc> want = expected.Finish();
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, want[i].doc);
      EXPECT_NEAR(got[i].score, want[i].score, 1e-9);
    }
  }
}

// Reference implementation of Evaluate as it existed before the contiguous
// accumulator: term-at-a-time into an unordered_map. Uses the same
// canonical CollapseQuery term order, so the floating-point accumulation
// order is identical and the comparison below can demand bit equality.
std::vector<ScoredDoc> MapBasedEvaluate(const index::InvertedIndex& index,
                                        const Scorer& scorer,
                                        const std::vector<text::TermId>& terms,
                                        size_t k) {
  if (terms.empty() || k == 0) return {};
  CollectionStats stats = CollectionStats::Of(index);
  std::unordered_map<corpus::DocId, double> accumulators;
  for (const QueryTerm& qt : CollapseQuery(terms)) {
    const index::PostingList& list = index.Postings(qt.term);
    uint32_t df = list.size();
    if (df == 0) continue;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      const index::Posting& p = it.Get();
      accumulators[p.doc] +=
          scorer.TermScore(stats, index.DocLength(p.doc), p.tf, df, qt.qtf);
    }
  }
  TopK topk(k);
  for (const auto& [doc, acc] : accumulators) {
    topk.Offer(doc, scorer.Normalize(stats, index.DocLength(doc), acc));
  }
  return topk.Finish();
}

TEST(EngineTest, ContiguousAccumulatorMatchesMapBasedEvaluateBitForBit) {
  // Parity lock for the accumulator rewrite: same generated corpus, same
  // queries, identical ranked results — docs, order, and score BITS.
  const auto& world = toppriv::testing::World();
  for (int s = 0; s < 2; ++s) {
    SearchEngine engine(world.corpus, world.index,
                        s == 0 ? MakeBm25Scorer() : MakeTfIdfScorer());
    EvalScratch reused_scratch;
    util::Rng rng(911 + s);
    for (int trial = 0; trial < 30; ++trial) {
      // Mix workload queries with random ones (incl. repeated terms).
      std::vector<text::TermId> query;
      if (trial < 10) {
        query = world.workload[trial].term_ids;
      } else {
        size_t len = 1 + rng.UniformInt(uint64_t{6});
        for (size_t i = 0; i < len; ++i) {
          query.push_back(static_cast<text::TermId>(
              rng.UniformInt(uint64_t{world.corpus.vocabulary_size()})));
        }
      }
      std::vector<ScoredDoc> want =
          MapBasedEvaluate(world.index, engine.scorer(), query, 15);
      std::vector<ScoredDoc> got = engine.Evaluate(query, 15);
      // Also through a caller-owned scratch reused across all trials: reuse
      // must not leak state between queries.
      std::vector<ScoredDoc> got_reused =
          engine.Evaluate(query, 15, &reused_scratch);
      ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].doc, want[i].doc) << "trial " << trial;
        // Bit equality, not EXPECT_NEAR: the rewrite promises the identical
        // accumulation order.
        EXPECT_EQ(got[i].score, want[i].score) << "trial " << trial;
        EXPECT_EQ(got_reused[i].doc, want[i].doc) << "trial " << trial;
        EXPECT_EQ(got_reused[i].score, want[i].score) << "trial " << trial;
      }
    }
  }
}

// ---------------------------------------------------- MaxScore vs TAAT --

std::unique_ptr<Scorer> ScorerByKind(int which) {
  switch (which) {
    case 0:
      return MakeBm25Scorer();
    case 1:
      return MakeTfIdfScorer();
    default:
      return std::make_unique<LmDirichletScorer>();
  }
}

TEST(MaxScoreTest, UpperBoundDominatesEveryPostingScore) {
  // The safety premise of MaxScore pruning: for every term, the list-level
  // (and block-level) UpperBound is >= the TermScore of every posting,
  // compared as exact doubles.
  const auto& world = toppriv::testing::World();
  CollectionStats stats = CollectionStats::Of(world.index);
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Scorer> scorer = ScorerByKind(kind);
    for (text::TermId t = 0; t < world.index.num_terms(); ++t) {
      const index::PostingList& list = world.index.Postings(t);
      if (list.empty()) continue;
      const uint32_t df = world.index.DocFreq(t);
      for (uint32_t qtf : {1u, 3u}) {
        const double list_ub = scorer->UpperBound(stats, df, list.max_tf(), qtf);
        size_t b = 0;
        index::PostingBlock block;
        for (; b < list.num_blocks(); ++b) {
          const double block_ub =
              scorer->UpperBound(stats, df, list.block(b).max_tf, qtf);
          EXPECT_LE(block_ub, list_ub) << "term " << t << " block " << b;
          list.DecodeBlock(b, &block);
          for (uint32_t i = 0; i < block.count; ++i) {
            const double s =
                scorer->TermScore(stats, world.index.DocLength(block.docs[i]),
                                  block.tfs[i], df, qtf);
            ASSERT_LE(s, block_ub)
                << scorer->Name() << " term " << t << " doc " << block.docs[i];
          }
        }
      }
    }
  }
}

TEST(MaxScoreTest, MatchesTaatBitForBitOnWorkloadAndRandomQueries) {
  // The tentpole parity lock: document-at-a-time MaxScore returns the
  // IDENTICAL top-k — documents, order, score bits — as term-at-a-time,
  // for every scorer, across k values that exercise both the unfilled-heap
  // (no pruning) and tight-threshold (heavy pruning) regimes.
  const auto& world = toppriv::testing::World();
  for (int kind = 0; kind < 3; ++kind) {
    SearchEngine taat(world.corpus, world.index, ScorerByKind(kind),
                      EvalStrategy::kTAAT);
    SearchEngine maxscore(world.corpus, world.index, ScorerByKind(kind),
                          EvalStrategy::kMaxScore);
    ASSERT_EQ(maxscore.eval_strategy(), EvalStrategy::kMaxScore);
    EvalScratch reused;
    util::Rng rng(1234 + kind);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<text::TermId> query;
      if (trial < static_cast<int>(world.workload.size())) {
        query = world.workload[trial].term_ids;
      } else {
        size_t len = 1 + rng.UniformInt(uint64_t{7});
        for (size_t i = 0; i < len; ++i) {
          // Draw past the vocabulary every other trial (empty lists).
          uint64_t space =
              world.corpus.vocabulary_size() + (trial % 2 ? 40 : 0);
          query.push_back(static_cast<text::TermId>(rng.UniformInt(space)));
        }
        if (len > 1 && trial % 3 == 0) query.push_back(query[0]);  // dup
      }
      for (size_t k : {size_t{1}, size_t{3}, size_t{10}, size_t{400}}) {
        SCOPED_TRACE(::testing::Message() << "scorer=" << kind << " trial="
                                          << trial << " k=" << k);
        std::vector<ScoredDoc> want = taat.Evaluate(query, k);
        std::vector<ScoredDoc> got = maxscore.Evaluate(query, k);
        std::vector<ScoredDoc> got_reused =
            maxscore.Evaluate(query, k, &reused);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].doc, want[i].doc) << "rank " << i;
          // Bit equality: same canonical accumulation order per document.
          EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
          EXPECT_EQ(got_reused[i].doc, want[i].doc) << "rank " << i;
          EXPECT_EQ(got_reused[i].score, want[i].score) << "rank " << i;
        }
      }
    }
  }
}

TEST(MaxScoreTest, StrategyCanFlipMidStream) {
  const auto& world = toppriv::testing::World();
  SearchEngine engine(world.corpus, world.index, MakeBm25Scorer());
  std::vector<ScoredDoc> taat = engine.Evaluate(world.workload[0].term_ids, 10);
  engine.set_eval_strategy(EvalStrategy::kMaxScore);
  std::vector<ScoredDoc> ms = engine.Evaluate(world.workload[0].term_ids, 10);
  ASSERT_EQ(ms.size(), taat.size());
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(ms[i].doc, taat[i].doc);
    EXPECT_EQ(ms[i].score, taat[i].score);
  }
}

TEST(MaxScoreTest, StrategyNamesAndEnvParsing) {
  EXPECT_STREQ(EvalStrategyName(EvalStrategy::kTAAT), "taat");
  EXPECT_STREQ(EvalStrategyName(EvalStrategy::kMaxScore), "maxscore");
  ::setenv("TOPPRIV_EVAL_STRATEGY", "maxscore", 1);
  EXPECT_EQ(EvalStrategyFromEnv(), EvalStrategy::kMaxScore);
  ::setenv("TOPPRIV_EVAL_STRATEGY", "taat", 1);
  EXPECT_EQ(EvalStrategyFromEnv(), EvalStrategy::kTAAT);
  ::setenv("TOPPRIV_EVAL_STRATEGY", "garbage", 1);
  EXPECT_EQ(EvalStrategyFromEnv(), EvalStrategy::kTAAT);
  ::unsetenv("TOPPRIV_EVAL_STRATEGY");
  EXPECT_EQ(EvalStrategyFromEnv(), EvalStrategy::kTAAT);
}

TEST(EngineTest, EmptyQueryReturnsNothing) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  SearchEngine engine(c, index, MakeBm25Scorer());
  EXPECT_TRUE(engine.Search({}, 10).empty());
  EXPECT_TRUE(engine.Evaluate({0}, 0).empty());
}

TEST(EngineTest, QueryLogRecordsEverything) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  SearchEngine engine(c, index, MakeBm25Scorer());
  engine.Search({0}, 5, /*cycle_id=*/1);
  engine.Search({1, 2}, 5, /*cycle_id=*/1);
  engine.Search({3}, 5, /*cycle_id=*/2);
  const QueryLog& log = engine.query_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.entries()[0].cycle_id, 1u);
  EXPECT_EQ(log.entries()[1].cycle_id, 1u);
  EXPECT_EQ(log.entries()[2].cycle_id, 2u);
  EXPECT_EQ(log.entries()[1].terms, (std::vector<text::TermId>{1, 2}));
  EXPECT_EQ(log.entries()[0].sequence, 0u);
  EXPECT_EQ(log.entries()[2].sequence, 2u);
  engine.mutable_query_log().Clear();
  EXPECT_EQ(engine.query_log().size(), 0u);
}

TEST(EngineTest, EvaluateDoesNotLog) {
  corpus::Corpus c = toppriv::testing::TinyCorpus();
  index::InvertedIndex index = index::InvertedIndex::Build(c);
  SearchEngine engine(c, index, MakeBm25Scorer());
  engine.Evaluate({0}, 5);
  EXPECT_EQ(engine.query_log().size(), 0u);
}

// ------------------------------------------------------------------- Eval --

TEST(EvalTest, PrecisionRecallKnownCase) {
  std::vector<ScoredDoc> ranked = {{1, .9}, {2, .8}, {3, .7}, {4, .6}};
  std::vector<corpus::DocId> relevant = {2, 4, 9};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, relevant, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, relevant, 4), 2.0 / 3.0);
}

TEST(EvalTest, AveragePrecisionKnownCase) {
  std::vector<ScoredDoc> ranked = {{1, .9}, {2, .8}, {3, .7}};
  std::vector<corpus::DocId> relevant = {1, 3};
  // Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision(ranked, relevant), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
}

TEST(EvalTest, NdcgPerfectRankingIsOne) {
  std::vector<ScoredDoc> ranked = {{1, .9}, {2, .8}, {3, .7}};
  std::vector<corpus::DocId> relevant = {1, 2};
  EXPECT_NEAR(NdcgAtK(ranked, relevant, 3), 1.0, 1e-12);
  // Relevant docs at the bottom score lower.
  std::vector<ScoredDoc> bad = {{3, .9}, {1, .8}, {2, .7}};
  EXPECT_LT(NdcgAtK(bad, relevant, 3), 1.0);
}

TEST(EvalTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, {1}, 0), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({{1, 1.0}}, {}, 5), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({}, {}, 5), 0.0);
}

TEST(EvalTest, SameRanking) {
  std::vector<ScoredDoc> a = {{1, 1.0}, {2, 0.5}};
  std::vector<ScoredDoc> b = {{1, 1.0 + 1e-12}, {2, 0.5}};
  std::vector<ScoredDoc> c = {{2, 1.0}, {1, 0.5}};
  EXPECT_TRUE(SameRanking(a, b, 1e-9));
  EXPECT_FALSE(SameRanking(a, c, 1e-9));
  EXPECT_FALSE(SameRanking(a, {}, 1e-9));
}

TEST(EvalTest, RetrievalQualityOnTopicalQueries) {
  // Sanity check of the whole retrieval substrate: for a topical query, the
  // top results should be documents whose ground-truth mixture favors the
  // query's intent topic.
  const auto& world = toppriv::testing::World();
  SearchEngine engine(world.corpus, world.index, MakeBm25Scorer());
  size_t good = 0, total = 0;
  for (size_t qi = 0; qi < 10; ++qi) {
    const corpus::BenchmarkQuery& q = world.workload[qi];
    std::vector<ScoredDoc> results = engine.Evaluate(q.term_ids, 5);
    for (const ScoredDoc& sd : results) {
      const corpus::Document& d = world.corpus.document(sd.doc);
      float intent_mass = 0.f;
      for (uint32_t t : q.intent_topics) intent_mass += d.true_mixture[t];
      ++total;
      if (intent_mass > 0.2f) ++good;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(good) / static_cast<double>(total), 0.7);
}

}  // namespace
}  // namespace toppriv::search
