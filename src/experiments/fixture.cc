#include "experiments/fixture.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "search/sharded_engine.h"

#include "util/check.h"
#include "util/filesystem.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/strings.h"
#include "util/timer.h"

namespace toppriv::experiments {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

double EnvFraction(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return std::min(1.0, std::max(0.0, parsed));
}

std::optional<index::live::DurabilityPolicy> EnvDurability(const char* name) {
  const std::string v = EnvString(name, "off");
  if (v == "off") return std::nullopt;
  if (v == "batch") return index::live::DurabilityPolicy::kPerBatch;
  if (v == "refresh") return index::live::DurabilityPolicy::kPerRefresh;
  if (v == "manual") return index::live::DurabilityPolicy::kManual;
  std::fprintf(stderr,
               "[fixture] unknown %s='%s' (want off|batch|refresh|manual); "
               "running in-memory\n",
               name, v.c_str());
  return std::nullopt;
}

// FNV-1a over a byte string, for cache keys.
uint64_t HashBytes(const std::string& s) {
  uint64_t h = util::kFnv1aOffsetBasis;
  for (unsigned char c : s) h = util::Fnv1aStep(h, c);
  return h;
}

}  // namespace

FixtureConfig FixtureConfig::FromEnv() {
  FixtureConfig config;
  config.corpus_params.num_docs = EnvSize("TOPPRIV_DOCS", 1500);
  config.corpus_params.mean_doc_length =
      static_cast<double>(EnvSize("TOPPRIV_DOC_LEN", 100));
  config.corpus_params.tail_vocab_size = EnvSize("TOPPRIV_TAIL_VOCAB", 3000);
  config.workload_params.num_queries = EnvSize("TOPPRIV_QUERIES", 150);
  config.lda_iterations = EnvSize("TOPPRIV_LDA_ITERS", 100);
  config.cache_dir = EnvString("TOPPRIV_CACHE_DIR", ".toppriv_cache");
  config.num_shards = EnvSize("TOPPRIV_SHARDS", 1);
  config.shard_threads = EnvSize("TOPPRIV_SHARD_THREADS", 1);
  config.eval_strategy = search::EvalStrategyFromEnv();
  config.live_ingest_upfront = EnvFraction("TOPPRIV_LIVE_INGEST", 0.5);
  config.live_eval_threads = EnvSize("TOPPRIV_LIVE_EVAL_THREADS", 1);
  config.durability = EnvDurability("TOPPRIV_DURABILITY");
  return config;
}

const std::vector<size_t>& PaperModelSizes() {
  static const std::vector<size_t>* kSizes =
      new std::vector<size_t>{50, 100, 150, 200, 250, 300};
  return *kSizes;
}

ExperimentFixture::ExperimentFixture(FixtureConfig config)
    : config_(std::move(config)) {}

void ExperimentFixture::EnsureCorpus() {
  if (corpus_ != nullptr) return;
  util::WallTimer timer;
  corpus::CorpusGenerator generator(config_.corpus_params);
  corpus_ = std::make_unique<corpus::Corpus>(generator.Generate(&ground_truth_));
  std::fprintf(stderr,
               "[fixture] corpus: %zu docs, %zu terms, %llu tokens (%.1fs)\n",
               corpus_->num_documents(), corpus_->vocabulary_size(),
               static_cast<unsigned long long>(corpus_->total_tokens()),
               timer.ElapsedSeconds());
}

const corpus::Corpus& ExperimentFixture::corpus() {
  EnsureCorpus();
  return *corpus_;
}

const corpus::GroundTruthModel& ExperimentFixture::ground_truth() {
  EnsureCorpus();
  return ground_truth_;
}

const std::vector<corpus::BenchmarkQuery>& ExperimentFixture::workload() {
  if (workload_ == nullptr) {
    EnsureCorpus();
    corpus::WorkloadGenerator generator(*corpus_, ground_truth_,
                                        config_.workload_params);
    workload_ = std::make_unique<std::vector<corpus::BenchmarkQuery>>(
        generator.Generate());
  }
  return *workload_;
}

const index::InvertedIndex& ExperimentFixture::index() {
  if (index_ == nullptr) {
    EnsureCorpus();
    index_ = std::make_unique<index::InvertedIndex>(
        index::InvertedIndex::Build(*corpus_));
  }
  return *index_;
}

const index::ShardedIndex& ExperimentFixture::sharded_index(
    size_t num_shards) {
  auto it = sharded_.find(num_shards);
  if (it != sharded_.end()) return *it->second;
  EnsureCorpus();
  // Shard construction fans out over a transient pool (shards are
  // independent doc ranges; the pooled build is bit-identical to the
  // serial one — sharding_test asserts it).
  std::unique_ptr<util::ThreadPool> pool;
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  if (num_shards > 1 && hw > 1) {
    pool = std::make_unique<util::ThreadPool>(std::min(num_shards, hw));
  }
  auto owned = std::make_unique<index::ShardedIndex>(
      index::ShardedIndex::Build(*corpus_, num_shards, pool.get()));
  const index::ShardedIndex& ref = *owned;
  sharded_.emplace(num_shards, std::move(owned));
  return ref;
}

std::unique_ptr<index::live::LiveIndex> ExperimentFixture::MakeLiveIndex(
    double upfront_fraction, index::live::LiveIndexOptions options) {
  EnsureCorpus();
  std::unique_ptr<index::live::LiveIndex> live;
  if (config_.durability.has_value()) {
    options.durability = *config_.durability;
    util::FileSystem* fs = util::GetRealFileSystem();
    const std::string dir = config_.cache_dir + "/live_wal";
    // Each run measures its own ingest: drop the previous run's log so
    // Recover() opens a fresh generation instead of replaying stale docs.
    if (auto names = fs->List(dir); names.ok()) {
      for (const std::string& name : *names) fs->Remove(dir + "/" + name);
    }
    auto recovered = index::live::LiveIndex::Recover(fs, dir, options);
    TOPPRIV_CHECK(recovered.ok());
    live = std::move(*recovered);
  } else {
    live = std::make_unique<index::live::LiveIndex>(options);
  }
  live->EnsureTermSpace(corpus_->vocabulary_size());
  const double f = std::min(1.0, std::max(0.0, upfront_fraction));
  const size_t upfront = static_cast<size_t>(
      f * static_cast<double>(corpus_->num_documents()) + 0.5);
  // The up-front load is one batch; Refresh() regardless so even an empty
  // live index publishes its (vocabulary-synced) term space.
  index::live::StreamCorpus(*corpus_, 0, upfront,
                            std::max<size_t>(1, upfront), live.get());
  live->Refresh();
  return live;
}

std::unique_ptr<search::QueryEngine> ExperimentFixture::MakeEngine(
    std::unique_ptr<search::Scorer> scorer, size_t num_shards,
    size_t shard_threads, std::optional<search::EvalStrategy> strategy) {
  const search::EvalStrategy eval =
      strategy.value_or(config_.eval_strategy);
  if (num_shards <= 1) {
    return std::make_unique<search::SearchEngine>(corpus(), index(),
                                                  std::move(scorer), eval);
  }
  return std::make_unique<search::ShardedSearchEngine>(
      corpus(), sharded_index(num_shards), std::move(scorer), shard_threads,
      eval);
}

std::unique_ptr<search::QueryEngine> ExperimentFixture::MakeEngine(
    std::unique_ptr<search::Scorer> scorer) {
  return MakeEngine(std::move(scorer), config_.num_shards,
                    config_.shard_threads);
}

std::string ExperimentFixture::CacheKey(size_t num_topics) const {
  const corpus::GeneratorParams& p = config_.corpus_params;
  std::string descriptor = util::StrFormat(
      "docs=%zu len=%.1f tail=%zu alpha=%.4f seed=%llu iters=%zu topics=%zu",
      p.num_docs, p.mean_doc_length, p.tail_vocab_size, p.doc_topic_alpha,
      static_cast<unsigned long long>(p.seed), config_.lda_iterations,
      num_topics);
  return util::StrFormat("%s/lda%03zu_%016llx.bin", config_.cache_dir.c_str(),
                         num_topics,
                         static_cast<unsigned long long>(HashBytes(descriptor)));
}

const topicmodel::LdaModel& ExperimentFixture::model(size_t num_topics) {
  auto it = models_.find(num_topics);
  if (it != models_.end()) return *it->second;

  EnsureCorpus();
  const std::string path = CacheKey(num_topics);
  if (util::FileExists(path)) {
    auto bytes = util::ReadFileToString(path);
    if (bytes.ok()) {
      auto model = topicmodel::LdaModel::Deserialize(bytes.value());
      if (model.ok() && model->vocab_size() == corpus_->vocabulary_size()) {
        auto owned = std::make_unique<topicmodel::LdaModel>(
            std::move(model).value());
        const topicmodel::LdaModel& ref = *owned;
        models_.emplace(num_topics, std::move(owned));
        std::fprintf(stderr, "[fixture] %s: loaded from cache\n",
                     ModelName(num_topics).c_str());
        return ref;
      }
    }
  }

  util::WallTimer timer;
  topicmodel::TrainerOptions options;
  options.num_topics = num_topics;
  options.iterations = config_.lda_iterations;
  options.seed = 7000 + num_topics;
  topicmodel::GibbsTrainer trainer(options);
  auto owned =
      std::make_unique<topicmodel::LdaModel>(trainer.Train(*corpus_));
  std::fprintf(stderr, "[fixture] %s: trained in %.1fs\n",
               ModelName(num_topics).c_str(), timer.ElapsedSeconds());

  // Best-effort cache write.
  if (util::MakeDirs(config_.cache_dir).ok()) {
    util::Status status = util::WriteFile(path, owned->Serialize());
    if (!status.ok()) {
      std::fprintf(stderr, "[fixture] cache write failed: %s\n",
                   status.ToString().c_str());
    }
  }

  const topicmodel::LdaModel& ref = *owned;
  models_.emplace(num_topics, std::move(owned));
  return ref;
}

std::string ExperimentFixture::ModelName(size_t num_topics) {
  return util::StrFormat("LDA%03zu", num_topics);
}

}  // namespace toppriv::experiments
