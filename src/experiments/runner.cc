#include "experiments/runner.h"

#include "pdx/embellisher.h"
#include "pdx/thesaurus.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"
#include "util/rng.h"
#include "util/stats.h"

namespace toppriv::experiments {

TopPrivCell RunTopPrivCell(ExperimentFixture& fixture, size_t num_topics,
                           const core::PrivacySpec& spec,
                           const core::GeneratorOptions& generator_options,
                           uint64_t seed) {
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);
  core::GhostQueryGenerator generator(model, inferencer, spec,
                                      generator_options);
  const std::vector<corpus::BenchmarkQuery>& workload = fixture.workload();

  util::Rng rng(seed ^ (num_topics * 1315423911ull));
  util::OnlineStats exposure, mask, cycle_len, gen_time, num_u, best_rank,
      exposure_before;
  size_t satisfied = 0;

  for (const corpus::BenchmarkQuery& query : workload) {
    core::QueryCycle cycle = generator.Protect(query.term_ids, &rng);
    exposure.Add(cycle.exposure_after * 100.0);
    mask.Add(cycle.mask_level * 100.0);
    cycle_len.Add(static_cast<double>(cycle.length()));
    gen_time.Add(cycle.generation_seconds);
    num_u.Add(static_cast<double>(cycle.intention.size()));
    exposure_before.Add(cycle.exposure_before * 100.0);
    if (!cycle.intention.empty()) {
      best_rank.Add(static_cast<double>(
          core::BestRankOfIntention(cycle.cycle_boost, cycle.intention)));
    }
    if (cycle.met_epsilon2) ++satisfied;
  }

  TopPrivCell cell;
  cell.num_topics = num_topics;
  cell.epsilon1 = spec.epsilon1;
  cell.epsilon2 = spec.epsilon2;
  cell.exposure_pct = exposure.mean();
  cell.mask_pct = mask.mean();
  cell.cycle_length = cycle_len.mean();
  cell.generation_seconds = gen_time.mean();
  cell.num_relevant_topics = num_u.mean();
  cell.max_rank_of_relevant = best_rank.mean();
  cell.satisfied_fraction =
      workload.empty()
          ? 0.0
          : static_cast<double>(satisfied) / static_cast<double>(workload.size());
  cell.exposure_before_pct = exposure_before.mean();
  return cell;
}

PdxCell RunPdxCell(ExperimentFixture& fixture, size_t num_topics,
                   double epsilon1, double expansion_factor, uint64_t seed) {
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);
  pdx::Thesaurus thesaurus(fixture.corpus(), model);
  pdx::PdxEmbellisher embellisher(thesaurus);
  const std::vector<corpus::BenchmarkQuery>& workload = fixture.workload();

  util::Rng rng(seed ^ (num_topics * 2654435761ull));
  util::OnlineStats exposure, decoys;

  for (const corpus::BenchmarkQuery& query : workload) {
    // Intention at epsilon1 from the ORIGINAL query (what PDX protects).
    core::BeliefProfile original = core::MakeBeliefProfile(
        model, inferencer.InferQuery(query.term_ids));
    std::vector<topicmodel::TopicId> intention =
        core::ExtractIntention(original, epsilon1);

    pdx::EmbellishedQuery embellished =
        embellisher.Embellish(query.term_ids, expansion_factor, &rng);
    core::BeliefProfile after = core::MakeBeliefProfile(
        model, inferencer.InferQuery(embellished.terms));

    exposure.Add(core::Exposure(after.boost, intention) * 100.0);
    decoys.Add(static_cast<double>(embellished.num_decoys));
  }

  PdxCell cell;
  cell.num_topics = num_topics;
  cell.epsilon1 = epsilon1;
  cell.expansion_factor = expansion_factor;
  cell.exposure_pct = exposure.mean();
  cell.decoys = decoys.mean();
  return cell;
}

}  // namespace toppriv::experiments
