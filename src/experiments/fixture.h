// Shared experiment fixture: deterministically builds (and disk-caches) the
// synthetic corpus, the query workload, the inverted index and the six LDA
// models (LDA050..LDA300) that every bench binary consumes.
//
// Scale knobs come from the environment so the same binaries run in seconds
// on a laptop or at full scale:
//   TOPPRIV_DOCS        corpus size               (default 1500)
//   TOPPRIV_DOC_LEN     mean document length      (default 100)
//   TOPPRIV_TAIL_VOCAB  pseudo-word tail size     (default 3000)
//   TOPPRIV_QUERIES     workload size             (default 150, as the paper)
//   TOPPRIV_LDA_ITERS   Gibbs sweeps              (default 100)
//   TOPPRIV_CACHE_DIR   LDA model cache directory (default .toppriv_cache)
//   TOPPRIV_SHARDS      index shards for MakeEngine (default 1 = monolithic)
//   TOPPRIV_SHARD_THREADS  per-query shard fan-out threads (default 1 =
//                          sequential scatter)
//   TOPPRIV_LIVE_INGEST fraction of the corpus ingested up-front into a
//                          MakeLiveIndex live index (default 0.5); the
//                          rest streams in during the serving run
//   TOPPRIV_LIVE_EVAL_THREADS  per-query segment fan-out threads for the
//                          live serving phase (default 1 = sequential;
//                          0 = hardware concurrency)
//   TOPPRIV_DURABILITY  WAL mode for MakeLiveIndex indexes: off (default,
//                          in-memory), batch, refresh or manual. When on,
//                          the index is opened with LiveIndex::Recover()
//                          under <cache_dir>/live_wal (wiped per run so
//                          figures measure this run's ingest, not replay)
#ifndef TOPPRIV_EXPERIMENTS_FIXTURE_H_
#define TOPPRIV_EXPERIMENTS_FIXTURE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "index/live/live_index.h"
#include "index/sharded_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/lda_model.h"

namespace toppriv::experiments {

/// Fixture configuration (see file comment for the environment knobs).
struct FixtureConfig {
  corpus::GeneratorParams corpus_params;
  corpus::WorkloadParams workload_params;
  size_t lda_iterations = 100;
  std::string cache_dir = ".toppriv_cache";
  /// Index shards MakeEngine uses; 1 builds the monolithic SearchEngine.
  size_t num_shards = 1;
  /// Shard fan-out threads for MakeEngine's sharded engine (1 = sequential
  /// scatter on the caller's thread; 0 = hardware concurrency).
  size_t shard_threads = 1;
  /// Query evaluation strategy MakeEngine wires into the engine
  /// (TOPPRIV_EVAL_STRATEGY: "taat" or "maxscore"). Results are
  /// bit-identical either way; this sweeps performance only.
  search::EvalStrategy eval_strategy = search::EvalStrategy::kTAAT;
  /// Fraction of the corpus a MakeLiveIndex live index ingests up-front
  /// (TOPPRIV_LIVE_INGEST, clamped to [0, 1]); the remainder is streamed
  /// during the serving run's mixed read/write phase.
  double live_ingest_upfront = 0.5;
  /// Per-query segment fan-out threads for live-serving benches
  /// (TOPPRIV_LIVE_EVAL_THREADS; 1 = sequential scatter on the caller's
  /// thread, 0 = hardware concurrency). Consumers size the dedicated
  /// LiveSearchEngine eval pool from this — the pool must be distinct
  /// from any pool whose workers issue the queries.
  size_t live_eval_threads = 1;
  /// WAL sync discipline for MakeLiveIndex indexes (TOPPRIV_DURABILITY:
  /// off | batch | refresh | manual). Unset = in-memory, as before; set,
  /// MakeLiveIndex opens the index durably under <cache_dir>/live_wal so
  /// the serving benches measure the ingest path with logging + fsync on.
  std::optional<index::live::DurabilityPolicy> durability;

  /// Reads the TOPPRIV_* environment variables over the defaults.
  static FixtureConfig FromEnv();
};

/// The six model sizes the paper evaluates (LDA050 .. LDA300).
const std::vector<size_t>& PaperModelSizes();

/// Lazily-constructed experiment state. Everything is deterministic given
/// the config; LDA models are additionally cached on disk because training
/// dominates setup time.
class ExperimentFixture {
 public:
  explicit ExperimentFixture(FixtureConfig config = FixtureConfig::FromEnv());

  const FixtureConfig& config() const { return config_; }

  /// The synthetic corpus (generated on first use).
  const corpus::Corpus& corpus();
  /// Generative ground truth for the corpus.
  const corpus::GroundTruthModel& ground_truth();
  /// The TREC-substitute workload.
  const std::vector<corpus::BenchmarkQuery>& workload();
  /// Inverted index over the corpus.
  const index::InvertedIndex& index();
  /// Document-partitioned index with `num_shards` shards (built on first
  /// use, cached per shard count). The parity suite guarantees it answers
  /// queries identically to index().
  const index::ShardedIndex& sharded_index(size_t num_shards);
  /// Trained LDA model with `num_topics` topics (trains or loads cache).
  const topicmodel::LdaModel& model(size_t num_topics);

  /// A LiveIndex over the fixture corpus with the first
  /// round(upfront_fraction * num_docs) documents already ingested and
  /// published; the caller streams the remainder (the mixed read/write
  /// serving phase). The term space is pre-synced to the corpus
  /// vocabulary, so once everything is ingested the final snapshot's
  /// stats match the static index() bit for bit. The caller owns the
  /// returned index (and any merge pool wired into `options` must outlive
  /// it).
  std::unique_ptr<index::live::LiveIndex> MakeLiveIndex(
      double upfront_fraction,
      index::live::LiveIndexOptions options = index::live::LiveIndexOptions());

  /// Builds a query engine over the fixture corpus: the monolithic
  /// SearchEngine when `num_shards` <= 1, a ShardedSearchEngine otherwise
  /// (with `shard_threads` fan-out workers; 1 = sequential scatter).
  /// `strategy` overrides the config's evaluation strategy when set. Every
  /// figure bench that takes its engine from here runs sharded by setting
  /// TOPPRIV_SHARDS (and MaxScore by setting TOPPRIV_EVAL_STRATEGY) —
  /// results are identical by the parity contract, so the figures are
  /// architecture-independent.
  std::unique_ptr<search::QueryEngine> MakeEngine(
      std::unique_ptr<search::Scorer> scorer, size_t num_shards,
      size_t shard_threads = 1,
      std::optional<search::EvalStrategy> strategy = std::nullopt);
  /// Same, with the shard count from the config (TOPPRIV_SHARDS).
  std::unique_ptr<search::QueryEngine> MakeEngine(
      std::unique_ptr<search::Scorer> scorer);

  /// Human-readable model name, e.g. "LDA200".
  static std::string ModelName(size_t num_topics);

 private:
  void EnsureCorpus();
  std::string CacheKey(size_t num_topics) const;

  FixtureConfig config_;
  std::unique_ptr<corpus::Corpus> corpus_;
  corpus::GroundTruthModel ground_truth_;
  std::unique_ptr<std::vector<corpus::BenchmarkQuery>> workload_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::map<size_t, std::unique_ptr<index::ShardedIndex>> sharded_;
  std::map<size_t, std::unique_ptr<topicmodel::LdaModel>> models_;
};

}  // namespace toppriv::experiments

#endif  // TOPPRIV_EXPERIMENTS_FIXTURE_H_
