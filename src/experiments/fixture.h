// Shared experiment fixture: deterministically builds (and disk-caches) the
// synthetic corpus, the query workload, the inverted index and the six LDA
// models (LDA050..LDA300) that every bench binary consumes.
//
// Scale knobs come from the environment so the same binaries run in seconds
// on a laptop or at full scale:
//   TOPPRIV_DOCS        corpus size               (default 1500)
//   TOPPRIV_DOC_LEN     mean document length      (default 100)
//   TOPPRIV_TAIL_VOCAB  pseudo-word tail size     (default 3000)
//   TOPPRIV_QUERIES     workload size             (default 150, as the paper)
//   TOPPRIV_LDA_ITERS   Gibbs sweeps              (default 100)
//   TOPPRIV_CACHE_DIR   LDA model cache directory (default .toppriv_cache)
#ifndef TOPPRIV_EXPERIMENTS_FIXTURE_H_
#define TOPPRIV_EXPERIMENTS_FIXTURE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/lda_model.h"

namespace toppriv::experiments {

/// Fixture configuration (see file comment for the environment knobs).
struct FixtureConfig {
  corpus::GeneratorParams corpus_params;
  corpus::WorkloadParams workload_params;
  size_t lda_iterations = 100;
  std::string cache_dir = ".toppriv_cache";

  /// Reads the TOPPRIV_* environment variables over the defaults.
  static FixtureConfig FromEnv();
};

/// The six model sizes the paper evaluates (LDA050 .. LDA300).
const std::vector<size_t>& PaperModelSizes();

/// Lazily-constructed experiment state. Everything is deterministic given
/// the config; LDA models are additionally cached on disk because training
/// dominates setup time.
class ExperimentFixture {
 public:
  explicit ExperimentFixture(FixtureConfig config = FixtureConfig::FromEnv());

  const FixtureConfig& config() const { return config_; }

  /// The synthetic corpus (generated on first use).
  const corpus::Corpus& corpus();
  /// Generative ground truth for the corpus.
  const corpus::GroundTruthModel& ground_truth();
  /// The TREC-substitute workload.
  const std::vector<corpus::BenchmarkQuery>& workload();
  /// Inverted index over the corpus.
  const index::InvertedIndex& index();
  /// Trained LDA model with `num_topics` topics (trains or loads cache).
  const topicmodel::LdaModel& model(size_t num_topics);

  /// Human-readable model name, e.g. "LDA200".
  static std::string ModelName(size_t num_topics);

 private:
  void EnsureCorpus();
  std::string CacheKey(size_t num_topics) const;

  FixtureConfig config_;
  std::unique_ptr<corpus::Corpus> corpus_;
  corpus::GroundTruthModel ground_truth_;
  std::unique_ptr<std::vector<corpus::BenchmarkQuery>> workload_;
  std::unique_ptr<index::InvertedIndex> index_;
  std::map<size_t, std::unique_ptr<topicmodel::LdaModel>> models_;
};

}  // namespace toppriv::experiments

#endif  // TOPPRIV_EXPERIMENTS_FIXTURE_H_
