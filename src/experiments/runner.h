// Sweep drivers shared by the bench binaries: run TopPriv or PDX over the
// whole workload for one (model, threshold) cell and aggregate the metrics
// the paper's figures plot.
#ifndef TOPPRIV_EXPERIMENTS_RUNNER_H_
#define TOPPRIV_EXPERIMENTS_RUNNER_H_

#include <cstddef>
#include <vector>

#include "experiments/fixture.h"
#include "toppriv/ghost_generator.h"
#include "toppriv/privacy_spec.h"

namespace toppriv::experiments {

/// Aggregated TopPriv metrics over a workload (one figure data point).
struct TopPrivCell {
  size_t num_topics = 0;
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;
  /// Mean over queries of max_{t in U} B(t|C), in percent (Fig. 2a/3a).
  double exposure_pct = 0.0;
  /// Mean over queries of max_{t not in U} B(t|C), in percent (Fig. 2b/3b).
  double mask_pct = 0.0;
  /// Mean cycle length v (Fig. 2c/3c).
  double cycle_length = 0.0;
  /// Mean client-side generation time in seconds (Fig. 2d/3d).
  double generation_seconds = 0.0;
  /// Mean |U| (Fig. 3e).
  double num_relevant_topics = 0.0;
  /// Mean best rank (1-based) of any intention topic by B(t|C) (Fig. 3f).
  double max_rank_of_relevant = 0.0;
  /// Fraction of queries whose final exposure met epsilon2.
  double satisfied_fraction = 0.0;
  /// Mean exposure of the unprotected query, percent (diagnostic).
  double exposure_before_pct = 0.0;
};

/// Runs TopPriv over the full workload for one parameter cell.
/// `generator_options` selects ablations; defaults are the paper algorithm.
TopPrivCell RunTopPrivCell(ExperimentFixture& fixture, size_t num_topics,
                           const core::PrivacySpec& spec,
                           const core::GeneratorOptions& generator_options = {},
                           uint64_t seed = 17);

/// Aggregated PDX metrics over a workload (one Fig. 4 data point).
struct PdxCell {
  size_t num_topics = 0;
  double epsilon1 = 0.0;
  double expansion_factor = 0.0;
  /// Mean over queries of max_{t in U} B(t|q_e), in percent.
  double exposure_pct = 0.0;
  /// Mean number of decoys injected.
  double decoys = 0.0;
};

/// Runs PDX over the full workload for one parameter cell. The intention U
/// is measured at `epsilon1` on the *original* query; exposure is measured
/// on the embellished query (paper Section V-C).
PdxCell RunPdxCell(ExperimentFixture& fixture, size_t num_topics,
                   double epsilon1, double expansion_factor,
                   uint64_t seed = 29);

}  // namespace toppriv::experiments

#endif  // TOPPRIV_EXPERIMENTS_RUNNER_H_
