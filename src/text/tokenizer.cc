#include "text/tokenizer.h"

#include <cctype>

namespace toppriv::text {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string current;
  bool overflow = false;
  auto flush = [&] {
    if (!current.empty() && !overflow && Keep(current)) {
      out.push_back(current);
    }
    current.clear();
    overflow = false;
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (current.size() >= options_.max_token_length) {
        overflow = true;  // oversized run: drop the whole token
      } else {
        current.push_back(static_cast<char>(std::tolower(c)));
      }
    } else {
      flush();
    }
  }
  flush();
  return out;
}

bool Tokenizer::Keep(const std::string& token) const {
  if (token.size() < options_.min_token_length) return false;
  if (token.size() > options_.max_token_length) return false;
  if (!options_.keep_numbers) {
    bool has_alpha = false;
    for (char c : token) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        has_alpha = true;
        break;
      }
    }
    if (!has_alpha) return false;
  }
  return true;
}

}  // namespace toppriv::text
