#include "text/analyzer.h"

namespace toppriv::text {

std::vector<std::string> Analyzer::Analyze(std::string_view raw) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(raw);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& tok : tokens) {
    if (options_.remove_stopwords && DefaultStopwords().Contains(tok)) {
      continue;
    }
    if (options_.stem) {
      out.push_back(stemmer_.Stem(tok));
    } else {
      out.push_back(std::move(tok));
    }
  }
  return out;
}

std::vector<TermId> Analyzer::AnalyzeAndIntern(std::string_view raw,
                                               Vocabulary* vocab) const {
  std::vector<TermId> ids;
  for (const std::string& tok : Analyze(raw)) {
    ids.push_back(vocab->AddTerm(tok));
  }
  return ids;
}

std::vector<TermId> Analyzer::AnalyzeWithVocabulary(
    std::string_view raw, const Vocabulary& vocab) const {
  std::vector<TermId> ids;
  for (const std::string& tok : Analyze(raw)) {
    TermId id = vocab.Lookup(tok);
    if (id != kInvalidTerm) ids.push_back(id);
  }
  return ids;
}

}  // namespace toppriv::text
