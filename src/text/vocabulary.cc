#include "text/vocabulary.h"

#include "util/check.h"
#include "util/io.h"

namespace toppriv::text {

TermId Vocabulary::AddTerm(std::string_view term) {
  auto it = term_to_id_.find(std::string(term));
  if (it != term_to_id_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  doc_freq_.push_back(0);
  coll_freq_.push_back(0);
  term_to_id_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = term_to_id_.find(std::string(term));
  return it == term_to_id_.end() ? kInvalidTerm : it->second;
}

const std::string& Vocabulary::TermString(TermId id) const {
  TOPPRIV_CHECK_LT(id, terms_.size());
  return terms_[id];
}

void Vocabulary::AddCounts(TermId id, uint32_t df_delta, uint64_t cf_delta) {
  TOPPRIV_CHECK_LT(id, terms_.size());
  doc_freq_[id] += df_delta;
  coll_freq_[id] += cf_delta;
  total_tokens_ += cf_delta;
}

uint32_t Vocabulary::DocFreq(TermId id) const {
  TOPPRIV_CHECK_LT(id, doc_freq_.size());
  return doc_freq_[id];
}

uint64_t Vocabulary::CollectionFreq(TermId id) const {
  TOPPRIV_CHECK_LT(id, coll_freq_.size());
  return coll_freq_[id];
}

std::string Vocabulary::Serialize() const {
  util::BinaryWriter w;
  w.WriteVarint(terms_.size());
  for (size_t i = 0; i < terms_.size(); ++i) {
    w.WriteString(terms_[i]);
    w.WriteVarint(doc_freq_[i]);
    w.WriteVarint(coll_freq_[i]);
  }
  w.WriteVarint(total_tokens_);
  return w.data();
}

util::StatusOr<Vocabulary> Vocabulary::Deserialize(const std::string& bytes) {
  util::BinaryReader r(bytes);
  uint64_t n = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&n));
  Vocabulary vocab;
  vocab.terms_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string term;
    uint64_t df = 0, cf = 0;
    TOPPRIV_RETURN_IF_ERROR(r.ReadString(&term));
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&df));
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&cf));
    TermId id = vocab.AddTerm(term);
    if (id != i) return util::Status::DataLoss("duplicate term in stream");
    vocab.doc_freq_[id] = static_cast<uint32_t>(df);
    vocab.coll_freq_[id] = cf;
  }
  uint64_t total = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&total));
  vocab.total_tokens_ = total;
  return vocab;
}

}  // namespace toppriv::text
