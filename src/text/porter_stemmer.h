// Classic Porter (1980) stemming algorithm.
//
// Optional in the analysis pipeline. The synthetic corpus is generated from
// surface forms, so stemming is disabled by default in the experiments, but
// the substrate supports it because a production enterprise deployment over
// real text would enable it.
#ifndef TOPPRIV_TEXT_PORTER_STEMMER_H_
#define TOPPRIV_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace toppriv::text {

/// Stateless Porter stemmer. Thread-compatible.
class PorterStemmer {
 public:
  PorterStemmer() = default;

  /// Returns the stem of `word` (expects lowercase ASCII letters; tokens
  /// containing non-letters are returned unchanged).
  std::string Stem(std::string_view word) const;
};

}  // namespace toppriv::text

#endif  // TOPPRIV_TEXT_PORTER_STEMMER_H_
