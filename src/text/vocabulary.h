// Term dictionary: term <-> id mapping plus corpus-level term statistics.
#ifndef TOPPRIV_TEXT_VOCABULARY_H_
#define TOPPRIV_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace toppriv::text {

/// Dense term identifier; also the row index of every per-term structure
/// (posting lists, LDA word counts).
using TermId = uint32_t;

inline constexpr TermId kInvalidTerm = 0xffffffffu;

/// Mutable term dictionary with document/collection frequencies.
///
/// Built once per corpus (by the corpus generator or index builder), then
/// shared read-only by the search engine, the LDA trainer and the TopPriv
/// client.
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Interns `term`, returning its id (existing or new).
  TermId AddTerm(std::string_view term);

  /// Id for `term`, or kInvalidTerm if absent.
  TermId Lookup(std::string_view term) const;

  /// True if the term is present.
  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidTerm;
  }

  /// Surface form of a term id. Requires a valid id.
  const std::string& TermString(TermId id) const;

  /// Number of distinct terms (the paper's ω).
  size_t size() const { return terms_.size(); }

  /// Bumps statistics: `df_delta` distinct-document occurrences and
  /// `cf_delta` token occurrences for `id`.
  void AddCounts(TermId id, uint32_t df_delta, uint64_t cf_delta);

  /// Document frequency: number of documents containing the term.
  uint32_t DocFreq(TermId id) const;
  /// Collection frequency: total token occurrences of the term.
  uint64_t CollectionFreq(TermId id) const;

  /// Total tokens accumulated via AddCounts.
  uint64_t total_tokens() const { return total_tokens_; }

  /// Serializes to bytes / restores from bytes.
  std::string Serialize() const;
  static util::StatusOr<Vocabulary> Deserialize(const std::string& bytes);

 private:
  std::vector<std::string> terms_;
  std::vector<uint32_t> doc_freq_;
  std::vector<uint64_t> coll_freq_;
  std::unordered_map<std::string, TermId> term_to_id_;
  uint64_t total_tokens_ = 0;
};

}  // namespace toppriv::text

#endif  // TOPPRIV_TEXT_VOCABULARY_H_
