// End-to-end text analysis pipeline: tokenize -> stopword filter ->
// (optional) stem -> vocabulary lookup/intern.
#ifndef TOPPRIV_TEXT_ANALYZER_H_
#define TOPPRIV_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace toppriv::text {

/// Analyzer configuration.
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = false;
};

/// Turns raw text into normalized token strings or term ids.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {})
      : options_(options), tokenizer_(options.tokenizer) {}

  /// Normalized token strings (after stopword removal / stemming).
  std::vector<std::string> Analyze(std::string_view raw) const;

  /// Interns normalized tokens into `vocab`; returns term ids.
  std::vector<TermId> AnalyzeAndIntern(std::string_view raw,
                                       Vocabulary* vocab) const;

  /// Looks up normalized tokens in a read-only `vocab`; unknown terms are
  /// dropped (a query word absent from the corpus cannot affect retrieval).
  std::vector<TermId> AnalyzeWithVocabulary(std::string_view raw,
                                            const Vocabulary& vocab) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  PorterStemmer stemmer_;
};

}  // namespace toppriv::text

#endif  // TOPPRIV_TEXT_ANALYZER_H_
