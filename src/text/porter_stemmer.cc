#include "text/porter_stemmer.h"

#include <cstring>

namespace toppriv::text {

namespace {

// Implementation of the five-step Porter algorithm, operating on a mutable
// buffer `b` with logical end `k` (inclusive index of last char), following
// Porter's original 1980 description.
class Impl {
 public:
  explicit Impl(std::string word) : b_(std::move(word)) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  std::string Run() {
    if (k_ <= 1) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_) + 1);
    return b_;
  }

 private:
  // True if b[i] is a consonant.
  bool Cons(int i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant-vowel sequences between 0 and j.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if 0..j contains a vowel.
  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // True if b[j-1..j] is a double consonant.
  bool DoubleCons(int j) const {
    if (j < 1) return false;
    if (b_[j] != b_[j - 1]) return false;
    return Cons(j);
  }

  // True for consonant-vowel-consonant ending at i, where the final
  // consonant is not w, x or y; signals that an 'e' should be restored.
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if the stem ends with `s`; sets j_ to the offset before the suffix.
  bool Ends(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_.data() + (k_ - len + 1), s, len) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix (after j_) with `s`.
  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<size_t>(j_) + 1);
    b_.append(s);
    k_ = j_ + len;
  }

  void ReplaceIfMeasure(const char* s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  // Step 1ab: plurals and -ed / -ing.
  void Step1ab() {
    if (b_[k_] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem(j_)) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleCons(k_)) {
        char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure(k_) == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Step 1c: y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem(j_)) b_[k_] = 'i';
  }

  // Step 2: double/triple suffixes, e.g. -ization -> -ize.
  void Step2() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfMeasure("ate"); break; }
        if (Ends("tional")) { ReplaceIfMeasure("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfMeasure("ence"); break; }
        if (Ends("anci")) { ReplaceIfMeasure("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfMeasure("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfMeasure("ble"); break; }
        if (Ends("alli")) { ReplaceIfMeasure("al"); break; }
        if (Ends("entli")) { ReplaceIfMeasure("ent"); break; }
        if (Ends("eli")) { ReplaceIfMeasure("e"); break; }
        if (Ends("ousli")) { ReplaceIfMeasure("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfMeasure("ize"); break; }
        if (Ends("ation")) { ReplaceIfMeasure("ate"); break; }
        if (Ends("ator")) { ReplaceIfMeasure("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfMeasure("al"); break; }
        if (Ends("iveness")) { ReplaceIfMeasure("ive"); break; }
        if (Ends("fulness")) { ReplaceIfMeasure("ful"); break; }
        if (Ends("ousness")) { ReplaceIfMeasure("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfMeasure("al"); break; }
        if (Ends("iviti")) { ReplaceIfMeasure("ive"); break; }
        if (Ends("biliti")) { ReplaceIfMeasure("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfMeasure("log"); break; }
        break;
      default:
        break;
    }
  }

  // Step 3: -icate, -ful, -ness etc.
  void Step3() {
    switch (b_[k_]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfMeasure("ic"); break; }
        if (Ends("ative")) { ReplaceIfMeasure(""); break; }
        if (Ends("alize")) { ReplaceIfMeasure("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfMeasure("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfMeasure("ic"); break; }
        if (Ends("ful")) { ReplaceIfMeasure(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfMeasure(""); break; }
        break;
      default:
        break;
    }
  }

  // Step 4: -ant, -ence etc. removed when measure > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (b_[j_] == 's' || b_[j_] == 't')) break;
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) k_ = j_;
  }

  // Step 5: remove final -e and reduce -ll.
  void Step5() {
    j_ = k_;
    if (b_[k_] == 'e') {
      int a = Measure(k_);
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[k_] == 'l' && DoubleCons(k_) && Measure(k_) > 1) --k_;
  }

  std::string b_;
  int k_ = -1;
  int j_ = 0;
};

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (c < 'a' || c > 'z') return std::string(word);
  }
  return Impl(std::string(word)).Run();
}

}  // namespace toppriv::text
