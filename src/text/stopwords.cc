#include "text/stopwords.h"

namespace toppriv::text {

namespace {

constexpr const char* kStopwords[] = {
    "a",       "about",   "above",   "after",   "again",    "against",
    "all",     "am",      "an",      "and",     "any",      "are",
    "aren",    "as",      "at",      "be",      "because",  "been",
    "before",  "being",   "below",   "between", "both",     "but",
    "by",      "can",     "cannot",  "could",   "couldn",   "did",
    "didn",    "do",      "does",    "doesn",   "doing",    "don",
    "down",    "during",  "each",    "few",     "for",      "from",
    "further", "had",     "hadn",    "has",     "hasn",     "have",
    "haven",   "having",  "he",      "her",     "here",     "hers",
    "herself", "him",     "himself", "his",     "how",      "i",
    "if",      "in",      "into",    "is",      "isn",      "it",
    "its",     "itself",  "just",    "ll",      "me",       "might",
    "more",    "most",    "must",    "mustn",   "my",       "myself",
    "no",      "nor",     "not",     "now",     "of",       "off",
    "on",      "once",    "only",    "or",      "other",    "ought",
    "our",     "ours",    "ourselves", "out",   "over",     "own",
    "re",      "s",       "same",    "shan",    "she",      "should",
    "shouldn", "so",      "some",    "such",    "t",        "than",
    "that",    "the",     "their",   "theirs",  "them",     "themselves",
    "then",    "there",   "these",   "they",    "this",     "those",
    "through", "to",      "too",     "under",   "until",    "up",
    "ve",      "very",    "was",     "wasn",    "we",       "were",
    "weren",   "what",    "when",    "where",   "which",    "while",
    "who",     "whom",    "why",     "will",    "with",     "won",
    "would",   "wouldn",  "you",     "your",    "yours",    "yourself",
    "yourselves",
};

}  // namespace

StopwordList::StopwordList() {
  for (const char* w : kStopwords) words_.insert(w);
}

const StopwordList& DefaultStopwords() {
  static const StopwordList* kList = new StopwordList();
  return *kList;
}

}  // namespace toppriv::text
