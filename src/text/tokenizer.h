// Query/document tokenizer: lowercases and splits raw text into word tokens.
#ifndef TOPPRIV_TEXT_TOKENIZER_H_
#define TOPPRIV_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace toppriv::text {

/// Tokenization options.
struct TokenizerOptions {
  /// Minimum token length kept (shorter tokens are dropped).
  size_t min_token_length = 2;
  /// Maximum token length kept (guards against garbage input).
  size_t max_token_length = 40;
  /// Keep tokens that contain digits (e.g. "m-1" splits to "m", "1";
  /// "ah-64" keeps "ah" and, when true, "64").
  bool keep_numbers = true;
};

/// Splits text on non-alphanumeric characters, lowercasing as it goes.
///
/// Hyphenated compounds ("clean-room") become separate tokens, matching the
/// bag-of-words treatment the paper assumes for both documents and queries.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text` into lowercase word tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool Keep(const std::string& token) const;

  TokenizerOptions options_;
};

}  // namespace toppriv::text

#endif  // TOPPRIV_TEXT_TOKENIZER_H_
