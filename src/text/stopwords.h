// Built-in English stopword list.
//
// The paper removes stopwords ("the", "a", ...) before indexing and topic
// modeling; this is the standard IR preprocessing step it cites from
// Baeza-Yates & Ribeiro-Neto.
#ifndef TOPPRIV_TEXT_STOPWORDS_H_
#define TOPPRIV_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>

namespace toppriv::text {

/// Membership test over a fixed English stopword list (~175 words, the
/// classic SMART-derived set).
class StopwordList {
 public:
  StopwordList();

  /// True if `token` (already lowercased) is a stopword.
  bool Contains(std::string_view token) const {
    return words_.count(std::string(token)) > 0;
  }

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

/// Shared immutable instance.
const StopwordList& DefaultStopwords();

}  // namespace toppriv::text

#endif  // TOPPRIV_TEXT_STOPWORDS_H_
