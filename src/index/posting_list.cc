#include "index/posting_list.h"

#include <algorithm>

#include "util/check.h"
#include "util/io.h"

namespace toppriv::index {

namespace {

/// Wire-format tag for the v1 block layout. It sits above the 32-bit count
/// space, so it can never collide with a legacy v0 header (whose first
/// varint is the posting count, a uint32): DecodeFrom reads one varint and
/// knows which format follows. Future revisions bump the low bits.
constexpr uint64_t kBlockFormatTag = (uint64_t{1} << 32) | 1;

/// Unchecked LEB128 decode over raw bytes for the block hot path. Only ever
/// runs over payloads that DecodeFrom (or the Builder) fully validated, so
/// the byte-level bounds are enforced by the caller's DCHECKs, not per byte.
inline const uint8_t* DecodeVarintFast(const uint8_t* p, uint64_t* v) {
  uint64_t result = *p & 0x7f;
  int shift = 7;
  while (*p & 0x80) {
    ++p;
    result |= static_cast<uint64_t>(*p & 0x7f) << shift;
    shift += 7;
  }
  *v = result;
  ++p;
  return p;
}

}  // namespace

// ------------------------------------------------------------------ Builder

void PostingList::Builder::Append(corpus::DocId doc, uint32_t tf) {
  TOPPRIV_CHECK_GT(tf, 0u);
  uint64_t delta;
  if (has_any_) {
    TOPPRIV_CHECK_GT(doc, last_doc_);
    delta = doc - last_doc_;
  } else {
    delta = doc;  // very first posting: absolute doc id
    has_any_ = true;
  }
  pending_deltas_[pending_] = delta;
  pending_tfs_[pending_] = tf;
  pending_docs_[pending_] = doc;
  ++pending_;
  last_doc_ = doc;
  list_max_tf_ = std::max(list_max_tf_, tf);
  ++count_;
  if (pending_ == kPostingBlockSize) FlushBlock();
}

void PostingList::Builder::FlushBlock() {
  if (pending_ == 0) return;
  // BlockInfo.offset is 32-bit; DecodeFrom rejects wider bodies too.
  TOPPRIV_CHECK_LE(bytes_.size(), UINT32_MAX);
  BlockInfo info;
  info.offset = static_cast<uint32_t>(bytes_.size());
  info.count = pending_;
  info.first_doc = pending_docs_[0];
  info.last_doc = pending_docs_[pending_ - 1];
  info.max_tf = 0;
  // Delta group first, then the tf group: two tight homogeneous streams.
  for (uint32_t i = 0; i < pending_; ++i) {
    util::AppendVarint(pending_deltas_[i], &bytes_);
  }
  for (uint32_t i = 0; i < pending_; ++i) {
    util::AppendVarint(pending_tfs_[i], &bytes_);
    info.max_tf = std::max(info.max_tf, pending_tfs_[i]);
  }
  blocks_.push_back(info);
  pending_ = 0;
}

PostingList PostingList::Builder::Build() {
  FlushBlock();
  PostingList list;
  list.bytes_ = std::move(bytes_);
  list.blocks_ = std::move(blocks_);
  list.count_ = count_;
  list.list_max_tf_ = list_max_tf_;
  bytes_.clear();
  blocks_.clear();
  count_ = 0;
  has_any_ = false;
  last_doc_ = 0;
  list_max_tf_ = 0;
  pending_ = 0;
  return list;
}

// ---------------------------------------------------------------- accessors

const PostingList::BlockInfo& PostingList::block(size_t b) const {
  TOPPRIV_DCHECK(b < blocks_.size());
  return blocks_[b];
}

void PostingList::DecodeBlock(size_t b, PostingBlock* out) const {
  TOPPRIV_DCHECK(b < blocks_.size());
  const BlockInfo& info = blocks_[b];
  const uint8_t* p =
      reinterpret_cast<const uint8_t*>(bytes_.data()) + info.offset;
  // The first delta continues the chain from the previous block's last doc
  // (the list's very first delta is absolute, which the base 0 absorbs).
  uint64_t doc = (b == 0) ? 0 : blocks_[b - 1].last_doc;
  for (uint32_t i = 0; i < info.count; ++i) {
    uint64_t delta = 0;
    p = DecodeVarintFast(p, &delta);
    doc += delta;
    out->docs[i] = static_cast<corpus::DocId>(doc);
  }
  for (uint32_t i = 0; i < info.count; ++i) {
    uint64_t tf = 0;
    p = DecodeVarintFast(p, &tf);
    out->tfs[i] = static_cast<uint32_t>(tf);
  }
  out->count = info.count;
  TOPPRIV_DCHECK(static_cast<size_t>(
                     p - reinterpret_cast<const uint8_t*>(bytes_.data())) <=
                 bytes_.size());
  TOPPRIV_DCHECK(out->docs[info.count - 1] == info.last_doc);
}

// ----------------------------------------------------------------- Iterator

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  Next();
}

void PostingList::Iterator::Next() {
  // Refill from the next block when the current one is exhausted (or on the
  // first call, when block_.count == 0 and pos_ == 0).
  while (pos_ >= block_.count) {
    if (block_idx_ >= list_->num_blocks()) {
      valid_ = false;
      return;
    }
    list_->DecodeBlock(block_idx_, &block_);
    ++block_idx_;
    pos_ = 0;
  }
  current_.doc = block_.docs[pos_];
  current_.tf = block_.tfs[pos_];
  ++pos_;
  valid_ = true;
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  PostingBlock block;
  for (size_t b = 0; b < blocks_.size(); ++b) {
    DecodeBlock(b, &block);
    for (uint32_t i = 0; i < block.count; ++i) {
      out.push_back(Posting{block.docs[i], block.tfs[i]});
    }
  }
  return out;
}

// ------------------------------------------------------------ serialization

void PostingList::EncodeTo(std::string* out) const {
  util::AppendVarint(kBlockFormatTag, out);
  util::AppendVarint(count_, out);
  util::AppendVarint(bytes_.size(), out);
  out->append(bytes_);
  // The block directory is NOT serialized: DecodeFrom rebuilds it during
  // its validation scan for free, and derived metadata on the wire would
  // only be one more thing a hostile blob could lie about.
}

namespace {

/// Shared validation state for both wire formats: doc ids accumulate in 64
/// bits so a hostile delta that would wrap 32-bit accumulation back into
/// range is caught, tfs must be nonzero u32s (the Builder never emits
/// others, and downstream scorers take log(tf)), doc ids must be strictly
/// increasing and below `max_doc_exclusive`.
struct BodyValidator {
  uint64_t max_doc_exclusive;
  uint64_t doc = 0;
  bool first = true;

  util::Status CheckDelta(uint64_t delta) {
    if (first) {
      doc = delta;
      first = false;
    } else if (delta == 0) {
      return util::Status::DataLoss("posting doc ids not strictly increasing");
    } else if (delta > UINT64_MAX - doc) {
      return util::Status::DataLoss("posting doc id overflow");
    } else {
      doc += delta;
    }
    if (doc >= max_doc_exclusive) {
      return util::Status::DataLoss("posting doc id out of range");
    }
    // DocId is 32-bit everywhere downstream; even with the default (open)
    // bound a wider doc id must die here, not truncate later.
    if (doc > UINT32_MAX) {
      return util::Status::DataLoss("posting doc id overflows u32");
    }
    return util::Status::Ok();
  }

  util::Status CheckTf(uint64_t tf) {
    if (tf == 0) {
      return util::Status::DataLoss("posting tf is zero");
    }
    if (tf > UINT32_MAX) {
      return util::Status::DataLoss("posting tf overflows u32");
    }
    return util::Status::Ok();
  }
};

}  // namespace

util::StatusOr<PostingList> PostingList::DecodeFrom(
    const std::string& buf, size_t* pos, uint64_t max_doc_exclusive) {
  uint64_t head = 0;
  if (!util::DecodeVarint(buf, pos, &head)) {
    return util::Status::DataLoss("posting list header overrun");
  }

  if (head > UINT32_MAX && head != kBlockFormatTag) {
    return util::Status::DataLoss("unsupported posting list format");
  }
  const bool v1 = (head == kBlockFormatTag);

  uint64_t count = 0;
  if (v1) {
    if (!util::DecodeVarint(buf, pos, &count) || count > UINT32_MAX) {
      return util::Status::DataLoss("posting list header overrun");
    }
  } else {
    count = head;  // legacy v0: the first varint IS the count
  }
  uint64_t nbytes = 0;
  if (!util::DecodeVarint(buf, pos, &nbytes)) {
    return util::Status::DataLoss("posting list header overrun");
  }
  // Overflow-safe bound (hostile nbytes can wrap `*pos + nbytes`).
  if (nbytes > buf.size() - *pos) {
    return util::Status::DataLoss("posting list body overrun");
  }
  // Block offsets are 32-bit; a body that large cannot have come from the
  // Builder (which CHECKs the same bound) and would wrap the directory.
  if (nbytes > UINT32_MAX) {
    return util::Status::DataLoss("posting list body overflows u32 offsets");
  }
  const std::string body = buf.substr(*pos, nbytes);
  *pos += nbytes;

  BodyValidator check{max_doc_exclusive};

  if (v1) {
    // One validating scan over the grouped layout builds the directory as a
    // side effect; hostile bytes never reach the unchecked block decoder.
    PostingList list;
    list.count_ = static_cast<uint32_t>(count);
    list.bytes_ = body;
    size_t body_pos = 0;
    uint64_t decoded = 0;
    while (decoded < count) {
      const uint32_t n = static_cast<uint32_t>(
          std::min<uint64_t>(kPostingBlockSize, count - decoded));
      BlockInfo info;
      info.offset = static_cast<uint32_t>(body_pos);
      info.count = n;
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t delta = 0;
        if (!util::DecodeVarint(list.bytes_, &body_pos, &delta)) {
          return util::Status::DataLoss("posting list body malformed");
        }
        TOPPRIV_RETURN_IF_ERROR(check.CheckDelta(delta));
        if (i == 0) info.first_doc = static_cast<corpus::DocId>(check.doc);
      }
      info.last_doc = static_cast<corpus::DocId>(check.doc);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t tf = 0;
        if (!util::DecodeVarint(list.bytes_, &body_pos, &tf)) {
          return util::Status::DataLoss("posting list body malformed");
        }
        TOPPRIV_RETURN_IF_ERROR(check.CheckTf(tf));
        info.max_tf = std::max(info.max_tf, static_cast<uint32_t>(tf));
      }
      list.list_max_tf_ = std::max(list.list_max_tf_, info.max_tf);
      list.blocks_.push_back(info);
      decoded += n;
    }
    if (body_pos != list.bytes_.size()) {
      return util::Status::DataLoss("posting list count mismatch");
    }
    return list;
  }

  // Legacy v0: interleaved (delta, tf) pairs. Validate with the same
  // discipline, then transcode into the block layout through the Builder
  // (validation makes its CHECKs unreachable for hostile input).
  size_t body_pos = 0;
  uint64_t pairs = 0;
  Builder builder;
  while (body_pos < body.size()) {
    uint64_t delta = 0, tf = 0;
    if (!util::DecodeVarint(body, &body_pos, &delta) ||
        !util::DecodeVarint(body, &body_pos, &tf)) {
      return util::Status::DataLoss("posting list body malformed");
    }
    TOPPRIV_RETURN_IF_ERROR(check.CheckDelta(delta));
    TOPPRIV_RETURN_IF_ERROR(check.CheckTf(tf));
    builder.Append(static_cast<corpus::DocId>(check.doc),
                   static_cast<uint32_t>(tf));
    ++pairs;
  }
  if (pairs != count) {
    return util::Status::DataLoss("posting list count mismatch");
  }
  return builder.Build();
}

}  // namespace toppriv::index
