#include "index/posting_list.h"

#include "util/check.h"
#include "util/io.h"

namespace toppriv::index {

void PostingList::Builder::Append(corpus::DocId doc, uint32_t tf) {
  TOPPRIV_CHECK_GT(tf, 0u);
  if (has_any_) {
    TOPPRIV_CHECK_GT(doc, last_doc_);
    util::AppendVarint(doc - last_doc_, &bytes_);
  } else {
    util::AppendVarint(doc, &bytes_);
    has_any_ = true;
  }
  util::AppendVarint(tf, &bytes_);
  last_doc_ = doc;
  ++count_;
}

PostingList PostingList::Builder::Build() {
  PostingList list;
  list.bytes_ = std::move(bytes_);
  list.count_ = count_;
  bytes_.clear();
  count_ = 0;
  has_any_ = false;
  last_doc_ = 0;
  return list;
}

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  Next();
}

void PostingList::Iterator::Next() {
  if (pos_ >= list_->bytes_.size()) {
    valid_ = false;
    return;
  }
  uint64_t delta = 0, tf = 0;
  bool ok = util::DecodeVarint(list_->bytes_, &pos_, &delta) &&
            util::DecodeVarint(list_->bytes_, &pos_, &tf);
  TOPPRIV_CHECK(ok);
  if (first_) {
    current_.doc = static_cast<corpus::DocId>(delta);
    first_ = false;
  } else {
    current_.doc += static_cast<corpus::DocId>(delta);
  }
  current_.tf = static_cast<uint32_t>(tf);
  valid_ = true;
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  for (Iterator it(this); it.Valid(); it.Next()) {
    out.push_back(it.Get());
  }
  return out;
}

void PostingList::EncodeTo(std::string* out) const {
  util::AppendVarint(count_, out);
  util::AppendVarint(bytes_.size(), out);
  out->append(bytes_);
}

util::StatusOr<PostingList> PostingList::DecodeFrom(
    const std::string& buf, size_t* pos, uint64_t max_doc_exclusive) {
  uint64_t count = 0, nbytes = 0;
  if (!util::DecodeVarint(buf, pos, &count) ||
      !util::DecodeVarint(buf, pos, &nbytes)) {
    return util::Status::DataLoss("posting list header overrun");
  }
  // Overflow-safe bound (hostile nbytes can wrap `*pos + nbytes`).
  if (nbytes > buf.size() - *pos) {
    return util::Status::DataLoss("posting list body overrun");
  }
  PostingList list;
  list.count_ = static_cast<uint32_t>(count);
  list.bytes_ = buf.substr(*pos, nbytes);
  *pos += nbytes;
  // Validate the body in one pass before anyone iterates it: the Iterator
  // CHECK-aborts on malformed varints (fine for Builder-produced lists,
  // fatal if attacker bytes reach it). The body must decode to exactly
  // `count` (delta, tf) pairs consuming exactly `nbytes`, with every doc
  // id below `max_doc_exclusive`. Doc ids accumulate in 64 bits here, so a
  // hostile delta that would wrap the Iterator's 32-bit accumulation back
  // into range is rejected too.
  size_t body_pos = 0;
  uint64_t pairs = 0;
  uint64_t doc = 0;
  bool first = true;
  while (body_pos < list.bytes_.size()) {
    uint64_t delta = 0, tf = 0;
    if (!util::DecodeVarint(list.bytes_, &body_pos, &delta) ||
        !util::DecodeVarint(list.bytes_, &body_pos, &tf)) {
      return util::Status::DataLoss("posting list body malformed");
    }
    if (first) {
      doc = delta;
      first = false;
    } else if (delta > UINT64_MAX - doc) {
      return util::Status::DataLoss("posting doc id overflow");
    } else {
      doc += delta;
    }
    if (doc >= max_doc_exclusive) {
      return util::Status::DataLoss("posting doc id out of range");
    }
    ++pairs;
  }
  if (pairs != count) {
    return util::Status::DataLoss("posting list count mismatch");
  }
  return list;
}

}  // namespace toppriv::index
