// Document-partitioned inverted index: K InvertedIndex shards over
// contiguous doc-id ranges plus a manifest with the shard→range mapping and
// the aggregated global statistics scorers need.
//
// The partition changes WHERE postings live, never WHAT the collection
// contains: every global accessor (DocFreq, DocLength, ComputeStats) is
// defined to return exactly what the monolithic InvertedIndex over the same
// corpus returns, and tests/sharding_test.cc enforces that bit for bit.
// This is the paper's "no loss of retrieval fidelity" invariant pushed
// across an architectural boundary — per-shard evaluation must score with
// the GLOBAL statistics carried here (distributed-IR global IDF), or
// sharded rankings would drift from the monolithic engine's.
#ifndef TOPPRIV_INDEX_SHARDED_INDEX_H_
#define TOPPRIV_INDEX_SHARDED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace toppriv::index {

/// Contiguous global doc-id range [begin, end) owned by one shard. Shard
/// ranges tile [0, num_documents) in order with no gaps or overlaps; a
/// global doc id g in shard s has local id g - begin.
struct ShardRange {
  corpus::DocId begin = 0;
  corpus::DocId end = 0;

  uint32_t size() const { return end - begin; }
};

/// Shard→range mapping plus the aggregated collection statistics. Derived
/// entirely from the shards at Build/Deserialize time (never trusted from
/// the wire beyond the ranges themselves).
struct ShardManifest {
  std::vector<ShardRange> ranges;
  /// Global term-space size; identical for every shard.
  size_t num_terms = 0;
  size_t num_documents = 0;
  uint64_t total_tokens = 0;
  double avg_doc_length = 0.0;
  /// Global document frequency per term: the sum of the per-shard list
  /// lengths, equal to the monolithic DocFreq. Per-shard query evaluation
  /// scores with these, not the shard-local frequencies.
  std::vector<uint32_t> global_df;
};

/// Immutable sharded index.
class ShardedIndex {
 public:
  ShardedIndex() = default;

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;
  ShardedIndex(ShardedIndex&&) = default;
  ShardedIndex& operator=(ShardedIndex&&) = default;

  /// Partitions the corpus into `num_shards` (>= 1) near-equal contiguous
  /// doc ranges and builds one InvertedIndex per range. More shards than
  /// documents leaves the surplus shards empty (their ranges are empty).
  /// `pool`, when given, fans the per-shard builds out over its workers —
  /// shards are independent doc ranges, so the result is bit-identical to
  /// the serial build (sharding_test asserts it) and construction scales
  /// with cores. Must not be called from one of `pool`'s own workers.
  static ShardedIndex Build(const corpus::Corpus& corpus, size_t num_shards,
                            util::ThreadPool* pool = nullptr);

  size_t num_shards() const { return shards_.size(); }
  const InvertedIndex& shard(size_t s) const;
  const ShardManifest& manifest() const { return manifest_; }

  /// Shard owning global doc id `doc`.
  size_t ShardOf(corpus::DocId doc) const;

  // Global accessors, all equal to the monolithic InvertedIndex's.
  uint32_t DocFreq(text::TermId term) const;
  uint32_t DocLength(corpus::DocId doc) const;
  size_t num_documents() const { return manifest_.num_documents; }
  size_t num_terms() const { return manifest_.num_terms; }
  double avg_doc_length() const { return manifest_.avg_doc_length; }
  uint64_t total_tokens() const { return manifest_.total_tokens; }

  /// Statistics of the LOGICAL global index: every field — including
  /// encoded_bytes, which is reconstructed by re-deriving the monolithic
  /// delta encoding across shard boundaries — equals the monolithic
  /// InvertedIndex::ComputeStats() exactly, so the paper's §II PIR
  /// arithmetic is partition-invariant.
  IndexStats ComputeStats() const;

  /// Serialization: manifest header (shard count, term/doc totals, ranges)
  /// followed by one length-prefixed InvertedIndex blob per shard.
  /// Deserialize rejects hostile blobs — truncation, inverted/overlapping/
  /// gapped/out-of-range doc ranges, shard blobs whose contents contradict
  /// the manifest, trailing bytes — with a clean DataLoss status.
  std::string Serialize() const;
  static util::StatusOr<ShardedIndex> Deserialize(const std::string& bytes);

 private:
  /// Recomputes every derived manifest field (totals, avg, global_df) from
  /// `ranges` + `shards_`; shared by Build and Deserialize.
  void FinishManifest(std::vector<ShardRange> ranges);

  std::vector<InvertedIndex> shards_;
  ShardManifest manifest_;
};

}  // namespace toppriv::index

#endif  // TOPPRIV_INDEX_SHARDED_INDEX_H_
