// LiveIndex: an LSM/Lucene-style dynamic inverted index — mutable in-memory
// writer, immutable sealed segments, tombstone deletes, tiered background
// merges, and snapshot-isolated readers.
//
// The repo's static indexes are built in one pass and frozen; TopPriv's
// premise (an always-on enterprise engine whose corpus grows under live
// query traffic) needs ingest to proceed WHILE ghost-query cycles are being
// served. The design splits the index into an ordered list of immutable
// Segments (see segment.h) plus one mutable SegmentWriter tail:
//
//   Ingest ──▶ SegmentWriter ──Seal──▶ [Seg][Seg][Seg] ──merge──▶ [Seg]
//   Delete ──▶ per-segment tombstone bitmap (copy-on-write)
//   readers ─▶ Acquire(): refcounted IndexSnapshot (segment list + bitmaps
//              + aggregated stats, pinned by shared_ptr — race-free while
//              ingest and merges continue)
//
// THE invariant (tests/live_index_test.cc): ingesting any corpus in any
// batch splits, with any interleaving of merges and deletes-then-reinserts,
// yields bit-identical Search() results and an identical ComputeStats() to
// the static InvertedIndex::Build of the final corpus. Three ingredients:
//
//  1. Stable ingest order. Every document gets a monotonically increasing
//     STABLE id; segments partition the stable space in order, merges keep
//     survivors in stable order. A snapshot renumbers the live documents
//     DENSELY in stable order ("dense ids"), which is exactly the doc-id
//     assignment a static Build over the final corpus would make — so
//     results and tie-breaks line up bit for bit.
//  2. Identical per-document arithmetic. Sealed segments' posting lists
//     are byte-identical to a static BuildRange over their documents
//     (segment.h), per-segment evaluation runs the shared AccumulateTopK /
//     MaxScoreTopK cores with the snapshot's GLOBAL (live) collection
//     statistics and per-term document frequencies (the PR 3 global-IDF
//     discipline), and tombstoned documents are skipped without touching
//     any other document's score.
//  3. Deterministic merge of per-segment top-k lists through TopK's
//     (score desc, dense id asc) total order.
//
// Thread-safety: all mutations (Ingest, Delete, Flush, Refresh, merge
// commits) serialize on one writer mutex; readers touch only snapshot_mu_.
// The discipline is MACHINE-checked: both mutexes are util::Mutex
// capabilities, every guarded member carries GUARDED_BY, every *Locked
// helper REQUIRES(mu_), and the Clang -Wthread-safety -Werror CI job fails
// on any unlocked access (see util/thread_annotations.h and the lock map
// in docs/ARCHITECTURE.md). Everything a snapshot points at is immutable,
// so readers never block each other and never observe a half-applied
// change.
// Background merges read only immutable inputs and commit under the mutex;
// deletes that land on a segment while it is being merged are re-applied
// to the merged segment at commit (bitmaps only ever gain bits).
#ifndef TOPPRIV_INDEX_LIVE_LIVE_INDEX_H_
#define TOPPRIV_INDEX_LIVE_LIVE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "index/live/segment.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace toppriv::util {
class FileSystem;
}  // namespace toppriv::util

namespace toppriv::index::live {

struct WalRecord;
class WalWriter;

/// One segment as pinned by a snapshot: the immutable segment, the
/// tombstone bitmap frozen at snapshot time (null = no deletes), and the
/// local→dense remap data.
struct SnapshotSegment {
  std::shared_ptr<const Segment> segment;
  /// Tombstone mask parallel to local doc ids (1 = deleted); evaluators
  /// pass it straight to the shared cores' `exclude` parameter.
  std::shared_ptr<const std::vector<char>> deleted;
  /// Dense id of this segment's first live document.
  corpus::DocId dense_base = 0;
  uint32_t live_docs = 0;
  /// deleted_before[l] = number of tombstoned locals < l (null when clean).
  std::shared_ptr<const std::vector<uint32_t>> deleted_before;
  /// Ascending live local ids (dense-rank → local; null when clean).
  std::shared_ptr<const std::vector<corpus::DocId>> live_locals;

  /// Dense id of the LIVE local doc `local`.
  corpus::DocId DenseId(corpus::DocId local) const {
    const uint32_t shift =
        deleted_before == nullptr ? 0 : (*deleted_before)[local];
    return dense_base + (local - shift);
  }
  /// Local id of the dense-rank-th live doc of this segment.
  corpus::DocId LocalId(corpus::DocId rank) const {
    return live_locals == nullptr ? rank : (*live_locals)[rank];
  }
};

/// An immutable, refcounted point-in-time view of the live index. Queries
/// evaluate against a snapshot end to end, so ingest/merge/delete activity
/// after Acquire() is invisible to them. Dense doc ids (0 .. num_documents)
/// number the LIVE documents in stable (ingest) order — the id space a
/// static build of the same collection would assign.
class IndexSnapshot {
 public:
  size_t num_segments() const { return segments_.size(); }
  const SnapshotSegment& segment(size_t s) const { return segments_[s]; }

  /// Live collection aggregates (deleted documents excluded everywhere).
  size_t num_documents() const { return num_documents_; }
  size_t num_terms() const { return num_terms_; }
  uint64_t total_tokens() const { return total_tokens_; }
  double avg_doc_length() const { return avg_doc_length_; }

  /// Global per-term document frequency over the live documents — what
  /// every per-segment evaluation scores with (global-IDF discipline).
  const std::vector<uint32_t>& global_df() const { return global_df_; }
  uint32_t DocFreq(text::TermId term) const {
    return term < global_df_.size() ? global_df_[term] : 0;
  }

  uint32_t DocLength(corpus::DocId dense) const;
  /// The stable (ingest) identity of a dense id, for callers that need to
  /// address a result across snapshots (e.g. to delete it).
  StableId ToStableId(corpus::DocId dense) const;

  /// Statistics of the logical live index; equal field-for-field —
  /// including encoded_bytes, re-priced as ONE delta chain per term across
  /// segment boundaries and tombstone holes — to the static
  /// InvertedIndex::Build(final corpus).ComputeStats().
  IndexStats ComputeStats() const;

  /// Monotonic snapshot sequence number (diagnostics).
  uint64_t generation() const { return generation_; }

  /// Version of the global df / collection statistics this snapshot was
  /// built from. Bumped by every df-changing mutation (seal, delete,
  /// term-space growth), NOT by df-neutral ones (merge commits). Consumers
  /// caching anything derived from the stats — e.g. LiveSearchEngine's
  /// per-segment impact-bound tables — key the cache on this and discard
  /// when it moves.
  uint64_t df_version() const { return df_version_; }

 private:
  friend class LiveIndex;
  /// Segment owning dense id `dense` (index into segments_).
  size_t SegmentOf(corpus::DocId dense) const;

  std::vector<SnapshotSegment> segments_;
  std::vector<uint32_t> global_df_;
  size_t num_terms_ = 0;
  size_t num_documents_ = 0;
  uint64_t total_tokens_ = 0;
  double avg_doc_length_ = 0.0;
  uint64_t generation_ = 0;
  uint64_t df_version_ = 0;
};

/// When the WAL is fsync'd relative to acknowledging a mutation. "Acked
/// implies durable" holds at different points:
///   kPerBatch   every mutation call syncs before returning — a returned
///               Ingest/Delete survives any crash (slowest, strongest).
///               Syncs GROUP-COMMIT across concurrent callers: each call
///               acks against a synced-sequence watermark, and a caller
///               whose sequence a concurrent leader already made durable
///               returns without issuing its own fsync;
///   kPerRefresh appends are buffered, Refresh() syncs before publishing —
///               a snapshot never shows state a crash could lose;
///   kManual     nothing syncs until SyncWal()/Checkpoint() — fastest,
///               bounded loss of the un-synced suffix.
enum class DurabilityPolicy {
  kPerBatch = 0,
  kPerRefresh = 1,
  kManual = 2,
};

struct LiveIndexOptions {
  /// Auto-seal threshold: the writer seals into a segment once it holds
  /// this many documents (Refresh/Flush seal earlier).
  size_t max_writer_docs = 128;
  /// Tiered merge policy: `merge_factor` adjacent segments in the same
  /// doc-count tier (tier t holds segments with fewer than
  /// max_writer_docs * merge_factor^t live docs... see TierOf) merge into
  /// one.
  size_t merge_factor = 4;
  /// A segment whose tombstoned fraction reaches this ratio is compacted
  /// (rewritten without its deleted docs) on its own.
  double compact_deleted_ratio = 0.5;
  /// Worker pool merges run on; nullptr executes merges inline on the
  /// mutating thread at the commit points (deterministic, test-friendly).
  /// The pool is borrowed and must outlive the LiveIndex. Merge tasks only
  /// Submit — they never ParallelFor — so sharing the serving pool is safe.
  util::ThreadPool* merge_pool = nullptr;
  /// WAL sync discipline for indexes opened with Recover(); an index
  /// constructed directly is in-memory only and never consults this.
  DurabilityPolicy durability = DurabilityPolicy::kPerBatch;
};

/// The mutable, concurrently-queryable index. See file comment.
class LiveIndex {
 public:
  explicit LiveIndex(LiveIndexOptions options = LiveIndexOptions());
  /// Blocks until in-flight background merges drain.
  ~LiveIndex() EXCLUDES(mu_);

  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;

  /// Ingests a batch, returning the assigned stable ids. The batch becomes
  /// visible to NEW snapshots at the next Refresh (auto-sealed segments
  /// included); existing snapshots are never perturbed.
  std::vector<StableId> Ingest(
      const std::vector<std::vector<text::TermId>>& docs) EXCLUDES(mu_);

  /// Tombstones one document. Returns false if the id was never assigned,
  /// was already deleted, or was deleted and since compacted away.
  bool Delete(StableId stable) EXCLUDES(mu_);

  /// Grows the term space (snapshot num_terms / df table width) to at
  /// least `num_terms` — callers ingesting from a corpus sync this with
  /// the corpus vocabulary so stats match a static build even when tail
  /// vocabulary terms never occur in any document.
  void EnsureTermSpace(size_t num_terms) EXCLUDES(mu_);

  /// Seals any buffered writer documents into a segment.
  void Flush() EXCLUDES(mu_);

  /// Publishes all committed mutations: seals the writer (iff it holds
  /// documents — an idle Refresh appends nothing to the WAL and pays no
  /// fsync), rebuilds the current snapshot if anything changed, and
  /// returns it. Publication copies the RUNNING global-df vector
  /// (maintained incrementally at seal/delete/term-space time), so a
  /// rebuild is O(terms + segments), not O(segments × terms); the only
  /// remaining per-publish walk is the O(docs) local→dense remap for
  /// segments whose tombstones changed since their last publish
  /// (micro_bench's LiveRefresh kernel charts the flatness vs segment
  /// count).
  std::shared_ptr<const IndexSnapshot> Refresh() EXCLUDES(mu_, snapshot_mu_);

  /// The current published snapshot (cheap: one shared_ptr copy under the
  /// writer mutex; never null — an empty index has an empty snapshot).
  std::shared_ptr<const IndexSnapshot> Acquire() const EXCLUDES(snapshot_mu_);

  /// Synchronously merges ALL segments (and compacts every tombstone)
  /// into one; flushes first and waits for background merges. The classic
  /// force-merge used by tests and the merge bench.
  void ForceMerge() EXCLUDES(mu_);

  /// Blocks until no background merge is in flight.
  void WaitForMerges() EXCLUDES(mu_);

  /// Sealed segment count (diagnostics; excludes the writer).
  size_t num_segments() const EXCLUDES(mu_);
  /// Next stable id to be assigned (== total documents ever ingested).
  StableId next_stable_id() const EXCLUDES(mu_);

  /// Manifest serialization: header (term space, next stable id, segment
  /// count), then per segment its stable-id list (delta-coded), tombstone
  /// list and hardened InvertedIndex blob. Flushes the writer and drains
  /// merges first. Deserialize rejects hostile blobs — truncation,
  /// overlapping/unordered segment ranges, stable ids beyond the declared
  /// id space, stale tombstone bitmaps (out-of-range, duplicate or
  /// non-ascending local ids, counts exceeding the segment), segment blobs
  /// contradicting the manifest, and trailing bytes — with clean DataLoss
  /// statuses.
  std::string Serialize() EXCLUDES(mu_);
  static util::StatusOr<std::unique_ptr<LiveIndex>> Deserialize(
      const std::string& bytes, LiveIndexOptions options = LiveIndexOptions());

  // ------------------------------------------------------------ durability --
  // A durable LiveIndex writes every mutation through a write-ahead log
  // BEFORE applying it in memory, and periodically collapses the log into
  // a manifest generation (Checkpoint). See wal.h for the on-disk
  // protocol and docs/ARCHITECTURE.md for the recovery walk-through.

  /// What Recover() found on disk (diagnostics for tests and operators).
  struct RecoveryStats {
    /// The committed manifest generation recovery started from.
    uint64_t manifest_generation = 0;
    /// WAL records replayed on top of the manifest.
    uint64_t replayed_records = 0;
    /// True when bytes past the last valid WAL record were discarded.
    bool wal_tail_lost = false;
  };

  /// Opens (or creates) the durable index in `dir`: loads the CURRENT
  /// manifest generation, replays the WAL's longest valid record prefix,
  /// then checkpoints into a fresh generation so the recovered state is
  /// itself committed. A missing directory is a fresh index; a corrupt
  /// manifest or WAL HEADER is DataLoss (a torn WAL TAIL is normal crash
  /// debris and merely truncates the replay). `fs` is borrowed and must
  /// outlive the index.
  static util::StatusOr<std::unique_ptr<LiveIndex>> Recover(
      util::FileSystem* fs, const std::string& dir,
      LiveIndexOptions options = LiveIndexOptions(),
      RecoveryStats* stats = nullptr);

  /// Writes a manifest generation (tmp + fsync + rename), starts a fresh
  /// WAL, flips CURRENT, and deletes the previous generation's files.
  /// After OK, recovery no longer needs any pre-checkpoint WAL record.
  util::Status Checkpoint() EXCLUDES(mu_);

  /// Syncs buffered WAL appends (the kManual policy's durability point).
  util::Status SyncWal() EXCLUDES(mu_);

  /// True when this index was opened with Recover().
  bool durable() const EXCLUDES(mu_);
  /// False after a WAL/checkpoint I/O failure: the index refuses further
  /// mutations (queries still work) so memory can never run ahead of what
  /// recovery could reconstruct. wal_status() carries the current error
  /// (Ok again once Repair() succeeds; last_error() stays sticky).
  bool healthy() const EXCLUDES(mu_);
  util::Status wal_status() const EXCLUDES(mu_);

  // ----------------------------------------------------------- self-healing --
  // Health state machine, locked bit-parity with recovery semantics:
  //
  //             WAL append/sync or checkpoint I/O failure
  //     Healthy ─────────────────────────────────────────▶ Degraded
  //        ▲     reads: current snapshots       reads: LAST published
  //        │     mutations: applied                    snapshot (unchanged)
  //        │                                    mutations: kUnavailable
  //        └───────────────────────────────────────────────────┘
  //            Repair(): retry w/ backoff → fresh WAL generation,
  //            re-checkpoint, error cleared
  //
  // Degraded is exactly "wal_error_ is set". The WAL-first discipline makes
  // repair sound WITHOUT replay: a failed append was never applied, so at
  // every instant memory holds precisely the mutations whose appends
  // succeeded — the same state recovery would reconstruct from the log.
  // Repair therefore just re-checkpoints memory into generation+1 (fresh
  // manifest, fresh empty WAL, CURRENT flip), after which the on-disk image
  // and the in-memory image are bit-identical by the same argument the
  // Checkpoint/Recover round-trip tests lock down. Acked⊆durable stays
  // one-directional: an applied-but-never-acked kPerBatch mutation becoming
  // durable through the repair checkpoint is allowed (the caller saw a
  // failure and may retry; deletes are idempotent, re-ingest is the
  // caller's dedup problem exactly as with a crash between fsync and ack).

  /// Healthy = accepting mutations; Degraded = serving reads from the last
  /// published snapshot, refusing mutations with kUnavailable.
  enum class Health { kHealthy = 0, kDegraded = 1 };
  Health health() const EXCLUDES(mu_);

  /// The most recent WAL/checkpoint error ever recorded — STICKY: unlike
  /// wal_status(), a successful Repair() does not clear it, so operators
  /// and tests can see WHY the index degraded after it recovered. Ok iff
  /// the index never degraded.
  util::Status last_error() const EXCLUDES(mu_);

  /// Status-typed mutation surface for callers that need to distinguish
  /// "degraded, try later" (kUnavailable, message carries the recorded WAL
  /// error) from a plain no-op. Semantics otherwise identical to
  /// Ingest/Delete (same WAL-first logging, same group-commit ack).
  util::StatusOr<std::vector<StableId>> IngestChecked(
      const std::vector<std::vector<text::TermId>>& docs) EXCLUDES(mu_);
  /// kUnavailable when degraded; kNotFound when the id was never assigned,
  /// already deleted, or compacted away; Ok when the tombstone landed.
  util::Status DeleteChecked(StableId stable) EXCLUDES(mu_);

  /// Drives Degraded → Healthy: up to policy.max_attempts re-checkpoints
  /// (each rotating to a fresh WAL generation), sleeping the policy's
  /// deterministic backoff on `clock` (Clock::Real() by default; tests
  /// pass a ManualClock so repair is instant) between attempts. The writer
  /// mutex is RELEASED during each backoff sleep, so reads — which only
  /// touch snapshot_mu_ — keep serving throughout. Returns Ok once healthy
  /// (trivially, when already healthy), FailedPrecondition on an in-memory
  /// index, or the last commit error when every attempt failed (the index
  /// stays Degraded and Repair can be called again).
  util::Status Repair(const util::RetryPolicy& policy = util::RetryPolicy(),
                      util::Clock* clock = nullptr) EXCLUDES(mu_);
  /// Logical mutation clock: sequence number the NEXT logged mutation
  /// would carry == total mutations ever logged (0 for in-memory indexes).
  uint64_t wal_sequence() const EXCLUDES(mu_);
  /// Current manifest/WAL generation (0 for in-memory indexes).
  uint64_t wal_generation() const EXCLUDES(mu_);

 private:
  /// One sealed segment plus its mutable bookkeeping. `deleted` is
  /// copy-on-write: Delete() replaces the pointer with an augmented copy,
  /// so snapshots holding the old pointer are isolated. The two remap
  /// caches are derived from `deleted` and invalidated on every delete;
  /// per-term live df is no longer cached per entry — the index maintains
  /// one RUNNING global-df vector instead (see running_df_).
  struct Entry {
    std::shared_ptr<const Segment> segment;
    std::shared_ptr<const std::vector<char>> deleted;
    uint32_t num_deleted = 0;
    uint64_t deleted_tokens = 0;
    bool merging = false;
    std::shared_ptr<const std::vector<uint32_t>> deleted_before;
    std::shared_ptr<const std::vector<corpus::DocId>> live_locals;
  };
  /// Immutable inputs a merge captures under the lock.
  struct MergeInput {
    std::shared_ptr<const Segment> segment;
    std::shared_ptr<const std::vector<char>> deleted;
  };

  void FlushLocked() REQUIRES(mu_);
  /// Delete's post-logging body: tombstones the doc and maintains the
  /// running aggregates. Split out so Delete can ack durability (group
  /// commit) after releasing mu_.
  bool DeleteLocked(StableId stable) REQUIRES(mu_);
  /// Bumps the mutation clock; every state change under mu_ goes through
  /// here so snapshot publication can detect staleness.
  void MarkDirtyLocked() REQUIRES(mu_);
  /// Publishes a snapshot of the current state: captures a plan (cheap
  /// shared_ptr copies plus an O(terms) copy of the running df vector)
  /// under mu_, UNLOCKS for the remap-cache fills, relocks, and installs
  /// the result if no newer snapshot won the race (mu_ is held again when
  /// this returns — the analysis tracks the drop/retake through the
  /// body). Readers (Acquire) only ever contend on snapshot_mu_, held for
  /// a pointer swap.
  std::shared_ptr<const IndexSnapshot> PublishLocked()
      REQUIRES(mu_) EXCLUDES(snapshot_mu_);
  /// Fills e's derived remap caches (deleted_before / live_locals) from
  /// its segment and bitmap — pure function of immutable inputs, so
  /// callable with or without mu_ held.
  static void ComputeEntryCaches(Entry& e);
  void WaitForMergesLocked() REQUIRES(mu_);
  /// Scans for merge candidates (tombstone compactions first, then tiered
  /// runs) and either submits them to the pool or executes them inline
  /// (dropping the lock while building).
  void MaybeScheduleMergeLocked() REQUIRES(mu_);
  size_t TierOf(uint64_t live_docs) const;
  /// Builds the merged segment from immutable inputs (lock-free). Null
  /// when every input document is tombstoned.
  static std::shared_ptr<const Segment> BuildMerged(
      const std::vector<MergeInput>& inputs);
  /// Swaps `inputs` for `merged` in the entry list, re-applying deletes
  /// that landed during the build; rebuilds the snapshot and cascades the
  /// merge policy. Runs on merge-pool workers, so it takes mu_ itself.
  void CommitMerge(const std::vector<MergeInput>& inputs,
                   std::shared_ptr<const Segment> merged) EXCLUDES(mu_);

  /// Appends one WAL record for a mutation about to be applied. False =
  /// the mutation must NOT proceed (in-memory index: trivially true;
  /// unhealthy or failed I/O: false, tragic error recorded). WAL-first:
  /// nothing changes in memory until this returns. Does NOT sync — under
  /// kPerBatch the caller acks through AckDurableThrough after applying,
  /// so concurrent callers' syncs batch (group commit).
  bool LogMutationLocked(WalRecord&& record) REQUIRES(mu_);
  /// Syncs the WAL through the current append sequence if any appended
  /// record is not yet known durable, advancing wal_synced_seq_. On
  /// failure records wal_error_ (the index turns unhealthy).
  util::Status SyncWalLocked() REQUIRES(mu_);
  /// Group-commit ack point: true iff `ack_seq` is durable and the index
  /// healthy. A follower whose sequence a concurrent leader (or a
  /// checkpoint) already synced returns without touching the file; the
  /// first caller past the watermark becomes the leader and fsyncs once
  /// for everything appended so far.
  bool AckDurableThrough(uint64_t ack_seq) EXCLUDES(mu_);
  /// Folds a freshly sealed segment's postings into the running global-df
  /// and doc/token aggregates, bumping df_version_.
  void AddSegmentStatsLocked(const Segment& segment) REQUIRES(mu_);
  /// Serialization body shared by Serialize and Checkpoint; the writer
  /// must already be sealed and merges drained.
  std::string SerializeLocked() const REQUIRES(mu_);
  util::Status CheckpointLocked() REQUIRES(mu_);
  /// The checkpoint WORK (flush, drain merges, serialize, commit the next
  /// generation, sweep stale files) with NO health gate: unlike
  /// CheckpointLocked it neither consults nor records wal_error_, so the
  /// repair path can drive it while the index is Degraded. Callers own the
  /// health bookkeeping around it.
  util::Status RecommitLocked() REQUIRES(mu_);
  /// Records a WAL/checkpoint failure: sets the live error (degrading the
  /// index) and the sticky last_error_.
  void RecordWalErrorLocked(const util::Status& s) REQUIRES(mu_);
  /// The checkpoint commit sequence (manifest tmp+rename, fresh WAL,
  /// CURRENT flip). A named member rather than a lambda so the capability
  /// analysis can see it runs under mu_ (the analysis does not propagate
  /// held locks into lambda bodies).
  util::Status CommitGenerationLocked(uint64_t next_gen,
                                      const std::string& blob) REQUIRES(mu_);

  LiveIndexOptions options_;
  /// The writer mutex: every mutation serializes on it. Lock order: mu_
  /// strictly before snapshot_mu_ (PublishLocked); never the reverse.
  mutable util::Mutex mu_ ACQUIRED_BEFORE(snapshot_mu_);
  util::CondVar merges_done_{&mu_};
  size_t merges_in_flight_ GUARDED_BY(mu_) = 0;
  bool closing_ GUARDED_BY(mu_) = false;
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  SegmentWriter writer_ GUARDED_BY(mu_){0};
  size_t num_terms_ GUARDED_BY(mu_) = 0;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool dirty_ GUARDED_BY(mu_) = false;
  /// Bumped on every state change (MarkDirtyLocked); a snapshot plan
  /// captures its value to detect concurrent mutations and lose publish
  /// races to newer plans.
  uint64_t mutation_seq_ GUARDED_BY(mu_) = 1;
  uint64_t published_seq_ GUARDED_BY(mu_) = 0;
  /// Running live-collection aggregates, maintained incrementally: seal
  /// adds the sealed segment's stats, Delete subtracts the doc's (via the
  /// segment's doc→terms forward map), merge commits are df-neutral (the
  /// live doc set is identical across the swap). Invariant: equal to
  /// re-aggregating entries_ from scratch; IndexSnapshot::ComputeStats's
  /// per-term length cross-check validates it in every parity test.
  std::vector<uint32_t> running_df_ GUARDED_BY(mu_);
  uint64_t running_live_docs_ GUARDED_BY(mu_) = 0;
  uint64_t running_live_tokens_ GUARDED_BY(mu_) = 0;
  /// Bumped on every mutation that changes the published global df or
  /// collection stats (seal, delete, term-space growth, deserialize).
  /// Snapshots carry it so downstream caches can invalidate.
  uint64_t df_version_ GUARDED_BY(mu_) = 0;
  /// Guards ONLY current_, so Acquire never waits behind snapshot
  /// construction or merge commits. Lock order: mu_ before snapshot_mu_.
  mutable util::Mutex snapshot_mu_;
  std::shared_ptr<const IndexSnapshot> current_ GUARDED_BY(snapshot_mu_);

  // Durability state (fs_ == nullptr means in-memory only). All of it is
  // written under mu_ (Recover locks while attaching) and consulted by the
  // WAL-first mutation path, which already holds mu_.
  util::FileSystem* fs_ GUARDED_BY(mu_) = nullptr;
  std::string dir_ GUARDED_BY(mu_);
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(mu_);
  uint64_t wal_generation_ GUARDED_BY(mu_) = 0;
  uint64_t wal_seq_ GUARDED_BY(mu_) = 0;
  /// Group-commit watermark: sequences <= this are known crash-durable
  /// (covered by an fsync of the current WAL or by a committed manifest
  /// generation). kPerBatch acks compare against it to free-ride on a
  /// concurrent leader's sync.
  uint64_t wal_synced_seq_ GUARDED_BY(mu_) = 0;
  util::Status wal_error_ GUARDED_BY(mu_);
  /// Sticky copy of the last wal_error_ ever recorded; survives Repair().
  util::Status last_error_ GUARDED_BY(mu_);
};

/// Streams corpus documents [begin, end) into `live` in `batch_size`-doc
/// batches, publishing (Refresh) after every batch — the one ingest
/// discipline shared by the serving bench's writer thread, the mixed-phase
/// tests, the ingest microbenchmark and the experiment fixture.
void StreamCorpus(const corpus::Corpus& corpus, size_t begin, size_t end,
                  size_t batch_size, LiveIndex* live);

}  // namespace toppriv::index::live

#endif  // TOPPRIV_INDEX_LIVE_LIVE_INDEX_H_
