#include "index/live/live_index.h"

#include <algorithm>

#include "index/live/wal.h"
#include "util/check.h"
#include "util/filesystem.h"
#include "util/io.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace toppriv::index::live {

namespace {

/// Manifest-level sanity cap on the declared term space: the df table is
/// allocated at this width before any segment payload corroborates it, so
/// an unchecked count would let a few-byte blob demand gigabytes. (A LEGIT
/// term space can exceed the payload — EnsureTermSpace over an empty index
/// — hence a cap instead of the usual remaining()-derived bound.)
constexpr uint64_t kMaxManifestTerms = uint64_t{1} << 24;

/// Serialize leads with this format tag. Tags live ABOVE the u32 range so
/// a tagged blob is unmistakable from the legacy (PR 5) layout, whose
/// first varint is a num_terms capped far below 2^32 — the same
/// discrimination trick the posting-list block format uses. Low 32 bits
/// carry the version.
constexpr uint64_t kLiveManifestTag = (uint64_t{1} << 32) | 1;

}  // namespace

// ------------------------------------------------------------- snapshot --

size_t IndexSnapshot::SegmentOf(corpus::DocId dense) const {
  TOPPRIV_CHECK_LT(dense, num_documents_);
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), dense,
      [](corpus::DocId d, const SnapshotSegment& s) { return d < s.dense_base; });
  TOPPRIV_CHECK(it != segments_.begin());
  return static_cast<size_t>(it - segments_.begin()) - 1;
}

uint32_t IndexSnapshot::DocLength(corpus::DocId dense) const {
  const SnapshotSegment& ss = segments_[SegmentOf(dense)];
  return ss.segment->index().DocLength(ss.LocalId(dense - ss.dense_base));
}

StableId IndexSnapshot::ToStableId(corpus::DocId dense) const {
  const SnapshotSegment& ss = segments_[SegmentOf(dense)];
  return ss.segment->stable_ids()[ss.LocalId(dense - ss.dense_base)];
}

IndexStats IndexSnapshot::ComputeStats() const {
  IndexStats stats;
  stats.num_terms = num_terms_;
  stats.num_documents = num_documents_;
  for (size_t t = 0; t < num_terms_; ++t) {
    // Walk the term's live postings segment by segment in dense order and
    // price them as ONE delta-encoded list (first posting absolute, every
    // later one a delta from its predecessor, across segment boundaries
    // and tombstone holes alike) — byte-for-byte the encoding a static
    // build of the live collection would produce, so the §II PIR
    // arithmetic is ingest-schedule-invariant.
    uint32_t length = 0;
    uint64_t encoded = 0;
    uint64_t prev = 0;
    bool first = true;
    for (const SnapshotSegment& ss : segments_) {
      const PostingList& list =
          ss.segment->index().Postings(static_cast<text::TermId>(t));
      const std::vector<char>* del = ss.deleted.get();
      for (auto it = list.begin(); it.Valid(); it.Next()) {
        const Posting& p = it.Get();
        if (del != nullptr && (*del)[p.doc]) continue;
        const uint64_t dense = ss.DenseId(p.doc);
        encoded += util::VarintSize(first ? dense : dense - prev) +
                   util::VarintSize(p.tf);
        prev = dense;
        first = false;
        ++length;
      }
    }
    TOPPRIV_DCHECK(length == global_df_[t]);
    stats.total_postings += length;
    stats.max_list_length = std::max(stats.max_list_length, length);
    stats.encoded_bytes += encoded;
  }
  if (stats.num_terms > 0) {
    stats.avg_list_length = static_cast<double>(stats.total_postings) /
                            static_cast<double>(stats.num_terms);
  }
  stats.pir_padded_bytes = static_cast<uint64_t>(stats.num_terms) *
                           static_cast<uint64_t>(stats.max_list_length) * 8ull;
  return stats;
}

// ------------------------------------------------------------ live index --

LiveIndex::LiveIndex(LiveIndexOptions options) : options_(options) {
  if (options_.max_writer_docs == 0) options_.max_writer_docs = 1;
  if (options_.merge_factor < 2) options_.merge_factor = 2;
  util::MutexLock lock(&mu_);
  PublishLocked();  // the empty snapshot, so Acquire is never null
}

LiveIndex::~LiveIndex() {
  util::MutexLock lock(&mu_);
  closing_ = true;
  WaitForMergesLocked();
}

std::vector<StableId> LiveIndex::Ingest(
    const std::vector<std::vector<text::TermId>>& docs) {
  TOPPRIV_TRACE_SPAN(ingest_span, "live.ingest");
  TOPPRIV_SCOPED_TIMER_US("live.ingest_us");
  TOPPRIV_COUNTER_ADD("live.ingest_docs", docs.size());
  uint64_t ack_seq = 0;
  bool need_ack = false;
  std::vector<StableId> ids;
  {
    util::MutexLock lock(&mu_);
    if (fs_ != nullptr) {
      // WAL-first: the batch is logged before a single document lands in
      // the writer, so recovery can never be behind what this call
      // acknowledges. Under kPerBatch the fsync happens AFTER the apply,
      // via the group-commit ack below — the memory apply order always
      // matches the WAL sequence order because both happen in this one
      // critical section.
      WalRecord record;
      record.type = WalRecordType::kIngest;
      record.docs = docs;
      if (!LogMutationLocked(std::move(record))) return {};
      ack_seq = wal_seq_;
      need_ack = options_.durability == DurabilityPolicy::kPerBatch;
    }
    ids.reserve(docs.size());
    for (const std::vector<text::TermId>& tokens : docs) {
      ids.push_back(writer_.Add(tokens));
      if (writer_.num_docs() >= options_.max_writer_docs) FlushLocked();
    }
    num_terms_ = std::max(num_terms_, writer_.num_terms());
    MarkDirtyLocked();
  }
  if (need_ack && !AckDurableThrough(ack_seq)) return {};
  return ids;
}

bool LiveIndex::Delete(StableId stable) {
  uint64_t ack_seq = 0;
  bool need_ack = false;
  bool applied = false;
  {
    util::MutexLock lock(&mu_);
    if (fs_ != nullptr) {
      // Logged even when it will turn out to be a no-op (unknown id,
      // already deleted): replay re-runs the same deterministic checks,
      // and logging first keeps the one-call-one-sequence-number mapping
      // exact.
      WalRecord record;
      record.type = WalRecordType::kDelete;
      record.stable = stable;
      if (!LogMutationLocked(std::move(record))) return false;
      ack_seq = wal_seq_;
      need_ack = options_.durability == DurabilityPolicy::kPerBatch;
    }
    applied = DeleteLocked(stable);
  }
  if (need_ack && !AckDurableThrough(ack_seq)) return false;
  return applied;
}

bool LiveIndex::DeleteLocked(StableId stable) {
  if (stable >= writer_.next_stable()) return false;
  if (!writer_.empty() && stable >= writer_.stable_begin()) {
    // The doc is still buffered; seal so the tombstone has a segment.
    FlushLocked();
  }
  if (entries_.empty()) return false;
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), stable,
      [](StableId s, const Entry& e) { return s < e.segment->stable_begin(); });
  if (it == entries_.begin()) return false;
  Entry& e = *(it - 1);
  corpus::DocId local = 0;
  if (!e.segment->FindLocal(stable, &local)) return false;
  if (e.deleted != nullptr && (*e.deleted)[local]) return false;
  // Copy-on-write: snapshots pin the old bitmap, so never mutate it.
  auto bitmap =
      e.deleted == nullptr
          ? std::make_shared<std::vector<char>>(e.segment->num_docs(), 0)
          : std::make_shared<std::vector<char>>(*e.deleted);
  (*bitmap)[local] = 1;
  e.deleted = std::move(bitmap);
  ++e.num_deleted;
  e.deleted_tokens += e.segment->index().DocLength(local);
  e.deleted_before.reset();
  e.live_locals.reset();
  // Incremental global-df: the segment's forward map lists the doc's
  // distinct terms, so the decrement is O(|doc terms|).
  for (const text::TermId* p = e.segment->DocTermsBegin(local);
       p != e.segment->DocTermsEnd(local); ++p) {
    --running_df_[*p];
  }
  --running_live_docs_;
  running_live_tokens_ -= e.segment->index().DocLength(local);
  ++df_version_;
  MarkDirtyLocked();
  MaybeScheduleMergeLocked();
  return true;
}

void LiveIndex::EnsureTermSpace(size_t num_terms) {
  uint64_t ack_seq = 0;
  bool need_ack = false;
  {
    util::MutexLock lock(&mu_);
    if (fs_ != nullptr) {
      WalRecord record;
      record.type = WalRecordType::kTermSpace;
      record.num_terms = num_terms;
      if (!LogMutationLocked(std::move(record))) return;
      ack_seq = wal_seq_;
      need_ack = options_.durability == DurabilityPolicy::kPerBatch;
    }
    if (num_terms > num_terms_) {
      num_terms_ = num_terms;
      running_df_.resize(num_terms_, 0);
      ++df_version_;  // the published df table widens
      MarkDirtyLocked();
    }
  }
  if (need_ack) AckDurableThrough(ack_seq);
}

void LiveIndex::Flush() {
  util::MutexLock lock(&mu_);
  // An empty writer means there is nothing to seal: appending a kSeal
  // record anyway (the pre-fix behavior) grew the WAL without bound under
  // an idle flush/refresh loop and paid an fsync per call under kPerBatch.
  if (writer_.empty()) return;
  // Seal records are best-effort: a seal changes only the physical
  // segmentation, never the logical collection, so an unhealthy WAL must
  // not strand acknowledged (already-logged) writer docs un-queryable.
  if (fs_ != nullptr) {
    WalRecord record;
    record.type = WalRecordType::kSeal;
    LogMutationLocked(std::move(record));
  }
  FlushLocked();
  if (fs_ != nullptr && options_.durability == DurabilityPolicy::kPerBatch) {
    SyncWalLocked();  // best-effort, like the seal append itself
  }
}

std::shared_ptr<const IndexSnapshot> LiveIndex::Refresh() {
  TOPPRIV_TRACE_SPAN(refresh_span, "live.refresh");
  TOPPRIV_SCOPED_TIMER_US("live.refresh_us");
  TOPPRIV_COUNTER_INC("live.refreshes");
  util::MutexLock lock(&mu_);
  if (fs_ != nullptr && !writer_.empty()) {
    // Only a non-empty writer seals; an idle Refresh leaves the WAL
    // byte-for-byte unchanged (the headline bugfix).
    WalRecord record;
    record.type = WalRecordType::kSeal;
    LogMutationLocked(std::move(record));  // best-effort, as in Flush()
  }
  FlushLocked();
  if (fs_ != nullptr && wal_error_.ok() &&
      options_.durability != DurabilityPolicy::kManual &&
      wal_synced_seq_ < wal_seq_) {
    // The published snapshot must never show state a crash could lose.
    // The synced-sequence watermark makes this a no-op when every append
    // (including in-flight group-committed writers') is already durable.
    SyncWalLocked();
  }
  if (dirty_) return PublishLocked();
  util::MutexLock snap_lock(&snapshot_mu_);
  return current_;
}

std::shared_ptr<const IndexSnapshot> LiveIndex::Acquire() const {
  util::MutexLock lock(&snapshot_mu_);
  return current_;
}

void LiveIndex::ForceMerge() {
  // Explicit Lock/Unlock instead of a scoped MutexLock: the build phase
  // runs with the mutex dropped, and CommitMerge retakes it internally.
  mu_.Lock();
  FlushLocked();
  WaitForMergesLocked();
  bool needed = entries_.size() > 1;
  for (const Entry& e : entries_) needed = needed || e.num_deleted > 0;
  if (!needed) {
    if (dirty_) PublishLocked();
    mu_.Unlock();
    return;
  }
  std::vector<MergeInput> inputs;
  inputs.reserve(entries_.size());
  for (Entry& e : entries_) {
    e.merging = true;
    inputs.push_back(MergeInput{e.segment, e.deleted});
  }
  ++merges_in_flight_;
  mu_.Unlock();
  std::shared_ptr<const Segment> merged = BuildMerged(inputs);
  CommitMerge(inputs, std::move(merged));
  mu_.Lock();
  if (dirty_) PublishLocked();
  mu_.Unlock();
}

void LiveIndex::WaitForMerges() {
  util::MutexLock lock(&mu_);
  WaitForMergesLocked();
}

size_t LiveIndex::num_segments() const {
  util::MutexLock lock(&mu_);
  return entries_.size();
}

StableId LiveIndex::next_stable_id() const {
  util::MutexLock lock(&mu_);
  return writer_.next_stable();
}

void LiveIndex::FlushLocked() {
  if (writer_.empty()) return;
  num_terms_ = std::max(num_terms_, writer_.num_terms());
  Entry e;
  e.segment = writer_.Seal();
  AddSegmentStatsLocked(*e.segment);
  entries_.push_back(std::move(e));
  MarkDirtyLocked();
  MaybeScheduleMergeLocked();
}

void LiveIndex::AddSegmentStatsLocked(const Segment& segment) {
  if (running_df_.size() < num_terms_) running_df_.resize(num_terms_, 0);
  const InvertedIndex& idx = segment.index();
  for (size_t t = 0; t < idx.num_terms(); ++t) {
    running_df_[t] += idx.DocFreq(static_cast<text::TermId>(t));
  }
  running_live_docs_ += idx.num_documents();
  running_live_tokens_ += idx.total_tokens();
  ++df_version_;
}

void LiveIndex::MarkDirtyLocked() {
  dirty_ = true;
  ++mutation_seq_;
}

void LiveIndex::ComputeEntryCaches(Entry& e) {
  if (e.deleted_before != nullptr) return;  // caches match the current bitmap
  const InvertedIndex& idx = e.segment->index();
  const std::vector<char>& del = *e.deleted;
  const size_t docs = idx.num_documents();
  auto before = std::make_shared<std::vector<uint32_t>>(docs, 0);
  auto locals = std::make_shared<std::vector<corpus::DocId>>();
  locals->reserve(docs - e.num_deleted);
  uint32_t seen = 0;
  for (size_t l = 0; l < docs; ++l) {
    (*before)[l] = seen;
    if (del[l]) {
      ++seen;
    } else {
      locals->push_back(static_cast<corpus::DocId>(l));
    }
  }
  e.deleted_before = std::move(before);
  e.live_locals = std::move(locals);
}

std::shared_ptr<const IndexSnapshot> LiveIndex::PublishLocked() {
  // Capture a consistent cut under mu_: shared_ptr copies of every entry,
  // the mutation clock, and an O(terms) copy of the RUNNING global-df and
  // collection aggregates (maintained incrementally at seal/delete/
  // term-space time — publication no longer re-walks any posting list).
  // The remaining remap-cache fills run with NO lock held — all inputs are
  // immutable objects the plan pins — so concurrent Acquire/Ingest/Delete
  // never stall behind them.
  const uint64_t plan_seq = mutation_seq_;
  const size_t plan_terms = num_terms_;
  const uint64_t plan_df_version = df_version_;
  const uint64_t plan_docs = running_live_docs_;
  const uint64_t plan_tokens = running_live_tokens_;
  std::vector<uint32_t> plan_df(running_df_);
  std::vector<Entry> plan(entries_);
  mu_.Unlock();

  for (Entry& e : plan) {
    if (e.num_deleted > 0) ComputeEntryCaches(e);
  }
  auto snap = std::make_shared<IndexSnapshot>();
  snap->num_terms_ = plan_terms;
  snap->global_df_ = std::move(plan_df);
  snap->global_df_.resize(plan_terms, 0);
  snap->df_version_ = plan_df_version;
  corpus::DocId base = 0;
  for (const Entry& e : plan) {
    const InvertedIndex& idx = e.segment->index();
    const uint32_t live =
        static_cast<uint32_t>(idx.num_documents()) - e.num_deleted;
    if (live == 0) continue;  // fully tombstoned; compaction will drop it
    SnapshotSegment ss;
    ss.segment = e.segment;
    ss.dense_base = base;
    ss.live_docs = live;
    if (e.num_deleted > 0) {
      ss.deleted = e.deleted;
      ss.deleted_before = e.deleted_before;
      ss.live_locals = e.live_locals;
    }
    base += live;
    snap->segments_.push_back(std::move(ss));
  }
  // One compare per publish: cheap insurance that the incremental doc
  // count still matches the entry walk.
  TOPPRIV_CHECK(static_cast<uint64_t>(base) == plan_docs);
  snap->num_documents_ = base;
  snap->total_tokens_ = plan_tokens;
  // The same double division Build performs, so avg bits match a static
  // rebuild of the live collection exactly.
  snap->avg_doc_length_ = base == 0 ? 0.0
                                    : static_cast<double>(plan_tokens) /
                                          static_cast<double>(base);

  mu_.Lock();
  // Donate freshly computed remap caches back to entries still keyed by
  // the same (segment, bitmap) identity, so later publishes and deletes
  // reuse instead of recompute. An entry whose bitmap moved on gets
  // nothing — its caches would be stale.
  for (Entry& live_entry : entries_) {
    if (live_entry.num_deleted == 0 || live_entry.deleted_before != nullptr) {
      continue;
    }
    for (const Entry& p : plan) {
      if (p.segment == live_entry.segment && p.deleted == live_entry.deleted) {
        live_entry.deleted_before = p.deleted_before;
        live_entry.live_locals = p.live_locals;
        break;
      }
    }
  }
  if (mutation_seq_ == plan_seq) dirty_ = false;
  if (published_seq_ < plan_seq) {
    published_seq_ = plan_seq;
    snap->generation_ = ++generation_;
    std::shared_ptr<const IndexSnapshot> published = std::move(snap);
    {
      util::MutexLock snap_lock(&snapshot_mu_);
      current_ = published;
    }
    return published;
  }
  // A concurrent publisher built from a NEWER cut and already installed
  // its snapshot; installing ours would move readers backwards.
  util::MutexLock snap_lock(&snapshot_mu_);
  return current_;
}

void LiveIndex::WaitForMergesLocked() {
  while (merges_in_flight_ != 0) merges_done_.Wait();
}

size_t LiveIndex::TierOf(uint64_t live_docs) const {
  size_t tier = 0;
  uint64_t cap = options_.max_writer_docs;
  while (live_docs >= cap && tier < 48) {
    ++tier;
    cap *= options_.merge_factor;
  }
  return tier;
}

void LiveIndex::MaybeScheduleMergeLocked() {
  if (closing_) return;
  // Bounded re-scan loop: every iteration either schedules a disjoint
  // candidate (pool mode), fully executes one (inline mode, where the
  // entry list may have changed while the lock was dropped), or returns.
  for (int safety = 0; safety < 64; ++safety) {
    size_t start = 0;
    size_t count = 0;
    // Tombstone compaction first: rewriting a half-dead segment both frees
    // memory and keeps snapshot remap tables small.
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.merging || e.num_deleted == 0) continue;
      if (static_cast<double>(e.num_deleted) >=
          options_.compact_deleted_ratio *
              static_cast<double>(e.segment->num_docs())) {
        start = i;
        count = 1;
        break;
      }
    }
    // Tiered policy: merge_factor ADJACENT segments in the same live-doc
    // tier collapse into one (adjacency keeps stable order, so the merged
    // segment slots into the same place in the dense id space).
    if (count == 0) {
      size_t run_start = 0;
      size_t run_len = 0;
      size_t run_tier = 0;
      for (size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        if (e.merging) {
          run_len = 0;
          continue;
        }
        const size_t tier =
            TierOf(e.segment->num_docs() - e.num_deleted);
        if (run_len == 0 || tier != run_tier) {
          run_start = i;
          run_tier = tier;
          run_len = 1;
        } else {
          ++run_len;
        }
        if (run_len >= options_.merge_factor) {
          start = run_start;
          count = run_len;
          break;
        }
      }
    }
    if (count == 0) return;

    std::vector<MergeInput> inputs;
    inputs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      Entry& e = entries_[start + i];
      e.merging = true;
      inputs.push_back(MergeInput{e.segment, e.deleted});
    }
    ++merges_in_flight_;
    if (options_.merge_pool != nullptr) {
      options_.merge_pool->Submit([this, inputs = std::move(inputs)] {
        std::shared_ptr<const Segment> merged = BuildMerged(inputs);
        CommitMerge(inputs, std::move(merged));
      });
      continue;  // look for further disjoint candidates
    }
    mu_.Unlock();
    std::shared_ptr<const Segment> merged = BuildMerged(inputs);
    CommitMerge(inputs, std::move(merged));
    mu_.Lock();
  }
}

std::shared_ptr<const Segment> LiveIndex::BuildMerged(
    const std::vector<MergeInput>& inputs) {
  TOPPRIV_TRACE_SPAN(merge_span, "live.merge");
  TOPPRIV_SCOPED_TIMER_US("live.merge_us");
  TOPPRIV_HISTOGRAM_OBSERVE("live.merge_inputs", inputs.size(),
                            util::CountBuckets());
  size_t num_terms = 0;
  size_t total_live = 0;
  for (const MergeInput& in : inputs) {
    num_terms = std::max(num_terms, in.segment->num_terms());
    size_t deleted = 0;
    if (in.deleted != nullptr) {
      for (char d : *in.deleted) deleted += d != 0;
    }
    total_live += in.segment->num_docs() - deleted;
  }
  if (total_live == 0) return nullptr;  // every input doc tombstoned

  // Survivor renumbering: merged-local = input base + local − #deleted
  // before it — dense in stable order, the same ids BuildRange would
  // assign the surviving documents.
  std::vector<std::vector<uint32_t>> shift(inputs.size());
  std::vector<corpus::DocId> bases(inputs.size());
  std::vector<uint32_t> doc_lengths;
  std::vector<StableId> stable_ids;
  doc_lengths.reserve(total_live);
  stable_ids.reserve(total_live);
  corpus::DocId base = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Segment& seg = *inputs[i].segment;
    const std::vector<char>* del = inputs[i].deleted.get();
    bases[i] = base;
    shift[i].assign(seg.num_docs(), 0);
    uint32_t seen = 0;
    for (size_t l = 0; l < seg.num_docs(); ++l) {
      shift[i][l] = seen;
      if (del != nullptr && (*del)[l]) {
        ++seen;
        continue;
      }
      doc_lengths.push_back(
          seg.index().DocLength(static_cast<corpus::DocId>(l)));
      stable_ids.push_back(seg.stable_ids()[l]);
    }
    base += static_cast<corpus::DocId>(seg.num_docs() - seen);
  }

  // Term-major rebuild: surviving postings re-Append in ascending merged
  // doc order, producing lists byte-identical to a fresh BuildRange over
  // the survivors.
  std::vector<PostingList::Builder> builders(num_terms);
  for (size_t t = 0; t < num_terms; ++t) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      const PostingList& list =
          inputs[i].segment->index().Postings(static_cast<text::TermId>(t));
      const std::vector<char>* del = inputs[i].deleted.get();
      for (auto it = list.begin(); it.Valid(); it.Next()) {
        const Posting& p = it.Get();
        if (del != nullptr && (*del)[p.doc]) continue;
        builders[t].Append(bases[i] + (p.doc - shift[i][p.doc]), p.tf);
      }
    }
  }
  std::vector<PostingList> lists;
  lists.reserve(num_terms);
  for (PostingList::Builder& b : builders) lists.push_back(b.Build());
  return std::make_shared<Segment>(
      InvertedIndex::FromParts(std::move(lists), std::move(doc_lengths)),
      inputs.front().segment->stable_begin(), std::move(stable_ids));
}

void LiveIndex::CommitMerge(const std::vector<MergeInput>& inputs,
                            std::shared_ptr<const Segment> merged) {
  util::MutexLock lock(&mu_);
  // Locate the input run by identity. It is still contiguous: other
  // merges skip `merging` entries, ingest only appends, deletes only swap
  // bitmap pointers in place.
  size_t start = 0;
  while (start < entries_.size() &&
         entries_[start].segment != inputs[0].segment) {
    ++start;
  }
  TOPPRIV_CHECK_LT(start, entries_.size());
  const size_t count = inputs.size();

  // Deletes that landed while the merge was building: bitmaps only gain
  // bits, so the diff against the captured bitmap is exactly the late
  // tombstones. Re-mark them on the merged segment via their stable ids.
  std::shared_ptr<std::vector<char>> late;
  uint32_t late_count = 0;
  uint64_t late_tokens = 0;
  for (size_t i = 0; i < count; ++i) {
    const Entry& e = entries_[start + i];
    TOPPRIV_CHECK(e.segment == inputs[i].segment);
    if (e.deleted == inputs[i].deleted) continue;
    const std::vector<char>& now = *e.deleted;
    const std::vector<char>* then = inputs[i].deleted.get();
    for (size_t l = 0; l < now.size(); ++l) {
      if (!now[l] || (then != nullptr && (*then)[l])) continue;
      TOPPRIV_CHECK(merged != nullptr);  // a live doc existed to delete
      corpus::DocId ml = 0;
      TOPPRIV_CHECK(merged->FindLocal(e.segment->stable_ids()[l], &ml));
      if (late == nullptr) {
        late = std::make_shared<std::vector<char>>(merged->num_docs(), 0);
      }
      (*late)[ml] = 1;
      ++late_count;
      late_tokens += merged->index().DocLength(ml);
    }
  }

  if (merged != nullptr) {
    Entry replacement;
    replacement.segment = std::move(merged);
    replacement.deleted = std::move(late);
    replacement.num_deleted = late_count;
    replacement.deleted_tokens = late_tokens;
    entries_[start] = std::move(replacement);
    entries_.erase(entries_.begin() + start + 1,
                   entries_.begin() + start + count);
  } else {
    entries_.erase(entries_.begin() + start, entries_.begin() + start + count);
  }
  MarkDirtyLocked();
  // Publish the compaction to new Acquires. PublishLocked drops mu_ for
  // the aggregation; the surgery above already completed under one hold,
  // and merges_in_flight_ stays elevated until after the publish, so
  // WaitForMerges callers still observe fully committed state.
  PublishLocked();
  --merges_in_flight_;
  merges_done_.SignalAll();
  if (!closing_) MaybeScheduleMergeLocked();  // cascade up the tiers
}

// -------------------------------------------------------- serialization --

std::string LiveIndex::Serialize() {
  util::MutexLock lock(&mu_);
  if (fs_ != nullptr && !writer_.empty()) {
    WalRecord record;
    record.type = WalRecordType::kSeal;
    LogMutationLocked(std::move(record));  // best-effort, as in Flush()
  }
  FlushLocked();
  WaitForMergesLocked();
  return SerializeLocked();
}

std::string LiveIndex::SerializeLocked() const {
  TOPPRIV_DCHECK(writer_.empty());
  util::BinaryWriter w;
  w.WriteVarint(kLiveManifestTag);
  w.WriteVarint(num_terms_);
  w.WriteVarint(writer_.next_stable());
  w.WriteVarint(entries_.size());
  for (const Entry& e : entries_) {
    const Segment& seg = *e.segment;
    w.WriteVarint(seg.stable_begin());
    w.WriteVarint(seg.num_docs());
    // Stable ids delta-coded against the segment's range begin; strictly
    // ascending, so every delta after the first is >= 1.
    StableId prev = seg.stable_begin();
    for (StableId sid : seg.stable_ids()) {
      w.WriteVarint(sid - prev);
      prev = sid;
    }
    w.WriteVarint(e.num_deleted);
    if (e.num_deleted > 0) {
      uint64_t prev_local = 0;
      bool first = true;
      for (size_t l = 0; l < e.deleted->size(); ++l) {
        if (!(*e.deleted)[l]) continue;
        w.WriteVarint(first ? l : l - prev_local);
        prev_local = l;
        first = false;
      }
    }
    w.WriteString(seg.index().Serialize());
  }
  return w.data();
}

util::StatusOr<std::unique_ptr<LiveIndex>> LiveIndex::Deserialize(
    const std::string& bytes, LiveIndexOptions options) {
  util::BinaryReader r(bytes);
  uint64_t num_terms = 0, next_stable = 0, num_segments = 0;
  // Format discrimination: a tagged blob leads with a varint above the u32
  // range; a legacy (PR 5, pre-tag) blob leads with num_terms, capped at
  // kMaxManifestTerms — far below 2^32 — so the two can never collide.
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_terms));
  if (num_terms > UINT32_MAX) {
    if (num_terms != kLiveManifestTag) {
      return util::Status::DataLoss(
          "live manifest format version not understood");
    }
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_terms));
  }
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&next_stable));
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_segments));
  if (num_terms > kMaxManifestTerms) {
    return util::Status::DataLoss("live manifest term space implausibly large");
  }
  // Every segment costs at least four bytes (range begin, doc count, one
  // stable delta, tombstone count) before its length-prefixed blob.
  if (num_segments > r.remaining() / 4) {
    return util::Status::DataLoss("segment count exceeds payload");
  }

  auto live = std::make_unique<LiveIndex>(options);
  // `live` is private to this call, but its members are guarded by its
  // mutex; hold it (uncontended) for the fill so the capability analysis
  // can verify the accesses, and for the MarkDirty/Publish at the end.
  util::MutexLock lock(&live->mu_);
  live->num_terms_ = num_terms;
  StableId prev_end = 0;
  for (uint64_t s = 0; s < num_segments; ++s) {
    uint64_t begin = 0, ndocs = 0;
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&begin));
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&ndocs));
    if (ndocs == 0) {
      return util::Status::DataLoss("live segment declares zero documents");
    }
    if (ndocs > r.remaining()) {
      return util::Status::DataLoss("segment doc count exceeds payload");
    }
    if (begin < prev_end) {
      return util::Status::DataLoss(
          "segment stable ranges overlap or are out of order");
    }
    std::vector<StableId> stable_ids;
    stable_ids.reserve(ndocs);
    StableId prev = begin;
    for (uint64_t i = 0; i < ndocs; ++i) {
      uint64_t delta = 0;
      TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&delta));
      if (i > 0 && delta == 0) {
        return util::Status::DataLoss("segment stable ids not ascending");
      }
      const StableId sid = prev + delta;
      if (sid < prev || sid >= next_stable) {
        return util::Status::DataLoss(
            "segment stable id beyond the declared id space");
      }
      stable_ids.push_back(sid);
      prev = sid;
    }
    prev_end = stable_ids.back() + 1;

    uint64_t num_deleted = 0;
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_deleted));
    if (num_deleted > ndocs) {
      return util::Status::DataLoss(
          "stale tombstone bitmap: more deletes than documents");
    }
    std::shared_ptr<std::vector<char>> bitmap;
    if (num_deleted > 0) {
      bitmap = std::make_shared<std::vector<char>>(ndocs, 0);
      uint64_t prev_local = 0;
      for (uint64_t i = 0; i < num_deleted; ++i) {
        uint64_t delta = 0;
        TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&delta));
        if (i > 0 && delta == 0) {
          return util::Status::DataLoss(
              "stale tombstone bitmap: duplicate or unordered local ids");
        }
        const uint64_t local = i == 0 ? delta : prev_local + delta;
        if (local >= ndocs) {
          return util::Status::DataLoss(
              "stale tombstone bitmap: local id out of segment range");
        }
        (*bitmap)[local] = 1;
        prev_local = local;
      }
    }

    std::string blob;
    TOPPRIV_RETURN_IF_ERROR(r.ReadString(&blob));
    auto index = InvertedIndex::Deserialize(blob);
    if (!index.ok()) return index.status();
    if (index->num_documents() != ndocs) {
      return util::Status::DataLoss(
          "segment payload does not match its manifest doc count");
    }
    if (index->num_terms() > num_terms) {
      return util::Status::DataLoss("segment term space exceeds manifest");
    }

    Entry e;
    uint64_t deleted_tokens = 0;
    if (bitmap != nullptr) {
      for (size_t l = 0; l < bitmap->size(); ++l) {
        if ((*bitmap)[l]) {
          deleted_tokens +=
              index->DocLength(static_cast<corpus::DocId>(l));
        }
      }
    }
    e.segment = std::make_shared<Segment>(std::move(index).value(), begin,
                                          std::move(stable_ids));
    e.deleted = std::move(bitmap);
    e.num_deleted = static_cast<uint32_t>(num_deleted);
    e.deleted_tokens = deleted_tokens;
    live->entries_.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    return util::Status::DataLoss("trailing bytes after live index");
  }
  live->writer_ = SegmentWriter(next_stable);
  // Rebuild the running aggregates from the restored segments — the one
  // place they are recomputed rather than maintained incrementally. Each
  // segment contributes its full df; tombstoned docs subtract theirs via
  // the forward map, so the cost is O(postings + deleted doc terms).
  live->running_df_.assign(num_terms, 0);
  live->running_live_docs_ = 0;
  live->running_live_tokens_ = 0;
  for (const Entry& e : live->entries_) {
    const InvertedIndex& idx = e.segment->index();
    for (size_t t = 0; t < idx.num_terms(); ++t) {
      live->running_df_[t] += idx.DocFreq(static_cast<text::TermId>(t));
    }
    live->running_live_docs_ += idx.num_documents() - e.num_deleted;
    live->running_live_tokens_ += idx.total_tokens() - e.deleted_tokens;
    if (e.deleted == nullptr) continue;
    for (size_t l = 0; l < e.deleted->size(); ++l) {
      if (!(*e.deleted)[l]) continue;
      const corpus::DocId local = static_cast<corpus::DocId>(l);
      for (const text::TermId* p = e.segment->DocTermsBegin(local);
           p != e.segment->DocTermsEnd(local); ++p) {
        --live->running_df_[*p];
      }
    }
  }
  ++live->df_version_;
  live->MarkDirtyLocked();
  live->PublishLocked();
  return live;
}

// ------------------------------------------------------------ durability --

void LiveIndex::RecordWalErrorLocked(const util::Status& s) {
  // Count the Healthy -> Degraded EDGE, not every refused mutation that
  // re-latches the same error.
  if (wal_error_.ok()) {
    TOPPRIV_COUNTER_INC("live.health.degraded_transitions");
  }
  wal_error_ = s;
  last_error_ = s;
}

bool LiveIndex::LogMutationLocked(WalRecord&& record) {
  if (fs_ == nullptr) return true;
  if (!wal_error_.ok()) return false;
  util::Status s = wal_->Append(&record);
  if (!s.ok()) {
    // The degrading event: the log can no longer promise to be ahead of
    // memory, so mutations are refused (queries still serve) until
    // Repair() re-checkpoints into a fresh generation.
    RecordWalErrorLocked(s);
    return false;
  }
  wal_seq_ = wal_->next_seq();
  TOPPRIV_COUNTER_INC("live.wal.appends");
  return true;
}

util::Status LiveIndex::SyncWalLocked() {
  if (!wal_error_.ok()) return wal_error_;
  if (wal_synced_seq_ >= wal_seq_) return util::Status::Ok();
  const uint64_t batch = wal_seq_ - wal_synced_seq_;
  (void)batch;  // recorded below; the macro vanishes under TOPPRIV_METRICS=OFF
  util::Status s = wal_->Sync();
  if (!s.ok()) {
    RecordWalErrorLocked(s);
    return s;
  }
  // Everything appended so far (wal_seq_ cannot move while mu_ is held)
  // is now durable — concurrent group-commit followers free-ride on this.
  wal_synced_seq_ = wal_seq_;
  TOPPRIV_COUNTER_INC("live.wal.fsyncs");
  TOPPRIV_HISTOGRAM_OBSERVE("live.wal.group_commit_batch", batch,
                            util::CountBuckets());
  return s;
}

bool LiveIndex::AckDurableThrough(uint64_t ack_seq) {
  util::MutexLock lock(&mu_);
  // Watermark BEFORE the error latch: a record a successful group-commit
  // sync already covered is durable no matter what broke afterwards, and
  // refusing it would be a false negative — the power cut would then
  // PRESERVE a write its caller was told failed. The latch only refuses
  // writes whose durability was never established.
  if (wal_synced_seq_ >= ack_seq) return true;  // follower: leader paid
  if (!wal_error_.ok()) return false;
  return SyncWalLocked().ok();                  // leader: one fsync for all
}

util::Status LiveIndex::Checkpoint() {
  util::MutexLock lock(&mu_);
  return CheckpointLocked();
}

util::Status LiveIndex::CheckpointLocked() {
  if (fs_ == nullptr) {
    return util::Status::FailedPrecondition(
        "Checkpoint() on an in-memory LiveIndex");
  }
  if (!wal_error_.ok()) return wal_error_;
  util::Status s = RecommitLocked();
  if (!s.ok()) {
    RecordWalErrorLocked(s);
    return s;
  }
  return util::Status::Ok();
}

util::Status LiveIndex::RecommitLocked() {
  FlushLocked();
  WaitForMergesLocked();
  const std::string blob = SerializeLocked();
  const uint64_t next_gen = wal_generation_ + 1;
  // Each step below is individually atomic-or-ignorable: until CURRENT
  // flips, recovery follows the OLD generation (whose files this function
  // never touches); after the flip, the new manifest + empty WAL are
  // already fully synced. Stray files from a crash in between are inert
  // and swept by the next successful checkpoint.
  TOPPRIV_RETURN_IF_ERROR(CommitGenerationLocked(next_gen, blob));
  // Best-effort sweep of superseded generations and temp debris; recovery
  // only ever follows CURRENT, so leftovers cost disk, not correctness.
  auto names = fs_->List(dir_);
  if (names.ok()) {
    for (const std::string& name : *names) {
      std::string kind;
      uint64_t g = 0;
      const bool generational = ParseGenerationFileName(name, &kind, &g);
      const bool tmp_debris =
          name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
      if ((generational && g != next_gen) || tmp_debris) {
        (void)fs_->Remove(dir_ + "/" + name);
      }
    }
  }
  return util::Status::Ok();
}

util::Status LiveIndex::CommitGenerationLocked(uint64_t next_gen,
                                               const std::string& blob) {
  const std::string manifest_path = dir_ + "/" + ManifestFileName(next_gen);
  const std::string tmp_path = manifest_path + ".tmp";
  // A stray tmp or wal from a checkpoint that crashed here would be
  // APPENDED to; clear them first.
  if (fs_->Exists(tmp_path)) TOPPRIV_RETURN_IF_ERROR(fs_->Remove(tmp_path));
  auto file = fs_->OpenForAppend(tmp_path);
  TOPPRIV_RETURN_IF_ERROR(file.status());
  TOPPRIV_RETURN_IF_ERROR(
      (*file)->Append(EncodeManifestFile(next_gen, wal_seq_, blob)));
  TOPPRIV_RETURN_IF_ERROR((*file)->Sync());
  TOPPRIV_RETURN_IF_ERROR((*file)->Close());
  TOPPRIV_RETURN_IF_ERROR(fs_->Rename(tmp_path, manifest_path));
  const std::string wal_path = dir_ + "/" + WalFileName(next_gen);
  if (fs_->Exists(wal_path)) TOPPRIV_RETURN_IF_ERROR(fs_->Remove(wal_path));
  auto writer = WalWriter::Create(fs_, wal_path, next_gen, wal_seq_);
  TOPPRIV_RETURN_IF_ERROR(writer.status());
  // The commit point: everything the new generation needs is durable.
  TOPPRIV_RETURN_IF_ERROR(WriteCurrentFile(fs_, dir_, next_gen));
  wal_ = std::move(*writer);
  wal_generation_ = next_gen;
  // The fresh WAL holds no records; everything through wal_seq_ is covered
  // by the just-committed manifest, so the group-commit watermark advances.
  wal_synced_seq_ = wal_seq_;
  return util::Status::Ok();
}

util::Status LiveIndex::SyncWal() {
  util::MutexLock lock(&mu_);
  if (fs_ == nullptr) return util::Status::Ok();
  return SyncWalLocked();
}

bool LiveIndex::durable() const {
  util::MutexLock lock(&mu_);
  return fs_ != nullptr;
}

bool LiveIndex::healthy() const {
  util::MutexLock lock(&mu_);
  return wal_error_.ok();
}

util::Status LiveIndex::wal_status() const {
  util::MutexLock lock(&mu_);
  return wal_error_;
}

LiveIndex::Health LiveIndex::health() const {
  util::MutexLock lock(&mu_);
  return wal_error_.ok() ? Health::kHealthy : Health::kDegraded;
}

util::Status LiveIndex::last_error() const {
  util::MutexLock lock(&mu_);
  return last_error_;
}

util::StatusOr<std::vector<StableId>> LiveIndex::IngestChecked(
    const std::vector<std::vector<text::TermId>>& docs) {
  std::vector<StableId> ids = Ingest(docs);
  if (ids.size() == docs.size()) return ids;
  // Every short-return path in Ingest implies the WAL error latch is set
  // (append or per-batch ack failed), so the typed translation is exact.
  util::MutexLock lock(&mu_);
  return util::Status::Unavailable("live index degraded: " +
                                   wal_error_.ToString());
}

util::Status LiveIndex::DeleteChecked(StableId stable) {
  {
    util::MutexLock lock(&mu_);
    if (fs_ != nullptr && !wal_error_.ok()) {
      return util::Status::Unavailable("live index degraded: " +
                                       wal_error_.ToString());
    }
  }
  if (Delete(stable)) return util::Status::Ok();
  // Disambiguate "not live" from "refused": the index may have degraded
  // between the pre-check and the call.
  util::MutexLock lock(&mu_);
  if (fs_ != nullptr && !wal_error_.ok()) {
    return util::Status::Unavailable("live index degraded: " +
                                     wal_error_.ToString());
  }
  return util::Status::NotFound("stable id not live");
}

util::Status LiveIndex::Repair(const util::RetryPolicy& policy,
                               util::Clock* clock) {
  if (clock == nullptr) clock = util::Clock::Real();
  const int attempts = std::max(1, policy.max_attempts);
  util::Status last = util::Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Back off without holding mu_ so queries and (refused) mutation
      // attempts are never blocked behind a repair sleep.
      clock->SleepFor(policy.BackoffNanos(attempt - 1));
    }
    mu_.Lock();
    if (fs_ == nullptr) {
      mu_.Unlock();
      return util::Status::FailedPrecondition(
          "Repair() on an in-memory LiveIndex");
    }
    if (wal_error_.ok()) {
      mu_.Unlock();
      return util::Status::Ok();
    }
    // Memory holds the logged-OK mutation prefix (a failed append is
    // never applied) plus, possibly, an appended-but-unsynced suffix
    // whose writers were refused when the group-commit fsync died. Both
    // are in log order, so re-checkpointing memory into a fresh
    // generation + empty WAL is a sound repair — no replay needed. An
    // indeterminate write may thus be promoted to durable, never lost:
    // acked ⊆ recovered holds either way.
    util::Status s = RecommitLocked();
    if (s.ok()) {
      wal_error_ = util::Status::Ok();  // last_error_ stays sticky.
      TOPPRIV_COUNTER_INC("live.health.repaired_transitions");
      mu_.Unlock();
      return util::Status::Ok();
    }
    last_error_ = s;
    mu_.Unlock();
    last = s;
  }
  return last;
}

uint64_t LiveIndex::wal_sequence() const {
  util::MutexLock lock(&mu_);
  return wal_seq_;
}

uint64_t LiveIndex::wal_generation() const {
  util::MutexLock lock(&mu_);
  return wal_generation_;
}

util::StatusOr<std::unique_ptr<LiveIndex>> LiveIndex::Recover(
    util::FileSystem* fs, const std::string& dir, LiveIndexOptions options,
    RecoveryStats* stats) {
  TOPPRIV_RETURN_IF_ERROR(fs->MakeDirs(dir));
  TOPPRIV_TRACE_SPAN(recover_span, "live.recover");
  TOPPRIV_SCOPED_TIMER_US("live.recover_us");
  TOPPRIV_COUNTER_INC("live.recovery.runs");
  RecoveryStats found;
  std::unique_ptr<LiveIndex> live;
  auto current = ReadCurrentFile(fs, dir);
  if (!current.ok() &&
      current.status().code() == util::StatusCode::kNotFound) {
    // Fresh directory: an empty index, committed below as generation 1.
    live = std::make_unique<LiveIndex>(options);
  } else {
    TOPPRIV_RETURN_IF_ERROR(current.status());  // malformed CURRENT
    const uint64_t gen = *current;
    found.manifest_generation = gen;
    // The committed manifest. It was fully synced before CURRENT named
    // it, so ANY defect — absence included — is corruption, not crash
    // debris, and recovery refuses rather than silently losing a
    // committed generation.
    auto manifest_bytes = fs->Read(dir + "/" + ManifestFileName(gen));
    if (!manifest_bytes.ok()) {
      return util::Status::DataLoss("committed manifest unreadable: " +
                                    ManifestFileName(gen));
    }
    auto manifest = ParseManifestFile(*manifest_bytes);
    TOPPRIV_RETURN_IF_ERROR(manifest.status());
    if (manifest->generation != gen) {
      return util::Status::DataLoss(
          "manifest does not carry the generation CURRENT names");
    }
    auto restored = Deserialize(manifest->blob, options);
    TOPPRIV_RETURN_IF_ERROR(restored.status());
    live = std::move(*restored);
    // Replay the WAL suffix. Same commit argument: the file and its
    // header were synced at checkpoint time, so only the record TAIL may
    // legitimately be damaged.
    auto wal_bytes = fs->Read(dir + "/" + WalFileName(gen));
    if (!wal_bytes.ok()) {
      return util::Status::DataLoss("committed wal unreadable: " +
                                    WalFileName(gen));
    }
    auto replay = ParseWal(*wal_bytes);
    TOPPRIV_RETURN_IF_ERROR(replay.status());
    if (replay->generation != gen || replay->base_seq != manifest->base_seq) {
      return util::Status::DataLoss(
          "wal header does not match the committed manifest");
    }
    // Durability is not attached yet, so these public calls replay the
    // logged mutations through the exact production code paths without
    // re-logging them.
    for (const WalRecord& record : replay->records) {
      switch (record.type) {
        case WalRecordType::kIngest:
          live->Ingest(record.docs);
          break;
        case WalRecordType::kDelete:
          live->Delete(record.stable);
          break;
        case WalRecordType::kSeal:
          live->Flush();
          break;
        case WalRecordType::kTermSpace:
          live->EnsureTermSpace(record.num_terms);
          break;
      }
    }
    found.replayed_records = replay->records.size();
    found.wal_tail_lost = replay->tail_lost;
    TOPPRIV_COUNTER_ADD("live.recovery.replayed_records",
                        found.replayed_records);
    if (found.wal_tail_lost) TOPPRIV_COUNTER_INC("live.recovery.tail_lost");
    util::MutexLock lock(&live->mu_);
    live->wal_seq_ = replay->next_seq;
    live->wal_synced_seq_ = replay->next_seq;  // it was read back from disk
  }
  {
    // Attach durability state under the (still-private) index's mutex so
    // the guarded writes are machine-checked like every other mutation.
    util::MutexLock lock(&live->mu_);
    live->fs_ = fs;
    live->dir_ = dir;
    live->wal_generation_ = found.manifest_generation;
  }
  // Commit the recovered state as a fresh generation immediately: this
  // collapses any torn WAL tail into a clean manifest and sidesteps
  // append-after-reopen entirely.
  TOPPRIV_RETURN_IF_ERROR(live->Checkpoint());
  if (stats != nullptr) *stats = found;
  return live;
}

void StreamCorpus(const corpus::Corpus& corpus, size_t begin, size_t end,
                  size_t batch_size, LiveIndex* live) {
  TOPPRIV_CHECK_GE(batch_size, 1u);
  TOPPRIV_CHECK_LE(end, corpus.num_documents());
  std::vector<std::vector<text::TermId>> batch;
  for (size_t d = begin; d < end; d += batch_size) {
    const size_t stop = std::min(end, d + batch_size);
    batch.clear();
    batch.reserve(stop - d);
    for (size_t i = d; i < stop; ++i) {
      batch.push_back(corpus.documents()[i].tokens);
    }
    live->Ingest(batch);
    live->Refresh();
  }
}

}  // namespace toppriv::index::live
