// Write-ahead log and manifest-generation file formats for the durable
// live index.
//
// Durability protocol (LevelDB/Lucene-translog shaped):
//
//   dir/CURRENT          decimal generation number G, written via tmp+rename
//   dir/manifest-G       full LiveIndex::Serialize blob as of generation G
//   dir/wal-G            mutations applied AFTER manifest-G was written
//
// A checkpoint serializes the index, writes manifest-(G+1) (tmp, sync,
// rename), starts an empty wal-(G+1), then flips CURRENT — each step
// individually atomic, so a crash between any two steps recovers to either
// the old or the new generation, never a hybrid. Recovery loads
// manifest-G, replays wal-G's longest valid record prefix, and stops at
// the first torn or corrupt record.
//
// WAL wire format. The file opens with a header:
//
//   "TPWL" | u8 version=1 | varint generation | varint base_seq | u32 crc
//
// where crc is the CRC32C of the bytes before it and base_seq is the
// sequence number of the first record. Records follow back to back:
//
//   u32 payload_len | u32 crc32c(payload) | payload
//   payload = varint seq | u8 type | body
//
// Record bodies:
//   kIngest    varint ndocs, then per doc: varint nterms + term varints
//   kDelete    varint stable_id
//   kSeal      (empty) — an explicit writer seal (Flush/Refresh/Serialize)
//   kTermSpace varint num_terms
//
// Sequence numbers are dense (each record's seq is the previous + 1,
// starting at base_seq); a gap or repeat means the file was stitched or
// corrupted and replay stops there. The CRC is over the payload only: the
// length prefix is validated implicitly (a corrupt length either points
// past the buffer — torn tail — or misframes the payload and fails the
// CRC with probability 1 - 2^-32).
#ifndef TOPPRIV_INDEX_LIVE_WAL_H_
#define TOPPRIV_INDEX_LIVE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/live/segment.h"
#include "text/vocabulary.h"
#include "util/filesystem.h"
#include "util/status.h"

namespace toppriv::index::live {

enum class WalRecordType : uint8_t {
  kIngest = 1,
  kDelete = 2,
  kSeal = 3,
  kTermSpace = 4,
};

/// One decoded WAL record. Which payload field is meaningful depends on
/// `type`; the others stay default-initialized.
struct WalRecord {
  uint64_t seq = 0;
  WalRecordType type = WalRecordType::kSeal;
  std::vector<std::vector<text::TermId>> docs;  // kIngest
  StableId stable = 0;                          // kDelete
  uint64_t num_terms = 0;                       // kTermSpace
};

/// Encodes the file header for generation `generation` whose first record
/// will carry sequence number `base_seq`.
std::string EncodeWalHeader(uint64_t generation, uint64_t base_seq);

/// Encodes one record (length prefix + CRC + payload).
std::string EncodeWalRecord(const WalRecord& record);

/// The result of scanning a WAL file: the longest valid record prefix.
struct WalReplay {
  uint64_t generation = 0;
  uint64_t base_seq = 0;
  std::vector<WalRecord> records;
  /// True when bytes after the last valid record were discarded (torn
  /// write, bit flip, stitched-on garbage). Never an error: the suffix was
  /// by construction never acknowledged as durable.
  bool tail_lost = false;
  /// Sequence number the next record would carry (base_seq + records).
  uint64_t next_seq = 0;
};

/// Parses a WAL file. A damaged HEADER is DataLoss (the file tells us
/// nothing trustworthy); damaged or torn RECORDS merely end the replay
/// with tail_lost = true.
util::StatusOr<WalReplay> ParseWal(const std::string& bytes);

/// Appends records to a WAL file through a FileSystem. Create() writes and
/// syncs the header, so an empty-but-valid log exists on disk (or the
/// creation fails cleanly) before any mutation is acknowledged.
///
/// Thread-compatibility contract (capability-checked at the OWNER): a
/// WalWriter has no internal lock — it is owned by exactly one LiveIndex,
/// whose `wal_` member is GUARDED_BY(mu_), so every Append/Sync call is
/// already serialized under the writer mutex. The Clang thread-safety
/// analysis enforces this at the owning layer (an unlocked `wal_->...`
/// fails the -Wthread-safety CI job); adding a second mutex here would
/// only hide lock-order mistakes behind a redundant acquire.
class WalWriter {
 public:
  static util::StatusOr<std::unique_ptr<WalWriter>> Create(
      util::FileSystem* fs, const std::string& path, uint64_t generation,
      uint64_t base_seq);

  /// Appends one record, assigning it the next sequence number (returned
  /// via record->seq). Does NOT sync.
  util::Status Append(WalRecord* record);
  /// Makes all appended records crash-durable.
  util::Status Sync();

  uint64_t next_seq() const { return next_seq_; }
  uint64_t generation() const { return generation_; }

 private:
  WalWriter(std::unique_ptr<util::WritableFile> file, uint64_t generation,
            uint64_t base_seq)
      : file_(std::move(file)), generation_(generation), next_seq_(base_seq) {}

  std::unique_ptr<util::WritableFile> file_;
  uint64_t generation_;
  uint64_t next_seq_;
};

// ------------------------------------------------- manifest generations --

/// Wraps a LiveIndex::Serialize blob in a self-validating file:
///   "TPWM" | u8 version=1 | varint generation | varint base_seq
///         | varint blob_len | blob | u32 crc32c(everything before)
/// base_seq is the WAL sequence number the NEXT mutation after this
/// manifest will carry — it anchors wal-G's header.
std::string EncodeManifestFile(uint64_t generation, uint64_t base_seq,
                               const std::string& blob);

struct ManifestFile {
  uint64_t generation = 0;
  uint64_t base_seq = 0;
  std::string blob;
};

/// Any damage (magic, version, truncation, CRC, trailing bytes) is
/// DataLoss — a manifest was fully synced before its generation became
/// CURRENT, so a broken one is real corruption, not a torn tail.
util::StatusOr<ManifestFile> ParseManifestFile(const std::string& bytes);

// ------------------------------------------------------ naming + CURRENT --

std::string WalFileName(uint64_t generation);
std::string ManifestFileName(uint64_t generation);
/// Extracts the generation from a "wal-*" / "manifest-*" file name.
/// Returns false for other names (CURRENT, tmp files, strangers).
bool ParseGenerationFileName(const std::string& name, std::string* kind,
                             uint64_t* generation);

/// Writes `dir`/CURRENT containing the decimal generation, via tmp+rename.
util::Status WriteCurrentFile(util::FileSystem* fs, const std::string& dir,
                              uint64_t generation);
/// Reads and validates `dir`/CURRENT. NotFound when no CURRENT exists
/// (fresh directory); DataLoss when it exists but is gibberish.
util::StatusOr<uint64_t> ReadCurrentFile(util::FileSystem* fs,
                                         const std::string& dir);

}  // namespace toppriv::index::live

#endif  // TOPPRIV_INDEX_LIVE_WAL_H_
