// Segments: the immutable unit of the live index.
//
// A SegmentWriter is the in-memory mutable tail of a LiveIndex — it ingests
// documents (assigning monotonically increasing STABLE ids that are never
// reused) and seals into a Segment: an immutable InvertedIndex over the
// segment's documents with LOCAL doc ids 0..n-1, plus the local→stable id
// map. A freshly sealed segment's stable ids are contiguous; a merged
// segment's are the (still strictly ascending) survivors of its inputs, so
// "ascending local id" always means "ascending stable id" and concatenating
// segments in stable order reads the live collection in ingest order.
//
// Bit-parity by construction: Add() counts term frequencies exactly the way
// InvertedIndex::Build does (a sorted std::map per document) and appends to
// per-term PostingList::Builders in the same document order, so a sealed
// segment's posting lists are byte-identical to BuildRange over the same
// documents.
#ifndef TOPPRIV_INDEX_LIVE_SEGMENT_H_
#define TOPPRIV_INDEX_LIVE_SEGMENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "index/inverted_index.h"

namespace toppriv::index::live {

/// Stable document identity: assigned at ingest, dense across a LiveIndex's
/// lifetime history, never reassigned (deletes leave holes; merges drop the
/// holes but never renumber survivors' stable ids).
using StableId = uint64_t;

/// One immutable sealed segment.
class Segment {
 public:
  Segment(InvertedIndex index, StableId stable_begin,
          std::vector<StableId> stable_ids);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  const InvertedIndex& index() const { return index_; }
  size_t num_docs() const { return stable_ids_.size(); }
  size_t num_terms() const { return index_.num_terms(); }

  /// The half-open stable-id range this segment covers. Ranges of the
  /// segments in a LiveIndex tile the ingested id space in order; a merged
  /// segment covers the union of its inputs' ranges even where deletes
  /// left holes.
  StableId stable_begin() const { return stable_begin_; }
  StableId stable_end() const { return stable_end_; }

  /// Local→stable map, strictly ascending.
  const std::vector<StableId>& stable_ids() const { return stable_ids_; }

  /// Stable→local lookup. False if this segment never held `stable` or the
  /// doc was compacted away by a merge.
  bool FindLocal(StableId stable, corpus::DocId* local) const;

  /// The distinct terms of local doc `local`, ascending — the forward view
  /// of the postings, built once at construction (O(total postings)). This
  /// is what lets LiveIndex::Delete decrement its running global-df in
  /// O(|doc terms|) instead of re-walking every posting list at publish.
  const text::TermId* DocTermsBegin(corpus::DocId local) const {
    return doc_terms_.data() + doc_term_offsets_[local];
  }
  const text::TermId* DocTermsEnd(corpus::DocId local) const {
    return doc_terms_.data() + doc_term_offsets_[local + 1];
  }

 private:
  InvertedIndex index_;
  StableId stable_begin_ = 0;
  StableId stable_end_ = 0;
  std::vector<StableId> stable_ids_;
  /// CSR doc→distinct-terms map over index_'s postings.
  std::vector<uint32_t> doc_term_offsets_;  // num_docs + 1 entries
  std::vector<text::TermId> doc_terms_;
};

/// The mutable in-memory writer. Not thread-safe; the owning LiveIndex
/// serializes all mutations.
class SegmentWriter {
 public:
  explicit SegmentWriter(StableId stable_begin);

  /// Ingests one document, returning its stable id.
  StableId Add(const std::vector<text::TermId>& tokens);

  size_t num_docs() const { return doc_lengths_.size(); }
  bool empty() const { return doc_lengths_.empty(); }
  /// Highest term id seen + 1 (the writer's term space grows with ingest).
  size_t num_terms() const { return builders_.size(); }
  StableId stable_begin() const { return stable_begin_; }
  StableId next_stable() const { return next_stable_; }

  /// Seals the buffered documents into an immutable segment and resets the
  /// writer to start a new one at the next stable id. Must not be called
  /// on an empty writer.
  std::shared_ptr<const Segment> Seal();

 private:
  StableId stable_begin_;
  StableId next_stable_;
  std::vector<PostingList::Builder> builders_;
  std::vector<uint32_t> doc_lengths_;
  std::map<text::TermId, uint32_t> counts_;  // reused across documents
};

}  // namespace toppriv::index::live

#endif  // TOPPRIV_INDEX_LIVE_SEGMENT_H_
