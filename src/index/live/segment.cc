#include "index/live/segment.h"

#include <algorithm>

#include "util/check.h"

namespace toppriv::index::live {

Segment::Segment(InvertedIndex index, StableId stable_begin,
                 std::vector<StableId> stable_ids)
    : index_(std::move(index)),
      stable_begin_(stable_begin),
      stable_ids_(std::move(stable_ids)) {
  TOPPRIV_CHECK_EQ(index_.num_documents(), stable_ids_.size());
  TOPPRIV_CHECK(!stable_ids_.empty());
  TOPPRIV_CHECK_GE(stable_ids_.front(), stable_begin_);
  for (size_t i = 1; i < stable_ids_.size(); ++i) {
    TOPPRIV_CHECK_LT(stable_ids_[i - 1], stable_ids_[i]);
  }
  stable_end_ = stable_ids_.back() + 1;
  // Invert the postings into the CSR doc→distinct-terms map. Terms are
  // visited ascending, so each doc's term span comes out ascending too.
  const size_t docs = index_.num_documents();
  doc_term_offsets_.assign(docs + 1, 0);
  for (size_t t = 0; t < index_.num_terms(); ++t) {
    const PostingList& list = index_.Postings(static_cast<text::TermId>(t));
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      ++doc_term_offsets_[it.Get().doc + 1];
    }
  }
  for (size_t d = 0; d < docs; ++d) {
    doc_term_offsets_[d + 1] += doc_term_offsets_[d];
  }
  doc_terms_.resize(doc_term_offsets_[docs]);
  std::vector<uint32_t> cursor(doc_term_offsets_.begin(),
                               doc_term_offsets_.end() - 1);
  for (size_t t = 0; t < index_.num_terms(); ++t) {
    const PostingList& list = index_.Postings(static_cast<text::TermId>(t));
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      doc_terms_[cursor[it.Get().doc]++] = static_cast<text::TermId>(t);
    }
  }
}

bool Segment::FindLocal(StableId stable, corpus::DocId* local) const {
  auto it = std::lower_bound(stable_ids_.begin(), stable_ids_.end(), stable);
  if (it == stable_ids_.end() || *it != stable) return false;
  *local = static_cast<corpus::DocId>(it - stable_ids_.begin());
  return true;
}

SegmentWriter::SegmentWriter(StableId stable_begin)
    : stable_begin_(stable_begin), next_stable_(stable_begin) {}

StableId SegmentWriter::Add(const std::vector<text::TermId>& tokens) {
  const corpus::DocId local = static_cast<corpus::DocId>(doc_lengths_.size());
  counts_.clear();
  for (text::TermId t : tokens) ++counts_[t];
  if (!counts_.empty()) {
    const text::TermId max_term = counts_.rbegin()->first;
    if (max_term >= builders_.size()) builders_.resize(max_term + 1);
  }
  // Ascending term order within the doc (std::map), ascending doc order
  // across Adds — the exact append sequence InvertedIndex::Build produces.
  for (const auto& [term, tf] : counts_) builders_[term].Append(local, tf);
  doc_lengths_.push_back(static_cast<uint32_t>(tokens.size()));
  return next_stable_++;
}

std::shared_ptr<const Segment> SegmentWriter::Seal() {
  TOPPRIV_CHECK(!doc_lengths_.empty());
  std::vector<PostingList> lists;
  lists.reserve(builders_.size());
  for (PostingList::Builder& b : builders_) lists.push_back(b.Build());
  std::vector<StableId> stable_ids(doc_lengths_.size());
  for (size_t i = 0; i < stable_ids.size(); ++i) {
    stable_ids[i] = stable_begin_ + i;
  }
  auto segment = std::make_shared<Segment>(
      InvertedIndex::FromParts(std::move(lists), std::move(doc_lengths_)),
      stable_begin_, std::move(stable_ids));
  builders_.clear();
  doc_lengths_.clear();
  stable_begin_ = next_stable_;
  return segment;
}

}  // namespace toppriv::index::live
