#include "index/live/wal.h"

#include <cinttypes>
#include <cstdio>

#include "util/crc32.h"
#include "util/io.h"

namespace toppriv::index::live {

namespace {

constexpr char kWalMagic[4] = {'T', 'P', 'W', 'L'};
constexpr char kManifestMagic[4] = {'T', 'P', 'W', 'M'};
constexpr uint8_t kWalVersion = 1;
constexpr uint8_t kManifestVersion = 1;

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

uint32_t ReadU32At(const std::string& buf, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeWalHeader(uint64_t generation, uint64_t base_seq) {
  std::string out(kWalMagic, sizeof(kWalMagic));
  out.push_back(static_cast<char>(kWalVersion));
  util::AppendVarint(generation, &out);
  util::AppendVarint(base_seq, &out);
  AppendU32(util::Crc32::Compute(out.data(), out.size()), &out);
  return out;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  util::AppendVarint(record.seq, &payload);
  payload.push_back(static_cast<char>(record.type));
  switch (record.type) {
    case WalRecordType::kIngest:
      util::AppendVarint(record.docs.size(), &payload);
      for (const auto& doc : record.docs) {
        util::AppendVarint(doc.size(), &payload);
        for (const text::TermId term : doc) {
          util::AppendVarint(term, &payload);
        }
      }
      break;
    case WalRecordType::kDelete:
      util::AppendVarint(record.stable, &payload);
      break;
    case WalRecordType::kSeal:
      break;
    case WalRecordType::kTermSpace:
      util::AppendVarint(record.num_terms, &payload);
      break;
  }
  std::string out;
  AppendU32(static_cast<uint32_t>(payload.size()), &out);
  AppendU32(util::Crc32::Compute(payload), &out);
  out.append(payload);
  return out;
}

namespace {

/// Decodes one record payload (seq already split off by the caller).
/// Returns false on any malformation — the caller treats the record, and
/// everything after it, as lost tail.
bool DecodePayload(const std::string& payload, WalRecord* record) {
  size_t pos = 0;
  uint64_t seq = 0;
  if (!util::DecodeVarint(payload, &pos, &seq)) return false;
  if (pos >= payload.size()) return false;
  const uint8_t type = static_cast<uint8_t>(payload[pos++]);
  record->seq = seq;
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kIngest): {
      record->type = WalRecordType::kIngest;
      uint64_t ndocs = 0;
      if (!util::DecodeVarint(payload, &pos, &ndocs)) return false;
      // A doc costs at least one length byte, so ndocs can never exceed
      // the remaining payload bytes (bounds attacker-chosen counts).
      if (ndocs > payload.size() - pos) return false;
      record->docs.clear();
      record->docs.reserve(ndocs);
      for (uint64_t d = 0; d < ndocs; ++d) {
        uint64_t nterms = 0;
        if (!util::DecodeVarint(payload, &pos, &nterms)) return false;
        if (nterms > payload.size() - pos) return false;
        std::vector<text::TermId> doc;
        doc.reserve(nterms);
        for (uint64_t t = 0; t < nterms; ++t) {
          uint64_t term = 0;
          if (!util::DecodeVarint(payload, &pos, &term)) return false;
          if (term > UINT32_MAX) return false;
          doc.push_back(static_cast<text::TermId>(term));
        }
        record->docs.push_back(std::move(doc));
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kDelete): {
      record->type = WalRecordType::kDelete;
      uint64_t stable = 0;
      if (!util::DecodeVarint(payload, &pos, &stable)) return false;
      record->stable = stable;
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kSeal):
      record->type = WalRecordType::kSeal;
      break;
    case static_cast<uint8_t>(WalRecordType::kTermSpace): {
      record->type = WalRecordType::kTermSpace;
      uint64_t n = 0;
      if (!util::DecodeVarint(payload, &pos, &n)) return false;
      record->num_terms = n;
      break;
    }
    default:
      return false;  // unknown type: cannot trust anything after it
  }
  return pos == payload.size();  // trailing payload bytes = corruption
}

}  // namespace

util::StatusOr<WalReplay> ParseWal(const std::string& bytes) {
  // Header: magic + version + two varints + crc. Validate the CRC over
  // exactly the bytes that precede it.
  size_t pos = sizeof(kWalMagic);
  if (bytes.size() < pos + 1) {
    return util::Status::DataLoss("wal: file shorter than header");
  }
  if (bytes.compare(0, sizeof(kWalMagic), kWalMagic, sizeof(kWalMagic)) != 0) {
    return util::Status::DataLoss("wal: bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(bytes[pos++]);
  if (version != kWalVersion) {
    return util::Status::DataLoss("wal: unsupported version " +
                                  std::to_string(version));
  }
  WalReplay replay;
  if (!util::DecodeVarint(bytes, &pos, &replay.generation) ||
      !util::DecodeVarint(bytes, &pos, &replay.base_seq)) {
    return util::Status::DataLoss("wal: truncated header");
  }
  if (bytes.size() < pos + 4) {
    return util::Status::DataLoss("wal: header crc missing");
  }
  if (ReadU32At(bytes, pos) != util::Crc32::Compute(bytes.data(), pos)) {
    return util::Status::DataLoss("wal: header crc mismatch");
  }
  pos += 4;

  // Records: stop (tail_lost) at the first frame that does not check out.
  replay.next_seq = replay.base_seq;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      replay.tail_lost = true;
      break;
    }
    const uint32_t len = ReadU32At(bytes, pos);
    const uint32_t crc = ReadU32At(bytes, pos + 4);
    if (len > bytes.size() - pos - 8) {
      replay.tail_lost = true;  // frame claims bytes the file doesn't have
      break;
    }
    const std::string payload = bytes.substr(pos + 8, len);
    if (util::Crc32::Compute(payload) != crc) {
      replay.tail_lost = true;
      break;
    }
    WalRecord record;
    if (!DecodePayload(payload, &record) || record.seq != replay.next_seq) {
      replay.tail_lost = true;
      break;
    }
    pos += 8 + len;
    ++replay.next_seq;
    replay.records.push_back(std::move(record));
  }
  return replay;
}

util::StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    util::FileSystem* fs, const std::string& path, uint64_t generation,
    uint64_t base_seq) {
  auto file = fs->OpenForAppend(path);
  TOPPRIV_RETURN_IF_ERROR(file.status());
  std::unique_ptr<WalWriter> writer(
      new WalWriter(std::move(*file), generation, base_seq));
  TOPPRIV_RETURN_IF_ERROR(
      writer->file_->Append(EncodeWalHeader(generation, base_seq)));
  TOPPRIV_RETURN_IF_ERROR(writer->file_->Sync());
  return writer;
}

util::Status WalWriter::Append(WalRecord* record) {
  record->seq = next_seq_;
  TOPPRIV_RETURN_IF_ERROR(file_->Append(EncodeWalRecord(*record)));
  ++next_seq_;
  return util::Status::Ok();
}

util::Status WalWriter::Sync() { return file_->Sync(); }

// ------------------------------------------------- manifest generations --

std::string EncodeManifestFile(uint64_t generation, uint64_t base_seq,
                               const std::string& blob) {
  std::string out(kManifestMagic, sizeof(kManifestMagic));
  out.push_back(static_cast<char>(kManifestVersion));
  util::AppendVarint(generation, &out);
  util::AppendVarint(base_seq, &out);
  util::AppendVarint(blob.size(), &out);
  out.append(blob);
  AppendU32(util::Crc32::Compute(out.data(), out.size()), &out);
  return out;
}

util::StatusOr<ManifestFile> ParseManifestFile(const std::string& bytes) {
  size_t pos = sizeof(kManifestMagic);
  if (bytes.size() < pos + 1 ||
      bytes.compare(0, sizeof(kManifestMagic), kManifestMagic,
                    sizeof(kManifestMagic)) != 0) {
    return util::Status::DataLoss("manifest: bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(bytes[pos++]);
  if (version != kManifestVersion) {
    return util::Status::DataLoss("manifest: unsupported version " +
                                  std::to_string(version));
  }
  ManifestFile out;
  uint64_t blob_len = 0;
  if (!util::DecodeVarint(bytes, &pos, &out.generation) ||
      !util::DecodeVarint(bytes, &pos, &out.base_seq) ||
      !util::DecodeVarint(bytes, &pos, &blob_len)) {
    return util::Status::DataLoss("manifest: truncated header");
  }
  if (blob_len > bytes.size() - pos) {
    return util::Status::DataLoss("manifest: blob length exceeds file");
  }
  if (bytes.size() - pos - blob_len != 4) {
    return util::Status::DataLoss("manifest: trailing bytes");
  }
  if (ReadU32At(bytes, pos + blob_len) !=
      util::Crc32::Compute(bytes.data(), pos + blob_len)) {
    return util::Status::DataLoss("manifest: crc mismatch");
  }
  out.blob = bytes.substr(pos, blob_len);
  return out;
}

// ------------------------------------------------------ naming + CURRENT --

std::string WalFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64, generation);
  return buf;
}

std::string ManifestFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "manifest-%06" PRIu64, generation);
  return buf;
}

bool ParseGenerationFileName(const std::string& name, std::string* kind,
                             uint64_t* generation) {
  const size_t dash = name.find('-');
  if (dash == std::string::npos || dash + 1 == name.size()) return false;
  const std::string head = name.substr(0, dash);
  if (head != "wal" && head != "manifest") return false;
  // 19 digits keeps g below 10^19 < 2^64; longer names are strangers, not
  // generations (and would wrap the accumulator).
  if (name.size() - (dash + 1) > 19) return false;
  uint64_t g = 0;
  for (size_t i = dash + 1; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;  // rejects ".tmp" suffixes too
    g = g * 10 + static_cast<uint64_t>(c - '0');
  }
  *kind = head;
  *generation = g;
  return true;
}

util::Status WriteCurrentFile(util::FileSystem* fs, const std::string& dir,
                              uint64_t generation) {
  const std::string tmp = dir + "/CURRENT.tmp";
  const std::string content = std::to_string(generation) + "\n";
  if (fs->Exists(tmp)) {
    // A stale tmp from a crashed previous attempt — appending to it would
    // produce garbage, so start over.
    TOPPRIV_RETURN_IF_ERROR(fs->Remove(tmp));
  }
  auto file = fs->OpenForAppend(tmp);
  TOPPRIV_RETURN_IF_ERROR(file.status());
  TOPPRIV_RETURN_IF_ERROR((*file)->Append(content));
  TOPPRIV_RETURN_IF_ERROR((*file)->Sync());
  TOPPRIV_RETURN_IF_ERROR((*file)->Close());
  return fs->Rename(tmp, dir + "/CURRENT");
}

util::StatusOr<uint64_t> ReadCurrentFile(util::FileSystem* fs,
                                         const std::string& dir) {
  const std::string path = dir + "/CURRENT";
  if (!fs->Exists(path)) {
    return util::Status::NotFound("no CURRENT file in " + dir);
  }
  auto bytes = fs->Read(path);
  TOPPRIV_RETURN_IF_ERROR(bytes.status());
  uint64_t g = 0;
  size_t digits = 0;
  for (const char c : *bytes) {
    if (c == '\n' && digits > 0) return g;
    if (c < '0' || c > '9' || digits >= 19) {
      return util::Status::DataLoss("CURRENT: malformed generation");
    }
    g = g * 10 + static_cast<uint64_t>(c - '0');
    ++digits;
  }
  return util::Status::DataLoss("CURRENT: missing newline");
}

}  // namespace toppriv::index::live
