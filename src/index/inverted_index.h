// Inverted index over a corpus: one posting list per term plus the document
// statistics similarity scorers need.
#ifndef TOPPRIV_INDEX_INVERTED_INDEX_H_
#define TOPPRIV_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/posting_list.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace toppriv::index {

/// Aggregate statistics used by bench/index_stats (the paper's §II PIR
/// arithmetic: average vs maximum list length, raw vs padded sizes).
struct IndexStats {
  size_t num_terms = 0;
  size_t num_documents = 0;
  uint64_t total_postings = 0;
  double avg_list_length = 0.0;
  uint32_t max_list_length = 0;
  /// Encoded size of all posting lists in bytes.
  uint64_t encoded_bytes = 0;
  /// Hypothetical size if every list were padded to the maximum length at
  /// fixed 8 bytes per <impact, doc> pair, as a PIR store would require.
  uint64_t pir_padded_bytes = 0;
};

/// Immutable inverted index.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Builds the index from a corpus in one pass.
  static InvertedIndex Build(const corpus::Corpus& corpus);

  /// Builds an index over the document range [begin, end) only, with doc
  /// ids LOCAL to the range (global id d maps to local id d - begin). The
  /// term space stays the full corpus vocabulary, so every shard of a
  /// ShardedIndex answers Postings() for any term. Build(c) is
  /// BuildRange(c, 0, num_documents).
  static InvertedIndex BuildRange(const corpus::Corpus& corpus,
                                  corpus::DocId begin, corpus::DocId end);

  /// Assembles an index directly from per-term posting lists and per-doc
  /// lengths (total tokens and the average are derived the same way Build
  /// derives them). This is the live-index seam: a SegmentWriter (and the
  /// segment merger) appends the identical <doc, tf> sequences Build would
  /// have appended, so the resulting index is bit-identical to Build over
  /// the same documents without materializing a Corpus.
  static InvertedIndex FromParts(std::vector<PostingList> lists,
                                 std::vector<uint32_t> doc_lengths);

  /// Posting list for a term (empty list if the term never occurs).
  const PostingList& Postings(text::TermId term) const;

  /// Document frequency (list length) for a term.
  uint32_t DocFreq(text::TermId term) const;

  /// Length in tokens of each document.
  uint32_t DocLength(corpus::DocId doc) const;
  double avg_doc_length() const { return avg_doc_length_; }
  size_t num_documents() const { return doc_lengths_.size(); }
  size_t num_terms() const { return lists_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }

  /// Aggregate statistics (see IndexStats).
  IndexStats ComputeStats() const;

  /// Serialization (used by the experiment cache and Fig. 6 accounting).
  std::string Serialize() const;
  static util::StatusOr<InvertedIndex> Deserialize(const std::string& bytes);

 private:
  std::vector<PostingList> lists_;
  std::vector<uint32_t> doc_lengths_;
  double avg_doc_length_ = 0.0;
  uint64_t total_tokens_ = 0;
  PostingList empty_list_;
};

}  // namespace toppriv::index

#endif  // TOPPRIV_INDEX_INVERTED_INDEX_H_
