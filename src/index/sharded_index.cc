#include "index/sharded_index.h"

#include <algorithm>

#include "util/check.h"
#include "util/io.h"

namespace toppriv::index {

ShardedIndex ShardedIndex::Build(const corpus::Corpus& corpus,
                                 size_t num_shards, util::ThreadPool* pool) {
  TOPPRIV_CHECK_GE(num_shards, 1u);
  const uint64_t num_docs = corpus.num_documents();

  ShardedIndex index;
  std::vector<ShardRange> ranges;
  ranges.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // Balanced contiguous split: shard s owns [N*s/K, N*(s+1)/K).
    ShardRange range;
    range.begin = static_cast<corpus::DocId>(num_docs * s / num_shards);
    range.end = static_cast<corpus::DocId>(num_docs * (s + 1) / num_shards);
    ranges.push_back(range);
  }
  // Shards are independent doc ranges writing into pre-sized slots, so the
  // parallel fan-out is trivially deterministic: the serial and pooled
  // paths produce bit-identical shards.
  index.shards_.resize(num_shards);
  auto build_shard = [&](size_t s) {
    index.shards_[s] =
        InvertedIndex::BuildRange(corpus, ranges[s].begin, ranges[s].end);
  };
  if (pool != nullptr && num_shards > 1) {
    pool->ParallelFor(num_shards, build_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) build_shard(s);
  }
  index.FinishManifest(std::move(ranges));
  return index;
}

void ShardedIndex::FinishManifest(std::vector<ShardRange> ranges) {
  manifest_.ranges = std::move(ranges);
  manifest_.num_terms = 0;
  manifest_.num_documents = 0;
  manifest_.total_tokens = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    manifest_.num_terms = std::max(manifest_.num_terms, shards_[s].num_terms());
    manifest_.num_documents += manifest_.ranges[s].size();
    manifest_.total_tokens += shards_[s].total_tokens();
  }
  manifest_.avg_doc_length =
      manifest_.num_documents == 0
          ? 0.0
          : static_cast<double>(manifest_.total_tokens) /
                static_cast<double>(manifest_.num_documents);
  manifest_.global_df.assign(manifest_.num_terms, 0);
  for (const InvertedIndex& shard : shards_) {
    for (size_t t = 0; t < shard.num_terms(); ++t) {
      manifest_.global_df[t] += shard.DocFreq(static_cast<text::TermId>(t));
    }
  }
}

const InvertedIndex& ShardedIndex::shard(size_t s) const {
  TOPPRIV_CHECK_LT(s, shards_.size());
  return shards_[s];
}

size_t ShardedIndex::ShardOf(corpus::DocId doc) const {
  TOPPRIV_CHECK_LT(doc, manifest_.num_documents);
  // Ranges tile [0, N) in order, so the owner is the last range whose begin
  // is at or before `doc` (every later range starts past it, and tiling
  // makes that range end past it).
  auto it = std::upper_bound(
      manifest_.ranges.begin(), manifest_.ranges.end(), doc,
      [](corpus::DocId d, const ShardRange& r) { return d < r.begin; });
  TOPPRIV_CHECK(it != manifest_.ranges.begin());
  size_t s = static_cast<size_t>(it - manifest_.ranges.begin()) - 1;
  TOPPRIV_DCHECK(doc >= manifest_.ranges[s].begin &&
                 doc < manifest_.ranges[s].end);
  return s;
}

uint32_t ShardedIndex::DocFreq(text::TermId term) const {
  if (term >= manifest_.global_df.size()) return 0;
  return manifest_.global_df[term];
}

uint32_t ShardedIndex::DocLength(corpus::DocId doc) const {
  size_t s = ShardOf(doc);
  return shards_[s].DocLength(doc - manifest_.ranges[s].begin);
}

IndexStats ShardedIndex::ComputeStats() const {
  IndexStats stats;
  stats.num_terms = manifest_.num_terms;
  stats.num_documents = manifest_.num_documents;
  for (size_t t = 0; t < manifest_.num_terms; ++t) {
    // Walk the term's postings shard by shard in global doc order and price
    // them as ONE delta-encoded list: the first posting absolute, every
    // later one as a delta from its predecessor even across a shard
    // boundary. That is byte-for-byte the monolithic encoding, so the
    // summed encoded_bytes match the monolithic index exactly (the naive
    // sum of shard ByteSize()s would not: each shard re-anchors its first
    // posting as an absolute local id).
    uint32_t length = 0;
    uint64_t encoded = 0;
    uint64_t prev_doc = 0;
    bool first = true;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const PostingList& list =
          shards_[s].Postings(static_cast<text::TermId>(t));
      for (auto it = list.begin(); it.Valid(); it.Next()) {
        const Posting& p = it.Get();
        const uint64_t doc = manifest_.ranges[s].begin + uint64_t{p.doc};
        encoded += util::VarintSize(first ? doc : doc - prev_doc) +
                   util::VarintSize(p.tf);
        prev_doc = doc;
        first = false;
        ++length;
      }
    }
    stats.total_postings += length;
    stats.max_list_length = std::max(stats.max_list_length, length);
    stats.encoded_bytes += encoded;
  }
  if (stats.num_terms > 0) {
    stats.avg_list_length = static_cast<double>(stats.total_postings) /
                            static_cast<double>(stats.num_terms);
  }
  stats.pir_padded_bytes = static_cast<uint64_t>(stats.num_terms) *
                           static_cast<uint64_t>(stats.max_list_length) * 8ull;
  return stats;
}

std::string ShardedIndex::Serialize() const {
  util::BinaryWriter w;
  w.WriteVarint(shards_.size());
  w.WriteVarint(manifest_.num_terms);
  w.WriteVarint(manifest_.num_documents);
  for (const ShardRange& r : manifest_.ranges) {
    w.WriteVarint(r.begin);
    w.WriteVarint(r.end);
  }
  for (const InvertedIndex& shard : shards_) {
    w.WriteString(shard.Serialize());
  }
  return w.data();
}

util::StatusOr<ShardedIndex> ShardedIndex::Deserialize(
    const std::string& bytes) {
  util::BinaryReader r(bytes);
  uint64_t num_shards = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_shards));
  if (num_shards == 0) {
    return util::Status::DataLoss("sharded index needs at least one shard");
  }
  // Every shard costs at least three bytes (range begin/end varints appear
  // first, then a length-prefixed blob), so a count beyond a third of the
  // remaining payload is hostile — reject before any allocation scales
  // with it.
  if (num_shards > r.remaining() / 3) {
    return util::Status::DataLoss("shard count exceeds payload");
  }
  uint64_t num_terms = 0, num_docs = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_terms));
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_docs));

  std::vector<ShardRange> ranges;
  ranges.reserve(num_shards);
  uint64_t expected_begin = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    uint64_t begin = 0, end = 0;
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&begin));
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&end));
    if (end > UINT32_MAX) {
      return util::Status::DataLoss("shard range overflows doc id space");
    }
    if (begin > end) {
      return util::Status::DataLoss("shard range inverted");
    }
    // Ranges must tile [0, num_docs) in order: any overlap, gap, or
    // out-of-order range breaks the begin == previous end chain.
    if (begin != expected_begin) {
      return util::Status::DataLoss(
          "shard ranges overlap or leave a gap in the doc id space");
    }
    expected_begin = end;
    ranges.push_back(ShardRange{static_cast<corpus::DocId>(begin),
                                static_cast<corpus::DocId>(end)});
  }
  if (expected_begin != num_docs) {
    return util::Status::DataLoss(
        "shard ranges do not cover the declared document count");
  }

  ShardedIndex index;
  index.shards_.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    std::string blob;
    TOPPRIV_RETURN_IF_ERROR(r.ReadString(&blob));
    auto shard = InvertedIndex::Deserialize(blob);
    if (!shard.ok()) return shard.status();
    // The shard blob must agree with the manifest it travels with: doc
    // count equal to its range width, term space equal to the global one.
    if (shard->num_documents() != ranges[s].size()) {
      return util::Status::DataLoss(
          "shard payload does not match its doc-id range");
    }
    if (shard->num_terms() != num_terms) {
      return util::Status::DataLoss("shard term space mismatch");
    }
    index.shards_.push_back(std::move(shard).value());
  }
  if (!r.AtEnd()) {
    return util::Status::DataLoss("trailing bytes after sharded index");
  }
  index.FinishManifest(std::move(ranges));
  return index;
}

}  // namespace toppriv::index
