#include "index/inverted_index.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/io.h"

namespace toppriv::index {

InvertedIndex InvertedIndex::Build(const corpus::Corpus& corpus) {
  return BuildRange(corpus, 0,
                    static_cast<corpus::DocId>(corpus.num_documents()));
}

InvertedIndex InvertedIndex::BuildRange(const corpus::Corpus& corpus,
                                        corpus::DocId begin,
                                        corpus::DocId end) {
  TOPPRIV_CHECK_LE(begin, end);
  TOPPRIV_CHECK_LE(end, corpus.num_documents());
  const size_t num_terms = corpus.vocabulary_size();
  std::vector<PostingList::Builder> builders(num_terms);

  InvertedIndex index;
  index.doc_lengths_.reserve(end - begin);

  // Documents arrive in ascending id order, so per-term Appends are
  // naturally sorted.
  std::map<text::TermId, uint32_t> counts;  // reused across documents
  for (corpus::DocId d = begin; d < end; ++d) {
    const corpus::Document& doc = corpus.documents()[d];
    counts.clear();
    for (text::TermId t : doc.tokens) ++counts[t];
    for (const auto& [term, tf] : counts) {
      TOPPRIV_CHECK_LT(term, num_terms);
      builders[term].Append(doc.id - begin, tf);
    }
    index.doc_lengths_.push_back(static_cast<uint32_t>(doc.tokens.size()));
    index.total_tokens_ += doc.tokens.size();
  }

  index.lists_.reserve(num_terms);
  for (auto& b : builders) index.lists_.push_back(b.Build());
  index.avg_doc_length_ =
      index.doc_lengths_.empty()
          ? 0.0
          : static_cast<double>(index.total_tokens_) /
                static_cast<double>(index.doc_lengths_.size());
  return index;
}

InvertedIndex InvertedIndex::FromParts(std::vector<PostingList> lists,
                                       std::vector<uint32_t> doc_lengths) {
  InvertedIndex index;
  index.lists_ = std::move(lists);
  index.doc_lengths_ = std::move(doc_lengths);
  for (uint32_t len : index.doc_lengths_) index.total_tokens_ += len;
  index.avg_doc_length_ =
      index.doc_lengths_.empty()
          ? 0.0
          : static_cast<double>(index.total_tokens_) /
                static_cast<double>(index.doc_lengths_.size());
  return index;
}

const PostingList& InvertedIndex::Postings(text::TermId term) const {
  if (term >= lists_.size()) return empty_list_;
  return lists_[term];
}

uint32_t InvertedIndex::DocFreq(text::TermId term) const {
  return Postings(term).size();
}

uint32_t InvertedIndex::DocLength(corpus::DocId doc) const {
  TOPPRIV_CHECK_LT(doc, doc_lengths_.size());
  return doc_lengths_[doc];
}

IndexStats InvertedIndex::ComputeStats() const {
  IndexStats stats;
  stats.num_terms = lists_.size();
  stats.num_documents = doc_lengths_.size();
  for (const PostingList& list : lists_) {
    stats.total_postings += list.size();
    stats.max_list_length = std::max(stats.max_list_length, list.size());
    stats.encoded_bytes += list.ByteSize();
  }
  if (!lists_.empty()) {
    stats.avg_list_length = static_cast<double>(stats.total_postings) /
                            static_cast<double>(lists_.size());
  }
  // PIR requires equal-size records: every list padded to the maximum
  // length, 8 bytes per <impact, doc> pair (paper §II).
  stats.pir_padded_bytes = static_cast<uint64_t>(stats.num_terms) *
                           static_cast<uint64_t>(stats.max_list_length) * 8ull;
  return stats;
}

std::string InvertedIndex::Serialize() const {
  util::BinaryWriter w;
  w.WriteVarint(doc_lengths_.size());
  for (uint32_t len : doc_lengths_) w.WriteVarint(len);
  w.WriteVarint(lists_.size());
  std::string body;
  for (const PostingList& list : lists_) list.EncodeTo(&body);
  w.WriteString(body);
  return w.data();
}

util::StatusOr<InvertedIndex> InvertedIndex::Deserialize(
    const std::string& bytes) {
  util::BinaryReader r(bytes);
  uint64_t num_docs = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_docs));
  // Every document length costs at least one varint byte, so a count larger
  // than the remaining payload is hostile — without this bound a few-byte
  // blob could demand a multi-gigabyte resize before any payload is read.
  if (num_docs > r.remaining()) {
    return util::Status::DataLoss("document count exceeds payload");
  }
  InvertedIndex index;
  index.doc_lengths_.resize(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    uint64_t len = 0;
    TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&len));
    if (len > UINT32_MAX) {
      return util::Status::DataLoss("document length overflows u32");
    }
    index.doc_lengths_[i] = static_cast<uint32_t>(len);
    index.total_tokens_ += len;
  }
  uint64_t num_terms = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_terms));
  std::string body;
  TOPPRIV_RETURN_IF_ERROR(r.ReadString(&body));
  // Each posting list costs at least one byte of `body` (an empty list is a
  // single zero varint).
  if (num_terms > body.size()) {
    return util::Status::DataLoss("term count exceeds payload");
  }
  size_t pos = 0;
  index.lists_.reserve(num_terms);
  for (uint64_t i = 0; i < num_terms; ++i) {
    // Bounding doc ids by num_docs matters as much as the structural
    // checks: consumers (the contiguous score accumulator, the doc-length
    // lookups) index per-document arrays with posting doc ids.
    auto list = PostingList::DecodeFrom(body, &pos, num_docs);
    if (!list.ok()) return list.status();
    index.lists_.push_back(std::move(list).value());
  }
  index.avg_doc_length_ =
      index.doc_lengths_.empty()
          ? 0.0
          : static_cast<double>(index.total_tokens_) /
                static_cast<double>(index.doc_lengths_.size());
  return index;
}

}  // namespace toppriv::index
