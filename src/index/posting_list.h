// Compressed posting list: the per-term inverted list of <doc, tf> pairs.
//
// The paper's Section II leans on posting-list statistics (average length
// 186.7 vs maximum 127,848 on WSJ) to argue PIR is impractical; this module
// provides the same structures and byte-accurate size accounting.
#ifndef TOPPRIV_INDEX_POSTING_LIST_H_
#define TOPPRIV_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "util/status.h"

namespace toppriv::index {

/// One posting: document id and within-document term frequency.
struct Posting {
  corpus::DocId doc = 0;
  uint32_t tf = 0;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.doc == b.doc && a.tf == b.tf;
  }
};

/// Immutable delta+varint encoded posting list.
///
/// Postings are appended in strictly increasing doc order; doc ids are
/// delta-encoded and term frequencies varint-encoded, matching how real
/// engines (and the paper's size arithmetic) store inverted lists.
class PostingList {
 public:
  PostingList() = default;

  /// Incremental builder; Append requires ascending doc ids.
  class Builder {
   public:
    Builder() = default;
    void Append(corpus::DocId doc, uint32_t tf);
    /// Finalizes into an immutable list.
    PostingList Build();

   private:
    std::string bytes_;
    uint32_t count_ = 0;
    corpus::DocId last_doc_ = 0;
    bool has_any_ = false;
  };

  /// Forward iterator over decoded postings.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);
    /// True if a current posting is available.
    bool Valid() const { return valid_; }
    const Posting& Get() const { return current_; }
    void Next();

   private:
    const PostingList* list_;
    size_t pos_ = 0;
    Posting current_;
    bool valid_ = false;
    bool first_ = true;
  };

  Iterator begin() const { return Iterator(this); }

  /// Number of postings (paper: inverted-list length).
  uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Encoded byte size (used by index_stats and Fig. 6).
  size_t ByteSize() const { return bytes_.size(); }

  /// Decodes the whole list (convenience for tests / scoring).
  std::vector<Posting> Decode() const;

  /// Serialization. DecodeFrom validates the body structurally (exactly
  /// `count` well-formed (delta, tf) pairs) before returning, so hostile
  /// bytes never reach the CHECK-aborting Iterator, and rejects any doc id
  /// at or above `max_doc_exclusive` (accumulated in 64 bits, so wrapped
  /// hostile deltas cannot sneak back into range).
  void EncodeTo(std::string* out) const;
  static util::StatusOr<PostingList> DecodeFrom(
      const std::string& buf, size_t* pos,
      uint64_t max_doc_exclusive = UINT64_MAX);

 private:
  std::string bytes_;
  uint32_t count_ = 0;
};

}  // namespace toppriv::index

#endif  // TOPPRIV_INDEX_POSTING_LIST_H_
