// Compressed posting list: the per-term inverted list of <doc, tf> pairs.
//
// The paper's Section II leans on posting-list statistics (average length
// 186.7 vs maximum 127,848 on WSJ) to argue PIR is impractical; this module
// provides the same structures and byte-accurate size accounting.
//
// Storage is BLOCK-ENCODED: postings are grouped in blocks of
// kPostingBlockSize (128). Within a block the doc-id deltas are stored
// first, then the term frequencies (group-varint-style layout: the two
// streams batch-decode into the parallel arrays of a PostingBlock with no
// interleaving branches). The delta chain is continuous across blocks —
// the first delta of block b+1 is relative to the last doc of block b, and
// the very first delta of the list is the absolute doc id — so ByteSize()
// is byte-for-byte the classic interleaved delta+varint size the paper's
// Fig. 6 / §II arithmetic (and ShardedIndex::ComputeStats's cross-shard
// re-pricing) assume. A per-block directory carries each block's first and
// last doc id (forward skipping without decoding) and its maximum tf
// (block-level score upper bounds for the MaxScore evaluator).
#ifndef TOPPRIV_INDEX_POSTING_LIST_H_
#define TOPPRIV_INDEX_POSTING_LIST_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "util/status.h"

namespace toppriv::index {

/// One posting: document id and within-document term frequency.
struct Posting {
  corpus::DocId doc = 0;
  uint32_t tf = 0;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.doc == b.doc && a.tf == b.tf;
  }
};

/// Postings per block. 128 keeps a decoded block (1 KiB of doc ids + 512 B
/// of tfs) inside L1 while amortizing the per-block directory entry to
/// well under a bit per posting.
inline constexpr uint32_t kPostingBlockSize = 128;

/// One batch-decoded block: parallel doc/tf arrays, valid in [0, count).
/// Reused across blocks (and queries) by evaluators; ~1.5 KiB, so it lives
/// in scratch space or on the stack, never per-posting on the heap.
struct PostingBlock {
  std::array<corpus::DocId, kPostingBlockSize> docs;
  std::array<uint32_t, kPostingBlockSize> tfs;
  uint32_t count = 0;
};

/// Immutable block-encoded posting list.
///
/// Postings are appended in strictly increasing doc order; doc ids are
/// delta-encoded and term frequencies varint-encoded, matching how real
/// engines (and the paper's size arithmetic) store inverted lists.
class PostingList {
 public:
  /// Per-block directory entry. `offset` points at the block's delta group
  /// inside the encoded byte stream; `first_doc`/`last_doc` bound the
  /// block's doc ids (skipping), `max_tf` bounds its term frequencies
  /// (score upper bounds).
  struct BlockInfo {
    uint32_t offset = 0;
    uint32_t count = 0;
    corpus::DocId first_doc = 0;
    corpus::DocId last_doc = 0;
    uint32_t max_tf = 0;
  };

  PostingList() = default;

  /// Incremental builder; Append requires ascending doc ids.
  class Builder {
   public:
    Builder() = default;
    void Append(corpus::DocId doc, uint32_t tf);
    /// Finalizes into an immutable list.
    PostingList Build();

   private:
    void FlushBlock();

    std::string bytes_;
    std::vector<BlockInfo> blocks_;
    uint32_t count_ = 0;
    corpus::DocId last_doc_ = 0;
    bool has_any_ = false;
    uint32_t list_max_tf_ = 0;
    // Pending (not yet flushed) block.
    std::array<uint64_t, kPostingBlockSize> pending_deltas_;
    std::array<uint32_t, kPostingBlockSize> pending_tfs_;
    std::array<corpus::DocId, kPostingBlockSize> pending_docs_;
    uint32_t pending_ = 0;
  };

  /// Forward iterator over decoded postings. Batch-decodes one block at a
  /// time into an internal PostingBlock; kept for term-at-a-time callers
  /// and stats walks. Evaluators that skip should use the block directory
  /// plus DecodeBlock directly.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);
    /// True if a current posting is available.
    bool Valid() const { return valid_; }
    const Posting& Get() const { return current_; }
    void Next();

   private:
    const PostingList* list_;
    PostingBlock block_;
    size_t block_idx_ = 0;
    uint32_t pos_ = 0;
    Posting current_;
    bool valid_ = false;
  };

  Iterator begin() const { return Iterator(this); }

  /// Number of postings (paper: inverted-list length).
  uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Block directory.
  size_t num_blocks() const { return blocks_.size(); }
  const BlockInfo& block(size_t b) const;
  /// Maximum term frequency across the whole list (0 when empty); the
  /// list-level score bound MaxScore partitions terms with.
  uint32_t max_tf() const { return list_max_tf_; }

  /// Batch-decodes block `b` into `out` (out->count postings).
  void DecodeBlock(size_t b, PostingBlock* out) const;

  /// Encoded byte size (used by index_stats and Fig. 6). Identical to the
  /// classic interleaved delta+varint encoding: the block layout only
  /// reorders varints, never adds bytes, and the directory is derived
  /// metadata, not payload.
  size_t ByteSize() const { return bytes_.size(); }

  /// Decodes the whole list (convenience for tests / scoring).
  std::vector<Posting> Decode() const;

  /// Serialization. EncodeTo writes the versioned block format (a format
  /// tag above the 32-bit count space keeps it distinguishable from legacy
  /// headers); DecodeFrom additionally accepts the legacy interleaved v0
  /// format, so pre-block blobs keep loading. Either way the body is
  /// validated structurally before anything can iterate it — exact posting
  /// count, strictly increasing doc ids accumulated in 64 bits (wrapped
  /// hostile deltas cannot sneak back into range), nonzero u32 tfs, every
  /// doc id below `max_doc_exclusive` — and the block directory is rebuilt
  /// during that same validation pass, never trusted from the wire.
  void EncodeTo(std::string* out) const;
  static util::StatusOr<PostingList> DecodeFrom(
      const std::string& buf, size_t* pos,
      uint64_t max_doc_exclusive = UINT64_MAX);

 private:
  std::string bytes_;
  std::vector<BlockInfo> blocks_;
  uint32_t count_ = 0;
  uint32_t list_max_tf_ = 0;
};

}  // namespace toppriv::index

#endif  // TOPPRIV_INDEX_POSTING_LIST_H_
