#include "baselines/trackmenot.h"

#include <unordered_set>

#include "util/check.h"

namespace toppriv::baselines {

TrackMeNot::TrackMeNot(const corpus::Corpus& corpus, TrackMeNotMode mode)
    : corpus_(corpus), mode_(mode) {
  if (mode_ == TrackMeNotMode::kFrequencyWeighted) {
    const text::Vocabulary& vocab = corpus_.vocabulary();
    std::vector<double> weights(vocab.size(), 0.0);
    for (text::TermId w = 0; w < vocab.size(); ++w) {
      weights[w] = static_cast<double>(vocab.CollectionFreq(w));
    }
    frequency_cdf_ = util::BuildCdf(weights);
    TOPPRIV_CHECK(!frequency_cdf_.empty());
  }
}

std::vector<text::TermId> TrackMeNot::MakeGhost(size_t length,
                                                util::Rng* rng) const {
  const size_t vocab_size = corpus_.vocabulary_size();
  TOPPRIV_CHECK_GT(vocab_size, 0u);
  std::unordered_set<text::TermId> used;
  std::vector<text::TermId> ghost;
  size_t attempts = 0;
  while (ghost.size() < length && attempts < 40 * length + 100) {
    ++attempts;
    text::TermId w;
    if (mode_ == TrackMeNotMode::kUniformRandom) {
      w = static_cast<text::TermId>(rng->UniformInt(vocab_size));
    } else {
      w = static_cast<text::TermId>(rng->DiscreteFromCdf(frequency_cdf_));
    }
    if (used.insert(w).second) ghost.push_back(w);
  }
  return ghost;
}

std::vector<std::vector<text::TermId>> TrackMeNot::MakeCycle(
    const std::vector<text::TermId>& user_query, size_t num_ghosts,
    util::Rng* rng, size_t* user_index) const {
  TOPPRIV_CHECK(!user_query.empty());
  std::vector<std::vector<text::TermId>> cycle = {user_query};
  for (size_t i = 0; i < num_ghosts; ++i) {
    // Random length around the user query's (TrackMeNot pads queries to
    // plausible search lengths; we mirror TopPriv's range for fairness).
    size_t length = std::max<size_t>(
        1, static_cast<size_t>(
               rng->UniformInt(int64_t(1),
                               int64_t(2 * user_query.size()))));
    cycle.push_back(MakeGhost(length, rng));
  }
  // Shuffle, tracking the genuine query.
  std::vector<size_t> order(cycle.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  std::vector<std::vector<text::TermId>> shuffled(cycle.size());
  size_t genuine = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    shuffled[i] = std::move(cycle[order[i]]);
    if (order[i] == 0) genuine = i;
  }
  if (user_index != nullptr) *user_index = genuine;
  return shuffled;
}

}  // namespace toppriv::baselines
