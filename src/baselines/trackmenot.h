// TrackMeNot-style ghost query generator [Howe & Nissenbaum], the paper's
// Section II first baseline: hide the genuine query among RANDOMLY generated
// ghost queries. The paper's critique — which bench/baselines_compare
// quantifies — is that (a) random term combinations are not semantically
// coherent, so an adversary dismisses them on sight (Def. 3), and (b) even
// when kept, random ghosts may fail to mask the *topic* of interest (the
// "M-1 Abrams tank" vs "SQ-333 Changi airport" example in Section I).
#ifndef TOPPRIV_BASELINES_TRACKMENOT_H_
#define TOPPRIV_BASELINES_TRACKMENOT_H_

#include <vector>

#include "corpus/corpus.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace toppriv::baselines {

/// Ghost-generation flavors TrackMeNot historically shipped.
enum class TrackMeNotMode {
  /// Uniform random vocabulary words (the original RSS-seed behaviour
  /// approximated over the corpus vocabulary).
  kUniformRandom,
  /// Words sampled proportionally to collection frequency (popular-term
  /// lists; looks slightly more like real traffic).
  kFrequencyWeighted,
};

/// Client-side random ghost injector. Unlike TopPriv it is topic-blind:
/// it neither models the user intention nor verifies that ghosts mask it.
class TrackMeNot {
 public:
  /// Borrows the corpus (for vocabulary statistics).
  TrackMeNot(const corpus::Corpus& corpus, TrackMeNotMode mode);

  /// Produces a cycle of `num_ghosts` random ghost queries around the user
  /// query, shuffled; `user_index` receives the genuine query's position.
  std::vector<std::vector<text::TermId>> MakeCycle(
      const std::vector<text::TermId>& user_query, size_t num_ghosts,
      util::Rng* rng, size_t* user_index) const;

  TrackMeNotMode mode() const { return mode_; }

 private:
  std::vector<text::TermId> MakeGhost(size_t length, util::Rng* rng) const;

  const corpus::Corpus& corpus_;
  TrackMeNotMode mode_;
  std::vector<double> frequency_cdf_;
};

}  // namespace toppriv::baselines

#endif  // TOPPRIV_BASELINES_TRACKMENOT_H_
