#include "baselines/canonical.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace toppriv::baselines {

namespace {

// Euclidean distance in factor space.
double Distance(util::Span<const float> a, util::Span<const float> b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

CanonicalQueryScheme::CanonicalQueryScheme(const corpus::Corpus& corpus,
                                           const topicmodel::LsaModel& lsa,
                                           CanonicalOptions options)
    : corpus_(corpus), lsa_(lsa), options_(options) {
  TOPPRIV_CHECK_GE(options_.terms_per_query, 2u);
  TOPPRIV_CHECK_GE(options_.group_size, 2u);
  const text::Vocabulary& vocab = corpus_.vocabulary();

  // Step (a): candidate terms, ranked by TF-IDF mass, embedded in factor
  // space via the LSA term vectors.
  std::vector<std::pair<double, text::TermId>> ranked;
  const double n_docs = static_cast<double>(corpus_.num_documents());
  for (text::TermId w = 0; w < vocab.size(); ++w) {
    uint32_t df = vocab.DocFreq(w);
    if (df == 0) continue;
    double mass = static_cast<double>(vocab.CollectionFreq(w)) *
                  std::log(n_docs / static_cast<double>(df));
    if (mass > 0.0) ranked.push_back({mass, w});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() > options_.max_terms_considered) {
    ranked.resize(options_.max_terms_considered);
  }
  std::vector<text::TermId> candidates;
  candidates.reserve(ranked.size());
  for (const auto& [mass, w] : ranked) candidates.push_back(w);

  // Step (b): greedy nearest-neighbor clustering into canonical queries.
  // (The original uses a kd-tree for the NN retrievals; at 30 dimensions a
  // kd-tree degenerates to linear scans anyway, so we scan directly.)
  std::vector<bool> assigned(candidates.size(), false);
  util::Rng rng(options_.seed);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (assigned[i]) continue;
    util::Span<const float> seed_vec = lsa_.TermVector(candidates[i]);
    // Collect the nearest unassigned neighbors of the seed.
    std::vector<std::pair<double, size_t>> near;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (assigned[j] || j == i) continue;
      near.push_back({Distance(seed_vec, lsa_.TermVector(candidates[j])), j});
    }
    size_t want = options_.terms_per_query - 1;
    if (near.size() < want) break;  // leftovers too sparse to cluster
    std::partial_sort(near.begin(), near.begin() + want, near.end());

    CanonicalQuery query;
    query.terms.push_back(candidates[i]);
    assigned[i] = true;
    for (size_t n = 0; n < want; ++n) {
      query.terms.push_back(candidates[near[n].second]);
      assigned[near[n].second] = true;
    }
    // Centroid and popularity.
    query.centroid.assign(lsa_.num_factors(), 0.f);
    for (text::TermId w : query.terms) {
      util::Span<const float> v = lsa_.TermVector(w);
      for (size_t f = 0; f < v.size(); ++f) query.centroid[f] += v[f];
      query.popularity += static_cast<double>(vocab.CollectionFreq(w));
    }
    for (float& x : query.centroid) {
      x /= static_cast<float>(query.terms.size());
    }
    queries_.push_back(std::move(query));
  }
  TOPPRIV_CHECK(!queries_.empty());

  // Step (c): group canonical queries of similar popularity from different
  // parts of the factor space. Sort by popularity; within each consecutive
  // popularity window, greedily pick members maximizing mutual distance.
  std::vector<size_t> by_popularity(queries_.size());
  std::iota(by_popularity.begin(), by_popularity.end(), 0);
  std::sort(by_popularity.begin(), by_popularity.end(),
            [this](size_t a, size_t b) {
              return queries_[a].popularity > queries_[b].popularity;
            });

  const size_t window = options_.group_size * 3;  // popularity bucket
  std::vector<bool> grouped(queries_.size(), false);
  for (size_t start = 0; start + options_.group_size <= by_popularity.size();
       start += window) {
    size_t end = std::min(start + window, by_popularity.size());
    // Greedy max-dispersion selection inside the bucket.
    std::vector<size_t> bucket;
    for (size_t i = start; i < end; ++i) {
      if (!grouped[by_popularity[i]]) bucket.push_back(by_popularity[i]);
    }
    while (bucket.size() >= options_.group_size) {
      std::vector<size_t> group = {bucket.front()};
      bucket.erase(bucket.begin());
      while (group.size() < options_.group_size && !bucket.empty()) {
        // Pick the bucket member farthest from the current group members.
        size_t best_pos = 0;
        double best_dist = -1.0;
        for (size_t pos = 0; pos < bucket.size(); ++pos) {
          double dist = 0.0;
          for (size_t g : group) {
            dist += Distance(queries_[bucket[pos]].centroid,
                             queries_[g].centroid);
          }
          if (dist > best_dist) {
            best_dist = dist;
            best_pos = pos;
          }
        }
        group.push_back(bucket[best_pos]);
        bucket.erase(bucket.begin() + static_cast<long>(best_pos));
      }
      if (group.size() < options_.group_size) break;
      uint32_t group_id = static_cast<uint32_t>(groups_.size());
      for (size_t q : group) {
        queries_[q].group = group_id;
        grouped[q] = true;
      }
      groups_.push_back(std::move(group));
    }
  }
  // Any leftover ungrouped canonical queries form a final catch-all group.
  std::vector<size_t> leftovers;
  for (size_t q = 0; q < queries_.size(); ++q) {
    if (!grouped[q]) leftovers.push_back(q);
  }
  if (!leftovers.empty()) {
    uint32_t group_id = static_cast<uint32_t>(groups_.size());
    for (size_t q : leftovers) queries_[q].group = group_id;
    groups_.push_back(std::move(leftovers));
  }
  num_groups_ = groups_.size();
}

size_t CanonicalQueryScheme::ClosestCanonical(
    const std::vector<text::TermId>& user_query) const {
  std::vector<float> projection = lsa_.ProjectQuery(user_query);
  size_t best = 0;
  double best_cos = -2.0;
  for (size_t q = 0; q < queries_.size(); ++q) {
    double cos = topicmodel::LsaModel::Cosine(projection, queries_[q].centroid);
    if (cos > best_cos) {
      best_cos = cos;
      best = q;
    }
  }
  return best;
}

std::vector<std::vector<text::TermId>> CanonicalQueryScheme::Substitute(
    const std::vector<text::TermId>& user_query, util::Rng* rng,
    size_t* substituted_index) const {
  size_t canonical = ClosestCanonical(user_query);
  const std::vector<size_t>& group = groups_[queries_[canonical].group];

  std::vector<size_t> order = group;
  rng->Shuffle(&order);
  std::vector<std::vector<text::TermId>> cycle;
  size_t position = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    cycle.push_back(queries_[order[i]].terms);
    if (order[i] == canonical) position = i;
  }
  if (substituted_index != nullptr) *substituted_index = position;
  return cycle;
}

}  // namespace toppriv::baselines
