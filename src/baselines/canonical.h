// The Murugesan-Clifton "plausibly deniable search" baseline [10]
// (paper Section II).
//
// Offline, the scheme (a) maps dictionary terms into a 30-factor LSI space,
// (b) forms canonical queries from terms in close factor-space proximity,
// and (c) groups canonical queries of similar popularity drawn from
// different parts of the factor space. At runtime a user query is REPLACED
// by its closest canonical query; the rest of that query's group is
// submitted alongside as cover. The paper's critiques, which
// bench/baselines_compare quantifies: the substitution perturbs the
// precision/recall the engine was designed for, and the static groups limit
// how well the cover matches any particular intention.
#ifndef TOPPRIV_BASELINES_CANONICAL_H_
#define TOPPRIV_BASELINES_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "text/vocabulary.h"
#include "topicmodel/lsa.h"
#include "util/rng.h"

namespace toppriv::baselines {

/// Configuration following [10]'s construction.
struct CanonicalOptions {
  /// Terms per canonical query (seed + nearest neighbors).
  size_t terms_per_query = 6;
  /// Canonical queries per deniability group (the k of k-anonymity-style
  /// plausible deniability).
  size_t group_size = 4;
  /// Only the most informative terms participate (TF-IDF mass cutoff).
  size_t max_terms_considered = 2500;
  uint64_t seed = 19;
};

/// One canonical query.
struct CanonicalQuery {
  std::vector<text::TermId> terms;
  std::vector<float> centroid;  // factor-space centroid
  double popularity = 0.0;      // summed collection frequency
  uint32_t group = 0;           // deniability group id
};

/// The static canonical-query universe plus runtime substitution.
class CanonicalQueryScheme {
 public:
  /// Builds the canonical queries and groups from the corpus and a trained
  /// LSA model (both borrowed; must outlive the scheme).
  CanonicalQueryScheme(const corpus::Corpus& corpus,
                       const topicmodel::LsaModel& lsa,
                       CanonicalOptions options);

  /// Runtime: substitutes `user_query` with its closest canonical query and
  /// returns that query's whole group as the submitted cycle (shuffled).
  /// `substituted_index` receives the position of the substituted query.
  std::vector<std::vector<text::TermId>> Substitute(
      const std::vector<text::TermId>& user_query, util::Rng* rng,
      size_t* substituted_index) const;

  /// Index of the canonical query closest to `user_query` in factor space.
  size_t ClosestCanonical(const std::vector<text::TermId>& user_query) const;

  const std::vector<CanonicalQuery>& canonical_queries() const {
    return queries_;
  }
  size_t num_groups() const { return num_groups_; }

 private:
  const corpus::Corpus& corpus_;
  const topicmodel::LsaModel& lsa_;
  CanonicalOptions options_;
  std::vector<CanonicalQuery> queries_;
  std::vector<std::vector<size_t>> groups_;  // group -> query indices
  size_t num_groups_ = 0;
};

}  // namespace toppriv::baselines

#endif  // TOPPRIV_BASELINES_CANONICAL_H_
