#include "pdx/thesaurus.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace toppriv::pdx {

Thesaurus::Thesaurus(const corpus::Corpus& corpus,
                     const topicmodel::LdaModel& model)
    : num_topics_(model.num_topics()) {
  const text::Vocabulary& vocab = corpus.vocabulary();
  const size_t vocab_size = vocab.size();
  TOPPRIV_CHECK_EQ(vocab_size, model.vocab_size());
  const double n_docs = static_cast<double>(corpus.num_documents());

  // IDF per term; terms that never occur get the rarest band.
  std::vector<double> idf(vocab_size, 0.0);
  std::vector<double> present_idfs;
  present_idfs.reserve(vocab_size);
  for (size_t w = 0; w < vocab_size; ++w) {
    uint32_t df = vocab.DocFreq(static_cast<text::TermId>(w));
    if (df > 0) {
      idf[w] = std::log(n_docs / static_cast<double>(df));
      present_idfs.push_back(idf[w]);
    }
  }
  std::sort(present_idfs.begin(), present_idfs.end());

  auto band_of = [&](double v) -> size_t {
    if (present_idfs.empty()) return 0;
    // Quantile index of v among observed IDFs.
    size_t pos = static_cast<size_t>(
        std::lower_bound(present_idfs.begin(), present_idfs.end(), v) -
        present_idfs.begin());
    size_t band = pos * kNumBands / present_idfs.size();
    return std::min(band, kNumBands - 1);
  };

  band_.resize(vocab_size);
  dominant_.resize(vocab_size);
  candidates_.assign(num_topics_ * kNumBands, {});

  const std::vector<double>& prior = model.prior();
  for (size_t w = 0; w < vocab_size; ++w) {
    uint32_t df = vocab.DocFreq(static_cast<text::TermId>(w));
    band_[w] = static_cast<uint8_t>(df > 0 ? band_of(idf[w]) : kNumBands - 1);
    // Dominant topic: argmax_t Pr(w|t) Pr(t).
    double best = -1.0;
    topicmodel::TopicId best_t = 0;
    for (size_t t = 0; t < num_topics_; ++t) {
      double score =
          model.Phi(static_cast<topicmodel::TopicId>(t),
                    static_cast<text::TermId>(w)) *
          prior[t];
      if (score > best) {
        best = score;
        best_t = static_cast<topicmodel::TopicId>(t);
      }
    }
    dominant_[w] = best_t;
    if (df > 0) {
      candidates_[static_cast<size_t>(best_t) * kNumBands + band_[w]]
          .push_back(static_cast<text::TermId>(w));
    }
  }
}

size_t Thesaurus::SpecificityBand(text::TermId term) const {
  TOPPRIV_CHECK_LT(term, band_.size());
  return band_[term];
}

topicmodel::TopicId Thesaurus::DominantTopic(text::TermId term) const {
  TOPPRIV_CHECK_LT(term, dominant_.size());
  return dominant_[term];
}

const std::vector<text::TermId>& Thesaurus::Candidates(
    topicmodel::TopicId topic, size_t band) const {
  TOPPRIV_CHECK_LT(topic, num_topics_);
  TOPPRIV_CHECK_LT(band, kNumBands);
  return candidates_[static_cast<size_t>(topic) * kNumBands + band];
}

}  // namespace toppriv::pdx
