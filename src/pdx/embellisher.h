// The PDX query-embellishment baseline (paper Section V-C).
//
// PDX injects decoy terms into the user query itself: an embellished query
// q_e with |q_e| = f * |q_u| for expansion factor f, where decoys point at
// plausible alternative topics and match the genuine terms' specificity.
// (In the original system a modified engine then scores documents against
// the genuine terms only, under homomorphic encryption; for the privacy
// comparison all that matters is the embellished query the adversary sees.)
#ifndef TOPPRIV_PDX_EMBELLISHER_H_
#define TOPPRIV_PDX_EMBELLISHER_H_

#include <vector>

#include "pdx/thesaurus.h"
#include "util/rng.h"

namespace toppriv::pdx {

/// An embellished query.
struct EmbellishedQuery {
  /// Genuine terms plus decoys, shuffled.
  std::vector<text::TermId> terms;
  /// The decoy topics the embellisher aimed at (diagnostics).
  std::vector<topicmodel::TopicId> decoy_topics;
  /// Number of decoy terms actually injected.
  size_t num_decoys = 0;
};

/// Decoy-term injector.
class PdxEmbellisher {
 public:
  /// Borrows the thesaurus, which must outlive the embellisher.
  explicit PdxEmbellisher(const Thesaurus& thesaurus)
      : thesaurus_(thesaurus) {}

  /// Embellishes `query` to `expansion_factor` times its length.
  /// Requires expansion_factor >= 1.
  EmbellishedQuery Embellish(const std::vector<text::TermId>& query,
                             double expansion_factor, util::Rng* rng) const;

 private:
  const Thesaurus& thesaurus_;
};

}  // namespace toppriv::pdx

#endif  // TOPPRIV_PDX_EMBELLISHER_H_
