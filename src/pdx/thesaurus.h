// Corpus-derived thesaurus for the PDX baseline [Pang-Ding-Xiao, VLDB'10].
//
// PDX selects decoy terms "matched to the genuine search terms in
// specificity and semantic association, using information extracted
// automatically from a thesaurus". We reconstruct that thesaurus from
// corpus statistics: specificity = IDF band; semantic association = the
// term's dominant LDA topic (terms sharing a dominant topic are
// semantically associated).
#ifndef TOPPRIV_PDX_THESAURUS_H_
#define TOPPRIV_PDX_THESAURUS_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "topicmodel/lda_model.h"

namespace toppriv::pdx {

/// Specificity/association lookup tables.
class Thesaurus {
 public:
  /// Number of IDF quantile bands used for specificity matching.
  static constexpr size_t kNumBands = 8;

  /// Builds the thesaurus from the corpus (IDF) and model (associations).
  Thesaurus(const corpus::Corpus& corpus, const topicmodel::LdaModel& model);

  /// Specificity band of a term: 0 = most common .. kNumBands-1 = rarest.
  size_t SpecificityBand(text::TermId term) const;

  /// Dominant topic of a term: argmax_t Pr(t|w) with
  /// Pr(t|w) ∝ Pr(w|t) Pr(t).
  topicmodel::TopicId DominantTopic(text::TermId term) const;

  /// Terms whose dominant topic is `topic` and whose specificity band is
  /// `band` (may be empty; callers fall back to adjacent bands).
  const std::vector<text::TermId>& Candidates(topicmodel::TopicId topic,
                                              size_t band) const;

  size_t num_topics() const { return num_topics_; }

 private:
  size_t num_topics_ = 0;
  std::vector<uint8_t> band_;                     // per term
  std::vector<topicmodel::TopicId> dominant_;     // per term
  /// candidates_[topic * kNumBands + band] = term ids.
  std::vector<std::vector<text::TermId>> candidates_;
};

}  // namespace toppriv::pdx

#endif  // TOPPRIV_PDX_THESAURUS_H_
