#include "pdx/embellisher.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace toppriv::pdx {

EmbellishedQuery PdxEmbellisher::Embellish(
    const std::vector<text::TermId>& query, double expansion_factor,
    util::Rng* rng) const {
  TOPPRIV_CHECK_GE(expansion_factor, 1.0);
  TOPPRIV_CHECK(!query.empty());

  EmbellishedQuery out;
  out.terms = query;
  std::unordered_set<text::TermId> used(query.begin(), query.end());

  const size_t target_decoys = static_cast<size_t>(
      std::lround((expansion_factor - 1.0) * static_cast<double>(query.size())));
  if (target_decoys == 0) return out;

  // Topics the genuine terms point at; decoy topics must differ so the
  // embellishment actually suggests *alternative* intentions.
  std::unordered_set<topicmodel::TopicId> genuine_topics;
  for (text::TermId w : query) {
    genuine_topics.insert(thesaurus_.DominantTopic(w));
  }

  // One decoy topic per |q|-sized block of decoys, mirroring PDX's grouping
  // of decoys into coherent alternative intentions.
  const size_t num_groups =
      (target_decoys + query.size() - 1) / query.size();
  const size_t num_topics = thesaurus_.num_topics();

  std::vector<topicmodel::TopicId> decoy_topics;
  std::unordered_set<topicmodel::TopicId> chosen;
  size_t guard = 0;
  while (decoy_topics.size() < num_groups && guard < num_topics * 4 + 16) {
    ++guard;
    topicmodel::TopicId t =
        static_cast<topicmodel::TopicId>(rng->UniformInt(num_topics));
    if (genuine_topics.count(t) || chosen.count(t)) continue;
    chosen.insert(t);
    decoy_topics.push_back(t);
  }
  if (decoy_topics.empty()) return out;
  out.decoy_topics = decoy_topics;

  // For each decoy slot, match the specificity band of the corresponding
  // genuine term; fall back to adjacent bands when a band is empty.
  size_t produced = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_decoys * 40 + 200;
  while (produced < target_decoys && attempts < max_attempts) {
    ++attempts;
    const text::TermId genuine = query[produced % query.size()];
    const topicmodel::TopicId topic =
        decoy_topics[(produced / query.size()) % decoy_topics.size()];
    const size_t want_band = thesaurus_.SpecificityBand(genuine);

    // Search outward from the desired band.
    text::TermId pick = text::kInvalidTerm;
    for (size_t delta = 0; delta < Thesaurus::kNumBands; ++delta) {
      for (int sign : {+1, -1}) {
        long band = static_cast<long>(want_band) +
                    sign * static_cast<long>(delta);
        if (sign < 0 && delta == 0) continue;
        if (band < 0 || band >= static_cast<long>(Thesaurus::kNumBands)) {
          continue;
        }
        const std::vector<text::TermId>& pool =
            thesaurus_.Candidates(topic, static_cast<size_t>(band));
        if (pool.empty()) continue;
        text::TermId cand = pool[rng->UniformInt(pool.size())];
        if (!used.count(cand)) {
          pick = cand;
          break;
        }
      }
      if (pick != text::kInvalidTerm) break;
    }
    if (pick == text::kInvalidTerm) continue;
    used.insert(pick);
    out.terms.push_back(pick);
    ++produced;
  }
  out.num_decoys = produced;
  rng->Shuffle(&out.terms);
  return out;
}

}  // namespace toppriv::pdx
