// In-memory document collection D plus its vocabulary W and, for synthetic
// corpora, the generative ground truth (topic names and per-document topic
// mixtures) used to validate intention extraction.
#ifndef TOPPRIV_CORPUS_CORPUS_H_
#define TOPPRIV_CORPUS_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/status.h"

namespace toppriv::corpus {

/// Dense document identifier (position in Corpus::documents()).
using DocId = uint32_t;

/// One document as a token sequence over term ids (bag-of-words order is
/// irrelevant to every consumer but kept for LDA's token-level sampling).
struct Document {
  DocId id = 0;
  std::string title;
  std::vector<text::TermId> tokens;
  /// Ground-truth topic mixture this document was generated from (empty for
  /// non-synthetic corpora). Indexed by ground-truth topic id.
  std::vector<float> true_mixture;
};

/// A corpus: vocabulary + documents (the paper's D over W).
class Corpus {
 public:
  Corpus() = default;

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  const text::Vocabulary& vocabulary() const { return vocab_; }
  text::Vocabulary& mutable_vocabulary() { return vocab_; }

  const std::vector<Document>& documents() const { return docs_; }
  const Document& document(DocId id) const;

  /// Number of documents (the paper's δ).
  size_t num_documents() const { return docs_.size(); }
  /// Vocabulary size (the paper's ω).
  size_t vocabulary_size() const { return vocab_.size(); }
  /// Total token count across all documents.
  uint64_t total_tokens() const { return total_tokens_; }

  /// Names of the ground-truth topics (empty for non-synthetic corpora).
  const std::vector<std::string>& true_topic_names() const {
    return true_topic_names_;
  }
  void set_true_topic_names(std::vector<std::string> names) {
    true_topic_names_ = std::move(names);
  }

  /// Appends a document, updating vocabulary df/cf statistics.
  DocId AddDocument(std::string title, std::vector<text::TermId> tokens,
                    std::vector<float> true_mixture = {});

  /// Serializes the corpus (vocabulary + documents + ground truth).
  std::string Serialize() const;
  static util::StatusOr<Corpus> Deserialize(const std::string& bytes);

 private:
  text::Vocabulary vocab_;
  std::vector<Document> docs_;
  std::vector<std::string> true_topic_names_;
  uint64_t total_tokens_ = 0;
};

}  // namespace toppriv::corpus

#endif  // TOPPRIV_CORPUS_CORPUS_H_
