// Representative-corpus sampling for LDA training — the paper's stated
// future work (Section V-A): "this difficulty can be overcome by training
// the LDA model on a representative dataset, comprising documents sampled
// from the corpus and/or only the more 'impactful' words (e.g., as
// determined by TF-IDF values) in the vocabulary".
//
// Both reducers preserve the original term-id space (tokens are filtered,
// never renumbered), so a model trained on the reduced corpus plugs
// directly into inference over original queries. bench/ablation_sampling
// measures how much privacy behaviour survives the reduction.
#ifndef TOPPRIV_CORPUS_SAMPLING_H_
#define TOPPRIV_CORPUS_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "util/rng.h"

namespace toppriv::corpus {

/// Sampling knobs.
struct SamplingOptions {
  /// Keep this fraction of documents (uniform without replacement).
  double document_fraction = 1.0;
  /// Keep only the top `vocabulary_fraction` of terms by TF-IDF mass
  /// (collection frequency x idf); other tokens are dropped from the
  /// sampled documents. 1.0 keeps everything.
  double vocabulary_fraction = 1.0;
  uint64_t seed = 47;
};

/// Builds the reduced training corpus. The result shares the original's
/// term-id space: its vocabulary object contains all original terms (so
/// ids remain valid) with statistics recomputed over the sample.
Corpus SampleCorpus(const Corpus& corpus, const SamplingOptions& options);

/// The term ids retained by the vocabulary_fraction rule (sorted by
/// descending TF-IDF mass, truncated). Exposed for tests and diagnostics.
std::vector<text::TermId> ImpactfulTerms(const Corpus& corpus,
                                         double vocabulary_fraction);

}  // namespace toppriv::corpus

#endif  // TOPPRIV_CORPUS_SAMPLING_H_
