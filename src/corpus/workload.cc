#include "corpus/workload.h"

#include <algorithm>
#include <unordered_set>

#include "corpus/topic_spec.h"
#include "util/check.h"
#include "util/strings.h"

namespace toppriv::corpus {

std::string BenchmarkQuery::Text() const { return util::Join(terms, " "); }

std::vector<BenchmarkQuery> WorkloadGenerator::Generate() const {
  TOPPRIV_CHECK_GE(params_.max_terms, params_.min_terms);
  util::Rng rng(params_.seed);
  std::vector<BenchmarkQuery> queries;
  queries.reserve(params_.num_queries);
  for (size_t i = 0; i < params_.num_queries; ++i) {
    queries.push_back(MakeQuery(static_cast<uint32_t>(i + 51), &rng));
  }
  return queries;
}

BenchmarkQuery WorkloadGenerator::MakeQuery(uint32_t id,
                                            util::Rng* rng) const {
  const size_t num_topics = truth_.seed_term_ids.size();
  TOPPRIV_CHECK_GT(num_topics, 0u);

  BenchmarkQuery q;
  q.id = id;

  // Intent: one topic, or two distinct topics with some probability
  // (mirrors TREC statements that straddle subject areas).
  size_t first = rng->UniformInt(static_cast<uint64_t>(num_topics));
  q.intent_topics.push_back(static_cast<uint32_t>(first));
  if (rng->Bernoulli(params_.two_topic_prob) && num_topics > 1) {
    size_t second = rng->UniformInt(static_cast<uint64_t>(num_topics - 1));
    if (second >= first) ++second;
    q.intent_topics.push_back(static_cast<uint32_t>(second));
  }

  size_t num_terms = static_cast<size_t>(
      rng->UniformInt(static_cast<int64_t>(params_.min_terms),
                      static_cast<int64_t>(params_.max_terms)));

  const std::vector<std::string>& general = GeneralWords();
  std::unordered_set<text::TermId> used;
  const text::Vocabulary& vocab = corpus_.vocabulary();

  // Fixed composition: ceil(fraction * n) topical terms, remainder general.
  // (Rejection-sampling the mix instead would dilute long queries, because
  // topical draws collide with already-used seed words far more often than
  // general draws do.)
  size_t want_topical = static_cast<size_t>(
      params_.topical_term_fraction * static_cast<double>(num_terms) + 0.999);
  want_topical = std::min(want_topical, num_terms);

  auto add_term = [&](text::TermId candidate) {
    if (candidate == text::kInvalidTerm) return false;
    if (!used.insert(candidate).second) return false;
    q.term_ids.push_back(candidate);
    q.terms.push_back(vocab.TermString(candidate));
    return true;
  };

  // Topical terms: weighted towards the head of the intent topic's seed
  // list (high Pr(w|t)), exactly the "semantically coherent" mix the
  // paper's TREC queries exhibit.
  size_t attempts = 0;
  size_t max_attempts = want_topical * 40 + 100;
  while (q.term_ids.size() < want_topical && attempts < max_attempts) {
    ++attempts;
    uint32_t topic = q.intent_topics[rng->UniformInt(q.intent_topics.size())];
    const std::vector<text::TermId>& seeds = truth_.seed_term_ids[topic];
    if (seeds.empty()) break;
    // Geometric-ish rank bias: prefer top-ranked seed words.
    size_t rank = 0;
    while (rank + 1 < seeds.size() && rng->Bernoulli(0.55)) ++rank;
    add_term(seeds[rank]);
  }
  // Backfill any shortfall deterministically from the seed lists.
  for (uint32_t topic : q.intent_topics) {
    if (q.term_ids.size() >= want_topical) break;
    for (text::TermId seed : truth_.seed_term_ids[topic]) {
      if (q.term_ids.size() >= want_topical) break;
      add_term(seed);
    }
  }

  // General connective terms for the remainder.
  attempts = 0;
  max_attempts = num_terms * 40 + 100;
  while (q.term_ids.size() < num_terms && attempts < max_attempts) {
    ++attempts;
    add_term(vocab.Lookup(general[rng->UniformInt(general.size())]));
  }
  // Guarantee the minimum length even if rejection sampling stalled.
  for (uint32_t topic : q.intent_topics) {
    if (q.term_ids.size() >= params_.min_terms) break;
    for (text::TermId seed : truth_.seed_term_ids[topic]) {
      if (q.term_ids.size() >= params_.min_terms) break;
      if (used.insert(seed).second) {
        q.term_ids.push_back(seed);
        q.terms.push_back(vocab.TermString(seed));
      }
    }
  }
  TOPPRIV_CHECK_GE(q.term_ids.size(), params_.min_terms);
  return q;
}

}  // namespace toppriv::corpus
