// Ground-truth topic specifications for the synthetic WSJ-substitute corpus.
//
// The paper evaluates on 172,890 Wall Street Journal articles whose latent
// topics (finance, technology, medicine, education, weaponry, aviation, ...)
// are recovered by LDA (its Appendix A lists examples). We cannot ship WSJ,
// so the corpus generator draws documents from a known mixture of the topics
// declared here. Each topic has a name and a seed vocabulary of real English
// words; the generator layers general words and a Zipf tail on top.
#ifndef TOPPRIV_CORPUS_TOPIC_SPEC_H_
#define TOPPRIV_CORPUS_TOPIC_SPEC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace toppriv::corpus {

/// One ground-truth topic: a human-readable name plus seed words that are
/// highly indicative of the topic (analogous to the top-20 word lists in the
/// paper's Tables II-IV).
struct TopicSpec {
  std::string name;
  std::vector<std::string> seed_words;
};

/// The built-in catalog of ground-truth topics (~30 topics mirroring WSJ
/// subject areas, including the paper's running examples: US weaponry,
/// civil aviation, finance, technology, education, medicine).
const std::vector<TopicSpec>& BuiltinTopics();

/// General high-frequency words that appear in every topic (the paper's
/// Table IV "generic" topic illustrates these).
const std::vector<std::string>& GeneralWords();

}  // namespace toppriv::corpus

#endif  // TOPPRIV_CORPUS_TOPIC_SPEC_H_
