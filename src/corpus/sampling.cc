#include "corpus/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace toppriv::corpus {

std::vector<text::TermId> ImpactfulTerms(const Corpus& corpus,
                                         double vocabulary_fraction) {
  TOPPRIV_CHECK_GT(vocabulary_fraction, 0.0);
  TOPPRIV_CHECK_LE(vocabulary_fraction, 1.0);
  const text::Vocabulary& vocab = corpus.vocabulary();
  const double n_docs = static_cast<double>(corpus.num_documents());

  std::vector<std::pair<double, text::TermId>> ranked;
  ranked.reserve(vocab.size());
  for (text::TermId w = 0; w < vocab.size(); ++w) {
    uint32_t df = vocab.DocFreq(w);
    if (df == 0) continue;
    double mass = static_cast<double>(vocab.CollectionFreq(w)) *
                  std::log(1.0 + n_docs / static_cast<double>(df));
    ranked.push_back({mass, w});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  size_t keep = static_cast<size_t>(
      std::ceil(vocabulary_fraction * static_cast<double>(ranked.size())));
  keep = std::min(keep, ranked.size());
  std::vector<text::TermId> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(ranked[i].second);
  return out;
}

Corpus SampleCorpus(const Corpus& corpus, const SamplingOptions& options) {
  TOPPRIV_CHECK_GT(options.document_fraction, 0.0);
  TOPPRIV_CHECK_LE(options.document_fraction, 1.0);

  // Term filter from the impactful-word rule.
  std::vector<bool> keep_term(corpus.vocabulary_size(),
                              options.vocabulary_fraction >= 1.0);
  if (options.vocabulary_fraction < 1.0) {
    for (text::TermId w :
         ImpactfulTerms(corpus, options.vocabulary_fraction)) {
      keep_term[w] = true;
    }
  }

  // Document sample (uniform without replacement, ascending order so the
  // output corpus keeps deterministic ids).
  util::Rng rng(options.seed);
  size_t want_docs = static_cast<size_t>(
      std::ceil(options.document_fraction *
                static_cast<double>(corpus.num_documents())));
  want_docs = std::max<size_t>(1, std::min(want_docs, corpus.num_documents()));
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(corpus.num_documents(), want_docs);
  std::sort(picked.begin(), picked.end());

  Corpus sample;
  // Clone the full term-id space so ids stay valid; statistics are
  // recomputed by AddDocument below.
  text::Vocabulary& vocab = sample.mutable_vocabulary();
  for (text::TermId w = 0; w < corpus.vocabulary_size(); ++w) {
    vocab.AddTerm(corpus.vocabulary().TermString(w));
  }
  sample.set_true_topic_names(corpus.true_topic_names());

  for (size_t d : picked) {
    const Document& doc = corpus.documents()[d];
    std::vector<text::TermId> tokens;
    tokens.reserve(doc.tokens.size());
    for (text::TermId t : doc.tokens) {
      if (keep_term[t]) tokens.push_back(t);
    }
    if (tokens.empty()) continue;  // fully filtered documents help nothing
    sample.AddDocument(doc.title, std::move(tokens),
                       doc.true_mixture);
  }
  TOPPRIV_CHECK_GT(sample.num_documents(), 0u);
  return sample;
}

}  // namespace toppriv::corpus
