#include "corpus/generator.h"

#include <cmath>

#include "corpus/topic_spec.h"
#include "util/check.h"
#include "util/strings.h"

namespace toppriv::corpus {

namespace {

constexpr const char* kOnsets[] = {"b",  "br", "c",  "cl", "d",  "dr", "f",
                                   "fl", "g",  "gr", "h",  "j",  "k",  "l",
                                   "m",  "n",  "p",  "pl", "qu", "r",  "s",
                                   "st", "t",  "tr", "v",  "w",  "z"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "io",
                                   "ou", "or", "ar", "el", "in", "on", "ur"};
constexpr const char* kCodas[] = {"",  "l",  "n",   "r",  "s",  "t",  "m",
                                  "x", "nd", "st",  "rn", "lt", "ck", "sh"};

}  // namespace

std::string MakePseudoWord(size_t i) {
  // Mixed-radix expansion over syllable tables; with 27*15*14 = 5670 distinct
  // two-part stems plus a numeric disambiguator for larger tails.
  constexpr size_t kNumOnsets = std::size(kOnsets);
  constexpr size_t kNumNuclei = std::size(kNuclei);
  constexpr size_t kNumCodas = std::size(kCodas);
  size_t x = i;
  std::string word;
  word += kOnsets[x % kNumOnsets];
  x /= kNumOnsets;
  word += kNuclei[x % kNumNuclei];
  x /= kNumNuclei;
  word += kOnsets[x % kNumOnsets];
  x /= kNumOnsets;
  word += kNuclei[x % kNumNuclei];
  x /= kNumNuclei;
  word += kCodas[x % kNumCodas];
  x /= kNumCodas;
  if (x > 0) word += util::StrFormat("%zu", x);
  return word;
}

size_t CorpusGenerator::NumTrueTopics() { return BuiltinTopics().size(); }

Corpus CorpusGenerator::Generate(GroundTruthModel* ground_truth) const {
  const std::vector<TopicSpec>& topics = BuiltinTopics();
  const std::vector<std::string>& general = GeneralWords();
  const size_t num_topics = topics.size();
  TOPPRIV_CHECK_GT(num_topics, 0u);

  Corpus corpus;
  text::Vocabulary& vocab = corpus.mutable_vocabulary();

  // Intern all terms up front so term ids are stable regardless of document
  // sampling order: seeds first, then general words, then the tail.
  std::vector<std::vector<text::TermId>> seed_ids(num_topics);
  std::vector<std::string> names;
  names.reserve(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    names.push_back(topics[t].name);
    for (const std::string& w : topics[t].seed_words) {
      seed_ids[t].push_back(vocab.AddTerm(w));
    }
  }
  std::vector<text::TermId> general_ids;
  general_ids.reserve(general.size());
  for (const std::string& w : general) general_ids.push_back(vocab.AddTerm(w));

  std::vector<text::TermId> tail_ids;
  tail_ids.reserve(params_.tail_vocab_size);
  for (size_t i = 0; i < params_.tail_vocab_size; ++i) {
    tail_ids.push_back(vocab.AddTerm(MakePseudoWord(i)));
  }
  corpus.set_true_topic_names(names);

  // Build each topic's unnormalized term-weight vector.
  const size_t vocab_size = vocab.size();
  std::vector<std::vector<double>> weights(
      num_topics, std::vector<double>(vocab_size, 0.0));
  const double total_mass =
      params_.seed_mass + params_.general_mass + params_.tail_mass;
  TOPPRIV_CHECK_GT(total_mass, 0.0);

  for (size_t t = 0; t < num_topics; ++t) {
    // Seed words: Zipf-decaying weights summing to seed_mass.
    double zipf_total = 0.0;
    for (size_t r = 0; r < seed_ids[t].size(); ++r) {
      zipf_total += 1.0 / std::pow(double(r + 1), params_.seed_zipf_exponent);
    }
    for (size_t r = 0; r < seed_ids[t].size(); ++r) {
      double w = (1.0 / std::pow(double(r + 1), params_.seed_zipf_exponent)) /
                 zipf_total * params_.seed_mass;
      weights[t][seed_ids[t][r]] += w;
    }
    // General pool: Zipf-decaying weights summing to general_mass.
    double gen_total = 0.0;
    for (size_t r = 0; r < general_ids.size(); ++r) {
      gen_total += 1.0 / std::pow(double(r + 1), 1.0);
    }
    for (size_t r = 0; r < general_ids.size(); ++r) {
      double w = (1.0 / double(r + 1)) / gen_total * params_.general_mass;
      weights[t][general_ids[r]] += w;
    }
    // Tail: each topic covers an interleaved slice (t, t+K, t+2K, ...) of
    // the pseudo-word tail, so tail words remain topic-specific (realistic:
    // jargon is topical) while every topic gets a share. Zipf within slice.
    double tail_total = 0.0;
    size_t slice_size = 0;
    for (size_t i = t; i < tail_ids.size(); i += num_topics) {
      tail_total += 1.0 / std::pow(double(slice_size + 1), 1.1);
      ++slice_size;
    }
    if (slice_size > 0) {
      size_t r = 0;
      for (size_t i = t; i < tail_ids.size(); i += num_topics) {
        double w =
            (1.0 / std::pow(double(r + 1), 1.1)) / tail_total * params_.tail_mass;
        weights[t][tail_ids[i]] += w;
        ++r;
      }
    }
  }

  // Precompute per-topic CDFs for fast token sampling.
  std::vector<std::vector<double>> cdfs(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    cdfs[t] = util::BuildCdf(weights[t]);
    TOPPRIV_CHECK(!cdfs[t].empty());
  }

  util::Rng rng(params_.seed);
  util::Rng doc_rng = rng.Fork(1);

  for (size_t d = 0; d < params_.num_docs; ++d) {
    std::vector<double> theta =
        doc_rng.DirichletSymmetric(params_.doc_topic_alpha, num_topics);
    std::vector<double> theta_cdf = util::BuildCdf(theta);
    int len = doc_rng.Poisson(params_.mean_doc_length);
    if (len < 8) len = 8;  // floor: degenerate empty docs help nothing
    std::vector<text::TermId> tokens;
    tokens.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      size_t topic = doc_rng.DiscreteFromCdf(theta_cdf);
      size_t term = doc_rng.DiscreteFromCdf(cdfs[topic]);
      tokens.push_back(static_cast<text::TermId>(term));
    }
    std::vector<float> mixture(theta.begin(), theta.end());
    corpus.AddDocument(util::StrFormat("doc-%06zu", d), std::move(tokens),
                       std::move(mixture));
  }

  if (ground_truth != nullptr) {
    ground_truth->term_weights = std::move(weights);
    ground_truth->seed_term_ids = std::move(seed_ids);
  }
  return corpus;
}

}  // namespace toppriv::corpus
