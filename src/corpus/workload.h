// TREC-substitute query workload generator.
//
// The paper evaluates on 150 TREC-1/2 ad-hoc queries: clearly topical,
// 2-20 terms each, mixing high-specificity terms with semantically related
// ones (its running example is TREC query 91, "u.s. army, abrams tank m-1,
// ... apache helicopter ah-64"). This generator reproduces those properties
// against the synthetic corpus, and additionally records the ground-truth
// intent topics so experiments can validate intention extraction.
#ifndef TOPPRIV_CORPUS_WORKLOAD_H_
#define TOPPRIV_CORPUS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "util/rng.h"

namespace toppriv::corpus {

/// One benchmark query with generative ground truth.
struct BenchmarkQuery {
  uint32_t id = 0;
  /// Search terms as surface strings (pre-tokenized, lowercase).
  std::vector<std::string> terms;
  /// Same terms as term ids in the corpus vocabulary.
  std::vector<text::TermId> term_ids;
  /// Ground-truth intent: indices into Corpus::true_topic_names().
  std::vector<uint32_t> intent_topics;

  /// Terms joined with spaces (what a user would type).
  std::string Text() const;
};

/// Workload knobs (defaults follow the paper's TREC setup).
struct WorkloadParams {
  size_t num_queries = 150;
  size_t min_terms = 2;
  size_t max_terms = 20;
  /// Probability that a query targets two topics instead of one.
  double two_topic_prob = 0.25;
  /// Fraction of terms drawn from the intent topic(s); the rest come from
  /// the general pool (TREC statements include connective nouns).
  double topical_term_fraction = 0.8;
  uint64_t seed = 91;  // TREC query 91, the paper's running example.
};

/// Generates a deterministic workload against a generated corpus.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Corpus& corpus, const GroundTruthModel& truth,
                    WorkloadParams params)
      : corpus_(corpus), truth_(truth), params_(params) {}

  /// Builds the query set.
  std::vector<BenchmarkQuery> Generate() const;

 private:
  BenchmarkQuery MakeQuery(uint32_t id, util::Rng* rng) const;

  const Corpus& corpus_;
  const GroundTruthModel& truth_;
  WorkloadParams params_;
};

}  // namespace toppriv::corpus

#endif  // TOPPRIV_CORPUS_WORKLOAD_H_
