// Generative synthetic-corpus builder (the WSJ substitute).
//
// Documents are drawn from a sparse Dirichlet mixture over the ground-truth
// topics of topic_spec.h. Each topic's word distribution layers:
//   * its seed vocabulary (Zipf-weighted, carries the topical signal),
//   * the shared general-word pool (makes documents look like prose),
//   * a slice of a synthetic pseudo-word tail (grows the vocabulary towards
//     realistic ω without inventing fake English).
// This exercises exactly the code paths the paper's pipeline exercises on
// WSJ: tokenized bags of words flowing into the index and the LDA trainer.
#ifndef TOPPRIV_CORPUS_GENERATOR_H_
#define TOPPRIV_CORPUS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "util/rng.h"

namespace toppriv::corpus {

/// Knobs for the synthetic corpus.
struct GeneratorParams {
  /// Number of documents to generate (the paper's δ; WSJ had 172,890 — we
  /// default lower for single-machine runs; Fig. 6 sweeps this).
  size_t num_docs = 2000;
  /// Mean document length in tokens (Poisson-distributed).
  double mean_doc_length = 120.0;
  /// Number of pseudo-words in the Zipf tail (vocabulary growth).
  size_t tail_vocab_size = 3000;
  /// Dirichlet concentration for per-document topic mixtures; small values
  /// give sparse mixtures (1-3 dominant topics per document, like news).
  double doc_topic_alpha = 0.08;
  /// Zipf exponent for within-topic seed-word weights.
  double seed_zipf_exponent = 0.9;
  /// Probability mass of a topic's distribution on its seed words.
  double seed_mass = 0.62;
  /// Mass on the shared general pool.
  double general_mass = 0.28;
  /// Mass on the pseudo-word tail (remainder after seed + general).
  double tail_mass = 0.10;
  /// RNG seed (experiments fork from a fixed master seed).
  uint64_t seed = 20120401;  // ICDE 2012 conference date.
};

/// Per-topic term distribution over the full vocabulary, exposed so tests
/// and the workload generator can sample "semantically coherent" terms.
struct GroundTruthModel {
  /// term_weights[t] is an unnormalized weight vector over all term ids.
  std::vector<std::vector<double>> term_weights;
  /// For each topic, term ids of its seed words (descending weight).
  std::vector<std::vector<text::TermId>> seed_term_ids;
};

/// Deterministic corpus generator.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(GeneratorParams params) : params_(params) {}

  /// Generates the corpus. `ground_truth`, when non-null, receives the
  /// topic-word distributions the documents were sampled from.
  Corpus Generate(GroundTruthModel* ground_truth = nullptr) const;

  const GeneratorParams& params() const { return params_; }

  /// Number of ground-truth topics in the builtin catalog.
  static size_t NumTrueTopics();

 private:
  GeneratorParams params_;
};

/// Deterministically builds a pseudo-word ("velortan", "quistrel", ...) for
/// tail index `i`; pure function so the vocabulary is stable across runs.
std::string MakePseudoWord(size_t i);

}  // namespace toppriv::corpus

#endif  // TOPPRIV_CORPUS_GENERATOR_H_
