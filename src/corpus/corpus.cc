#include "corpus/corpus.h"

#include <unordered_map>

#include "util/check.h"
#include "util/io.h"

namespace toppriv::corpus {

const Document& Corpus::document(DocId id) const {
  TOPPRIV_CHECK_LT(id, docs_.size());
  return docs_[id];
}

DocId Corpus::AddDocument(std::string title, std::vector<text::TermId> tokens,
                          std::vector<float> true_mixture) {
  DocId id = static_cast<DocId>(docs_.size());
  // Update df (distinct docs containing the term) and cf (token count).
  std::unordered_map<text::TermId, uint64_t> counts;
  for (text::TermId t : tokens) {
    TOPPRIV_CHECK_LT(t, vocab_.size());
    ++counts[t];
  }
  for (const auto& [term, cf] : counts) {
    vocab_.AddCounts(term, 1, cf);
  }
  total_tokens_ += tokens.size();
  docs_.push_back(Document{id, std::move(title), std::move(tokens),
                           std::move(true_mixture)});
  return id;
}

std::string Corpus::Serialize() const {
  util::BinaryWriter w;
  w.WriteString(vocab_.Serialize());
  w.WriteVarint(true_topic_names_.size());
  for (const auto& name : true_topic_names_) w.WriteString(name);
  w.WriteVarint(docs_.size());
  for (const Document& d : docs_) {
    w.WriteString(d.title);
    w.WriteU32Vector(d.tokens);
    w.WriteFloatVector(d.true_mixture);
  }
  return w.data();
}

util::StatusOr<Corpus> Corpus::Deserialize(const std::string& bytes) {
  util::BinaryReader r(bytes);
  std::string vocab_bytes;
  TOPPRIV_RETURN_IF_ERROR(r.ReadString(&vocab_bytes));
  auto vocab = text::Vocabulary::Deserialize(vocab_bytes);
  if (!vocab.ok()) return vocab.status();

  Corpus corpus;
  uint64_t num_names = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_names));
  corpus.true_topic_names_.resize(num_names);
  for (auto& name : corpus.true_topic_names_) {
    TOPPRIV_RETURN_IF_ERROR(r.ReadString(&name));
  }

  uint64_t num_docs = 0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_docs));
  corpus.docs_.reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    Document d;
    d.id = static_cast<DocId>(i);
    TOPPRIV_RETURN_IF_ERROR(r.ReadString(&d.title));
    TOPPRIV_RETURN_IF_ERROR(r.ReadU32Vector(&d.tokens));
    TOPPRIV_RETURN_IF_ERROR(r.ReadFloatVector(&d.true_mixture));
    corpus.total_tokens_ += d.tokens.size();
    corpus.docs_.push_back(std::move(d));
  }
  // The vocabulary already carries df/cf counts, so install it verbatim
  // rather than recomputing through AddDocument.
  corpus.vocab_ = std::move(vocab).value();
  return corpus;
}

}  // namespace toppriv::corpus
