#include "serving/session_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/check.h"
#include "util/deadline.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace toppriv::serving {

namespace {

// Order-sensitive FNV-1a accumulator for the determinism digest.
class Digest {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = util::Fnv1aStep(h_, (v >> (8 * i)) & 0xffu);
    }
  }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = util::kFnv1aOffsetBasis;
};

// Rng stream id for the open-loop arrival schedule; far outside the dense
// session-id space so arrivals and session randomness never share a stream.
constexpr uint64_t kArrivalStream = 0x9e3779b97f4a7c15ull;

// Nearest-rank percentile over an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(rank + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

SessionDriver::SessionDriver(const topicmodel::LdaModel& model,
                             const topicmodel::LdaInferencer& inferencer,
                             const search::QueryEngine& engine,
                             DriverOptions options)
    : model_(model),
      inferencer_(inferencer),
      engine_(engine),
      options_(std::move(options)) {
  TOPPRIV_CHECK(options_.spec.Validate().ok());
  TOPPRIV_CHECK_GT(options_.top_k, 0u);
  if (options_.session.generator.coherent_ghosts) {
    topic_cdfs_.emplace(model_);
    options_.session.generator.shared_topic_cdfs = &*topic_cdfs_;
  }
  const size_t num_threads = options_.num_threads == 0
                                 ? util::ThreadPool::HardwareConcurrency()
                                 : options_.num_threads;
  if (num_threads > 1) {
    // No concurrent caller can exist yet; the lock satisfies the
    // capability analysis for the guarded pool_ write.
    util::MutexLock lock(&run_mu_);
    pool_ = std::make_unique<util::ThreadPool>(num_threads);
  }
}

SessionStats SessionDriver::RunSession(uint64_t session_id,
                                       const SessionWorkload& workload) const {
  // Everything below depends only on (seed, session_id, workload): the
  // protector, RNG stream and engine scratch are all session/thread-local.
  util::Rng rng = util::Rng(options_.seed).Fork(session_id);
  core::SessionProtector protector(model_, inferencer_, options_.spec,
                                   options_.session);
  SessionStats stats;
  Digest digest;
  for (const std::vector<text::TermId>& query : workload.queries) {
    TOPPRIV_TRACE_SPAN(cycle_span, "serving.cycle");
    TOPPRIV_SCOPED_TIMER_US("serving.cycle_latency_us");
    core::QueryCycle cycle = protector.Protect(query, &rng);
    ++stats.cycles;
    stats.ghosts += cycle.num_ghosts();
    stats.generation_seconds += cycle.generation_seconds;
    stats.exposure_after_sum += cycle.exposure_after;
    if (cycle.met_epsilon2) ++stats.met_epsilon2;
    TOPPRIV_COUNTER_INC("serving.cycles");
    TOPPRIV_HISTOGRAM_OBSERVE("toppriv.ghost_generation_us",
                              cycle.generation_seconds * 1e6,
                              util::LatencyBucketsUs());
    TOPPRIV_HISTOGRAM_OBSERVE("toppriv.ghosts_per_cycle", cycle.num_ghosts(),
                              util::CountBuckets());

    digest.Mix(cycle.user_index);
    digest.Mix(cycle.queries.size());
    for (size_t i = 0; i < cycle.queries.size(); ++i) {
      const std::vector<text::TermId>& q = cycle.queries[i];
      digest.Mix(q.size());
      for (text::TermId t : q) digest.Mix(t);
      std::vector<search::ScoredDoc> results;
      {
        TOPPRIV_TRACE_SPAN(query_span, "serving.query");
        TOPPRIV_SCOPED_TIMER_US("serving.query_latency_us");
        results = engine_.Evaluate(q, options_.top_k);
      }
      ++stats.queries_submitted;
      TOPPRIV_COUNTER_INC("serving.queries");
      digest.Mix(results.size());
      for (const search::ScoredDoc& r : results) {
        digest.Mix(r.doc);
        digest.MixDouble(r.score);
      }
    }
  }
  stats.digest = digest.value();
  return stats;
}

ServingReport SessionDriver::Run(const std::vector<SessionWorkload>& sessions) {
  // Single-flight: a second Run waits here until the first one's fleet
  // drains (see run_mu_'s comment in the header).
  util::MutexLock lock(&run_mu_);
  ServingReport report;
  report.sessions.resize(sessions.size());
  util::WallTimer timer;
  if (pool_ == nullptr || sessions.size() <= 1) {
    for (size_t s = 0; s < sessions.size(); ++s) {
      report.sessions[s] = RunSession(s, sessions[s]);
    }
  } else {
    pool_->ParallelFor(sessions.size(), [&](size_t s) {
      report.sessions[s] = RunSession(s, sessions[s]);
    });
  }
  report.wall_seconds = timer.ElapsedSeconds();
  for (const SessionStats& s : report.sessions) {
    report.total_cycles += s.cycles;
    report.total_queries += s.queries_submitted;
  }
  if (report.wall_seconds > 0.0) {
    report.cycles_per_second =
        static_cast<double>(report.total_cycles) / report.wall_seconds;
    report.queries_per_second =
        static_cast<double>(report.total_queries) / report.wall_seconds;
  }
  return report;
}

OpenLoopReport SessionDriver::RunOpenLoop(
    const std::vector<SessionWorkload>& sessions, const OpenLoopOptions& open) {
  util::MutexLock lock(&run_mu_);
  OpenLoopReport report;
  if (sessions.empty() || open.num_arrivals == 0) return report;
  TOPPRIV_CHECK_GT(open.arrival_qps, 0.0);
  for (const SessionWorkload& w : sessions) {
    TOPPRIV_CHECK(!w.queries.empty());
  }

  // Arrival schedule: exponential inter-arrival gaps drawn from a stream
  // forked off the driver seed, so the OFFERED load is reproducible even
  // though service times are wall clock.
  util::Rng arrival_rng = util::Rng(options_.seed).Fork(kArrivalStream);
  std::vector<double> arrival_times(open.num_arrivals);
  double t = 0.0;
  for (size_t i = 0; i < open.num_arrivals; ++i) {
    t += -std::log1p(-arrival_rng.Uniform()) / open.arrival_qps;
    arrival_times[i] = t;
  }

  // Per-session serialized state: arrivals for one session can overlap in
  // the pool, and the protector (cover story, memoized ghosts) is mutable.
  struct Ctx {
    util::Mutex mu;
    std::unique_ptr<core::SessionProtector> protector GUARDED_BY(mu);
    util::Rng rng GUARDED_BY(mu) = util::Rng(0);
    size_t next_query GUARDED_BY(mu) = 0;
  };
  std::vector<std::unique_ptr<Ctx>> ctxs;
  ctxs.reserve(sessions.size());
  for (size_t s = 0; s < sessions.size(); ++s) {
    auto ctx = std::make_unique<Ctx>();
    util::MutexLock init(&ctx->mu);  // no concurrent observer yet
    ctx->protector = std::make_unique<core::SessionProtector>(
        model_, inferencer_, options_.spec, options_.session);
    ctx->rng = util::Rng(options_.seed).Fork(s);
    ctxs.push_back(std::move(ctx));
  }

  AdmissionController admission(open.admission);
  util::Mutex stats_mu;
  std::vector<double> latencies;
  size_t completed = 0;
  size_t deadline_exceeded = 0;
  util::WallTimer timer;

  auto run_cycle = [&](size_t session_idx, double arrival_s) {
    TOPPRIV_TRACE_SPAN(cycle_span, "serving.open_loop.cycle");
    // Degraded-mode choice is made at service time: if the system drained
    // below the watermark while this cycle queued, it serves at full
    // freshness again.
    const bool degraded = admission.degraded();
    size_t expired = 0;
    bool ok = true;
    {
      Ctx& ctx = *ctxs[session_idx];
      util::MutexLock l(&ctx.mu);
      const SessionWorkload& w = sessions[session_idx];
      const std::vector<text::TermId>& query =
          w.queries[ctx.next_query % w.queries.size()];
      ++ctx.next_query;
      core::QueryCycle cycle =
          degraded ? ctx.protector->ProtectShedRefresh(query, &ctx.rng)
                   : ctx.protector->Protect(query, &ctx.rng);
      TOPPRIV_HISTOGRAM_OBSERVE("toppriv.ghost_generation_us",
                                cycle.generation_seconds * 1e6,
                                util::LatencyBucketsUs());
      util::Deadline deadline = open.deadline_seconds > 0.0
                                    ? util::Deadline::After(open.deadline_seconds)
                                    : util::Deadline::Infinite();
      search::QueryOptions qopts;
      qopts.deadline = &deadline;
      for (const std::vector<text::TermId>& q : cycle.queries) {
        TOPPRIV_TRACE_SPAN(query_span, "serving.query");
        util::StatusOr<std::vector<search::ScoredDoc>> result =
            engine_.EvaluateWithOptions(q, options_.top_k, qopts);
        if (!result.ok()) {
          ok = false;
          if (result.status().code() == util::StatusCode::kDeadlineExceeded) {
            ++expired;
          }
          break;  // the cycle's budget is spent; drop its remaining fan-out
        }
      }
    }
    const double done_s = timer.ElapsedSeconds();
    TOPPRIV_COUNTER_INC("serving.cycles");
    TOPPRIV_COUNTER_ADD("serving.deadline_exceeded", expired);
    if (ok) TOPPRIV_COUNTER_INC("serving.open_loop.completed");
    TOPPRIV_HISTOGRAM_OBSERVE("serving.cycle_latency_us",
                              (done_s - arrival_s) * 1e6,
                              util::LatencyBucketsUs());
    {
      util::MutexLock l(&stats_mu);
      latencies.push_back(done_s - arrival_s);
      if (ok) ++completed;
      deadline_exceeded += expired;
    }
    admission.Finish();
  };

  for (size_t i = 0; i < open.num_arrivals; ++i) {
    const double target = arrival_times[i];
    const double now = timer.ElapsedSeconds();
    if (now < target) {
      std::this_thread::sleep_for(std::chrono::duration<double>(target - now));
    }
    ++report.arrivals;
    TOPPRIV_COUNTER_INC("serving.open_loop.arrivals");
    if (!admission.TryAdmit().ok()) continue;  // shed, counted by the gate
    const size_t s = i % sessions.size();
    if (pool_ == nullptr) {
      run_cycle(s, target);
    } else {
      pool_->Submit([&run_cycle, s, target] { run_cycle(s, target); });
    }
  }
  if (pool_ != nullptr) pool_->Wait();

  report.wall_seconds = timer.ElapsedSeconds();
  report.admitted = admission.admitted();
  report.shed = admission.shed();
  report.degraded_admissions = admission.degraded_admissions();
  report.peak_in_system = admission.peak_in_system();
  report.peak_queue_depth = admission.peak_queue_depth();
  report.completed = completed;
  report.deadline_exceeded = deadline_exceeded;
  if (report.arrivals > 0) {
    report.shed_rate = static_cast<double>(report.shed) /
                       static_cast<double>(report.arrivals);
  }
  if (report.wall_seconds > 0.0) {
    report.cycles_per_second =
        static_cast<double>(report.completed) / report.wall_seconds;
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_latency_seconds = Percentile(latencies, 0.50);
  report.p95_latency_seconds = Percentile(latencies, 0.95);
  report.p99_latency_seconds = Percentile(latencies, 0.99);
  return report;
}

std::vector<SessionWorkload> DealSessions(
    const std::vector<std::vector<text::TermId>>& queries,
    size_t num_sessions) {
  TOPPRIV_CHECK_GT(num_sessions, 0u);
  std::vector<SessionWorkload> sessions(num_sessions);
  for (size_t i = 0; i < queries.size(); ++i) {
    sessions[i % num_sessions].queries.push_back(queries[i]);
  }
  return sessions;
}

}  // namespace toppriv::serving
