#include "serving/session_driver.h"

#include <cstring>

#include "util/check.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace toppriv::serving {

namespace {

// Order-sensitive FNV-1a accumulator for the determinism digest.
class Digest {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = util::Fnv1aStep(h_, (v >> (8 * i)) & 0xffu);
    }
  }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = util::kFnv1aOffsetBasis;
};

}  // namespace

SessionDriver::SessionDriver(const topicmodel::LdaModel& model,
                             const topicmodel::LdaInferencer& inferencer,
                             const search::QueryEngine& engine,
                             DriverOptions options)
    : model_(model),
      inferencer_(inferencer),
      engine_(engine),
      options_(std::move(options)) {
  TOPPRIV_CHECK(options_.spec.Validate().ok());
  TOPPRIV_CHECK_GT(options_.top_k, 0u);
  if (options_.session.generator.coherent_ghosts) {
    topic_cdfs_.emplace(model_);
    options_.session.generator.shared_topic_cdfs = &*topic_cdfs_;
  }
  const size_t num_threads = options_.num_threads == 0
                                 ? util::ThreadPool::HardwareConcurrency()
                                 : options_.num_threads;
  if (num_threads > 1) {
    // No concurrent caller can exist yet; the lock satisfies the
    // capability analysis for the guarded pool_ write.
    util::MutexLock lock(&run_mu_);
    pool_ = std::make_unique<util::ThreadPool>(num_threads);
  }
}

SessionStats SessionDriver::RunSession(uint64_t session_id,
                                       const SessionWorkload& workload) const {
  // Everything below depends only on (seed, session_id, workload): the
  // protector, RNG stream and engine scratch are all session/thread-local.
  util::Rng rng = util::Rng(options_.seed).Fork(session_id);
  core::SessionProtector protector(model_, inferencer_, options_.spec,
                                   options_.session);
  SessionStats stats;
  Digest digest;
  for (const std::vector<text::TermId>& query : workload.queries) {
    core::QueryCycle cycle = protector.Protect(query, &rng);
    ++stats.cycles;
    stats.ghosts += cycle.num_ghosts();
    stats.generation_seconds += cycle.generation_seconds;
    stats.exposure_after_sum += cycle.exposure_after;
    if (cycle.met_epsilon2) ++stats.met_epsilon2;

    digest.Mix(cycle.user_index);
    digest.Mix(cycle.queries.size());
    for (size_t i = 0; i < cycle.queries.size(); ++i) {
      const std::vector<text::TermId>& q = cycle.queries[i];
      digest.Mix(q.size());
      for (text::TermId t : q) digest.Mix(t);
      std::vector<search::ScoredDoc> results =
          engine_.Evaluate(q, options_.top_k);
      ++stats.queries_submitted;
      digest.Mix(results.size());
      for (const search::ScoredDoc& r : results) {
        digest.Mix(r.doc);
        digest.MixDouble(r.score);
      }
    }
  }
  stats.digest = digest.value();
  return stats;
}

ServingReport SessionDriver::Run(const std::vector<SessionWorkload>& sessions) {
  // Single-flight: a second Run waits here until the first one's fleet
  // drains (see run_mu_'s comment in the header).
  util::MutexLock lock(&run_mu_);
  ServingReport report;
  report.sessions.resize(sessions.size());
  util::WallTimer timer;
  if (pool_ == nullptr || sessions.size() <= 1) {
    for (size_t s = 0; s < sessions.size(); ++s) {
      report.sessions[s] = RunSession(s, sessions[s]);
    }
  } else {
    pool_->ParallelFor(sessions.size(), [&](size_t s) {
      report.sessions[s] = RunSession(s, sessions[s]);
    });
  }
  report.wall_seconds = timer.ElapsedSeconds();
  for (const SessionStats& s : report.sessions) {
    report.total_cycles += s.cycles;
    report.total_queries += s.queries_submitted;
  }
  if (report.wall_seconds > 0.0) {
    report.cycles_per_second =
        static_cast<double>(report.total_cycles) / report.wall_seconds;
    report.queries_per_second =
        static_cast<double>(report.total_queries) / report.wall_seconds;
  }
  return report;
}

std::vector<SessionWorkload> DealSessions(
    const std::vector<std::vector<text::TermId>>& queries,
    size_t num_sessions) {
  TOPPRIV_CHECK_GT(num_sessions, 0u);
  std::vector<SessionWorkload> sessions(num_sessions);
  for (size_t i = 0; i < queries.size(); ++i) {
    sessions[i % num_sessions].queries.push_back(queries[i]);
  }
  return sessions;
}

}  // namespace toppriv::serving
