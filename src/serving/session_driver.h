// Multi-session serving layer (the ROADMAP's "heavy traffic" direction).
//
// A SessionDriver runs N independent user sessions against one shared,
// read-only (model, inferencer, engine) triple. Each session owns its
// mutable state — a SessionProtector (cover story + memoized ghosts), an
// RNG stream forked from the driver seed by session id, and its output
// slot — so sessions parallelize with no locks on the hot path and the
// per-session results are bit-identical regardless of the thread count or
// of which worker happens to run which session.
//
// Thread-safety contract with the layers below:
//  - topicmodel::LdaInferencer::InferQuery is const over an immutable model
//    and keeps its Gibbs scratch in an explicit/thread-local workspace;
//  - the word-sampling CDFs live in one core::TopicCdfTable owned by the
//    driver — immutable after construction, lent read-only to every
//    session's generator (it must outlive them all; no lazy mutation);
//  - search::QueryEngine::Evaluate is const and accumulates into per-thread
//    scratch space, never into engine state (both the monolithic and the
//    sharded engine honor this).
#ifndef TOPPRIV_SERVING_SESSION_DRIVER_H_
#define TOPPRIV_SERVING_SESSION_DRIVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "search/engine.h"
#include "serving/admission.h"
#include "topicmodel/inference.h"
#include "topicmodel/lda_model.h"
#include "toppriv/privacy_spec.h"
#include "toppriv/session.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace toppriv::serving {

/// The genuine queries one user issues, in order.
struct SessionWorkload {
  std::vector<std::vector<text::TermId>> queries;
};

/// Driver configuration.
struct DriverOptions {
  /// Worker threads; 0 means util::ThreadPool::HardwareConcurrency().
  size_t num_threads = 1;
  /// Results requested per submitted query (genuine and ghost alike — a
  /// client that asked for fewer ghost results would mark them).
  size_t top_k = 10;
  /// Driver seed; session s draws from Fork(s) of it.
  uint64_t seed = 1;
  core::PrivacySpec spec;
  /// Per-session policy (cover-story size, generator ablations).
  core::SessionOptions session;
};

/// Per-session outcome. Every field except `generation_seconds` (wall
/// clock) is a pure function of (driver seed, session id, session
/// workload) — the determinism tests compare them across thread counts.
struct SessionStats {
  size_t cycles = 0;
  /// Queries actually submitted to the engine (genuine + ghosts).
  size_t queries_submitted = 0;
  size_t ghosts = 0;
  size_t met_epsilon2 = 0;
  double exposure_after_sum = 0.0;
  /// Client-side cycle generation time, summed (wall clock; excluded from
  /// `digest`).
  double generation_seconds = 0.0;
  /// Order-sensitive FNV-1a over every cycle (queries, user index) and
  /// every ranked result list (doc ids and score bit patterns).
  uint64_t digest = 0;
};

/// Aggregate over one Run call.
struct ServingReport {
  /// Indexed like the input workload vector.
  std::vector<SessionStats> sessions;
  size_t total_cycles = 0;
  size_t total_queries = 0;
  double wall_seconds = 0.0;
  double cycles_per_second = 0.0;
  double queries_per_second = 0.0;
};

/// Open-loop (arrival-driven) load configuration. Unlike Run — which is
/// closed-loop (each session issues its next query the instant the previous
/// one returns, so offered load self-throttles to capacity) — RunOpenLoop
/// offers cycles on a deterministic Poisson schedule that does NOT slow
/// down when the engine does. Under overload the backlog grows and the
/// admission controller sheds, which is exactly the regime the latency
/// percentiles and shed rate are meant to expose.
struct OpenLoopOptions {
  /// Mean cycle arrivals per second (> 0).
  double arrival_qps = 100.0;
  /// Total cycle arrivals to offer.
  size_t num_arrivals = 200;
  /// Per-cycle engine deadline in seconds; 0 disables deadlines.
  double deadline_seconds = 0.0;
  /// Load-shedding and degraded-mode thresholds.
  AdmissionOptions admission;
};

/// Outcome of one RunOpenLoop call. Wall-clock driven (no determinism
/// digest): the arrival SCHEDULE is a pure function of the driver seed,
/// but latencies and shed decisions depend on real time by design.
struct OpenLoopReport {
  size_t arrivals = 0;
  size_t admitted = 0;
  /// Rejected with kResourceExhausted at the admission gate.
  size_t shed = 0;
  /// Admitted above the degraded watermark (served via ProtectShedRefresh:
  /// ghost cache refresh shed, ghost emission intact).
  size_t degraded_admissions = 0;
  /// Admitted cycles whose every engine evaluation returned Ok.
  size_t completed = 0;
  /// Engine evaluations rejected with kDeadlineExceeded.
  size_t deadline_exceeded = 0;
  double wall_seconds = 0.0;
  double cycles_per_second = 0.0;
  /// shed / arrivals.
  double shed_rate = 0.0;
  /// Admitted-cycle latency (scheduled arrival -> completion, so queueing
  /// delay counts), nearest-rank percentiles in seconds.
  double p50_latency_seconds = 0.0;
  double p95_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  /// High-water marks from the run's admission controller: most cycles ever
  /// simultaneously in the system, and most ever waiting beyond the
  /// in-flight cap.
  size_t peak_in_system = 0;
  size_t peak_queue_depth = 0;
};

/// Runs independent TopPriv sessions concurrently over a shared engine —
/// monolithic or sharded (a driver-owned shard fleet serves every session
/// identically; the parity suite makes the two indistinguishable).
class SessionDriver {
 public:
  /// Borrows everything; all referents must outlive the driver.
  SessionDriver(const topicmodel::LdaModel& model,
                const topicmodel::LdaInferencer& inferencer,
                const search::QueryEngine& engine, DriverOptions options);

  // Self-referential (options_ points at topic_cdfs_): not copyable/movable.
  SessionDriver(const SessionDriver&) = delete;
  SessionDriver& operator=(const SessionDriver&) = delete;

  /// Protects and executes every session's queries. Safe to call
  /// repeatedly — the worker pool (and with it each worker's thread-local
  /// evaluation/inference scratch) lives for the driver's lifetime, so
  /// repeated calls do not re-pay thread spawn or scratch growth.
  /// One Run at a time per driver: concurrent callers serialize on
  /// run_mu_ (PR 7 — this used to be a prose-only "not reentrant" rule; a
  /// second caller now waits instead of corrupting the first one's fleet).
  ServingReport Run(const std::vector<SessionWorkload>& sessions)
      EXCLUDES(run_mu_);

  /// Offers `open.num_arrivals` cycles on a deterministic Poisson schedule,
  /// dealing arrivals round-robin across `sessions` (each session's queries
  /// are replayed cyclically). Every arrival passes the admission gate:
  /// shed arrivals are counted and dropped; admitted arrivals run on the
  /// pool, in degraded mode via ProtectShedRefresh once the controller is
  /// past its watermark. Serializes with Run on run_mu_.
  OpenLoopReport RunOpenLoop(const std::vector<SessionWorkload>& sessions,
                             const OpenLoopOptions& open) EXCLUDES(run_mu_);

  const DriverOptions& options() const { return options_; }

 private:
  SessionStats RunSession(uint64_t session_id,
                          const SessionWorkload& workload) const;

  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
  const search::QueryEngine& engine_;
  DriverOptions options_;
  /// One word-sampling CDF table for the whole fleet: every session's
  /// generator borrows it read-only instead of building a private O(T*V)
  /// copy. Absent under the incoherent-ghosts ablation, which samples
  /// uniformly.
  std::optional<core::TopicCdfTable> topic_cdfs_;
  /// Serializes Run calls: the worker pool and the per-run report slots
  /// are a single-flight resource (ThreadPool::ParallelFor itself is
  /// concurrency-safe, but interleaved runs would interleave their wall
  /// clocks and defeat the per-run determinism digests).
  mutable util::Mutex run_mu_;
  /// Worker pool, kept across Run calls; null when the resolved thread
  /// count is 1 (sessions then run inline on the caller's thread).
  /// Created in the constructor, used only by the (serialized) Run.
  std::unique_ptr<util::ThreadPool> pool_ GUARDED_BY(run_mu_);
};

/// Deals `queries` round-robin into `num_sessions` session workloads
/// (query i goes to session i % num_sessions), modeling distinct users
/// drawing from one benchmark workload.
std::vector<SessionWorkload> DealSessions(
    const std::vector<std::vector<text::TermId>>& queries,
    size_t num_sessions);

}  // namespace toppriv::serving

#endif  // TOPPRIV_SERVING_SESSION_DRIVER_H_
