// Admission control with load shedding for the serving front-end.
//
// Open-loop traffic does not wait for capacity: arrivals keep coming while
// the engine is saturated, so an unprotected server builds an unbounded
// queue and every query's latency diverges. The controller bounds the
// number of protection cycles "in the system" (queued + in flight); an
// arrival past the bound is REJECTED with kResourceExhausted immediately —
// the classic load-shedding trade: a cheap typed failure now instead of a
// timeout for everyone later.
//
// Degraded mode (the privacy-aware part): as the system approaches
// saturation it first sheds ghost CACHE-REFRESH work — the session stops
// absorbing fresh masking topics into its cover story and reuses the
// memoized ghost queries as-is — while ghost EMISSION is never shed.
// Every admitted genuine query still ships its full complement of v-1
// decoys, because a dropped ghost silently voids the (epsilon1, epsilon2)
// contract; protection degrades LAST, after freshness and after
// throughput. See ARCHITECTURE.md "Failure domains & degraded modes".
#ifndef TOPPRIV_SERVING_ADMISSION_H_
#define TOPPRIV_SERVING_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace toppriv::serving {

struct AdmissionOptions {
  /// Cycles allowed to execute concurrently.
  size_t max_in_flight = 16;
  /// Cycles allowed to wait beyond the in-flight cap. Total capacity is
  /// max_in_flight + max_queue_depth; an arrival past it is shed.
  size_t max_queue_depth = 64;
  /// Occupancy fraction (of total capacity) at which degraded mode begins:
  /// ghost cache refresh is shed while ghost emission continues in full.
  double degraded_watermark = 0.75;
};

/// Counts cycles in the system and applies the caps. Thread-safe: the
/// open-loop driver admits from its dispatcher thread and releases from
/// pool workers.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits one cycle (Ok, occupancy incremented — the caller MUST pair it
  /// with Finish) or sheds it (kResourceExhausted, nothing to release).
  util::Status TryAdmit() EXCLUDES(mu_);

  /// Releases one admitted cycle.
  void Finish() EXCLUDES(mu_);

  /// True while occupancy is at or above the degraded watermark. Sampled
  /// at admission time by the driver to decide whether the cycle runs with
  /// ghost cache refresh shed.
  bool degraded() const EXCLUDES(mu_);

  size_t in_system() const EXCLUDES(mu_);
  /// Occupancy beyond the in-flight cap right now: cycles waiting rather
  /// than executing (0 while in_system <= max_in_flight).
  size_t queue_depth() const EXCLUDES(mu_);
  /// High-water mark of in_system over the controller's lifetime.
  size_t peak_in_system() const EXCLUDES(mu_);
  /// High-water mark of queue_depth over the controller's lifetime.
  size_t peak_queue_depth() const EXCLUDES(mu_);
  uint64_t admitted() const EXCLUDES(mu_);
  uint64_t shed() const EXCLUDES(mu_);
  /// Admissions that ran in degraded (refresh-shedding) mode.
  uint64_t degraded_admissions() const EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }
  /// Total capacity (max_in_flight + max_queue_depth).
  size_t capacity() const { return capacity_; }

 private:
  bool DegradedLocked() const REQUIRES(mu_);
  size_t QueueDepthLocked() const REQUIRES(mu_);

  const AdmissionOptions options_;
  const size_t capacity_;
  const size_t degraded_at_;  // occupancy threshold for degraded mode
  mutable util::Mutex mu_;
  size_t in_system_ GUARDED_BY(mu_) = 0;
  size_t peak_in_system_ GUARDED_BY(mu_) = 0;
  size_t peak_queue_depth_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t shed_ GUARDED_BY(mu_) = 0;
  uint64_t degraded_admissions_ GUARDED_BY(mu_) = 0;
};

}  // namespace toppriv::serving

#endif  // TOPPRIV_SERVING_ADMISSION_H_
