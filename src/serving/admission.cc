#include "serving/admission.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace toppriv::serving {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      capacity_(options.max_in_flight + options.max_queue_depth),
      degraded_at_(static_cast<size_t>(std::ceil(
          options.degraded_watermark *
          static_cast<double>(options.max_in_flight +
                              options.max_queue_depth)))) {
  TOPPRIV_CHECK_GE(capacity_, 1u);
}

bool AdmissionController::DegradedLocked() const {
  return in_system_ >= degraded_at_;
}

util::Status AdmissionController::TryAdmit() {
  util::MutexLock lock(&mu_);
  if (in_system_ >= capacity_) {
    ++shed_;
    return util::Status::ResourceExhausted("admission capacity exhausted");
  }
  ++in_system_;
  ++admitted_;
  if (DegradedLocked()) ++degraded_admissions_;
  return util::Status::Ok();
}

void AdmissionController::Finish() {
  util::MutexLock lock(&mu_);
  TOPPRIV_CHECK_GE(in_system_, 1u);
  --in_system_;
}

bool AdmissionController::degraded() const {
  util::MutexLock lock(&mu_);
  return DegradedLocked();
}

size_t AdmissionController::in_system() const {
  util::MutexLock lock(&mu_);
  return in_system_;
}

uint64_t AdmissionController::admitted() const {
  util::MutexLock lock(&mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  util::MutexLock lock(&mu_);
  return shed_;
}

uint64_t AdmissionController::degraded_admissions() const {
  util::MutexLock lock(&mu_);
  return degraded_admissions_;
}

}  // namespace toppriv::serving
