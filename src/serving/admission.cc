#include "serving/admission.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/metrics.h"

namespace toppriv::serving {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      capacity_(options.max_in_flight + options.max_queue_depth),
      degraded_at_(static_cast<size_t>(std::ceil(
          options.degraded_watermark *
          static_cast<double>(options.max_in_flight +
                              options.max_queue_depth)))) {
  TOPPRIV_CHECK_GE(capacity_, 1u);
}

bool AdmissionController::DegradedLocked() const {
  return in_system_ >= degraded_at_;
}

size_t AdmissionController::QueueDepthLocked() const {
  return in_system_ > options_.max_in_flight
             ? in_system_ - options_.max_in_flight
             : 0;
}

util::Status AdmissionController::TryAdmit() {
  bool degraded_admission = false;
  {
    util::MutexLock lock(&mu_);
    if (in_system_ >= capacity_) {
      ++shed_;
      TOPPRIV_COUNTER_INC("admission.shed.capacity");
      return util::Status::ResourceExhausted("admission capacity exhausted");
    }
    ++in_system_;
    ++admitted_;
    peak_in_system_ = std::max(peak_in_system_, in_system_);
    peak_queue_depth_ = std::max(peak_queue_depth_, QueueDepthLocked());
    if (DegradedLocked()) {
      ++degraded_admissions_;
      degraded_admission = true;
    }
    TOPPRIV_GAUGE_SET("admission.queue_depth", QueueDepthLocked());
  }
  TOPPRIV_COUNTER_INC("admission.admitted");
  if (degraded_admission) TOPPRIV_COUNTER_INC("admission.degraded_admissions");
  TOPPRIV_GAUGE_ADD("admission.in_system", 1);
  return util::Status::Ok();
}

void AdmissionController::Finish() {
  {
    util::MutexLock lock(&mu_);
    TOPPRIV_CHECK_GE(in_system_, 1u);
    --in_system_;
    TOPPRIV_GAUGE_SET("admission.queue_depth", QueueDepthLocked());
  }
  TOPPRIV_GAUGE_ADD("admission.in_system", -1);
}

bool AdmissionController::degraded() const {
  util::MutexLock lock(&mu_);
  return DegradedLocked();
}

size_t AdmissionController::in_system() const {
  util::MutexLock lock(&mu_);
  return in_system_;
}

size_t AdmissionController::queue_depth() const {
  util::MutexLock lock(&mu_);
  return QueueDepthLocked();
}

size_t AdmissionController::peak_in_system() const {
  util::MutexLock lock(&mu_);
  return peak_in_system_;
}

size_t AdmissionController::peak_queue_depth() const {
  util::MutexLock lock(&mu_);
  return peak_queue_depth_;
}

uint64_t AdmissionController::admitted() const {
  util::MutexLock lock(&mu_);
  return admitted_;
}

uint64_t AdmissionController::shed() const {
  util::MutexLock lock(&mu_);
  return shed_;
}

uint64_t AdmissionController::degraded_admissions() const {
  util::MutexLock lock(&mu_);
  return degraded_admissions_;
}

}  // namespace toppriv::serving
