#include "util/crc32.h"

namespace toppriv::util {

namespace {

/// Reflected CRC32C polynomial (0x1EDC6F41 bit-reversed).
constexpr uint32_t kPolyReflected = 0x82f63b78u;

const uint32_t* Table() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32::Extend(uint32_t state, const void* data, size_t n) {
  const uint32_t* table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ p[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

}  // namespace toppriv::util
