#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace toppriv::util {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // The comma (if any) was emitted when the key was written.
    pending_key_ = false;
    return;
  }
  if (needs_comma_.empty()) {
    // Root position: a JSON document has exactly one root value. Catching
    // the second one here keeps a stray extra Begin/End from silently
    // producing '{...}{...}' that downstream parsers reject.
    TOPPRIV_CHECK(out_.empty());
    return;
  }
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::Escape(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  TOPPRIV_CHECK(!needs_comma_.empty());
  TOPPRIV_CHECK(!pending_key_);
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  TOPPRIV_CHECK(!needs_comma_.empty());
  TOPPRIV_CHECK(!pending_key_);
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  TOPPRIV_CHECK(!pending_key_);
  TOPPRIV_CHECK(!needs_comma_.empty());
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  Escape(key);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  Escape(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::Field(const std::string& key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  UInt(value);
}

void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace toppriv::util
