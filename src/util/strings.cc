#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace toppriv::util {

std::vector<std::string> Split(std::string_view text,
                               std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace toppriv::util
