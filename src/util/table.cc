#include "util/table.h"

#include <algorithm>

#include "util/strings.h"

namespace toppriv::util {

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size(), ' ');
      }
    }
    line += "\n";
    return line;
  };

  std::string out = render(header_);
  std::string rule;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) rule += "  ";
    rule.append(widths[i], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out = Join(header_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

}  // namespace toppriv::util
