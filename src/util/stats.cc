#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace toppriv::util {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  TOPPRIV_CHECK_GE(p, 0.0);
  TOPPRIV_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace toppriv::util
