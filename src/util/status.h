// Minimal Status / StatusOr error-propagation types (absl-style).
#ifndef TOPPRIV_UTIL_STATUS_H_
#define TOPPRIV_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace toppriv::util {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
  kIoError = 5,
  kDataLoss = 6,
  kDeadlineExceeded = 7,
  kUnavailable = 8,
  kResourceExhausted = 9,
};

/// Result of an operation that can fail without being a programming error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: empty query".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value, mirroring absl::StatusOr.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    TOPPRIV_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(); aborts otherwise.
  const T& value() const& {
    TOPPRIV_CHECK(ok());
    return value_;
  }
  T& value() & {
    TOPPRIV_CHECK(ok());
    return value_;
  }
  T&& value() && {
    TOPPRIV_CHECK(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace toppriv::util

/// Propagates a non-OK status to the caller.
#define TOPPRIV_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::toppriv::util::Status status_macro = (expr); \
    if (!status_macro.ok()) return status_macro;   \
  } while (0)

#endif  // TOPPRIV_UTIL_STATUS_H_
