// FNV-1a hashing step shared by the seed/cache-key/digest call sites.
//
// Call sites differ in their mixing unit (whole TermIds for inference
// seeds, single bytes for cache keys and serving digests), so the shared
// piece is the constants and the one-unit step; each caller folds its own
// unit stream. Keeping one definition means a future change to the mixing
// cannot silently diverge between the three.
#ifndef TOPPRIV_UTIL_HASH_H_
#define TOPPRIV_UTIL_HASH_H_

#include <cstdint>

namespace toppriv::util {

inline constexpr uint64_t kFnv1aOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ull;

/// One FNV-1a round: fold `unit` into hash state `h`.
inline uint64_t Fnv1aStep(uint64_t h, uint64_t unit) {
  return (h ^ unit) * kFnv1aPrime;
}

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_HASH_H_
