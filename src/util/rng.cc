#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace toppriv::util {

namespace {

// SplitMix64 finalizer; used to decorrelate forked seeds.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::Fork(uint64_t stream) const {
  return Rng(Mix(seed_ ^ Mix(stream + 0x51eed5u)));
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  TOPPRIV_DCHECK(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

uint64_t Rng::UniformInt(uint64_t n) {
  TOPPRIV_CHECK_GT(n, 0u);
  return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TOPPRIV_CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

int Rng::Poisson(double mean) {
  TOPPRIV_CHECK_GT(mean, 0.0);
  return std::poisson_distribution<int>(mean)(engine_);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  TOPPRIV_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TOPPRIV_DCHECK(w >= 0.0);
    total += w;
  }
  TOPPRIV_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point underflow at the boundary: return the last positive entry.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

size_t Rng::DiscreteFromCdf(const std::vector<double>& cdf) {
  TOPPRIV_CHECK(!cdf.empty());
  double total = cdf.back();
  TOPPRIV_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
  if (it == cdf.end()) --it;
  return static_cast<size_t>(it - cdf.begin());
}

double Rng::Gamma(double shape) {
  TOPPRIV_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian(0.0, 1.0);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::DirichletSymmetric(double alpha, size_t k) {
  return Dirichlet(std::vector<double>(k, alpha));
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  TOPPRIV_CHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (can happen for tiny alpha): fall back to one-hot.
    std::fill(out.begin(), out.end(), 0.0);
    out[UniformInt(out.size())] = 1.0;
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

size_t Rng::Zipf(size_t n, double s) {
  TOPPRIV_CHECK_GT(n, 0u);
  // Rejection-free inverse-CDF on the fly; fine for setup-time use.
  double total = 0.0;
  for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (r < acc) return i - 1;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TOPPRIV_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector; O(n) setup, O(k) swaps.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<double> BuildCdf(const std::vector<double>& weights) {
  std::vector<double> cdf;
  cdf.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += (w > 0.0 ? w : 0.0);
    cdf.push_back(acc);
  }
  if (acc <= 0.0) cdf.clear();
  return cdf;
}

}  // namespace toppriv::util
