#include "util/status.h"

namespace toppriv::util {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace toppriv::util
