#include "util/io.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>

namespace toppriv::util {

void BinaryWriter::WriteU32(uint32_t v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  buf_.append(tmp, 4);
}

void BinaryWriter::WriteU64(uint64_t v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf_.append(tmp, 8);
}

void BinaryWriter::WriteDouble(double v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  buf_.append(tmp, 8);
}

void BinaryWriter::WriteFloat(float v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  buf_.append(tmp, 4);
}

void BinaryWriter::WriteVarint(uint64_t v) { AppendVarint(v, &buf_); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteVarint(s.size());
  buf_.append(s);
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteVarint(v.size());
  for (double d : v) WriteDouble(d);
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteVarint(v.size());
  // data() may be null for an empty vector; append requires a valid pointer
  // even for zero counts.
  if (!v.empty()) {
    buf_.append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(float));
  }
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteVarint(v.size());
  for (uint32_t x : v) WriteVarint(x);
}

Status BinaryReader::Need(size_t n) {
  // Compare against the remaining byte count rather than `pos_ + n` — with
  // an attacker-controlled n the addition can wrap and pass the check.
  if (n > buf_.size() - pos_) {
    return Status::DataLoss("binary reader overrun");
  }
  return Status::Ok();
}

Status BinaryReader::ReadU8(uint8_t* v) {
  TOPPRIV_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(buf_[pos_++]);
  return Status::Ok();
}

Status BinaryReader::ReadU32(uint32_t* v) {
  TOPPRIV_RETURN_IF_ERROR(Need(4));
  std::memcpy(v, buf_.data() + pos_, 4);
  pos_ += 4;
  return Status::Ok();
}

Status BinaryReader::ReadU64(uint64_t* v) {
  TOPPRIV_RETURN_IF_ERROR(Need(8));
  std::memcpy(v, buf_.data() + pos_, 8);
  pos_ += 8;
  return Status::Ok();
}

Status BinaryReader::ReadDouble(double* v) {
  TOPPRIV_RETURN_IF_ERROR(Need(8));
  std::memcpy(v, buf_.data() + pos_, 8);
  pos_ += 8;
  return Status::Ok();
}

Status BinaryReader::ReadFloat(float* v) {
  TOPPRIV_RETURN_IF_ERROR(Need(4));
  std::memcpy(v, buf_.data() + pos_, 4);
  pos_ += 4;
  return Status::Ok();
}

Status BinaryReader::ReadVarint(uint64_t* v) {
  if (!DecodeVarint(buf_, &pos_, v)) {
    return Status::DataLoss("varint overrun");
  }
  return Status::Ok();
}

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  TOPPRIV_RETURN_IF_ERROR(ReadVarint(&n));
  TOPPRIV_RETURN_IF_ERROR(Need(n));
  s->assign(buf_.data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status BinaryReader::ReadDoubleVector(std::vector<double>* v) {
  uint64_t n = 0;
  TOPPRIV_RETURN_IF_ERROR(ReadVarint(&n));
  // Divide instead of multiplying: `n * 8` wraps for hostile n, passing the
  // bounds check and letting resize(n) demand gigabytes.
  if (n > remaining() / sizeof(double)) {
    return Status::DataLoss("double vector count exceeds payload");
  }
  v->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    TOPPRIV_RETURN_IF_ERROR(ReadDouble(&(*v)[i]));
  }
  return Status::Ok();
}

Status BinaryReader::ReadFloatVector(std::vector<float>* v) {
  uint64_t n = 0;
  TOPPRIV_RETURN_IF_ERROR(ReadVarint(&n));
  if (n > remaining() / sizeof(float)) {
    return Status::DataLoss("float vector count exceeds payload");
  }
  v->resize(n);
  // n == 0 leaves data() null on a fresh vector, and memcpy's pointer
  // arguments are declared nonnull even for zero sizes (UBSan enforces it).
  if (n != 0) {
    std::memcpy(v->data(), buf_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  }
  return Status::Ok();
}

Status BinaryReader::ReadU32Vector(std::vector<uint32_t>* v) {
  uint64_t n = 0;
  TOPPRIV_RETURN_IF_ERROR(ReadVarint(&n));
  // Each element costs at least one varint byte.
  if (n > remaining()) {
    return Status::DataLoss("u32 vector count exceeds payload");
  }
  v->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    TOPPRIV_RETURN_IF_ERROR(ReadVarint(&x));
    if (x > UINT32_MAX) return Status::DataLoss("u32 overflow");
    (*v)[i] = static_cast<uint32_t>(x);
  }
  return Status::Ok();
}

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

bool DecodeVarint(const std::string& buf, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < buf.size() && shift < 64) {
    uint8_t byte = static_cast<uint8_t>(buf[p++]);
    const uint64_t bits = byte & 0x7f;
    // The 10th byte holds bit 63 alone; larger values would shift payload
    // bits off the top — reject rather than silently truncate (also keeps
    // hostile inputs out of -fsanitize=integer's unsigned-shift checks).
    if (shift == 63 && bits > 1) return false;
    result |= bits << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

Status WriteFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int rc = std::fclose(f);
  if (written != data.size() || rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("read error: " + path);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  std::string partial;
  for (size_t i = 0; i < path.size(); ++i) {
    partial.push_back(path[i]);
    if (path[i] == '/' || i + 1 == path.size()) {
      if (partial == "/" || partial.empty()) continue;
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IoError("mkdir failed: " + partial);
      }
    }
  }
  return Status::Ok();
}

}  // namespace toppriv::util
