#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace toppriv::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_available_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && active_ == 0)) all_idle_.Wait();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // A shared cursor instead of static chunking: workers that draw cheap
  // iterations immediately pull the next one. Completion is tracked per
  // call, not via the pool-wide Wait(): concurrent ParallelFor callers
  // (e.g. many sessions fanning one query each over a shared shard pool)
  // must only block on their own iterations.
  struct CallState {
    std::atomic<size_t> cursor{0};
    Mutex mu;
    CondVar done{&mu};
    size_t pending GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<CallState>();
  const size_t num_workers = std::min(n, threads_.size());
  {
    MutexLock lock(&state->mu);
    state->pending = num_workers;
  }
  for (size_t w = 0; w < num_workers; ++w) {
    Submit([state, n, &fn] {
      for (size_t i = state->cursor.fetch_add(1); i < n;
           i = state->cursor.fetch_add(1)) {
        fn(i);
      }
      MutexLock lock(&state->mu);
      if (--state->pending == 0) state->done.SignalAll();
    });
  }
  MutexLock lock(&state->mu);
  while (state->pending != 0) state->done.Wait();
}

size_t ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) work_available_.Wait();
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.SignalAll();
    }
  }
}

}  // namespace toppriv::util
