// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms in the Prometheus mold, built for hot-path writes.
//
// Write path: each metric owns a small fixed array of cache-line-padded
// std::atomic cells; a writer picks its stripe by hashed thread id and does
// one relaxed fetch_add. No locks, no thread registration, no contention
// between threads that land on different stripes. Read path (Snapshot) sums
// the stripes; it is racy-by-design in the usual monitoring sense (a sum may
// split a concurrent burst) but every individual add is counted exactly once.
//
// Instrumentation sites use the TOPPRIV_COUNTER_ADD / TOPPRIV_GAUGE_* /
// TOPPRIV_HISTOGRAM_* / TOPPRIV_SCOPED_TIMER_US macros below, never the
// classes directly. The macros cache the registry lookup in a function-local
// static (one name lookup per site per process) and collapse to nothing when
// the TOPPRIV_METRICS compile definition is absent (CMake option
// TOPPRIV_METRICS=OFF), so a stripped build carries zero instrumentation
// cost — not even the clock reads of the scoped timers.
//
// Determinism contract (locked, tested by metrics_test digest-parity): the
// metrics layer reads no RNG and feeds nothing back into request handling.
// Recording a metric may read a wall clock, but never a random stream, so
// toggling instrumentation (compile-time OFF or the runtime enabled() gate)
// cannot move a single result bit.
#ifndef TOPPRIV_UTIL_METRICS_H_
#define TOPPRIV_UTIL_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace toppriv::util {

class JsonWriter;

/// Stripes per metric. Threads hash onto stripes, so this bounds write
/// contention, not thread count; 16 covers the pools this repo runs.
inline constexpr size_t kMetricStripes = 16;

namespace metrics_internal {

/// One cache line per cell so two stripes never false-share.
struct alignas(64) Cell {
  std::atomic<uint64_t> value{0};
};

/// This thread's stripe in [0, kMetricStripes). Hashed once per thread and
/// cached in a thread_local.
size_t StripeIndex();

}  // namespace metrics_internal

/// Monotone event count. Writes are one relaxed fetch_add on a private-ish
/// stripe; Sum() merges the stripes.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    cells_[metrics_internal::StripeIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all stripes. Concurrent adds may or may not be included;
  /// each add is included by every later Sum.
  uint64_t Sum() const;

  /// Zeroes all stripes. For test / bench-phase isolation only; racing a
  /// Reset against writers loses the raced writes by design.
  void Reset();

 private:
  friend class MetricsRegistry;
  Counter() = default;

  metrics_internal::Cell cells_[kMetricStripes];
};

/// Instantaneous level (queue depth, in-flight requests) with a high-water
/// mark. Single atomic, not striped: gauges track a shared level, so the
/// stripe trick cannot apply; updates stay one relaxed RMW plus a CAS-max.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    RaisePeak(value);
  }
  void Add(int64_t delta) {
    const int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) RaisePeak(now);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Highest value ever Set/reached via Add (monotone CAS-max watermark).
  int64_t Peak() const { return peak_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  void RaisePeak(int64_t candidate) {
    int64_t seen = peak_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !peak_.compare_exchange_weak(seen, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> peak_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// one overflow bucket. Buckets, count and sum are striped like Counter.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);

  struct Snapshot {
    std::vector<uint64_t> bounds;  ///< upper-inclusive bucket bounds
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    uint64_t count = 0;            ///< total observations
    uint64_t sum = 0;              ///< sum of observed values
  };
  Snapshot Snap() const;

  void Reset();

  const std::vector<uint64_t>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<uint64_t> bounds);

  const std::vector<uint64_t> bounds_;
  /// stripe-major: stripe s, bucket b lives at s * num_buckets + b.
  const size_t num_buckets_;
  const std::unique_ptr<metrics_internal::Cell[]> buckets_;
  metrics_internal::Cell count_[kMetricStripes];
  metrics_internal::Cell sum_[kMetricStripes];
};

/// Exponentially spaced upper bounds: start, start*factor, ... (count of
/// them). The canonical latency ladder is ExponentialBuckets(1, 4, 12) in
/// microseconds: 1us .. ~4.2s.
std::vector<uint64_t> ExponentialBuckets(uint64_t start, uint64_t factor,
                                         size_t count);
/// The default microsecond latency ladder used by the serving-path timers.
const std::vector<uint64_t>& LatencyBucketsUs();
/// Small-count ladder (batch sizes, fan-outs): 1,2,4,...,1024.
const std::vector<uint64_t>& CountBuckets();

/// Name -> metric map. Metrics are created on first use and live for the
/// process lifetime (pointers are stable, safe to cache in function-local
/// statics). Lookup takes a mutex; the macros below amortize it to once per
/// call site.
class MetricsRegistry {
 public:
  /// The process-wide registry the instrumentation macros write to.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  /// Creates with `bounds` on first use; later calls return the existing
  /// histogram unchanged (first registration wins).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<uint64_t>& bounds) EXCLUDES(mu_);

  /// Runtime gate checked by the instrumentation macros. Compile-time OFF is
  /// the zero-overhead path; this flag exists so one binary can compare
  /// instrumented vs quiesced runs (the digest-parity test) and so benches
  /// can isolate phases.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
    int64_t peak = 0;
  };
  struct HistogramValue {
    std::string name;
    Histogram::Snapshot snap;
  };
  struct Snapshot {
    std::vector<CounterValue> counters;      ///< name-sorted
    std::vector<GaugeValue> gauges;          ///< name-sorted
    std::vector<HistogramValue> histograms;  ///< name-sorted
  };

  /// Merged point-in-time view of every registered metric.
  Snapshot Snap() const EXCLUDES(mu_);

  /// Zeroes every registered metric (names stay registered). Test/bench
  /// phase isolation only.
  void ResetAll() EXCLUDES(mu_);

  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} as one JSON
  /// object value (caller owns the surrounding Key or document).
  void ExportJson(JsonWriter* w) const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
};

/// RAII microsecond timer: observes elapsed wall time into a histogram at
/// scope exit. Used via TOPPRIV_SCOPED_TIMER_US so OFF builds skip even the
/// clock reads.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* hist) : hist_(hist) {}
  ~ScopedTimerUs() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(timer_.ElapsedSeconds() * 1e6));
    }
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* const hist_;
  WallTimer timer_;
};

}  // namespace toppriv::util

// ---------------------------------------------------------------------------
// Instrumentation macros. The only sanctioned way to record from product
// code: they compile away under TOPPRIV_METRICS=OFF and honor the runtime
// enabled() gate when ON. Each site pays one static-init name lookup, then
// a relaxed load (the gate) + a relaxed RMW per record.
// ---------------------------------------------------------------------------

#ifdef TOPPRIV_METRICS

#define TOPPRIV_METRICS_CONCAT_INNER(a, b) a##b
#define TOPPRIV_METRICS_CONCAT(a, b) TOPPRIV_METRICS_CONCAT_INNER(a, b)

#define TOPPRIV_COUNTER_ADD(name, delta)                                \
  do {                                                                  \
    static ::toppriv::util::Counter* const _toppriv_metric =            \
        ::toppriv::util::MetricsRegistry::Default().GetCounter(name);   \
    if (::toppriv::util::MetricsRegistry::Default().enabled()) {        \
      _toppriv_metric->Add(static_cast<uint64_t>(delta));               \
    }                                                                   \
  } while (0)

#define TOPPRIV_COUNTER_INC(name) TOPPRIV_COUNTER_ADD(name, 1)

#define TOPPRIV_GAUGE_ADD(name, delta)                                  \
  do {                                                                  \
    static ::toppriv::util::Gauge* const _toppriv_metric =              \
        ::toppriv::util::MetricsRegistry::Default().GetGauge(name);     \
    if (::toppriv::util::MetricsRegistry::Default().enabled()) {        \
      _toppriv_metric->Add(static_cast<int64_t>(delta));                \
    }                                                                   \
  } while (0)

#define TOPPRIV_GAUGE_SET(name, value)                                  \
  do {                                                                  \
    static ::toppriv::util::Gauge* const _toppriv_metric =              \
        ::toppriv::util::MetricsRegistry::Default().GetGauge(name);     \
    if (::toppriv::util::MetricsRegistry::Default().enabled()) {        \
      _toppriv_metric->Set(static_cast<int64_t>(value));                \
    }                                                                   \
  } while (0)

#define TOPPRIV_HISTOGRAM_OBSERVE(name, value, bounds_expr)             \
  do {                                                                  \
    static ::toppriv::util::Histogram* const _toppriv_metric =          \
        ::toppriv::util::MetricsRegistry::Default().GetHistogram(       \
            name, bounds_expr);                                         \
    if (::toppriv::util::MetricsRegistry::Default().enabled()) {        \
      _toppriv_metric->Observe(static_cast<uint64_t>(value));           \
    }                                                                   \
  } while (0)

/// Observes the enclosing scope's wall time, in microseconds, into the named
/// latency histogram. The timer only runs when the registry is enabled.
#define TOPPRIV_SCOPED_TIMER_US(name)                                   \
  static ::toppriv::util::Histogram* const TOPPRIV_METRICS_CONCAT(      \
      _toppriv_timer_hist_, __LINE__) =                                 \
      ::toppriv::util::MetricsRegistry::Default().GetHistogram(         \
          name, ::toppriv::util::LatencyBucketsUs());                   \
  ::toppriv::util::ScopedTimerUs TOPPRIV_METRICS_CONCAT(                \
      _toppriv_timer_, __LINE__)(                                       \
      ::toppriv::util::MetricsRegistry::Default().enabled()             \
          ? TOPPRIV_METRICS_CONCAT(_toppriv_timer_hist_, __LINE__)      \
          : nullptr)

#else  // !TOPPRIV_METRICS

#define TOPPRIV_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (0)
#define TOPPRIV_COUNTER_INC(name) \
  do {                            \
  } while (0)
#define TOPPRIV_GAUGE_ADD(name, delta) \
  do {                                 \
  } while (0)
#define TOPPRIV_GAUGE_SET(name, value) \
  do {                                 \
  } while (0)
#define TOPPRIV_HISTOGRAM_OBSERVE(name, value, bounds_expr) \
  do {                                                      \
  } while (0)
#define TOPPRIV_SCOPED_TIMER_US(name) \
  do {                                \
  } while (0)

#endif  // TOPPRIV_METRICS

#endif  // TOPPRIV_UTIL_METRICS_H_
