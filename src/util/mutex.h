// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// std::mutex cannot carry Clang capability attributes, so the concurrent
// layers lock through these thin wrappers instead (zero overhead: every
// method is an inline forward to the std primitive). The shapes mirror
// LevelDB's port::Mutex/port::CondVar so the annotation patterns match the
// ones Clang's documentation is written against:
//
//   Mutex mu_;                           // a capability
//   int x_ GUARDED_BY(mu_);              // data it protects
//   void Foo() EXCLUDES(mu_) {           // public entry point
//     MutexLock lock(&mu_);              // scoped acquire
//     BarLocked();                       // internal helper
//   }
//   void BarLocked() REQUIRES(mu_);      // caller must hold mu_
//
// Functions that drop and retake the lock mid-body (e.g. snapshot
// publication's heavy off-lock aggregation) call mu_.Unlock()/mu_.Lock()
// directly inside a REQUIRES(mu_) function — the analysis tracks the
// capability linearly through the body and still enforces held-at-exit.
//
// CondVar is bound to its Mutex at construction. Wait() atomically
// releases and reacquires it; callers loop on their predicate as usual:
//   while (!done_) cv_.Wait();    // inside REQUIRES(mu_)
// Wait itself is deliberately unannotated (as in LevelDB): the analysis
// cannot prove the CondVar's stored pointer aliases the caller's mutex, so
// an annotation would misfire at every call site. The caller holds the
// mutex before and after the call, which is exactly what the analysis
// assumes; the release inside Wait is invisible to it and safe.
#ifndef TOPPRIV_UTIL_MUTEX_H_
#define TOPPRIV_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace toppriv::util {

class CondVar;

/// An exclusive lock annotated as a Clang capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  /// Tells the analysis this thread holds the mutex when the fact cannot
  /// be proven structurally (no runtime check; document each use).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII acquire/release of a Mutex for one scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to one Mutex for its whole lifetime.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the mutex, blocks, and reacquires it before
  /// returning. Spurious wakeups happen; callers loop on their predicate.
  /// The CALLER must hold the bound mutex (unannotated — see file comment).
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the (reacquired) mutex
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_MUTEX_H_
