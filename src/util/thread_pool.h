// Fixed-size worker pool for the serving layer.
//
// The pool is deliberately minimal: Submit enqueues a task, Wait blocks
// until the queue drains and every worker is idle, ParallelFor fans a loop
// body out over the workers. Determinism is the caller's job — the serving
// driver achieves it by making each loop iteration fully independent (own
// RNG stream, own output slot), so results do not depend on which worker
// runs which iteration.
#ifndef TOPPRIV_UTIL_THREAD_POOL_H_
#define TOPPRIV_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace toppriv::util {

/// Fixed pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is promoted to 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool() EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running.
  void Wait() EXCLUDES(mu_);

  /// Runs fn(0) .. fn(n-1), distributing iterations over the workers via a
  /// shared counter (self-balancing: cheap iterations do not hold up
  /// expensive ones). Blocks until every iteration of THIS call has
  /// finished; concurrent ParallelFor calls from different threads are safe
  /// and do not wait on each other's tasks. Must not be called from one of
  /// this pool's own workers (the blocked worker could starve the queue).
  /// `fn` must tolerate concurrent invocation with distinct arguments.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  /// Set only in the constructor, before any worker can observe it; read
  /// lock-free afterwards (num_threads, ParallelFor sizing).
  std::vector<std::thread> threads_;
  Mutex mu_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  CondVar work_available_{&mu_};
  CondVar all_idle_{&mu_};
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_THREAD_POOL_H_
