// The file-system seam the durable live index writes through.
//
// Everything the WAL/checkpoint machinery does to disk — append, fsync,
// atomic rename, delete, list — goes through this interface, so crash
// recovery is TESTABLE: the production path runs against the POSIX
// implementation (RealFileSystem), while tests run the identical code
// against FaultInjectingFileSystem, an in-memory file system that can fail
// or short-write the Nth mutating operation and simulate a power cut by
// dropping every byte that was never Sync()'d. The fault file system is
// the ONLY test hook; no production code path branches on "am I under
// test".
//
// Durability model (what Sync must mean): after WritableFile::Sync()
// returns OK, every byte appended so far survives a crash. Rename() is an
// atomic replace (the destination is either the old or the new file, never
// a mixture) and is durable on return — RealFileSystem fsyncs the parent
// directory; the in-memory implementation treats metadata operations
// (create/rename/remove) as journaled, only DATA is lost at a power cut.
// Unsynced appended data may survive a crash partially, at any byte
// boundary — the WAL's record CRCs exist precisely because of this, and
// the recovery test sweeps every such boundary.
#ifndef TOPPRIV_UTIL_FILESYSTEM_H_
#define TOPPRIV_UTIL_FILESYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace toppriv::util {

/// An open append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  /// Appends `data` at the end of the file.
  virtual Status Append(const std::string& data) = 0;
  /// Makes every appended byte crash-durable before returning OK.
  virtual Status Sync() = 0;
  /// Closes the handle (no implicit Sync). Idempotent.
  virtual Status Close() = 0;
};

/// Minimal file-system surface for WAL + checkpoint I/O.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it (empty) if missing.
  virtual StatusOr<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) = 0;
  /// Reads the whole file.
  virtual StatusOr<std::string> Read(const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (and makes the swap durable).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Deletes a file. Missing file is an error (NotFound).
  virtual Status Remove(const std::string& path) = 0;
  /// Base names of the regular files directly inside `dir`, sorted.
  virtual StatusOr<std::vector<std::string>> List(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Creates `dir` and any missing parents.
  virtual Status MakeDirs(const std::string& dir) = 0;
};

/// The process-wide POSIX file system (singleton; never destroyed).
FileSystem* GetRealFileSystem();

/// In-memory file system with deterministic fault injection — the test
/// seam for crash-recovery suites and an allocation-only backend for WAL
/// microbenches. Thread-safe (one internal mutex).
///
/// Fault plan: ArmFault(n, mode) makes the n-th SUBSEQUENT mutating
/// operation (Append/Sync/Rename/Remove/OpenForAppend-create/MakeDirs;
/// n = 0 is the very next one) fail with IoError. kShortWrite retains a
/// prefix of the data before failing (a torn append); for non-append
/// operations it behaves like kFailOp. Faults are one-shot: after firing,
/// later operations succeed again — the caller is expected to treat the
/// failure as fatal and "crash" (recover from the file-system state), as
/// LiveIndex does by refusing further mutations.
///
/// PowerCut() truncates every file to its last Sync()'d length, modeling a
/// crash before the page cache was written back. Metadata (file existence,
/// renames, removes) is treated as journaled and survives.
class FaultInjectingFileSystem : public FileSystem {
 public:
  enum class FaultMode {
    kFailOp,      // the op fails cleanly, no effect
    kShortWrite,  // an append keeps a prefix, then fails
  };

  FaultInjectingFileSystem() = default;

  StatusOr<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override EXCLUDES(mu_);
  StatusOr<std::string> Read(const std::string& path) override EXCLUDES(mu_);
  Status Rename(const std::string& from, const std::string& to) override
      EXCLUDES(mu_);
  Status Remove(const std::string& path) override EXCLUDES(mu_);
  StatusOr<std::vector<std::string>> List(const std::string& dir) override
      EXCLUDES(mu_);
  bool Exists(const std::string& path) override EXCLUDES(mu_);
  Status MakeDirs(const std::string& dir) override EXCLUDES(mu_);

  // ------------------------------------------------ fault orchestration --

  /// Arms a one-shot fault on the `after_ops`-th mutating operation from
  /// now (0 = the next one).
  void ArmFault(uint64_t after_ops, FaultMode mode) EXCLUDES(mu_);
  void DisarmFault() EXCLUDES(mu_);
  /// True once an armed fault has fired.
  bool fault_fired() const EXCLUDES(mu_);
  /// Mutating operations performed so far (the fault counter's clock).
  uint64_t op_count() const EXCLUDES(mu_);

  /// Drops every byte appended after each file's last successful Sync.
  void PowerCut() EXCLUDES(mu_);

  // ------------------------------------------------- state manipulation --
  // Test utilities for building hostile on-disk states.

  /// Full byte content of `path` (empty if missing).
  std::string FileBytes(const std::string& path) const EXCLUDES(mu_);
  /// Replaces `path`'s content (marks it fully synced).
  void SetFileBytes(const std::string& path, const std::string& bytes)
      EXCLUDES(mu_);
  /// Truncates `path` to `n` bytes (no-op if already shorter).
  void Truncate(const std::string& path, size_t n) EXCLUDES(mu_);
  /// XORs one byte of `path` with `mask`.
  void CorruptByte(const std::string& path, size_t offset, uint8_t mask)
      EXCLUDES(mu_);
  /// Deep copy of the current files (fault plan not copied) — lets a test
  /// recover many times from one captured crash image.
  std::unique_ptr<FaultInjectingFileSystem> Clone() const EXCLUDES(mu_);

 private:
  friend class FaultInjectingWritableFile;

  struct FileState {
    std::string data;
    size_t synced = 0;  // prefix length guaranteed to survive PowerCut
  };

  /// Counts one mutating op; returns non-OK if the armed fault fires.
  Status CountOp() REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
  std::map<std::string, bool> dirs_ GUARDED_BY(mu_);
  uint64_t op_count_ GUARDED_BY(mu_) = 0;
  /// Op index the fault fires at; -1 = disarmed.
  int64_t fault_at_ GUARDED_BY(mu_) = -1;
  FaultMode fault_mode_ GUARDED_BY(mu_) = FaultMode::kFailOp;
  bool fault_fired_ GUARDED_BY(mu_) = false;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_FILESYSTEM_H_
