// Lightweight CHECK/DCHECK assertion macros.
//
// The library follows the Google style convention of not using exceptions;
// programming errors (violated invariants) terminate the process with a
// diagnostic, while recoverable errors travel through util::Status.
#ifndef TOPPRIV_UTIL_CHECK_H_
#define TOPPRIV_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace toppriv::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace toppriv::util

/// Aborts the process with a diagnostic when `expr` is false.
#define TOPPRIV_CHECK(expr)                                        \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::toppriv::util::CheckFailed(__FILE__, __LINE__, #expr);     \
    }                                                              \
  } while (0)

#define TOPPRIV_CHECK_EQ(a, b) TOPPRIV_CHECK((a) == (b))
#define TOPPRIV_CHECK_NE(a, b) TOPPRIV_CHECK((a) != (b))
#define TOPPRIV_CHECK_LT(a, b) TOPPRIV_CHECK((a) < (b))
#define TOPPRIV_CHECK_LE(a, b) TOPPRIV_CHECK((a) <= (b))
#define TOPPRIV_CHECK_GT(a, b) TOPPRIV_CHECK((a) > (b))
#define TOPPRIV_CHECK_GE(a, b) TOPPRIV_CHECK((a) >= (b))

#ifndef NDEBUG
#define TOPPRIV_DCHECK(expr) TOPPRIV_CHECK(expr)
#else
#define TOPPRIV_DCHECK(expr) \
  do {                       \
  } while (0)
#endif

#endif  // TOPPRIV_UTIL_CHECK_H_
