// Wall-clock timer for the query-generation-time measurements (Fig. 2d/3d).
#ifndef TOPPRIV_UTIL_TIMER_H_
#define TOPPRIV_UTIL_TIMER_H_

#include <chrono>

namespace toppriv::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_TIMER_H_
