// Minimal streaming JSON writer for the benches' machine-readable output
// (--json sidecars consumed by CI and the perf-trajectory tooling). No
// external dependency, no DOM: values are emitted in call order with
// automatic comma placement; the writer asserts balanced Begin/End calls.
#ifndef TOPPRIV_UTIL_JSON_H_
#define TOPPRIV_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace toppriv::util {

/// Streaming JSON emitter.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("cells");
///   w.BeginArray();
///   ...
///   w.EndArray();
///   w.EndObject();
///   WriteFile(path, w.str());
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next value call provides its value.
  void Key(const std::string& key);

  void String(const std::string& value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Doubles print with enough digits to round-trip (%.17g), except that
  /// non-finite values (which JSON cannot carry) emit null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call.
  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, int64_t value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, bool value);

  /// The document so far; call after the final EndObject/EndArray.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void Escape(const std::string& s);

  std::string out_;
  /// One entry per open container: whether a comma is owed before the next
  /// element.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_JSON_H_
