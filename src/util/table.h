// Aligned ASCII table printer used by the bench binaries to emit the same
// rows/series the paper's figures and tables report.
#ifndef TOPPRIV_UTIL_TABLE_H_
#define TOPPRIV_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace toppriv::util {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; cell count need not match the header (ragged allowed).
  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders the table, e.g.:
  ///   eps2(%)  exposure(%)  mask(%)
  ///   -------  -----------  -------
  ///   0.50     0.81         9.30
  std::string ToString() const;

  /// Renders as comma-separated values (machine-readable sidecar).
  std::string ToCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits = 3);

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_TABLE_H_
