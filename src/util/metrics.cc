#include "util/metrics.h"

#include <functional>
#include <thread>

#include "util/json.h"

namespace toppriv::util {

namespace metrics_internal {

size_t StripeIndex() {
  // Hashed once, cached per thread. The +1 salt spreads the (often
  // sequential) libstdc++ thread-id hashes across stripes.
  static thread_local const size_t stripe =
      (std::hash<std::thread::id>()(std::this_thread::get_id()) * 31 + 1) %
      kMetricStripes;
  return stripe;
}

}  // namespace metrics_internal

// ------------------------------------------------------------------ Counter

uint64_t Counter::Sum() const {
  uint64_t total = 0;
  for (const metrics_internal::Cell& c : cells_) {
    total += c.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (metrics_internal::Cell& c : cells_) {
    c.value.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------------------- Gauge

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      num_buckets_(bounds_.size() + 1),
      buckets_(new metrics_internal::Cell[kMetricStripes * num_buckets_]) {}

void Histogram::Observe(uint64_t value) {
  // Branchless-ish lower_bound over a handful of bounds; the ladders this
  // repo uses have <= 16 rungs, so linear scan beats binary search.
  size_t b = 0;
  while (b < bounds_.size() && value > bounds_[b]) ++b;
  const size_t stripe = metrics_internal::StripeIndex();
  buckets_[stripe * num_buckets_ + b].value.fetch_add(
      1, std::memory_order_relaxed);
  count_[stripe].value.fetch_add(1, std::memory_order_relaxed);
  sum_[stripe].value.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(num_buckets_, 0);
  for (size_t s = 0; s < kMetricStripes; ++s) {
    for (size_t b = 0; b < num_buckets_; ++b) {
      snap.counts[b] +=
          buckets_[s * num_buckets_ + b].value.load(std::memory_order_relaxed);
    }
    snap.count += count_[s].value.load(std::memory_order_relaxed);
    snap.sum += sum_[s].value.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i < kMetricStripes * num_buckets_; ++i) {
    buckets_[i].value.store(0, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < kMetricStripes; ++s) {
    count_[s].value.store(0, std::memory_order_relaxed);
    sum_[s].value.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------- bucket sets

std::vector<uint64_t> ExponentialBuckets(uint64_t start, uint64_t factor,
                                         size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  uint64_t bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<uint64_t>& LatencyBucketsUs() {
  // 1us .. ~4.2s in x4 steps: covers block decode through merge stalls.
  static const std::vector<uint64_t>* const kBuckets =
      new std::vector<uint64_t>(ExponentialBuckets(1, 4, 12));
  return *kBuckets;
}

const std::vector<uint64_t>& CountBuckets() {
  // 1 .. 1024 in x2 steps: batch sizes, fan-outs, iteration counts.
  static const std::vector<uint64_t>* const kBuckets =
      new std::vector<uint64_t>(ExponentialBuckets(1, 2, 11));
  return *kBuckets;
}

// ----------------------------------------------------------------- registry

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked singleton: metric pointers handed to call-site statics must stay
  // valid through static destruction.
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<uint64_t>& bounds) {
  MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(bounds));
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snap;
  MutexLock lock(&mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterValue{name, counter->Sum()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeValue{name, gauge->Value(), gauge->Peak()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back(HistogramValue{name, hist->Snap()});
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, hist] : histograms_) hist->Reset();
}

void MetricsRegistry::ExportJson(JsonWriter* w) const {
  const Snapshot snap = Snap();
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const CounterValue& c : snap.counters) {
    w->Field(c.name, c.value);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const GaugeValue& g : snap.gauges) {
    w->Key(g.name);
    w->BeginObject();
    w->Field("value", g.value);
    w->Field("peak", g.peak);
    w->EndObject();
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const HistogramValue& h : snap.histograms) {
    w->Key(h.name);
    w->BeginObject();
    w->Field("count", h.snap.count);
    w->Field("sum", h.snap.sum);
    w->Key("bounds");
    w->BeginArray();
    for (uint64_t b : h.snap.bounds) w->UInt(b);
    w->EndArray();
    w->Key("counts");
    w->BeginArray();
    for (uint64_t c : h.snap.counts) w->UInt(c);
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

}  // namespace toppriv::util
