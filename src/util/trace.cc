#include "util/trace.h"

#include <utility>

#include "util/json.h"

namespace toppriv::util {

namespace {

/// Innermost open span on this thread (the parent for the next one).
thread_local TraceSpan* tls_current_span = nullptr;

constexpr int kTraceSchemaVersion = 1;

}  // namespace

std::atomic<TraceSink*> TraceSink::global_{nullptr};

TraceSink::TraceSink(size_t capacity, Clock* clock)
    : clock_(clock), capacity_(capacity) {
  MutexLock lock(&mu_);
  ring_.reserve(capacity_);
}

void TraceSink::Record(TraceEvent event) {
  MutexLock lock(&mu_);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_slot_] = std::move(event);
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceSink::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: next_slot_ is the oldest retained span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceSink::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void TraceSink::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_slot_ = 0;
  dropped_ = 0;
}

void TraceSink::ExportJson(JsonWriter* w) const {
  const std::vector<TraceEvent> events = Events();
  w->BeginObject();
  w->Field("schema_version", static_cast<int64_t>(kTraceSchemaVersion));
  w->Field("dropped", dropped());
  w->Key("spans");
  w->BeginArray();
  for (const TraceEvent& e : events) {
    w->BeginObject();
    w->Field("trace_id", e.trace_id);
    w->Field("span_id", e.span_id);
    w->Field("parent_id", e.parent_id);
    w->Field("name", e.name);
    w->Field("start_ns", static_cast<int64_t>(e.start_nanos));
    w->Field("end_ns", static_cast<int64_t>(e.end_nanos));
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

TraceSpan::TraceSpan(TraceSink* sink, const char* name)
    : sink_(sink), name_(name) {
  if (sink_ == nullptr) return;  // inert: never touches the stack or clock
  parent_ = tls_current_span;
  span_id_ = sink_->NextId();
  // Children inherit their trace; a parent recorded to a DIFFERENT sink
  // (the global was swapped mid-request) cannot share an id space, so the
  // span roots a fresh trace instead.
  trace_id_ = (parent_ != nullptr && parent_->sink_ == sink_)
                  ? parent_->trace_id_
                  : span_id_;
  start_nanos_ = sink_->clock()->NowNanos();
  tls_current_span = this;
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  tls_current_span = parent_;
  TraceEvent event;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_id = (parent_ != nullptr && parent_->sink_ == sink_)
                        ? parent_->span_id_
                        : 0;
  event.name = name_;
  event.start_nanos = start_nanos_;
  event.end_nanos = sink_->clock()->NowNanos();
  sink_->Record(std::move(event));
}

}  // namespace toppriv::util
