#include "util/deadline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/rng.h"

namespace toppriv::util {

namespace {

class RealClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepFor(int64_t nanos) override {
    if (nanos > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* const kClock = new RealClock;
  return kClock;
}

Deadline Deadline::After(double seconds, Clock* clock) {
  if (clock == nullptr) clock = Clock::Real();
  const double nanos = seconds * 1e9;
  int64_t deadline_nanos = std::numeric_limits<int64_t>::max();
  if (nanos < static_cast<double>(std::numeric_limits<int64_t>::max())) {
    const int64_t now = clock->NowNanos();
    const auto delta = static_cast<int64_t>(nanos);
    // Saturate instead of overflowing when now + delta wraps.
    deadline_nanos = (delta > std::numeric_limits<int64_t>::max() - now)
                         ? std::numeric_limits<int64_t>::max()
                         : now + delta;
  }
  return Deadline(clock, deadline_nanos);
}

int64_t RetryPolicy::BackoffNanos(int attempt) const {
  double backoff = static_cast<double>(initial_backoff_nanos) *
                   std::pow(multiplier, static_cast<double>(attempt));
  backoff = std::min(backoff, static_cast<double>(max_backoff_nanos));
  if (jitter > 0.0) {
    // One Rng stream per attempt: the schedule is a pure function of
    // (policy, attempt), independent of how many draws earlier attempts
    // made, so partial retry sequences replay identically.
    Rng rng = Rng(seed).Fork(static_cast<uint64_t>(attempt));
    backoff *= rng.Uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(backoff));
}

}  // namespace toppriv::util
