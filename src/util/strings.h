// Small string helpers shared across modules.
#ifndef TOPPRIV_UTIL_STRINGS_H_
#define TOPPRIV_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace toppriv::util {

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view text, std::string_view delims);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_STRINGS_H_
