// Binary serialization primitives (varint, fixed-width, strings, vectors)
// plus whole-file helpers. Used by the vocabulary, inverted index and LDA
// model (de)serializers and by the experiment cache.
#ifndef TOPPRIV_UTIL_IO_H_
#define TOPPRIV_UTIL_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace toppriv::util {

/// Appends values to an in-memory byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  void WriteFloat(float v);

  /// LEB128 variable-length encoding; small values cost 1 byte.
  void WriteVarint(uint64_t v);

  /// Length-prefixed string.
  void WriteString(const std::string& s);

  void WriteDoubleVector(const std::vector<double>& v);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Reads values from a byte buffer; all methods fail soft via Status.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : buf_(std::move(data)) {}

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadDouble(double* v);
  Status ReadFloat(float* v);
  Status ReadVarint(uint64_t* v);
  Status ReadString(std::string* s);
  Status ReadDoubleVector(std::vector<double>* v);
  Status ReadFloatVector(std::vector<float>* v);
  Status ReadU32Vector(std::vector<uint32_t>* v);

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t position() const { return pos_; }
  /// Bytes left to read. Deserializers use this to bound attacker-supplied
  /// element counts before allocating (a count can never exceed the bytes
  /// that are supposed to encode the elements).
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  Status Need(size_t n);

  std::string buf_;
  size_t pos_ = 0;
};

/// Varint helpers operating on raw vectors (posting-list encoding).
void AppendVarint(uint64_t v, std::string* out);
/// Decodes one varint at `*pos`; advances `*pos`. Returns false on overrun.
bool DecodeVarint(const std::string& buf, size_t* pos, uint64_t* v);
/// Encoded size in bytes of AppendVarint/WriteVarint for `v` (1..10).
size_t VarintSize(uint64_t v);

/// Writes `data` to `path` atomically-ish (truncate + write).
Status WriteFile(const std::string& path, const std::string& data);
/// Reads the whole file at `path`.
StatusOr<std::string> ReadFileToString(const std::string& path);
/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);
/// Creates a directory (and parents) if missing.
Status MakeDirs(const std::string& path);

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_IO_H_
