// Clang thread-safety (capability) analysis annotations.
//
// These macros let the locking discipline of the concurrent layers be
// COMPILER-checked on every Clang build (-Wthread-safety, wired up as a
// -Werror CI job and the TOPPRIV_THREAD_SAFETY CMake option) instead of
// only being sampled dynamically by the TSan job's schedules:
//
//   GUARDED_BY(mu)   on a data member: every read/write must hold `mu`.
//   REQUIRES(mu)     on a function: callers must already hold `mu`.
//   ACQUIRE/RELEASE  on a function: it takes / drops `mu` itself.
//   EXCLUDES(mu)     on a function: callers must NOT hold `mu`
//                    (self-deadlock guard for public entry points).
//
// Off Clang (GCC, MSVC) every macro expands to nothing, so annotated code
// compiles unchanged; tests/thread_safety_compile (a configure-time
// negative-compile check) asserts the macros are NOT no-ops under Clang,
// so they cannot silently rot. The spelling follows Abseil/LevelDB so the
// patterns stay recognizable against upstream documentation:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef TOPPRIV_UTIL_THREAD_ANNOTATIONS_H_
#define TOPPRIV_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// For POINTER members: the pointed-to DATA is guarded, the pointer itself
// is not.
#define PT_GUARDED_BY(x) TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RETURN_CAPABILITY(x) \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// The documented escape hatch. Repo rule (enforced by review, recorded in
// docs/ARCHITECTURE.md): every use carries a one-line justification; none
// may be a blanket silence.
#define NO_THREAD_SAFETY_ANALYSIS \
  TOPPRIV_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // TOPPRIV_UTIL_THREAD_ANNOTATIONS_H_
