// Deterministic random number generation used throughout the library.
//
// Every stochastic component (corpus generation, Gibbs sampling, ghost-query
// generation) draws from an explicitly-seeded Rng so that experiments are
// reproducible run-to-run. Rng::Fork derives independent child streams so
// that adding randomness in one module does not perturb another.
#ifndef TOPPRIV_UTIL_RNG_H_
#define TOPPRIV_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace toppriv::util {

/// Seedable pseudo-random generator with the sampling primitives needed by
/// the corpus generator, the LDA trainer and the TopPriv client.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Seed this generator was constructed with.
  uint64_t seed() const { return seed_; }

  /// Derives an independent child stream; `stream` distinguishes siblings.
  Rng Fork(uint64_t stream) const;

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Poisson draw with the given mean (> 0).
  int Poisson(double mean);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  /// Samples an index from a cumulative-weight vector (ascending, last > 0).
  /// O(log n); used by hot loops that reuse the same distribution.
  size_t DiscreteFromCdf(const std::vector<double>& cdf);

  /// Gamma(shape, 1) draw; shape > 0 (Marsaglia-Tsang).
  double Gamma(double shape);

  /// Dirichlet draw with symmetric concentration `alpha` over `k` categories.
  std::vector<double> DirichletSymmetric(double alpha, size_t k);

  /// Dirichlet draw with the given concentration vector.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Zipf-like draw over [0, n) with exponent s (larger s = more skew).
  /// Implemented via inverse-CDF over precomputed weights is the caller's
  /// job for hot paths; this helper is for setup code.
  size_t Zipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i) + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Access to the raw engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

/// Builds a cumulative distribution from unnormalized weights, for use with
/// Rng::DiscreteFromCdf. Returns an empty vector if all weights are zero.
std::vector<double> BuildCdf(const std::vector<double>& weights);

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_RNG_H_
