// Per-query tracing: RAII spans in the Dapper mold, recorded into a
// fixed-capacity ring buffer and exported as JSON.
//
// A TraceSpan measures one named region of one request. Spans nest through a
// thread-local stack: a span constructed while another span on the same
// thread is open becomes its child (parent_id links them) and inherits its
// trace id; a span opened with no ancestor starts a fresh trace. Timestamps
// come from the sink's injected util::Clock, so tests drive a ManualClock
// and get bit-for-bit deterministic traces; ids come from a per-sink atomic
// counter, deterministic whenever span creation order is (single-threaded
// tests, or any serialized request path).
//
// The sink is a mutex-guarded ring buffer of COMPLETED spans (recorded at
// destruction, so a parent appears after its children — standard for span
// traces). When the ring wraps, the oldest spans are dropped and counted;
// export never blocks recording for long since Record is O(1).
//
// Product code opens spans via TOPPRIV_TRACE_SPAN, which targets the
// process-global sink (null by default => every operation is a no-op) and
// compiles away entirely under TOPPRIV_METRICS=OFF. The determinism contract
// matches metrics.h: tracing reads clocks, never RNG, and feeds nothing back
// into request handling, so digests are identical with tracing on or off.
#ifndef TOPPRIV_UTIL_TRACE_H_
#define TOPPRIV_UTIL_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/deadline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace toppriv::util {

class JsonWriter;

/// One completed span. parent_id 0 means root (span ids start at 1).
struct TraceEvent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
};

/// Fixed-capacity ring buffer of completed spans.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity, Clock* clock = Clock::Real());
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  Clock* clock() const { return clock_; }

  /// Appends a completed span, evicting the oldest when full.
  void Record(TraceEvent event) EXCLUDES(mu_);

  /// Retained spans, oldest first (completion order).
  std::vector<TraceEvent> Events() const EXCLUDES(mu_);

  /// Spans evicted because the ring was full.
  uint64_t dropped() const EXCLUDES(mu_);

  /// Discards all retained spans and the dropped count; ids keep counting.
  void Clear() EXCLUDES(mu_);

  /// Emits {"schema_version":N,"dropped":D,"spans":[...]} as one JSON
  /// object value. Spans carry trace_id/span_id/parent_id/name/
  /// start_ns/end_ns.
  void ExportJson(JsonWriter* w) const EXCLUDES(mu_);

  /// Fresh monotonically increasing id (first call returns 1).
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The sink TOPPRIV_TRACE_SPAN records to. Null (the default) disables
  /// tracing everywhere. The caller keeps ownership and must keep the sink
  /// alive until after SetGlobal(nullptr) — spans already open when the
  /// global changes still record to the sink they started with.
  static TraceSink* Global() {
    return global_.load(std::memory_order_acquire);
  }
  static void SetGlobal(TraceSink* sink) {
    global_.store(sink, std::memory_order_release);
  }

 private:
  Clock* const clock_;
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);  ///< ring storage
  size_t next_slot_ GUARDED_BY(mu_) = 0;          ///< write cursor when full
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> next_id_{0};

  static std::atomic<TraceSink*> global_;
};

/// RAII span. Null sink => fully inert (no clock read, no allocation).
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  TraceSink* const sink_;
  const char* const name_;
  TraceSpan* parent_ = nullptr;  ///< thread-local stack link
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  int64_t start_nanos_ = 0;
};

}  // namespace toppriv::util

#ifdef TOPPRIV_METRICS

/// Opens a scope-long span named `name` on the global sink. `var` is the
/// local variable name (spans may be referenced, e.g. for span_id).
#define TOPPRIV_TRACE_SPAN(var, name) \
  ::toppriv::util::TraceSpan var(::toppriv::util::TraceSink::Global(), name)

#else  // !TOPPRIV_METRICS

#define TOPPRIV_TRACE_SPAN(var, name) \
  do {                                \
  } while (0)

#endif  // TOPPRIV_METRICS

#endif  // TOPPRIV_UTIL_TRACE_H_
