#include "util/filesystem.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/io.h"

namespace toppriv::util {

namespace {

// ------------------------------------------------------------ real posix --

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsyncs a directory so a just-created/renamed/removed entry is durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("open dir for sync: " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync dir: " + dir);
  return Status::Ok();
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { Close(); }

  Status Append(const std::string& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("write: " + path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IoError("fsync: " + path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IoError("close: " + path_);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class RealFileSystem : public FileSystem {
 public:
  StatusOr<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override {
    struct stat st;
    const bool existed = ::stat(path.c_str(), &st) == 0;
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Status::IoError("open for append: " + path);
    if (!existed) {
      // Make the directory entry itself durable, so a crash cannot forget
      // a file whose appended records we later report as synced.
      Status dir_status = SyncDir(ParentDir(path));
      if (!dir_status.ok()) {
        ::close(fd);
        return dir_status;
      }
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  StatusOr<std::string> Read(const std::string& path) override {
    return ReadFileToString(path);
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError("rename: " + from + " -> " + to);
    }
    return SyncDir(ParentDir(to));
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("remove: " + path);
      return Status::IoError("remove: " + path);
    }
    return SyncDir(ParentDir(path));
  }

  StatusOr<std::vector<std::string>> List(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Status::NotFound("opendir: " + dir);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      struct stat st;
      if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
        names.push_back(name);
      }
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  bool Exists(const std::string& path) override { return FileExists(path); }

  Status MakeDirs(const std::string& dir) override {
    return ::toppriv::util::MakeDirs(dir);
  }
};

}  // namespace

FileSystem* GetRealFileSystem() {
  static FileSystem* fs = new RealFileSystem();
  return fs;
}

// -------------------------------------------------------- fault injection --

/// Append handle over a FaultInjectingFileSystem entry. Appends re-resolve
/// the path each call, so a file recreated behind the handle still works.
/// Lives in the enclosing namespace so the friend declaration matches.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingFileSystem* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(const std::string& data) override;
  Status Sync() override;
  Status Close() override { return Status::Ok(); }

 private:
  FaultInjectingFileSystem* fs_;
  std::string path_;
};

Status FaultInjectingFileSystem::CountOp() {
  const uint64_t idx = op_count_++;
  if (fault_at_ >= 0 && !fault_fired_ &&
      idx == static_cast<uint64_t>(fault_at_)) {
    fault_fired_ = true;
    return Status::IoError("injected fault at op " + std::to_string(idx));
  }
  return Status::Ok();
}

Status FaultInjectingWritableFile::Append(const std::string& data) {
  MutexLock lock(&fs_->mu_);
  Status fault = fs_->CountOp();
  FaultInjectingFileSystem::FileState& f = fs_->files_[path_];
  if (!fault.ok()) {
    if (fs_->fault_mode_ == FaultInjectingFileSystem::FaultMode::kShortWrite) {
      // A torn append: a prefix reaches the file, the rest never does.
      f.data.append(data.substr(0, data.size() / 2));
    }
    return fault;
  }
  f.data.append(data);
  return Status::Ok();
}

Status FaultInjectingWritableFile::Sync() {
  MutexLock lock(&fs_->mu_);
  Status fault = fs_->CountOp();
  if (!fault.ok()) return fault;  // watermark NOT advanced
  FaultInjectingFileSystem::FileState& f = fs_->files_[path_];
  f.synced = f.data.size();
  return Status::Ok();
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingFileSystem::OpenForAppend(
    const std::string& path) {
  MutexLock lock(&mu_);
  Status fault = CountOp();
  if (!fault.ok()) return fault;
  files_[path];  // creates (empty, unsynced-data-free) if missing
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingWritableFile>(this, path));
}

StatusOr<std::string> FaultInjectingFileSystem::Read(const std::string& path) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("cannot open: " + path);
  return it->second.data;
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  MutexLock lock(&mu_);
  Status fault = CountOp();
  if (!fault.ok()) return fault;
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("rename source: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::Ok();
}

Status FaultInjectingFileSystem::Remove(const std::string& path) {
  MutexLock lock(&mu_);
  Status fault = CountOp();
  if (!fault.ok()) return fault;
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("remove: " + path);
  files_.erase(it);
  return Status::Ok();
}

StatusOr<std::vector<std::string>> FaultInjectingFileSystem::List(
    const std::string& dir) {
  MutexLock lock(&mu_);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // std::map iteration order is already sorted
}

bool FaultInjectingFileSystem::Exists(const std::string& path) {
  MutexLock lock(&mu_);
  return files_.find(path) != files_.end();
}

Status FaultInjectingFileSystem::MakeDirs(const std::string& dir) {
  MutexLock lock(&mu_);
  Status fault = CountOp();
  if (!fault.ok()) return fault;
  dirs_[dir] = true;
  return Status::Ok();
}

void FaultInjectingFileSystem::ArmFault(uint64_t after_ops, FaultMode mode) {
  MutexLock lock(&mu_);
  fault_at_ = static_cast<int64_t>(op_count_ + after_ops);
  fault_mode_ = mode;
  fault_fired_ = false;
}

void FaultInjectingFileSystem::DisarmFault() {
  MutexLock lock(&mu_);
  fault_at_ = -1;
}

bool FaultInjectingFileSystem::fault_fired() const {
  MutexLock lock(&mu_);
  return fault_fired_;
}

uint64_t FaultInjectingFileSystem::op_count() const {
  MutexLock lock(&mu_);
  return op_count_;
}

void FaultInjectingFileSystem::PowerCut() {
  MutexLock lock(&mu_);
  for (auto& [path, state] : files_) {
    if (state.data.size() > state.synced) state.data.resize(state.synced);
  }
}

std::string FaultInjectingFileSystem::FileBytes(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  return it == files_.end() ? std::string() : it->second.data;
}

void FaultInjectingFileSystem::SetFileBytes(const std::string& path,
                                            const std::string& bytes) {
  MutexLock lock(&mu_);
  FileState& f = files_[path];
  f.data = bytes;
  f.synced = bytes.size();
}

void FaultInjectingFileSystem::Truncate(const std::string& path, size_t n) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return;
  FileState& f = it->second;
  if (f.data.size() > n) f.data.resize(n);
  if (f.synced > f.data.size()) f.synced = f.data.size();
}

void FaultInjectingFileSystem::CorruptByte(const std::string& path,
                                           size_t offset, uint8_t mask) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.data.size()) return;
  it->second.data[offset] =
      static_cast<char>(static_cast<uint8_t>(it->second.data[offset]) ^ mask);
}

std::unique_ptr<FaultInjectingFileSystem> FaultInjectingFileSystem::Clone()
    const {
  MutexLock lock(&mu_);
  auto copy = std::make_unique<FaultInjectingFileSystem>();
  // The copy is private to this call, but its members are guarded, so take
  // its (trivially uncontended) mutex to satisfy the capability analysis.
  MutexLock copy_lock(&copy->mu_);
  copy->files_ = files_;
  copy->dirs_ = dirs_;
  return copy;
}

}  // namespace toppriv::util
