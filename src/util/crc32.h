// CRC32C (Castagnoli) checksums, the per-record integrity check of the
// live index's write-ahead log and manifest generation files.
//
// Castagnoli rather than the zip CRC because its error-detection properties
// over short records are better studied for storage (it is the polynomial
// ext4, iSCSI and LevelDB's log format use), and because a future
// SSE4.2/ARMv8 hardware fast path drops in without a wire-format change.
// This implementation is the portable 8-bit-table byte-at-a-time form —
// WAL records are small and the cost is dwarfed by the fsync that follows.
#ifndef TOPPRIV_UTIL_CRC32_H_
#define TOPPRIV_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace toppriv::util {

/// Stateless CRC32C over byte ranges, with an incremental Extend form for
/// callers that checksum a record in pieces.
class Crc32 {
 public:
  /// CRC32C of `n` bytes at `data`.
  static uint32_t Compute(const void* data, size_t n) {
    return Extend(kInit, data, n) ^ kInit;
  }
  static uint32_t Compute(const std::string& s) {
    return Compute(s.data(), s.size());
  }

  /// Folds `n` more bytes into a running state. Start from `kInit`, XOR
  /// with `kInit` to finish (Compute does both for the one-shot case).
  static uint32_t Extend(uint32_t state, const void* data, size_t n);

  static constexpr uint32_t kInit = 0xffffffffu;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_CRC32_H_
