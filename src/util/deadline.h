// Deadlines, cooperative cancellation, and retry backoff.
//
// The failure-domain layer's clock-facing primitives. Everything here is
// built for determinism-under-test: time flows through an injectable
// `Clock`, so tests drive a `ManualClock` and the production paths use the
// process-wide monotonic `Clock::Real()`. A `Deadline` is a cheap value
// (copyable, a couple of words) that query code checks cooperatively at
// natural preemption points — block decode, pivot advance, shard fan-out —
// and `RetryPolicy` computes capped exponential backoff whose jitter is
// drawn from a SEEDED Rng stream, so a retry schedule is a pure function
// of (policy, attempt) and chaos tests replay bit-identically.
//
// Cancellation is sticky and shared: the first expiry check that observes
// the deadline passed flips a shared atomic flag, so sibling shard/segment
// evaluations sharing the same Deadline cancel on a single relaxed load
// without ever touching the clock again. Expired() never un-expires.
#ifndef TOPPRIV_UTIL_DEADLINE_H_
#define TOPPRIV_UTIL_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

namespace toppriv::util {

/// Injectable time source. Nanosecond monotonic reads plus a sleep hook so
/// backoff waits are also virtualized (a ManualClock "sleeps" by advancing
/// itself, keeping retry tests instant and deterministic).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;
  /// Blocks (or simulates blocking) for `nanos` nanoseconds.
  virtual void SleepFor(int64_t nanos) = 0;

  /// The process-wide real monotonic clock (steady_clock under the hood).
  static Clock* Real();
};

/// Test clock: time only moves when the test says so. Thread-safe — fault
/// schedules advance it from one thread while query threads read it.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    return now_nanos_.load(std::memory_order_relaxed);
  }
  /// SleepFor advances the clock instead of blocking, so code that waits
  /// out a backoff under a ManualClock completes immediately.
  void SleepFor(int64_t nanos) override { Advance(nanos); }

  void Advance(int64_t nanos) {
    now_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_nanos_;
};

/// A point in time after which cooperative work should stop, plus a shared
/// sticky cancel flag. Copies of a Deadline share the flag: once any copy
/// observes expiry (or Cancel() is called), every copy's Expired() returns
/// true on a single atomic load — sibling shard evaluations stop without
/// re-reading the clock.
///
/// A default-constructed Deadline never expires and never reads the clock,
/// so passing one through the hot path costs one relaxed load per check.
class Deadline {
 public:
  /// Never expires (but can still be Cancel()ed).
  Deadline()
      : clock_(nullptr),
        deadline_nanos_(std::numeric_limits<int64_t>::max()),
        cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Expires `seconds` from now on `clock` (Clock::Real() by default).
  static Deadline After(double seconds, Clock* clock = nullptr);
  /// Alias for the default constructor, for call-site readability.
  static Deadline Infinite() { return Deadline(); }

  /// True once the deadline has passed or Cancel() was called. Sticky:
  /// the first true is latched into the shared flag.
  bool Expired() const {
    if (cancelled_->load(std::memory_order_relaxed)) return true;
    if (clock_ == nullptr) return false;
    if (clock_->NowNanos() < deadline_nanos_) return false;
    cancelled_->store(true, std::memory_order_relaxed);
    return true;
  }

  /// Latches the shared cancel flag directly (e.g. a fan-out sibling
  /// failed and the rest of the scatter should stop).
  void Cancel() const { cancelled_->store(true, std::memory_order_relaxed); }

  /// Whether this deadline can ever expire on its own (has a clock).
  bool finite() const { return clock_ != nullptr; }

 private:
  Deadline(Clock* clock, int64_t deadline_nanos)
      : clock_(clock),
        deadline_nanos_(deadline_nanos),
        cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  Clock* clock_;  // null = infinite
  int64_t deadline_nanos_;
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Capped exponential backoff with deterministic seeded jitter.
///
/// BackoffNanos(attempt) is a pure function of the policy fields and the
/// attempt number: base = initial * multiplier^attempt clamped to max,
/// then scaled by a jitter factor drawn from Rng(seed).Fork(attempt), so
/// two runs with the same policy see the same schedule and the chaos
/// harness can assert on exact repair timelines.
struct RetryPolicy {
  int max_attempts = 5;
  int64_t initial_backoff_nanos = 1'000'000;     // 1ms
  int64_t max_backoff_nanos = 1'000'000'000;     // 1s
  double multiplier = 2.0;
  /// Jitter fraction in [0, 1): the computed backoff is scaled by a factor
  /// uniform in [1 - jitter, 1 + jitter]. Zero disables jitter.
  double jitter = 0.2;
  uint64_t seed = 1;

  /// Backoff before retry number `attempt` (0-based). Deterministic.
  int64_t BackoffNanos(int attempt) const;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_DEADLINE_H_
