// Streaming and batch statistics used by the experiment harness to aggregate
// per-query metrics (exposure, mask level, cycle length, timings).
#ifndef TOPPRIV_UTIL_STATS_H_
#define TOPPRIV_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace toppriv::util {

/// Welford streaming mean/variance with min/max tracking.
class OnlineStats {
 public:
  OnlineStats() = default;

  void Add(double x);
  /// Merges another accumulator into this one.
  void Merge(const OnlineStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) via linear interpolation; copies & sorts.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_STATS_H_
