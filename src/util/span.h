// Minimal read/write view over a contiguous sequence — the C++17 subset of
// std::span (which is C++20) that the topic-model layer needs.
#ifndef TOPPRIV_UTIL_SPAN_H_
#define TOPPRIV_UTIL_SPAN_H_

#include <cstddef>
#include <vector>

namespace toppriv::util {

template <typename T>
class Span {
 public:
  constexpr Span() : data_(nullptr), size_(0) {}
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}
  template <typename U>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}
  template <typename U>
  Span(std::vector<U>& v) : data_(v.data()), size_(v.size()) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }
  constexpr Span subspan(std::size_t offset, std::size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  T* data_;
  std::size_t size_;
};

}  // namespace toppriv::util

#endif  // TOPPRIV_UTIL_SPAN_H_
