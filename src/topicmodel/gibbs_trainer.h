// Collapsed Gibbs sampling trainer for LDA (Blei-Ng-Jordan model, Griffiths-
// Steyvers estimator) — our from-scratch replacement for the GibbsLDA++ 0.2
// library the paper uses.
#ifndef TOPPRIV_TOPICMODEL_GIBBS_TRAINER_H_
#define TOPPRIV_TOPICMODEL_GIBBS_TRAINER_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "topicmodel/lda_model.h"

namespace toppriv::topicmodel {

/// Training hyperparameters (paper defaults: alpha = 50/T, beta = 0.1).
struct TrainerOptions {
  size_t num_topics = 200;
  /// Dirichlet document-topic prior; <= 0 means use 50 / num_topics.
  double alpha = -1.0;
  /// Dirichlet topic-word prior.
  double beta = 0.1;
  /// Gibbs sweeps over the whole corpus.
  size_t iterations = 120;
  /// Final sweeps whose state is averaged into phi/theta (reduces sampling
  /// noise relative to taking the last state only).
  size_t estimation_samples = 8;
  uint64_t seed = 7;
  /// Print progress to stderr every N iterations (0 = silent).
  size_t report_every = 0;
};

/// Gibbs trainer; Train() is deterministic given options.seed.
class GibbsTrainer {
 public:
  explicit GibbsTrainer(TrainerOptions options);

  /// Runs collapsed Gibbs sampling over `corpus` and estimates the model.
  LdaModel Train(const corpus::Corpus& corpus) const;

  const TrainerOptions& options() const { return options_; }

  /// Per-token log-likelihood of a trained model on the corpus; used by
  /// tests to verify training actually improves the fit.
  static double LogLikelihoodPerToken(const LdaModel& model,
                                      const corpus::Corpus& corpus);

 private:
  TrainerOptions options_;
};

}  // namespace toppriv::topicmodel

#endif  // TOPPRIV_TOPICMODEL_GIBBS_TRAINER_H_
