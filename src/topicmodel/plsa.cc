#include "topicmodel/plsa.h"

#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/rng.h"

namespace toppriv::topicmodel {

PlsaTrainer::PlsaTrainer(PlsaOptions options) : options_(options) {
  TOPPRIV_CHECK_GT(options_.num_topics, 0u);
  TOPPRIV_CHECK_GT(options_.iterations, 0u);
}

LdaModel PlsaTrainer::Train(const corpus::Corpus& corpus) const {
  const size_t num_topics = options_.num_topics;
  const size_t vocab_size = corpus.vocabulary_size();
  const size_t num_docs = corpus.num_documents();
  TOPPRIV_CHECK_GT(vocab_size, 0u);
  TOPPRIV_CHECK_GT(num_docs, 0u);

  // Collapse documents to (term, count) pairs once.
  struct Cell {
    uint32_t term;
    uint32_t count;
  };
  std::vector<std::vector<Cell>> cells(num_docs);
  {
    std::unordered_map<text::TermId, uint32_t> tf;
    for (const corpus::Document& d : corpus.documents()) {
      tf.clear();
      for (text::TermId t : d.tokens) ++tf[t];
      cells[d.id].reserve(tf.size());
      for (const auto& [term, count] : tf) {
        cells[d.id].push_back({term, count});
      }
    }
  }

  // Parameters: phi[t][w] = Pr(w|t), theta[d][t] = Pr(t|d).
  util::Rng rng(options_.seed);
  std::vector<double> phi(num_topics * vocab_size);
  std::vector<double> theta(num_docs * num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    double sum = 0.0;
    for (size_t w = 0; w < vocab_size; ++w) {
      double v = 0.5 + rng.Uniform();
      phi[t * vocab_size + w] = v;
      sum += v;
    }
    for (size_t w = 0; w < vocab_size; ++w) phi[t * vocab_size + w] /= sum;
  }
  for (size_t d = 0; d < num_docs; ++d) {
    double sum = 0.0;
    for (size_t t = 0; t < num_topics; ++t) {
      double v = 0.5 + rng.Uniform();
      theta[d * num_topics + t] = v;
      sum += v;
    }
    for (size_t t = 0; t < num_topics; ++t) theta[d * num_topics + t] /= sum;
  }

  // EM. The E-step responsibility Pr(t|d,w) ∝ phi[t][w] * theta[d][t] is
  // folded directly into the M-step accumulators (standard memory-saving
  // formulation: no responsibilities are materialized).
  std::vector<double> phi_acc(num_topics * vocab_size);
  std::vector<double> theta_acc(num_docs * num_topics);
  std::vector<double> resp(num_topics);

  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    std::fill(phi_acc.begin(), phi_acc.end(), 0.0);
    std::fill(theta_acc.begin(), theta_acc.end(), 0.0);

    for (size_t d = 0; d < num_docs; ++d) {
      const double* doc_theta = theta.data() + d * num_topics;
      double* doc_theta_acc = theta_acc.data() + d * num_topics;
      for (const Cell& cell : cells[d]) {
        double total = 0.0;
        for (size_t t = 0; t < num_topics; ++t) {
          double r = phi[t * vocab_size + cell.term] * doc_theta[t];
          resp[t] = r;
          total += r;
        }
        if (total <= 0.0) continue;
        double scale = static_cast<double>(cell.count) / total;
        for (size_t t = 0; t < num_topics; ++t) {
          double weighted = resp[t] * scale;
          phi_acc[t * vocab_size + cell.term] += weighted;
          doc_theta_acc[t] += weighted;
        }
      }
    }

    // M-step normalization.
    for (size_t t = 0; t < num_topics; ++t) {
      double sum = 0.0;
      for (size_t w = 0; w < vocab_size; ++w) sum += phi_acc[t * vocab_size + w];
      if (sum <= 0.0) continue;
      for (size_t w = 0; w < vocab_size; ++w) {
        phi[t * vocab_size + w] = phi_acc[t * vocab_size + w] / sum;
      }
    }
    for (size_t d = 0; d < num_docs; ++d) {
      double sum = 0.0;
      for (size_t t = 0; t < num_topics; ++t) sum += theta_acc[d * num_topics + t];
      if (sum <= 0.0) continue;
      for (size_t t = 0; t < num_topics; ++t) {
        theta[d * num_topics + t] = theta_acc[d * num_topics + t] / sum;
      }
    }
  }

  // Final smoothing + packaging. The container's alpha doubles as the
  // fold-in pseudo-count at query time.
  std::vector<float> phi_out(num_topics * vocab_size);
  for (size_t t = 0; t < num_topics; ++t) {
    double sum = 0.0;
    for (size_t w = 0; w < vocab_size; ++w) {
      sum += phi[t * vocab_size + w] + options_.smoothing;
    }
    for (size_t w = 0; w < vocab_size; ++w) {
      phi_out[t * vocab_size + w] = static_cast<float>(
          (phi[t * vocab_size + w] + options_.smoothing) / sum);
    }
  }
  std::vector<float> theta_out(theta.begin(), theta.end());
  const double fold_in_alpha = 0.1;
  return LdaModel::Create(num_topics, vocab_size, std::move(phi_out),
                          std::move(theta_out), fold_in_alpha,
                          options_.smoothing);
}

}  // namespace toppriv::topicmodel
