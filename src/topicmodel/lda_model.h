// Trained LDA model: the Pr(w|t), Pr(t|d) and prior Pr(t) structures the
// paper's TopPriv framework consumes (Section IV-B, Eq. 1).
#ifndef TOPPRIV_TOPICMODEL_LDA_MODEL_H_
#define TOPPRIV_TOPICMODEL_LDA_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/span.h"
#include "util/status.h"

namespace toppriv::topicmodel {

/// Dense topic identifier (0 .. num_topics-1).
using TopicId = uint32_t;

/// A (word, probability) pair for top-word listings (paper Tables II-IV).
struct WordProb {
  text::TermId term = 0;
  double prob = 0.0;
};

/// Immutable trained model.
class LdaModel {
 public:
  LdaModel() = default;

  LdaModel(const LdaModel&) = delete;
  LdaModel& operator=(const LdaModel&) = delete;
  LdaModel(LdaModel&&) = default;
  LdaModel& operator=(LdaModel&&) = default;

  /// Constructs from estimated parameters. `phi` is row-major
  /// [num_topics x vocab_size] with rows summing to 1; `theta` is row-major
  /// [num_docs x num_topics]; `alpha`/`beta` are the training
  /// hyperparameters (needed again at inference time).
  static LdaModel Create(size_t num_topics, size_t vocab_size,
                         std::vector<float> phi, std::vector<float> theta,
                         double alpha, double beta);

  size_t num_topics() const { return num_topics_; }
  size_t vocab_size() const { return vocab_size_; }
  size_t num_docs() const {
    return num_topics_ == 0 ? 0 : theta_.size() / num_topics_;
  }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Pr(w|t): probability of term `w` under topic `t`.
  double Phi(TopicId t, text::TermId w) const {
    return phi_[static_cast<size_t>(t) * vocab_size_ + w];
  }
  /// Row view of Pr(.|t).
  util::Span<const float> PhiRow(TopicId t) const {
    return {phi_.data() + static_cast<size_t>(t) * vocab_size_, vocab_size_};
  }

  /// Pr(t|d) for a training document.
  double Theta(size_t doc, TopicId t) const {
    return theta_[doc * num_topics_ + t];
  }

  /// Prior belief Pr(t) = (1/|D|) sum_d Pr(t|d)  (paper Eq. 1).
  const std::vector<double>& prior() const { return prior_; }

  /// Top-k most probable terms of a topic (descending probability).
  std::vector<WordProb> TopWords(TopicId t, size_t k) const;

  /// Byte footprint of the model structures (phi + theta + prior), the
  /// quantity plotted in the paper's Fig. 6 (its LDA200 was ~140 MB).
  size_t SizeBytes() const;

  /// Serialization (experiment cache).
  std::string Serialize() const;
  static util::StatusOr<LdaModel> Deserialize(const std::string& bytes);

 private:
  size_t num_topics_ = 0;
  size_t vocab_size_ = 0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
  std::vector<float> phi_;
  std::vector<float> theta_;
  std::vector<double> prior_;
};

}  // namespace toppriv::topicmodel

#endif  // TOPPRIV_TOPICMODEL_LDA_MODEL_H_
