#include "topicmodel/gibbs_trainer.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/rng.h"

namespace toppriv::topicmodel {

GibbsTrainer::GibbsTrainer(TrainerOptions options) : options_(options) {
  TOPPRIV_CHECK_GT(options_.num_topics, 0u);
  TOPPRIV_CHECK_GT(options_.iterations, 0u);
  if (options_.estimation_samples == 0) options_.estimation_samples = 1;
  if (options_.estimation_samples > options_.iterations) {
    options_.estimation_samples = options_.iterations;
  }
}

LdaModel GibbsTrainer::Train(const corpus::Corpus& corpus) const {
  const size_t num_topics = options_.num_topics;
  const size_t vocab_size = corpus.vocabulary_size();
  const size_t num_docs = corpus.num_documents();
  TOPPRIV_CHECK_GT(vocab_size, 0u);
  TOPPRIV_CHECK_GT(num_docs, 0u);

  const double alpha = options_.alpha > 0.0
                           ? options_.alpha
                           : 50.0 / static_cast<double>(num_topics);
  const double beta = options_.beta;
  const double v_beta = static_cast<double>(vocab_size) * beta;

  // Count matrices. nwt is laid out word-major so the per-token sampling
  // loop walks a contiguous row of topic counts for its word.
  std::vector<int32_t> nwt(vocab_size * num_topics, 0);  // word-topic
  std::vector<int32_t> nt(num_topics, 0);                // topic totals
  std::vector<int32_t> ndt(num_docs * num_topics, 0);    // doc-topic

  // Token-level topic assignments z, flattened over all documents.
  size_t total_tokens = 0;
  for (const corpus::Document& d : corpus.documents()) {
    total_tokens += d.tokens.size();
  }
  std::vector<uint16_t> z(total_tokens);
  TOPPRIV_CHECK_LE(num_topics, 65535u);

  util::Rng rng(options_.seed);

  // Random initialization.
  {
    size_t pos = 0;
    for (const corpus::Document& d : corpus.documents()) {
      int32_t* doc_counts = ndt.data() + static_cast<size_t>(d.id) * num_topics;
      for (text::TermId w : d.tokens) {
        uint16_t t = static_cast<uint16_t>(rng.UniformInt(num_topics));
        z[pos++] = t;
        ++nwt[static_cast<size_t>(w) * num_topics + t];
        ++nt[t];
        ++doc_counts[t];
      }
    }
  }

  // Accumulators for the averaged estimate over the final sweeps.
  std::vector<double> phi_acc(vocab_size * num_topics, 0.0);
  std::vector<double> theta_acc(num_docs * num_topics, 0.0);
  size_t samples_taken = 0;

  std::vector<double> prob(num_topics);

  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    size_t pos = 0;
    for (const corpus::Document& d : corpus.documents()) {
      int32_t* doc_counts = ndt.data() + static_cast<size_t>(d.id) * num_topics;
      for (text::TermId w : d.tokens) {
        uint16_t old_t = z[pos];
        int32_t* word_counts = nwt.data() + static_cast<size_t>(w) * num_topics;
        // Remove the token from the counts.
        --word_counts[old_t];
        --nt[old_t];
        --doc_counts[old_t];

        // Full conditional: p(t) ∝ (ndt+α)(nwt+β)/(nt+Vβ).
        double total = 0.0;
        for (size_t t = 0; t < num_topics; ++t) {
          double p = (static_cast<double>(doc_counts[t]) + alpha) *
                     (static_cast<double>(word_counts[t]) + beta) /
                     (static_cast<double>(nt[t]) + v_beta);
          total += p;
          prob[t] = total;  // running CDF
        }
        double r = rng.Uniform() * total;
        // Binary search over the running CDF.
        size_t lo = 0, hi = num_topics - 1;
        while (lo < hi) {
          size_t mid = (lo + hi) / 2;
          if (prob[mid] > r) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        uint16_t new_t = static_cast<uint16_t>(lo);

        z[pos] = new_t;
        ++word_counts[new_t];
        ++nt[new_t];
        ++doc_counts[new_t];
        ++pos;
      }
    }

    if (options_.report_every > 0 && (iter + 1) % options_.report_every == 0) {
      std::fprintf(stderr, "gibbs: iteration %zu/%zu\n", iter + 1,
                   options_.iterations);
    }

    // Average the final `estimation_samples` sweeps.
    if (iter + options_.estimation_samples >= options_.iterations) {
      ++samples_taken;
      for (size_t w = 0; w < vocab_size; ++w) {
        const int32_t* word_counts = nwt.data() + w * num_topics;
        for (size_t t = 0; t < num_topics; ++t) {
          phi_acc[t * vocab_size + w] +=
              (static_cast<double>(word_counts[t]) + beta) /
              (static_cast<double>(nt[t]) + v_beta);
        }
      }
      for (size_t d = 0; d < num_docs; ++d) {
        const int32_t* doc_counts = ndt.data() + d * num_topics;
        double nd = static_cast<double>(corpus.documents()[d].tokens.size());
        double denom = nd + static_cast<double>(num_topics) * alpha;
        for (size_t t = 0; t < num_topics; ++t) {
          theta_acc[d * num_topics + t] +=
              (static_cast<double>(doc_counts[t]) + alpha) / denom;
        }
      }
    }
  }

  TOPPRIV_CHECK_GT(samples_taken, 0u);
  std::vector<float> phi(vocab_size * num_topics);
  for (size_t i = 0; i < phi.size(); ++i) {
    phi[i] = static_cast<float>(phi_acc[i] / static_cast<double>(samples_taken));
  }
  std::vector<float> theta(num_docs * num_topics);
  for (size_t i = 0; i < theta.size(); ++i) {
    theta[i] =
        static_cast<float>(theta_acc[i] / static_cast<double>(samples_taken));
  }
  return LdaModel::Create(num_topics, vocab_size, std::move(phi),
                          std::move(theta), alpha, beta);
}

double GibbsTrainer::LogLikelihoodPerToken(const LdaModel& model,
                                           const corpus::Corpus& corpus) {
  double ll = 0.0;
  uint64_t tokens = 0;
  const size_t num_topics = model.num_topics();
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    const corpus::Document& doc = corpus.documents()[d];
    for (text::TermId w : doc.tokens) {
      double p = 0.0;
      for (size_t t = 0; t < num_topics; ++t) {
        p += model.Theta(d, static_cast<TopicId>(t)) *
             model.Phi(static_cast<TopicId>(t), w);
      }
      ll += std::log(p > 1e-300 ? p : 1e-300);
      ++tokens;
    }
  }
  return tokens == 0 ? 0.0 : ll / static_cast<double>(tokens);
}

}  // namespace toppriv::topicmodel
