#include "topicmodel/lda_model.h"

#include <algorithm>

#include "util/check.h"
#include "util/io.h"

namespace toppriv::topicmodel {

LdaModel LdaModel::Create(size_t num_topics, size_t vocab_size,
                          std::vector<float> phi, std::vector<float> theta,
                          double alpha, double beta) {
  TOPPRIV_CHECK_GT(num_topics, 0u);
  TOPPRIV_CHECK_GT(vocab_size, 0u);
  TOPPRIV_CHECK_EQ(phi.size(), num_topics * vocab_size);
  TOPPRIV_CHECK_EQ(theta.size() % num_topics, 0u);
  LdaModel model;
  model.num_topics_ = num_topics;
  model.vocab_size_ = vocab_size;
  model.alpha_ = alpha;
  model.beta_ = beta;
  model.phi_ = std::move(phi);
  model.theta_ = std::move(theta);

  // Prior belief per Eq. 1: uniform average of Pr(t|d) over documents.
  model.prior_.assign(num_topics, 0.0);
  size_t num_docs = model.num_docs();
  if (num_docs > 0) {
    for (size_t d = 0; d < num_docs; ++d) {
      for (size_t t = 0; t < num_topics; ++t) {
        model.prior_[t] += model.theta_[d * num_topics + t];
      }
    }
    for (double& p : model.prior_) p /= static_cast<double>(num_docs);
  } else {
    for (double& p : model.prior_) p = 1.0 / static_cast<double>(num_topics);
  }
  return model;
}

std::vector<WordProb> LdaModel::TopWords(TopicId t, size_t k) const {
  TOPPRIV_CHECK_LT(t, num_topics_);
  std::vector<WordProb> all;
  all.reserve(vocab_size_);
  util::Span<const float> row = PhiRow(t);
  for (size_t w = 0; w < vocab_size_; ++w) {
    all.push_back(WordProb{static_cast<text::TermId>(w), row[w]});
  }
  size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const WordProb& a, const WordProb& b) {
                      if (a.prob != b.prob) return a.prob > b.prob;
                      return a.term < b.term;
                    });
  all.resize(keep);
  return all;
}

size_t LdaModel::SizeBytes() const {
  return phi_.size() * sizeof(float) + theta_.size() * sizeof(float) +
         prior_.size() * sizeof(double);
}

std::string LdaModel::Serialize() const {
  util::BinaryWriter w;
  w.WriteVarint(num_topics_);
  w.WriteVarint(vocab_size_);
  w.WriteDouble(alpha_);
  w.WriteDouble(beta_);
  w.WriteFloatVector(phi_);
  w.WriteFloatVector(theta_);
  return w.data();
}

util::StatusOr<LdaModel> LdaModel::Deserialize(const std::string& bytes) {
  util::BinaryReader r(bytes);
  uint64_t num_topics = 0, vocab_size = 0;
  double alpha = 0.0, beta = 0.0;
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&num_topics));
  TOPPRIV_RETURN_IF_ERROR(r.ReadVarint(&vocab_size));
  TOPPRIV_RETURN_IF_ERROR(r.ReadDouble(&alpha));
  TOPPRIV_RETURN_IF_ERROR(r.ReadDouble(&beta));
  std::vector<float> phi, theta;
  TOPPRIV_RETURN_IF_ERROR(r.ReadFloatVector(&phi));
  TOPPRIV_RETURN_IF_ERROR(r.ReadFloatVector(&theta));
  // Validate phi.size() == num_topics * vocab_size by division: the product
  // of two attacker-controlled uint64 dimensions can wrap and collide with
  // the actual payload size (e.g. 2^32 x 2^32 "equals" an empty phi),
  // smuggling an inconsistent model past the check.
  if (num_topics == 0 || vocab_size == 0 ||
      phi.size() / vocab_size != num_topics ||
      phi.size() % vocab_size != 0 ||
      theta.size() % num_topics != 0) {
    return util::Status::DataLoss("inconsistent LDA model dimensions");
  }
  return Create(num_topics, vocab_size, std::move(phi), std::move(theta),
                alpha, beta);
}

}  // namespace toppriv::topicmodel
