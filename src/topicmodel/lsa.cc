#include "topicmodel/lsa.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/rng.h"

namespace toppriv::topicmodel {

namespace {

// Sparse matrix in CSR-by-term layout: for each term, its (doc, weight)
// entries. Weights are TF-IDF: (1 + log tf) * idf.
struct SparseMatrix {
  size_t num_terms = 0;
  size_t num_docs = 0;
  std::vector<size_t> row_start;       // num_terms + 1
  std::vector<uint32_t> col;           // doc ids
  std::vector<float> val;              // weights

  // y = A^T x  (x over terms, y over docs)
  void LeftApply(const std::vector<double>& x, std::vector<double>* y) const {
    y->assign(num_docs, 0.0);
    for (size_t t = 0; t < num_terms; ++t) {
      double xt = x[t];
      if (xt == 0.0) continue;
      for (size_t i = row_start[t]; i < row_start[t + 1]; ++i) {
        (*y)[col[i]] += xt * val[i];
      }
    }
  }

  // x = A y  (y over docs, x over terms)
  void RightApply(const std::vector<double>& y, std::vector<double>* x) const {
    x->assign(num_terms, 0.0);
    for (size_t t = 0; t < num_terms; ++t) {
      double acc = 0.0;
      for (size_t i = row_start[t]; i < row_start[t + 1]; ++i) {
        acc += val[i] * y[col[i]];
      }
      (*x)[t] = acc;
    }
  }
};

// Modified Gram-Schmidt orthonormalization of k column vectors, each of
// dimension n, stored as vectors[j][i].
void Orthonormalize(std::vector<std::vector<double>>* vectors) {
  for (size_t j = 0; j < vectors->size(); ++j) {
    std::vector<double>& v = (*vectors)[j];
    for (size_t p = 0; p < j; ++p) {
      const std::vector<double>& u = (*vectors)[p];
      double dot = 0.0;
      for (size_t i = 0; i < v.size(); ++i) dot += v[i] * u[i];
      for (size_t i = 0; i < v.size(); ++i) v[i] -= dot * u[i];
    }
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate direction; leave as zeros (rank-deficient input).
      std::fill(v.begin(), v.end(), 0.0);
    } else {
      for (double& x : v) x /= norm;
    }
  }
}

}  // namespace

util::Span<const float> LsaModel::TermVector(text::TermId term) const {
  TOPPRIV_CHECK_LT(term, vocab_size_);
  return {term_factors_.data() + static_cast<size_t>(term) * num_factors_,
          num_factors_};
}

std::vector<float> LsaModel::ProjectQuery(
    const std::vector<text::TermId>& terms) const {
  std::vector<float> out(num_factors_, 0.f);
  std::unordered_map<text::TermId, uint32_t> tf;
  for (text::TermId t : terms) {
    if (t < vocab_size_) ++tf[t];
  }
  for (const auto& [term, count] : tf) {
    util::Span<const float> row = TermVector(term);
    float weight =
        (1.f + std::log(static_cast<float>(count))) * idf_[term];
    for (size_t f = 0; f < num_factors_; ++f) out[f] += weight * row[f];
  }
  return out;
}

double LsaModel::Cosine(util::Span<const float> a, util::Span<const float> b) {
  TOPPRIV_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-18 || nb < 1e-18) return 0.0;
  return dot / std::sqrt(na * nb);
}

LsaModel LsaTrainer::Train(const corpus::Corpus& corpus) const {
  const text::Vocabulary& vocab = corpus.vocabulary();
  const size_t vocab_size = vocab.size();
  const size_t num_docs = corpus.num_documents();
  const size_t k = options_.num_factors;
  TOPPRIV_CHECK_GT(k, 0u);
  TOPPRIV_CHECK_GT(num_docs, 0u);

  // IDF; terms below min_doc_freq get idf 0 (dropped from the matrix).
  std::vector<float> idf(vocab_size, 0.f);
  for (text::TermId w = 0; w < vocab_size; ++w) {
    uint32_t df = vocab.DocFreq(w);
    if (df >= options_.min_doc_freq) {
      idf[w] = std::log(static_cast<float>(num_docs) /
                        static_cast<float>(df));
    }
  }

  // Build the sparse TF-IDF matrix, term-major.
  std::vector<std::vector<std::pair<uint32_t, float>>> rows(vocab_size);
  {
    std::unordered_map<text::TermId, uint32_t> tf;
    for (const corpus::Document& d : corpus.documents()) {
      tf.clear();
      for (text::TermId t : d.tokens) ++tf[t];
      for (const auto& [term, count] : tf) {
        if (idf[term] <= 0.f) continue;
        float weight =
            (1.f + std::log(static_cast<float>(count))) * idf[term];
        rows[term].push_back({d.id, weight});
      }
    }
  }
  SparseMatrix matrix;
  matrix.num_terms = vocab_size;
  matrix.num_docs = num_docs;
  matrix.row_start.resize(vocab_size + 1, 0);
  for (size_t t = 0; t < vocab_size; ++t) {
    matrix.row_start[t + 1] = matrix.row_start[t] + rows[t].size();
  }
  matrix.col.resize(matrix.row_start.back());
  matrix.val.resize(matrix.row_start.back());
  for (size_t t = 0; t < vocab_size; ++t) {
    size_t base = matrix.row_start[t];
    for (size_t i = 0; i < rows[t].size(); ++i) {
      matrix.col[base + i] = rows[t][i].first;
      matrix.val[base + i] = rows[t][i].second;
    }
  }

  // Subspace iteration on A A^T for the top-k left singular vectors.
  util::Rng rng(options_.seed);
  std::vector<std::vector<double>> basis(k,
                                         std::vector<double>(vocab_size));
  for (auto& v : basis) {
    for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  }
  Orthonormalize(&basis);

  std::vector<double> tmp_docs, tmp_terms;
  for (size_t iter = 0; iter < options_.power_iterations; ++iter) {
    for (auto& v : basis) {
      matrix.LeftApply(v, &tmp_docs);
      matrix.RightApply(tmp_docs, &tmp_terms);
      v = tmp_terms;
    }
    Orthonormalize(&basis);
  }

  // Singular values: s_i = ||A^T u_i||; sort descending.
  std::vector<std::pair<double, size_t>> order;
  std::vector<double> sigmas(k, 0.0);
  for (size_t j = 0; j < k; ++j) {
    matrix.LeftApply(basis[j], &tmp_docs);
    double norm = 0.0;
    for (double x : tmp_docs) norm += x * x;
    sigmas[j] = std::sqrt(norm);
    order.push_back({sigmas[j], j});
  }
  std::sort(order.rbegin(), order.rend());

  LsaModel model;
  model.num_factors_ = k;
  model.vocab_size_ = vocab_size;
  model.idf_ = std::move(idf);
  model.singular_values_.resize(k);
  model.term_factors_.assign(vocab_size * k, 0.f);
  for (size_t rank = 0; rank < k; ++rank) {
    size_t j = order[rank].second;
    model.singular_values_[rank] = static_cast<float>(sigmas[j]);
    for (size_t t = 0; t < vocab_size; ++t) {
      model.term_factors_[t * k + rank] = static_cast<float>(basis[j][t]);
    }
  }
  return model;
}

}  // namespace toppriv::topicmodel
