// Query-time LDA inference: Pr(t|q) for unseen word bags, and the cycle
// posterior of paper Eq. 2.
//
// Inference folds the query into the trained model by Gibbs-sampling topic
// assignments for the query tokens with phi held fixed — the same
// "inference mode" the paper uses GibbsLDA++ for.
#ifndef TOPPRIV_TOPICMODEL_INFERENCE_H_
#define TOPPRIV_TOPICMODEL_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "text/vocabulary.h"
#include "topicmodel/lda_model.h"

namespace toppriv::topicmodel {

/// Inference knobs.
struct InferenceOptions {
  /// Gibbs sweeps over the query tokens.
  size_t iterations = 30;
  /// Initial sweeps discarded before averaging.
  size_t burn_in = 10;
  /// Base seed; combined with a hash of the query so that the same query
  /// always yields the same posterior (deterministic, thread-compatible).
  uint64_t seed = 11;
};

/// Reusable Gibbs scratch buffers for InferQuery. One inference allocates
/// five vectors; on the serving hot path (one inference per candidate
/// ghost) that allocator traffic dominates, so callers in a loop keep a
/// workspace alive across calls. Not thread-safe: use one workspace per
/// thread (the workspace-less InferQuery overload does exactly that).
struct InferenceWorkspace {
  std::vector<text::TermId> tokens;
  std::vector<uint32_t> counts;
  std::vector<uint16_t> z;
  std::vector<double> cdf;
  std::vector<double> accum;
};

/// Fold-in Gibbs inferencer over a fixed trained model.
class LdaInferencer {
 public:
  /// The inferencer borrows `model`, which must outlive it.
  explicit LdaInferencer(const LdaModel& model, InferenceOptions options = {});

  /// Posterior Pr(t|q) for a query given as a bag of term ids. Unknown ids
  /// (>= vocab_size) are ignored; an effectively-empty query returns the
  /// uniform distribution (the symmetric-alpha posterior). Uses a
  /// thread-local workspace, so it is safe to call concurrently.
  std::vector<double> InferQuery(const std::vector<text::TermId>& terms) const;

  /// Same, reusing the caller's scratch buffers (identical result).
  std::vector<double> InferQuery(const std::vector<text::TermId>& terms,
                                 InferenceWorkspace* workspace) const;

  /// Paper Eq. 2: Pr(t|{q1..qv}) = (1/v) * sum_i Pr(t|qi), treating every
  /// query in the cycle as equally likely to be the genuine one.
  static std::vector<double> CyclePosterior(
      const std::vector<std::vector<double>>& per_query_posteriors);

  const LdaModel& model() const { return model_; }
  const InferenceOptions& options() const { return options_; }

 private:
  const LdaModel& model_;
  InferenceOptions options_;
};

}  // namespace toppriv::topicmodel

#endif  // TOPPRIV_TOPICMODEL_INFERENCE_H_
