// Probabilistic Latent Semantic Analysis (Hofmann) via EM
// (paper Appendix A.2).
//
// The paper declines pLSA for TopPriv because its generative semantics for
// unseen queries are ill-defined; the standard workaround is "folding in"
// (EM over the query with Pr(w|t) frozen). We implement both so the
// alternative can be measured rather than argued:
// bench/topicmodel_alternatives runs TopPriv end-to-end on a pLSA model by
// packaging its parameters in the LdaModel container.
#ifndef TOPPRIV_TOPICMODEL_PLSA_H_
#define TOPPRIV_TOPICMODEL_PLSA_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "topicmodel/lda_model.h"

namespace toppriv::topicmodel {

/// pLSA training knobs.
struct PlsaOptions {
  size_t num_topics = 50;
  /// EM iterations over the corpus.
  size_t iterations = 40;
  uint64_t seed = 23;
  /// Additive smoothing applied to the final parameter estimates so that
  /// no Pr(w|t) is exactly zero (query folding needs full support).
  double smoothing = 1e-4;
};

/// EM trainer producing Pr(w|t) and Pr(t|d).
class PlsaTrainer {
 public:
  explicit PlsaTrainer(PlsaOptions options);

  /// Trains pLSA and packages the estimates in the LdaModel container
  /// (phi = Pr(w|t), theta = Pr(t|d); alpha is set to a small pseudo-count
  /// used by fold-in inference). Deterministic given options.seed.
  LdaModel Train(const corpus::Corpus& corpus) const;

  /// Per-token training log-likelihood of a trained model (same metric as
  /// GibbsTrainer::LogLikelihoodPerToken; usable for comparison).
  const PlsaOptions& options() const { return options_; }

 private:
  PlsaOptions options_;
};

}  // namespace toppriv::topicmodel

#endif  // TOPPRIV_TOPICMODEL_PLSA_H_
