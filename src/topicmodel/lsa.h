// Latent Semantic Analysis via truncated SVD (paper Appendix A.2).
//
// The paper discusses LSA as an alternative topical-modeling technique and
// rejects it for TopPriv because materializing the term-document matrix for
// WSJ is infeasible; it is, however, exactly the machinery the
// Murugesan-Clifton baseline [10] uses (a 30-factor LSI space for forming
// canonical queries). We implement a sparse truncated SVD by subspace
// (block power) iteration so that baseline can be reproduced faithfully.
#ifndef TOPPRIV_TOPICMODEL_LSA_H_
#define TOPPRIV_TOPICMODEL_LSA_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "text/vocabulary.h"
#include "util/span.h"

namespace toppriv::topicmodel {

/// LSA training knobs.
struct LsaOptions {
  /// Number of retained factors (the baseline paper uses 30).
  size_t num_factors = 30;
  /// Subspace-iteration sweeps (each sweep multiplies by A A^T once).
  size_t power_iterations = 25;
  uint64_t seed = 13;
  /// Terms with document frequency below this are dropped from the matrix
  /// (they carry no co-occurrence signal and slow the factorization).
  uint32_t min_doc_freq = 2;
};

/// Truncated SVD of the TF-IDF term-document matrix A ~= U S V^T.
/// Only the term side (U, S) is retained: that is what query folding
/// (q -> q^T U) and term-space geometry need.
class LsaModel {
 public:
  LsaModel() = default;

  LsaModel(const LsaModel&) = delete;
  LsaModel& operator=(const LsaModel&) = delete;
  LsaModel(LsaModel&&) = default;
  LsaModel& operator=(LsaModel&&) = default;

  size_t num_factors() const { return num_factors_; }
  size_t vocab_size() const { return vocab_size_; }

  /// Row of U for a term (all-zero for terms dropped by min_doc_freq).
  util::Span<const float> TermVector(text::TermId term) const;

  /// Singular values, descending.
  const std::vector<float>& singular_values() const {
    return singular_values_;
  }

  /// Projects a bag of terms into factor space: sum of TF-IDF-weighted
  /// term vectors (the standard LSI query folding q^T U).
  std::vector<float> ProjectQuery(const std::vector<text::TermId>& terms) const;

  /// Cosine similarity of two factor-space vectors (0 if either is ~0).
  static double Cosine(util::Span<const float> a, util::Span<const float> b);

 private:
  friend class LsaTrainer;

  size_t num_factors_ = 0;
  size_t vocab_size_ = 0;
  std::vector<float> term_factors_;    // V x k row-major
  std::vector<float> singular_values_;  // k
  std::vector<float> idf_;              // V (0 for dropped terms)
};

/// Computes the truncated SVD of a corpus's TF-IDF matrix.
class LsaTrainer {
 public:
  explicit LsaTrainer(LsaOptions options) : options_(options) {}

  /// Deterministic given options.seed.
  LsaModel Train(const corpus::Corpus& corpus) const;

  const LsaOptions& options() const { return options_; }

 private:
  LsaOptions options_;
};

}  // namespace toppriv::topicmodel

#endif  // TOPPRIV_TOPICMODEL_LSA_H_
