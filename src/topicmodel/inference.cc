#include "topicmodel/inference.h"

#include "util/check.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace toppriv::topicmodel {

namespace {

// FNV-1a over the term ids, so identical queries share an RNG stream.
uint64_t HashTerms(const std::vector<text::TermId>& terms) {
  uint64_t h = util::kFnv1aOffsetBasis;
  for (text::TermId t : terms) h = util::Fnv1aStep(h, t);
  return h;
}

}  // namespace

LdaInferencer::LdaInferencer(const LdaModel& model, InferenceOptions options)
    : model_(model), options_(options) {
  TOPPRIV_CHECK_GT(options_.iterations, 0u);
  TOPPRIV_CHECK_LT(options_.burn_in, options_.iterations);
}

std::vector<double> LdaInferencer::InferQuery(
    const std::vector<text::TermId>& terms) const {
  static thread_local InferenceWorkspace workspace;
  return InferQuery(terms, &workspace);
}

std::vector<double> LdaInferencer::InferQuery(
    const std::vector<text::TermId>& terms,
    InferenceWorkspace* workspace) const {
  const size_t num_topics = model_.num_topics();
  const double alpha = model_.alpha();

  // Keep only in-vocabulary tokens.
  std::vector<text::TermId>& tokens = workspace->tokens;
  tokens.clear();
  tokens.reserve(terms.size());
  for (text::TermId t : terms) {
    if (t < model_.vocab_size()) tokens.push_back(t);
  }
  if (tokens.empty()) {
    return std::vector<double>(num_topics, 1.0 / static_cast<double>(num_topics));
  }

  util::Rng rng(options_.seed ^ HashTerms(tokens));

  std::vector<uint32_t>& counts = workspace->counts;
  counts.assign(num_topics, 0);
  std::vector<uint16_t>& z = workspace->z;
  z.resize(tokens.size());
  TOPPRIV_CHECK_LE(num_topics, 65535u);

  // Random init.
  for (size_t i = 0; i < tokens.size(); ++i) {
    uint16_t t = static_cast<uint16_t>(rng.UniformInt(num_topics));
    z[i] = t;
    ++counts[t];
  }

  std::vector<double>& cdf = workspace->cdf;
  cdf.resize(num_topics);
  std::vector<double>& accum = workspace->accum;
  accum.assign(num_topics, 0.0);
  size_t samples = 0;

  for (size_t iter = 0; iter < options_.iterations; ++iter) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      uint16_t old_t = z[i];
      --counts[old_t];
      const text::TermId w = tokens[i];
      double total = 0.0;
      for (size_t t = 0; t < num_topics; ++t) {
        double p = (static_cast<double>(counts[t]) + alpha) *
                   model_.Phi(static_cast<TopicId>(t), w);
        total += p;
        cdf[t] = total;
      }
      uint16_t new_t;
      if (total <= 0.0) {
        new_t = static_cast<uint16_t>(rng.UniformInt(num_topics));
      } else {
        double r = rng.Uniform() * total;
        size_t lo = 0, hi = num_topics - 1;
        while (lo < hi) {
          size_t mid = (lo + hi) / 2;
          if (cdf[mid] > r) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        new_t = static_cast<uint16_t>(lo);
      }
      z[i] = new_t;
      ++counts[new_t];
    }
    if (iter >= options_.burn_in) {
      ++samples;
      double denom = static_cast<double>(tokens.size()) +
                     static_cast<double>(num_topics) * alpha;
      for (size_t t = 0; t < num_topics; ++t) {
        accum[t] += (static_cast<double>(counts[t]) + alpha) / denom;
      }
    }
  }

  TOPPRIV_CHECK_GT(samples, 0u);
  for (double& v : accum) v /= static_cast<double>(samples);
  // One flush per inference call, after the sampler is done: the metrics
  // layer must never interleave with (let alone read) the RNG stream.
  TOPPRIV_COUNTER_INC("lda.inferences");
  TOPPRIV_COUNTER_ADD("lda.gibbs_iterations", options_.iterations);
  TOPPRIV_COUNTER_ADD("lda.gibbs_token_sweeps",
                      options_.iterations * tokens.size());
  return accum;
}

std::vector<double> LdaInferencer::CyclePosterior(
    const std::vector<std::vector<double>>& per_query_posteriors) {
  TOPPRIV_CHECK(!per_query_posteriors.empty());
  const size_t num_topics = per_query_posteriors.front().size();
  std::vector<double> out(num_topics, 0.0);
  for (const auto& posterior : per_query_posteriors) {
    TOPPRIV_CHECK_EQ(posterior.size(), num_topics);
    for (size_t t = 0; t < num_topics; ++t) out[t] += posterior[t];
  }
  const double inv = 1.0 / static_cast<double>(per_query_posteriors.size());
  for (double& v : out) v *= inv;
  return out;
}

}  // namespace toppriv::topicmodel
