#include "search/fault_injecting_engine.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/status.h"

namespace toppriv::search {

namespace {

/// A kHang advances the clock by this much: far past any deadline a test
/// or serving path would set (an hour), while staying robustly clear of
/// int64 nanosecond overflow even after many hangs.
constexpr int64_t kHangNanos = int64_t{3600} * 1'000'000'000;

}  // namespace

void FaultInjectingEngine::ScheduleFault(EngineFault fault) {
  util::MutexLock lock(&mu_);
  faults_.push_back(fault);
}

void FaultInjectingEngine::ClearFaults() {
  util::MutexLock lock(&mu_);
  faults_.clear();
}

uint64_t FaultInjectingEngine::calls() const {
  util::MutexLock lock(&mu_);
  return calls_;
}

uint64_t FaultInjectingEngine::faults_fired() const {
  util::MutexLock lock(&mu_);
  return faults_fired_;
}

util::StatusOr<std::vector<ScoredDoc>> FaultInjectingEngine::
    EvaluateWithOptions(const std::vector<text::TermId>& terms, size_t k,
                        const QueryOptions& options) const {
  // Claim this call's index and (at most) one matching fault under the
  // lock; the fault's effects — clock advance, error, delegation — run
  // outside it so concurrent queries never serialize on the wrapper.
  bool fired = false;
  EngineFault fault;
  {
    util::MutexLock lock(&mu_);
    const uint64_t call = calls_++;
    const auto it =
        std::find_if(faults_.begin(), faults_.end(),
                     [call](const EngineFault& f) { return f.at_call == call; });
    if (it != faults_.end()) {
      fired = true;
      fault = *it;
      faults_.erase(it);
      ++faults_fired_;
    }
  }
  if (fired) {
    TOPPRIV_COUNTER_INC("chaos.faults_injected");
    switch (fault.kind) {
      case EngineFault::Kind::kError:
        return util::Status::Unavailable("injected engine fault");
      case EngineFault::Kind::kDelay:
        clock_->Advance(fault.delay_nanos);
        break;
      case EngineFault::Kind::kHang:
        clock_->Advance(kHangNanos);
        break;
    }
  }
  return inner_->EvaluateWithOptions(terms, k, options);
}

}  // namespace toppriv::search
