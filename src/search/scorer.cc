#include "search/scorer.h"

#include <cmath>

#include "util/check.h"

namespace toppriv::search {

double TfIdfCosineScorer::TermScore(const CollectionStats& stats,
                                    uint32_t doc_length, uint32_t tf,
                                    uint32_t df, uint32_t qtf) const {
  (void)doc_length;
  if (df == 0) return 0.0;
  double n = static_cast<double>(stats.num_documents);
  double idf = std::log(1.0 + n / static_cast<double>(df));
  double dtf = 1.0 + std::log(static_cast<double>(tf));
  double qw = static_cast<double>(qtf) * idf;
  return dtf * qw;
}

double TfIdfCosineScorer::Normalize(const CollectionStats& stats,
                                    uint32_t doc_length,
                                    double accumulated) const {
  (void)stats;
  double len = static_cast<double>(doc_length);
  if (len <= 0.0) return 0.0;
  return accumulated / std::sqrt(len);
}

double Bm25Scorer::TermScore(const CollectionStats& stats, uint32_t doc_length,
                             uint32_t tf, uint32_t df, uint32_t qtf) const {
  if (df == 0) return 0.0;
  double n = static_cast<double>(stats.num_documents);
  double idf =
      std::log(1.0 + (n - static_cast<double>(df) + 0.5) /
                         (static_cast<double>(df) + 0.5));
  double dl = static_cast<double>(doc_length);
  double avgdl = stats.avg_doc_length;
  double denom =
      static_cast<double>(tf) +
      k1_ * (1.0 - b_ + b_ * (avgdl > 0.0 ? dl / avgdl : 1.0));
  double tf_part = static_cast<double>(tf) * (k1_ + 1.0) / denom;
  return idf * tf_part * static_cast<double>(qtf);
}

LmDirichletScorer::LmDirichletScorer(double mu) : mu_(mu) {
  TOPPRIV_CHECK_GT(mu, 0.0);
}

double LmDirichletScorer::TermScore(const CollectionStats& stats,
                                    uint32_t doc_length, uint32_t tf,
                                    uint32_t df, uint32_t qtf) const {
  (void)doc_length;
  double total = static_cast<double>(stats.total_tokens);
  if (total <= 0.0) return 0.0;
  // The term-at-a-time API exposes tf/df only, so df serves as the
  // collection-frequency proxy in the smoothing denominator. Rank-equivalent
  // Dirichlet form: qtf * log(1 + tf / (mu * p(w|C))); the per-document
  // log(mu / (mu + |d|)) factor is applied once in Normalize (a harmless
  // simplification: it drops the |q| coefficient, which is constant within
  // a query and only mildly re-weights the document-length prior).
  double p_coll = static_cast<double>(df > 0 ? df : 1) / total;
  return static_cast<double>(qtf) *
         std::log(1.0 + static_cast<double>(tf) / (mu_ * p_coll));
}

double LmDirichletScorer::Normalize(const CollectionStats& stats,
                                    uint32_t doc_length,
                                    double accumulated) const {
  (void)stats;
  double dl = static_cast<double>(doc_length);
  return accumulated + std::log(mu_ / (dl + mu_));
}

std::unique_ptr<Scorer> MakeTfIdfScorer() {
  return std::make_unique<TfIdfCosineScorer>();
}

std::unique_ptr<Scorer> MakeBm25Scorer(double k1, double b) {
  return std::make_unique<Bm25Scorer>(k1, b);
}

}  // namespace toppriv::search
