#include "search/eval.h"

#include <cmath>
#include <unordered_set>

namespace toppriv::search {

namespace {

std::unordered_set<corpus::DocId> ToSet(
    const std::vector<corpus::DocId>& docs) {
  return {docs.begin(), docs.end()};
}

}  // namespace

double PrecisionAtK(const std::vector<ScoredDoc>& ranked,
                    const std::vector<corpus::DocId>& relevant, size_t k) {
  if (k == 0) return 0.0;
  auto rel = ToSet(relevant);
  size_t hits = 0;
  size_t considered = 0;
  for (const ScoredDoc& sd : ranked) {
    if (considered >= k) break;
    ++considered;
    if (rel.count(sd.doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const std::vector<ScoredDoc>& ranked,
                 const std::vector<corpus::DocId>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  auto rel = ToSet(relevant);
  size_t hits = 0;
  size_t considered = 0;
  for (const ScoredDoc& sd : ranked) {
    if (considered >= k) break;
    ++considered;
    if (rel.count(sd.doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(rel.size());
}

double AveragePrecision(const std::vector<ScoredDoc>& ranked,
                        const std::vector<corpus::DocId>& relevant) {
  if (relevant.empty()) return 0.0;
  auto rel = ToSet(relevant);
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (rel.count(ranked[i].doc)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(rel.size());
}

double NdcgAtK(const std::vector<ScoredDoc>& ranked,
               const std::vector<corpus::DocId>& relevant, size_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  auto rel = ToSet(relevant);
  double dcg = 0.0;
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    if (rel.count(ranked[i].doc)) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double idcg = 0.0;
  size_t ideal_hits = std::min(k, rel.size());
  for (size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

bool SameRanking(const std::vector<ScoredDoc>& a,
                 const std::vector<ScoredDoc>& b, double score_tolerance) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc) return false;
    if (std::fabs(a[i].score - b[i].score) > score_tolerance) return false;
  }
  return true;
}

}  // namespace toppriv::search
