// Ranked retrieval over a ShardedIndex: scatter the query to every shard,
// gather the per-shard top-k lists, merge into the global top-k.
//
// Parity contract (enforced by tests/sharding_test.cc): for any corpus,
// query, k and shard count, results are BIT-identical to the monolithic
// SearchEngine — same documents, same order, same score bits — whether the
// shards are evaluated sequentially or fanned out on a thread pool. Three
// ingredients make that hold:
//   1. every shard scores with the GLOBAL collection statistics and the
//      GLOBAL per-term document frequencies from the manifest, not its
//      local ones (distributed-IR "global IDF");
//   2. both engines run the identical accumulation core (AccumulateTopK)
//      over the identical canonical term order (CollapseQuery), so each
//      document's score is produced by the same floating-point ops in the
//      same order regardless of which shard holds it;
//   3. the merge reuses TopK's (score desc, doc id asc) total order, so
//      exact score ties break by doc id, never by shard arrival order.
#ifndef TOPPRIV_SEARCH_SHARDED_ENGINE_H_
#define TOPPRIV_SEARCH_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "corpus/corpus.h"
#include "index/sharded_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "search/topk.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace toppriv::search {

/// Scatter-gather search engine over a document-partitioned index.
class ShardedSearchEngine : public QueryEngine {
 public:
  /// Borrows the corpus and sharded index; both must outlive the engine.
  /// `num_threads` > 1 gives the engine a private worker pool that each
  /// query's shard evaluations fan out on; 1 (the default) evaluates shards
  /// sequentially on the caller's thread. Results are identical either way,
  /// and Evaluate stays safe for concurrent callers in both modes (the
  /// serving driver's sessions share one engine).
  ShardedSearchEngine(const corpus::Corpus& corpus,
                      const index::ShardedIndex& index,
                      std::unique_ptr<Scorer> scorer, size_t num_threads = 1,
                      EvalStrategy strategy = EvalStrategy::kTAAT);

  ShardedSearchEngine(const ShardedSearchEngine&) = delete;
  ShardedSearchEngine& operator=(const ShardedSearchEngine&) = delete;

  /// Logs the query, then evaluates. The query log is deliberately
  /// unsynchronized (single-session client API): concurrent callers must
  /// use the const Evaluate path, as the serving fleet does.
  std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                size_t k, uint64_t cycle_id = 0) override;

  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k) const override
      EXCLUDES(strategy_mu_);

  /// Deadline-aware scatter-gather: the deadline (with its SHARED sticky
  /// cancel flag) is threaded into every shard's eval core, so the first
  /// worker to observe expiry stops the whole fan-out — a stuck shard
  /// cannot wedge the session past the deadline. Accepted queries are
  /// bit-identical to Evaluate.
  util::StatusOr<std::vector<ScoredDoc>> EvaluateWithOptions(
      const std::vector<text::TermId>& terms, size_t k,
      const QueryOptions& options) const override EXCLUDES(strategy_mu_);

  const QueryLog& query_log() const override { return log_; }
  QueryLog& mutable_query_log() override { return log_; }

  const corpus::Corpus& corpus() const override { return corpus_; }
  const index::ShardedIndex& index() const { return index_; }
  const Scorer& scorer() const override { return *scorer_; }

  /// Shard-evaluation threads (1 = sequential scatter).
  size_t num_threads() const { return pool_ ? pool_->num_threads() : 1; }

  EvalStrategy eval_strategy() const override EXCLUDES(strategy_mu_) {
    util::MutexLock lock(&strategy_mu_);
    return strategy_;
  }
  /// Per-shard evaluation strategy; the parity contract makes strategies
  /// indistinguishable result-wise. Selecting MaxScore builds the
  /// per-shard impact-bound tables on first selection — with the GLOBAL
  /// document frequencies, like every other scoring input here.
  /// Thread-safe: the strategy and its bound tables live behind
  /// strategy_mu_ (PR 7 — this used to be a caller-beware prose contract;
  /// the capability analysis now enforces it). In-flight Evaluate calls
  /// finish under the strategy they started with.
  void set_eval_strategy(EvalStrategy strategy) EXCLUDES(strategy_mu_);

 private:
  /// Shared scatter-gather body; `deadline` may be null (Evaluate's path).
  std::vector<ScoredDoc> EvaluateImpl(const std::vector<text::TermId>& terms,
                                      size_t k,
                                      const util::Deadline* deadline) const
      EXCLUDES(strategy_mu_);

  const corpus::Corpus& corpus_;
  const index::ShardedIndex& index_;
  std::unique_ptr<Scorer> scorer_;
  /// Global collection statistics from the manifest; every shard scores
  /// against these.
  CollectionStats stats_;
  /// Guards the evaluation-strategy switch (the one mutable knob shared
  /// with concurrent Evaluate callers). Held only for pointer/enum reads
  /// and the one-time bound-table build — never across shard evaluation.
  mutable util::Mutex strategy_mu_;
  EvalStrategy strategy_ GUARDED_BY(strategy_mu_) = EvalStrategy::kTAAT;
  /// Per-shard ComputeTermImpactBounds tables (global df); non-null iff
  /// MaxScore was ever selected. The pointee is immutable — Evaluate
  /// snapshots the shared_ptr under strategy_mu_ and reads it lock-free.
  std::shared_ptr<const std::vector<std::vector<double>>> shard_term_bounds_
      GUARDED_BY(strategy_mu_);
  /// Private fan-out pool; null in sequential mode. Owned by the engine so
  /// it can never be one of the caller's own worker pools (a caller
  /// blocking inside its own pool would deadlock).
  std::unique_ptr<util::ThreadPool> pool_;
  QueryLog log_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_SHARDED_ENGINE_H_
