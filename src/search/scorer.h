// Similarity scoring functions for the vector space model.
//
// The paper assumes a conventional similarity engine ("the classical vector
// space model [7]"); we provide TF-IDF cosine, Okapi BM25 and a Dirichlet-
// smoothed query-likelihood scorer so the substrate matches what enterprise
// engines actually run. Scorers are stateless w.r.t. queries and consume
// index statistics only.
#ifndef TOPPRIV_SEARCH_SCORER_H_
#define TOPPRIV_SEARCH_SCORER_H_

#include <memory>
#include <string>

#include "index/inverted_index.h"

namespace toppriv::search {

/// Term-at-a-time scoring interface: contribution of one (term, posting)
/// pair to a document's accumulator.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Score contribution of a term occurring `tf` times in document `doc`,
  /// where the term occurs in `df` documents and appears `qtf` times in the
  /// query.
  virtual double TermScore(const index::InvertedIndex& index,
                           corpus::DocId doc, uint32_t tf, uint32_t df,
                           uint32_t qtf) const = 0;

  /// Optional per-document normalization applied after accumulation.
  virtual double Normalize(const index::InvertedIndex& index,
                           corpus::DocId doc, double accumulated) const {
    (void)index;
    (void)doc;
    return accumulated;
  }

  /// Scorer name for logs and benches.
  virtual std::string Name() const = 0;
};

/// Classic lnc.ltc-style TF-IDF with cosine length normalization
/// (approximated by document token length).
class TfIdfCosineScorer : public Scorer {
 public:
  double TermScore(const index::InvertedIndex& index, corpus::DocId doc,
                   uint32_t tf, uint32_t df, uint32_t qtf) const override;
  double Normalize(const index::InvertedIndex& index, corpus::DocId doc,
                   double accumulated) const override;
  std::string Name() const override { return "tfidf-cosine"; }
};

/// Okapi BM25 with standard parameters.
class Bm25Scorer : public Scorer {
 public:
  explicit Bm25Scorer(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}
  double TermScore(const index::InvertedIndex& index, corpus::DocId doc,
                   uint32_t tf, uint32_t df, uint32_t qtf) const override;
  std::string Name() const override { return "bm25"; }

 private:
  double k1_;
  double b_;
};

/// Dirichlet-smoothed query likelihood (language modeling approach).
class LmDirichletScorer : public Scorer {
 public:
  explicit LmDirichletScorer(const corpus::Corpus& corpus, double mu = 1000.0);
  double TermScore(const index::InvertedIndex& index, corpus::DocId doc,
                   uint32_t tf, uint32_t df, uint32_t qtf) const override;
  double Normalize(const index::InvertedIndex& index, corpus::DocId doc,
                   double accumulated) const override;
  std::string Name() const override { return "lm-dirichlet"; }

 private:
  const corpus::Corpus& corpus_;
  double mu_;
};

/// Factory helpers.
std::unique_ptr<Scorer> MakeTfIdfScorer();
std::unique_ptr<Scorer> MakeBm25Scorer(double k1 = 1.2, double b = 0.75);

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_SCORER_H_
