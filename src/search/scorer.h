// Similarity scoring functions for the vector space model.
//
// The paper assumes a conventional similarity engine ("the classical vector
// space model [7]"); we provide TF-IDF cosine, Okapi BM25 and a Dirichlet-
// smoothed query-likelihood scorer so the substrate matches what enterprise
// engines actually run. Scorers are stateless w.r.t. queries and consume
// COLLECTION-level statistics only, passed explicitly as a CollectionStats:
// with a sharded index each shard scores against the global statistics
// (distributed-IR "global IDF"), which is what keeps sharded rankings
// bit-identical to the monolithic engine's.
#ifndef TOPPRIV_SEARCH_SCORER_H_
#define TOPPRIV_SEARCH_SCORER_H_

#include <memory>
#include <string>

#include "index/inverted_index.h"

namespace toppriv::search {

/// Collection-wide statistics a scorer consumes. For a monolithic index
/// these mirror the index's own accessors; for a sharded index they are the
/// manifest's aggregates over every shard.
struct CollectionStats {
  size_t num_documents = 0;
  double avg_doc_length = 0.0;
  uint64_t total_tokens = 0;

  static CollectionStats Of(const index::InvertedIndex& index) {
    return CollectionStats{index.num_documents(), index.avg_doc_length(),
                           index.total_tokens()};
  }
};

/// Term-at-a-time scoring interface: contribution of one (term, posting)
/// pair to a document's accumulator.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Score contribution of a term occurring `tf` times in a document of
  /// `doc_length` tokens, where the term occurs in `df` documents of the
  /// whole collection and appears `qtf` times in the query.
  virtual double TermScore(const CollectionStats& stats, uint32_t doc_length,
                           uint32_t tf, uint32_t df, uint32_t qtf) const = 0;

  /// Optional per-document normalization applied after accumulation.
  /// Contract (the MaxScore evaluator depends on it): for a non-negative
  /// accumulated score, Normalize must never return MORE than the
  /// accumulator — it may shrink a score (cosine length division, the
  /// Dirichlet length prior), never inflate it.
  virtual double Normalize(const CollectionStats& stats, uint32_t doc_length,
                           double accumulated) const {
    (void)stats;
    (void)doc_length;
    return accumulated;
  }

  /// Upper bound on TermScore over every posting of a term: for all
  /// doc_length and all tf <= max_tf,
  ///   TermScore(stats, doc_length, tf, df, qtf) <= UpperBound(...).
  /// The MaxScore evaluator partitions query terms and skips blocks with
  /// these (list-level bounds use the list's max tf, block-level bounds the
  /// block's). The default evaluates TermScore at tf = max_tf and
  /// doc_length = 0, which is a bit-safe bound whenever TermScore is
  /// non-decreasing in tf and non-increasing in doc_length through the
  /// exact floating-point operations it performs — true of all three
  /// scorers here (rounding is monotone, so the FP inequalities follow the
  /// real ones). A scorer violating either monotonicity must override.
  virtual double UpperBound(const CollectionStats& stats, uint32_t df,
                            uint32_t max_tf, uint32_t qtf) const {
    if (max_tf == 0) return 0.0;
    return TermScore(stats, /*doc_length=*/0, max_tf, df, qtf);
  }

  /// Scorer name for logs and benches.
  virtual std::string Name() const = 0;
};

/// Classic lnc.ltc-style TF-IDF with cosine length normalization
/// (approximated by document token length).
class TfIdfCosineScorer : public Scorer {
 public:
  double TermScore(const CollectionStats& stats, uint32_t doc_length,
                   uint32_t tf, uint32_t df, uint32_t qtf) const override;
  double Normalize(const CollectionStats& stats, uint32_t doc_length,
                   double accumulated) const override;
  std::string Name() const override { return "tfidf-cosine"; }
};

/// Okapi BM25 with standard parameters.
class Bm25Scorer : public Scorer {
 public:
  explicit Bm25Scorer(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}
  double TermScore(const CollectionStats& stats, uint32_t doc_length,
                   uint32_t tf, uint32_t df, uint32_t qtf) const override;
  std::string Name() const override { return "bm25"; }

 private:
  double k1_;
  double b_;
};

/// Dirichlet-smoothed query likelihood (language modeling approach). The
/// collection language model comes from CollectionStats::total_tokens.
class LmDirichletScorer : public Scorer {
 public:
  explicit LmDirichletScorer(double mu = 1000.0);
  double TermScore(const CollectionStats& stats, uint32_t doc_length,
                   uint32_t tf, uint32_t df, uint32_t qtf) const override;
  double Normalize(const CollectionStats& stats, uint32_t doc_length,
                   double accumulated) const override;
  std::string Name() const override { return "lm-dirichlet"; }

 private:
  double mu_;
};

/// Factory helpers.
std::unique_ptr<Scorer> MakeTfIdfScorer();
std::unique_ptr<Scorer> MakeBm25Scorer(double k1 = 1.2, double b = 0.75);

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_SCORER_H_
