#include "search/sharded_engine.h"

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace toppriv::search {

ShardedSearchEngine::ShardedSearchEngine(const corpus::Corpus& corpus,
                                         const index::ShardedIndex& index,
                                         std::unique_ptr<Scorer> scorer,
                                         size_t num_threads,
                                         EvalStrategy strategy)
    : corpus_(corpus), index_(index), scorer_(std::move(scorer)) {
  TOPPRIV_CHECK(scorer_ != nullptr);
  TOPPRIV_CHECK_GE(index_.num_shards(), 1u);
  stats_.num_documents = index_.num_documents();
  stats_.avg_doc_length = index_.avg_doc_length();
  stats_.total_tokens = index_.total_tokens();
  if (num_threads == 0) num_threads = util::ThreadPool::HardwareConcurrency();
  if (num_threads > 1 && index_.num_shards() > 1) {
    pool_ = std::make_unique<util::ThreadPool>(num_threads);
  }
  set_eval_strategy(strategy);
}

void ShardedSearchEngine::set_eval_strategy(EvalStrategy strategy) {
  util::MutexLock lock(&strategy_mu_);
  strategy_ = strategy;
  if (strategy == EvalStrategy::kMaxScore && shard_term_bounds_ == nullptr) {
    // One impact-bound table per shard, each priced with the GLOBAL
    // document frequencies — a shard-local df would loosen nothing but a
    // wrong df would produce bounds below real contributions and break
    // the pruning-safety argument. Built under strategy_mu_ so exactly one
    // caller pays for it; the table is immutable once the pointer lands.
    auto bounds = std::make_shared<std::vector<std::vector<double>>>();
    bounds->reserve(index_.num_shards());
    for (size_t s = 0; s < index_.num_shards(); ++s) {
      bounds->push_back(ComputeTermImpactBounds(
          index_.shard(s), stats_, *scorer_, &index_.manifest().global_df));
    }
    shard_term_bounds_ = std::move(bounds);
  }
}

std::vector<ScoredDoc> ShardedSearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> ShardedSearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  return EvaluateImpl(terms, k, /*deadline=*/nullptr);
}

util::StatusOr<std::vector<ScoredDoc>> ShardedSearchEngine::EvaluateWithOptions(
    const std::vector<text::TermId>& terms, size_t k,
    const QueryOptions& options) const {
  const util::Deadline* deadline = options.deadline;
  if (deadline != nullptr && deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  std::vector<ScoredDoc> results = EvaluateImpl(terms, k, deadline);
  if (deadline != nullptr && deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  return results;
}

std::vector<ScoredDoc> ShardedSearchEngine::EvaluateImpl(
    const std::vector<text::TermId>& terms, size_t k,
    const util::Deadline* deadline) const {
  if (terms.empty() || k == 0) return {};

  // Snapshot the strategy knob: the enum by value, the bound tables by
  // shared_ptr (immutable pointee), so a concurrent set_eval_strategy can
  // never be observed mid-query.
  EvalStrategy strategy;
  std::shared_ptr<const std::vector<std::vector<double>>> bounds;
  {
    util::MutexLock lock(&strategy_mu_);
    strategy = strategy_;
    bounds = shard_term_bounds_;
  }

  // One canonical query plan for every shard: same term order, same GLOBAL
  // document frequencies. A shard evaluating with its local df would score
  // differently from the monolithic engine and break parity.
  const std::vector<QueryTerm> query = CollapseQuery(terms);
  std::vector<uint32_t> dfs(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    dfs[qi] = index_.DocFreq(query[qi].term);
  }

  // Scatter: per-shard top-k with doc ids lifted to the global space. The
  // global top-k is a subset of the union of per-shard top-k lists, so k
  // candidates per shard always suffice.
  const size_t num_shards = index_.num_shards();
  std::vector<std::vector<ScoredDoc>> per_shard(num_shards);
  TOPPRIV_TRACE_SPAN(fanout_span, "search.shard_fanout");
  TOPPRIV_SCOPED_TIMER_US("search.shard_fanout_us");
  TOPPRIV_HISTOGRAM_OBSERVE("search.shard_fanout_width", num_shards,
                            util::CountBuckets());
  auto evaluate_shard = [&](size_t s) {
    // One scratch per worker thread; a worker finishes a shard before
    // taking the next, so reuse is race-free even when several concurrent
    // Evaluate calls share the pool.
    static thread_local EvalScratch scratch;
    // The deadline's cancel flag is shared: the first shard to observe
    // expiry latches it and every sibling's next block-granular check
    // returns without touching the clock.
    per_shard[s] = EvaluateTopK(
        strategy, index_.shard(s), stats_, *scorer_, query, dfs, k, &scratch,
        bounds == nullptr ? nullptr : &(*bounds)[s], /*exclude=*/nullptr,
        deadline);
    const corpus::DocId base = index_.manifest().ranges[s].begin;
    for (ScoredDoc& sd : per_shard[s]) sd.doc += base;
  };
  if (pool_ != nullptr && num_shards > 1) {
    pool_->ParallelFor(num_shards, evaluate_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) evaluate_shard(s);
  }

  // Gather: merge through the same (score desc, doc id asc) total order the
  // monolithic TopK uses. The order is strict — doc ids are unique — so the
  // merged list is independent of shard count and arrival order, and exact
  // score ties across shards break towards the lower doc id.
  TopK merged(k);
  for (const std::vector<ScoredDoc>& results : per_shard) {
    for (const ScoredDoc& sd : results) merged.Offer(sd.doc, sd.score);
  }
  return merged.Finish();
}

}  // namespace toppriv::search
