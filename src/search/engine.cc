#include "search/engine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/check.h"
#include "util/metrics.h"

namespace toppriv::search {

const char* EvalStrategyName(EvalStrategy strategy) {
  switch (strategy) {
    case EvalStrategy::kTAAT:
      return "taat";
    case EvalStrategy::kMaxScore:
      return "maxscore";
  }
  return "unknown";
}

EvalStrategy EvalStrategyFromEnv() {
  const char* v = std::getenv("TOPPRIV_EVAL_STRATEGY");
  if (v != nullptr && std::strcmp(v, "maxscore") == 0) {
    return EvalStrategy::kMaxScore;
  }
  return EvalStrategy::kTAAT;
}

void EvalScratch::Prepare(size_t num_documents) {
  if (scores_.size() < num_documents) {
    // Scores need no initialization: a slot is only read after its
    // first-touch assignment below.
    scores_.resize(num_documents);
    is_touched_.resize(num_documents, 0);
  }
  // Self-healing reset in case a previous query was abandoned mid-flight.
  for (corpus::DocId doc : touched_) is_touched_[doc] = 0;
  touched_.clear();
}

std::vector<QueryTerm> CollapseQuery(const std::vector<text::TermId>& terms) {
  // Sort then run-length collapse. Queries are a handful of terms, so this
  // beats any hash map — and unlike a hash map its order is canonical, not
  // an artifact of bucket history, which the sharded engine's bit-parity
  // contract relies on.
  std::vector<text::TermId> sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  std::vector<QueryTerm> query;
  query.reserve(sorted.size());
  for (text::TermId t : sorted) {
    if (!query.empty() && query.back().term == t) {
      ++query.back().qtf;
    } else {
      query.push_back(QueryTerm{t, 1});
    }
  }
  return query;
}

std::vector<ScoredDoc> AccumulateTopK(const index::InvertedIndex& index,
                                      const CollectionStats& stats,
                                      const Scorer& scorer,
                                      const std::vector<QueryTerm>& query,
                                      const std::vector<uint32_t>& dfs,
                                      size_t k, EvalScratch* scratch,
                                      const std::vector<char>* exclude,
                                      const util::Deadline* deadline) {
  TOPPRIV_CHECK_EQ(query.size(), dfs.size());
  if (query.empty() || k == 0) return {};
  // Hoisted so the common no-tombstone case (exclude == nullptr, every
  // static index and clean segment) pays one null check per posting.
  const char* excluded = exclude != nullptr ? exclude->data() : nullptr;
  TOPPRIV_DCHECK(exclude == nullptr ||
                 exclude->size() == index.num_documents());

  scratch->Prepare(index.num_documents());

  // Term-at-a-time accumulation over posting lists into the contiguous
  // per-document array; documents containing none of the query terms are
  // never touched (the scalability property the paper's PIR discussion
  // contrasts against). The first touch assigns 0.0 before accumulating so
  // a slot's history cannot leak between queries. Postings stream through
  // one stack-resident PostingBlock, batch-decoded 128 at a time.
  std::vector<double>& scores = scratch->scores_;
  std::vector<char>& is_touched = scratch->is_touched_;
  std::vector<corpus::DocId>& touched = scratch->touched_;
  index::PostingBlock block;
  // Instrumentation accumulates in locals and flushes ONCE per call:
  // per-posting atomic traffic would swamp the <5% overhead budget.
  uint64_t blocks_decoded = 0;
  uint64_t postings_scored = 0;
  for (size_t qi = 0; qi < query.size(); ++qi) {
    const index::PostingList& list = index.Postings(query[qi].term);
    if (list.empty() || dfs[qi] == 0) continue;
    const uint32_t df = dfs[qi];
    const uint32_t qtf = query[qi].qtf;
    for (size_t b = 0; b < list.num_blocks(); ++b) {
      // Cooperative cancellation, one check per 128-posting block. An
      // abandoned query surfaces NOTHING (the scratch self-heals on the
      // next Prepare), so a deadline can never leak a partial top-k.
      if (deadline != nullptr && deadline->Expired()) {
        TOPPRIV_COUNTER_ADD("search.taat.blocks_decoded", blocks_decoded);
        TOPPRIV_COUNTER_ADD("search.taat.postings_scored", postings_scored);
        return {};
      }
      list.DecodeBlock(b, &block);
      ++blocks_decoded;
      postings_scored += block.count;
      for (uint32_t i = 0; i < block.count; ++i) {
        const corpus::DocId doc = block.docs[i];
        TOPPRIV_DCHECK(doc < scores.size());
        if (excluded != nullptr && excluded[doc]) continue;
        if (!is_touched[doc]) {
          is_touched[doc] = 1;
          touched.push_back(doc);
          scores[doc] = 0.0;
        }
        scores[doc] += scorer.TermScore(stats, index.DocLength(doc),
                                        block.tfs[i], df, qtf);
      }
    }
  }

  TopK topk(k);
  for (corpus::DocId doc : touched) {
    topk.Offer(doc, scorer.Normalize(stats, index.DocLength(doc), scores[doc]));
  }
  // Leave the scratch clean for the next query (O(touched), not O(docs)).
  for (corpus::DocId doc : touched) is_touched[doc] = 0;
  touched.clear();
  TOPPRIV_COUNTER_ADD("search.taat.blocks_decoded", blocks_decoded);
  TOPPRIV_COUNTER_ADD("search.taat.postings_scored", postings_scored);
  return topk.Finish();
}

namespace {

/// Inflates a non-negative bound by a relative margin that dwarfs any
/// floating-point association error a bounds sum can accumulate (queries
/// have a handful of terms; the error is a few ULPs, the margin is 1e-9
/// relative). Pruning compares INFLATED bounds strictly below the
/// threshold, so no rounding-order difference between "sum of bounds" and
/// "sum of actual contributions" can ever prune a document whose true
/// score reaches the threshold — the engineering half of the bit-parity
/// argument (the analytic half is monotone rounding).
inline double InflateBound(double bound) {
  return bound + bound * 1e-9;
}

/// Advances `c` to the first posting with doc id >= target. Returns true
/// and leaves the tf available iff the term contains `target`. Blocks are
/// skipped through the directory (last_doc) without decoding; a block is
/// only decoded when `target` can actually fall inside it. The cached
/// `doc` field makes the common miss (cursor already past the target) one
/// compare.
inline bool CursorAdvanceTo(TermCursor* c, corpus::DocId target) {
  if (c->exhausted) return false;
  if (c->doc > target) return false;
  const index::PostingList& list = *c->list;
  if (c->doc == target) {
    if (!c->block_decoded) {
      // Sitting at an undecoded block whose first doc IS the target:
      // decode for the tf.
      list.DecodeBlock(c->block_idx, &c->block);
      c->block_decoded = true;
      c->pos = 0;
    }
    return true;
  }
  if (c->block_decoded && list.block(c->block_idx).last_doc >= target) {
    // Stays inside the decoded block: forward scan.
    while (c->block.docs[c->pos] < target) {
      ++c->pos;
      TOPPRIV_DCHECK(c->pos < c->block.count);
    }
    c->doc = c->block.docs[c->pos];
    return c->doc == target;
  }
  // Skip whole blocks that end before the target — no decoding.
  if (c->block_decoded) {
    ++c->block_idx;
    c->block_decoded = false;
    c->pos = 0;
    if (c->block_idx >= list.num_blocks()) {
      c->exhausted = true;
      return false;
    }
  }
  while (list.block(c->block_idx).last_doc < target) {
    ++c->block_idx;
    if (c->block_idx >= list.num_blocks()) {
      c->exhausted = true;
      return false;
    }
  }
  const index::PostingList::BlockInfo& info = list.block(c->block_idx);
  if (info.first_doc >= target) {
    // The target is at or before this block's first posting: no decode
    // needed unless it is an exact hit.
    c->doc = info.first_doc;
    if (info.first_doc > target) return false;
    list.DecodeBlock(c->block_idx, &c->block);
    c->block_decoded = true;
    c->pos = 0;
    return true;
  }
  list.DecodeBlock(c->block_idx, &c->block);
  c->block_decoded = true;
  c->pos = 0;
  while (c->block.docs[c->pos] < target) {
    ++c->pos;
    TOPPRIV_DCHECK(c->pos < c->block.count);
  }
  c->doc = c->block.docs[c->pos];
  return c->doc == target;
}

/// Steps past the current posting (used after a candidate is processed;
/// the cursor is decoded and positioned on it).
inline void CursorAdvanceOne(TermCursor* c) {
  TOPPRIV_DCHECK(c->block_decoded && !c->exhausted);
  ++c->pos;
  if (c->pos < c->block.count) {
    c->doc = c->block.docs[c->pos];
    return;
  }
  ++c->block_idx;
  c->block_decoded = false;
  c->pos = 0;
  if (c->block_idx >= c->list->num_blocks()) {
    c->exhausted = true;
    return;
  }
  c->doc = c->list->block(c->block_idx).first_doc;
}

}  // namespace

std::vector<double> ComputeTermImpactBounds(
    const index::InvertedIndex& index, const CollectionStats& stats,
    const Scorer& scorer, const std::vector<uint32_t>* global_dfs) {
  std::vector<double> bounds(index.num_terms(), 0.0);
  index::PostingBlock block;
  for (text::TermId t = 0; t < bounds.size(); ++t) {
    const index::PostingList& list = index.Postings(t);
    if (list.empty()) continue;
    const uint32_t df = global_dfs != nullptr
                            ? (t < global_dfs->size() ? (*global_dfs)[t] : 0)
                            : list.size();
    double best = 0.0;
    for (size_t b = 0; b < list.num_blocks(); ++b) {
      list.DecodeBlock(b, &block);
      for (uint32_t i = 0; i < block.count; ++i) {
        best = std::max(best,
                        scorer.TermScore(stats, index.DocLength(block.docs[i]),
                                         block.tfs[i], df, /*qtf=*/1));
      }
    }
    bounds[t] = best;
  }
  return bounds;
}

std::vector<ScoredDoc> MaxScoreTopK(const index::InvertedIndex& index,
                                    const CollectionStats& stats,
                                    const Scorer& scorer,
                                    const std::vector<QueryTerm>& query,
                                    const std::vector<uint32_t>& dfs,
                                    size_t k, EvalScratch* scratch,
                                    const std::vector<double>* term_bounds,
                                    const std::vector<char>* exclude,
                                    const util::Deadline* deadline) {
  TOPPRIV_CHECK_EQ(query.size(), dfs.size());
  if (query.empty() || k == 0) return {};
  const char* excluded = exclude != nullptr ? exclude->data() : nullptr;
  TOPPRIV_DCHECK(exclude == nullptr ||
                 exclude->size() == index.num_documents());

  // Active terms, in canonical (CollapseQuery) order, with per-term score
  // bounds. The same skip rule as TAAT: an empty list or a zero global df
  // contributes nothing and must not generate candidates. Cursors live in
  // the scratch so their ~1.5 KiB block buffers are reused, not re-copied,
  // across queries.
  std::vector<TermCursor>& cursors = scratch->cursors_;
  if (cursors.size() < query.size()) cursors.resize(query.size());
  size_t m = 0;
  for (size_t qi = 0; qi < query.size(); ++qi) {
    const index::PostingList& list = index.Postings(query[qi].term);
    if (list.empty() || dfs[qi] == 0) continue;
    TermCursor& c = cursors[m++];
    c.list = &list;
    c.qi = qi;
    c.block_idx = 0;
    c.pos = 0;
    c.block_decoded = false;
    c.exhausted = false;
    c.doc = list.block(0).first_doc;
    if (term_bounds != nullptr) {
      // Exact max impact at qtf = 1, scaled by qtf. The scaling reorders
      // the multiplication relative to TermScore's own, so the inflation
      // margin (applied at every use site) is what keeps it a true bound.
      c.ub = static_cast<double>(query[qi].qtf) * (*term_bounds)[query[qi].term];
    } else {
      c.ub = scorer.UpperBound(stats, dfs[qi], list.max_tf(), query[qi].qtf);
    }
  }
  if (m == 0) return {};

  // Terms sorted by ascending bound: the classic MaxScore partition.
  // sorted_prefix[j] bounds the total score of a document containing ONLY
  // the j cheapest terms; once it falls strictly below the heap threshold
  // those terms stop generating candidates ("non-essential"). The same
  // array is the remaining-terms bound of the bound-descending probe loop.
  std::vector<size_t>& order = scratch->ub_order_;
  order.resize(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (cursors[a].ub != cursors[b].ub) return cursors[a].ub < cursors[b].ub;
    return a < b;  // deterministic tie-break on canonical position
  });
  std::vector<double>& sorted_prefix = scratch->sorted_prefix_ub_;
  sorted_prefix.assign(m + 1, 0.0);
  for (size_t j = 0; j < m; ++j) {
    sorted_prefix[j + 1] =
        InflateBound(sorted_prefix[j] + cursors[order[j]].ub);
  }

  // The essential cursors, kept sorted by current doc id: the pivot is
  // always ess.front(), and the essential terms CONTAINING the pivot are
  // exactly the leading run with that doc id — so per candidate there is
  // no pivot scan and no probing of essential misses at all.
  std::vector<uint32_t>& ess = scratch->essential_;
  ess.clear();
  // One comparator for every ess ordering operation: (doc asc, canonical
  // index asc). Keeping a single definition is part of the determinism
  // story — the pivot order must never depend on which call site sorted.
  auto by_doc = [&](uint32_t a, uint32_t b) {
    if (cursors[a].doc != cursors[b].doc) {
      return cursors[a].doc < cursors[b].doc;
    }
    return a < b;
  };

  // Per-candidate contribution cache: probed in bound order (fastest
  // abandon), re-summed in canonical order for survivors (bit parity).
  std::vector<double>& contrib = scratch->contrib_;
  if (contrib.size() < m) contrib.resize(m);
  // Canonical indices of the terms containing the current candidate.
  std::vector<uint32_t>& hits = scratch->hits_;

  TopK topk(k);
  size_t ne = 0;  // terms order[0..ne) are non-essential
  double threshold = -std::numeric_limits<double>::infinity();

  // Pruning telemetry, accumulated locally and flushed once per call (the
  // prune rate is 1 - offered/considered). Reads nothing the evaluation
  // depends on, writes nothing it reads.
  uint64_t pivots_considered = 0;
  uint64_t pivots_offered = 0;
  uint64_t pivots_abandoned = 0;
  auto flush_metrics = [&]() {
    TOPPRIV_COUNTER_ADD("search.maxscore.pivots_considered",
                        pivots_considered);
    TOPPRIV_COUNTER_ADD("search.maxscore.pivots_offered", pivots_offered);
    TOPPRIV_COUNTER_ADD("search.maxscore.pivots_abandoned", pivots_abandoned);
  };

  // (Re)builds `ess` from order[ne..m), doc-sorted.
  auto rebuild_ess = [&]() {
    ess.clear();
    for (size_t j = ne; j < m; ++j) {
      if (!cursors[order[j]].exhausted) {
        ess.push_back(static_cast<uint32_t>(order[j]));
      }
    }
    std::sort(ess.begin(), ess.end(), by_doc);
  };
  rebuild_ess();

  auto raise_threshold = [&]() {
    if (!topk.AtCapacity()) return;
    threshold = topk.Worst().score;
    const size_t old_ne = ne;
    while (ne < m && sorted_prefix[ne + 1] < threshold) ++ne;
    if (ne != old_ne) rebuild_ess();
  };

  // Re-inserts the advanced leading `h` entries of `ess` into doc order
  // (dropping exhausted ones). The array is tiny (< m entries), so simple
  // erase + upper_bound insertion beats anything clever.
  auto reposition_front = [&](size_t h) {
    std::vector<uint32_t>& moved = scratch->moved_;
    moved.clear();
    for (size_t x = 0; x < h; ++x) {
      if (!cursors[ess[x]].exhausted) moved.push_back(ess[x]);
    }
    ess.erase(ess.begin(), ess.begin() + h);
    for (const uint32_t i : moved) {
      ess.insert(std::upper_bound(ess.begin(), ess.end(), i, by_doc), i);
    }
  };

  while (!ess.empty()) {
    // Cooperative cancellation: one check per pivot iteration (each
    // iteration decodes at most a handful of blocks). Same contract as
    // AccumulateTopK — an expired query returns empty, never partial.
    if (deadline != nullptr && deadline->Expired()) {
      flush_metrics();
      return {};
    }
    // When a single essential term remains, skip its blocks wholesale:
    // every doc in a block is bounded by the block-max tf bound (capped by
    // the term's own list bound) plus the whole non-essential budget, and
    // no other essential list can resurrect a doc this cursor skips.
    if (ess.size() == 1) {
      TermCursor& e = cursors[ess[0]];
      while (!e.exhausted && topk.AtCapacity()) {
        const auto& info = e.list->block(e.block_idx);
        const double block_ub =
            std::min(e.ub, scorer.UpperBound(stats, dfs[e.qi], info.max_tf,
                                             query[e.qi].qtf));
        if (InflateBound(block_ub + sorted_prefix[ne]) >= threshold) break;
        ++e.block_idx;
        e.block_decoded = false;
        e.pos = 0;
        if (e.block_idx >= e.list->num_blocks()) {
          e.exhausted = true;
        } else {
          e.doc = e.list->block(e.block_idx).first_doc;
        }
      }
      if (e.exhausted) break;
    }

    // The pivot and the essential terms containing it drop out of the doc
    // order: ess.front() is minimal, the leading run of equal doc ids is
    // the hit set. Every pivot therefore scores at least one term.
    const corpus::DocId pivot = cursors[ess[0]].doc;
    ++pivots_considered;
    size_t h = 1;
    while (h < ess.size() && cursors[ess[h]].doc == pivot) ++h;

    // A tombstoned pivot is never scored, probed, or offered — its
    // essential cursors just step past it below. Skipping it changes no
    // other candidate's arithmetic (scores are per-document), which is the
    // MaxScore half of the live-index parity argument.
    const bool pivot_live = excluded == nullptr || !excluded[pivot];
    const uint32_t doc_length = index.DocLength(pivot);
    double partial = 0.0;
    hits.clear();
    for (size_t x = 0; x < h; ++x) {
      TermCursor& c = cursors[ess[x]];
      if (!c.block_decoded) {
        // Sitting at an undecoded block whose first doc is the pivot.
        // Decoded even for a tombstoned pivot: CursorAdvanceOne steps by
        // decoded position.
        c.list->DecodeBlock(c.block_idx, &c.block);
        c.block_decoded = true;
        c.pos = 0;
      }
      if (!pivot_live) continue;
      const double v = scorer.TermScore(stats, doc_length,
                                        c.block.tfs[c.pos], dfs[c.qi],
                                        query[c.qi].qtf);
      partial += v;
      contrib[ess[x]] = v;
      hits.push_back(ess[x]);
    }

    // Probe the non-essential terms in DESCENDING bound order, abandoning
    // as soon as the remaining inflated bounds cannot reach the threshold.
    // Essential misses are gone entirely (they are not in the leading
    // run), which also tightens the first check to the pure non-essential
    // budget. `partial` is a bound-order sum used only inside inflated
    // comparisons, never as the score.
    if (pivot_live) {
      bool abandoned = false;
      for (size_t j = ne; j-- > 0;) {
        if (topk.AtCapacity() &&
            InflateBound(partial + sorted_prefix[j + 1]) < threshold) {
          abandoned = true;
          break;
        }
        const size_t i = order[j];
        TermCursor& c = cursors[i];
        if (CursorAdvanceTo(&c, pivot)) {
          const double v = scorer.TermScore(stats, doc_length,
                                            c.block.tfs[c.pos], dfs[c.qi],
                                            query[c.qi].qtf);
          partial += v;
          contrib[i] = v;
          hits.push_back(static_cast<uint32_t>(i));
        }
      }
      if (abandoned) {
        ++pivots_abandoned;
      } else {
        // Canonical re-accumulation from the cache — the IDENTICAL
        // floating-point sum TAAT computes for this document.
        std::sort(hits.begin(), hits.end());
        double acc = 0.0;
        for (const uint32_t i : hits) acc += contrib[i];
        topk.Offer(pivot, scorer.Normalize(stats, doc_length, acc));
        ++pivots_offered;
        raise_threshold();
      }
    }
    // Step the essential hit cursors past the pivot and restore doc order;
    // non-essential cursors catch up lazily on later probes. When
    // raise_threshold rebuilt `ess`, some (or all) of the pivot's cursors
    // may have left the essential set — only the ones still leading the
    // array need stepping (a demoted cursor parked on the pivot is
    // harmless: later probes walk straight past it).
    if (ess.empty() || cursors[ess[0]].doc != pivot) continue;
    size_t still = 1;
    while (still < ess.size() && cursors[ess[still]].doc == pivot) ++still;
    for (size_t x = 0; x < still; ++x) CursorAdvanceOne(&cursors[ess[x]]);
    reposition_front(still);
  }
  flush_metrics();
  return topk.Finish();
}


std::vector<ScoredDoc> EvaluateTopK(EvalStrategy strategy,
                                    const index::InvertedIndex& index,
                                    const CollectionStats& stats,
                                    const Scorer& scorer,
                                    const std::vector<QueryTerm>& query,
                                    const std::vector<uint32_t>& dfs,
                                    size_t k, EvalScratch* scratch,
                                    const std::vector<double>* term_bounds,
                                    const std::vector<char>* exclude,
                                    const util::Deadline* deadline) {
  switch (strategy) {
    case EvalStrategy::kMaxScore:
      return MaxScoreTopK(index, stats, scorer, query, dfs, k, scratch,
                          term_bounds, exclude, deadline);
    case EvalStrategy::kTAAT:
      break;
  }
  return AccumulateTopK(index, stats, scorer, query, dfs, k, scratch, exclude,
                        deadline);
}

util::StatusOr<std::vector<ScoredDoc>> QueryEngine::EvaluateWithOptions(
    const std::vector<text::TermId>& terms, size_t k,
    const QueryOptions& options) const {
  // Coarse default for engines without an internal poll point: bracket the
  // whole evaluation with expiry checks. The result of an expired call is
  // always discarded — even when Evaluate happened to finish — so the
  // accept/reject decision is a pure function of the deadline, not of how
  // fast this particular engine ran relative to the check sites.
  if (options.deadline != nullptr && options.deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  std::vector<ScoredDoc> results = Evaluate(terms, k);
  if (options.deadline != nullptr && options.deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  return results;
}

SearchEngine::SearchEngine(const corpus::Corpus& corpus,
                           const index::InvertedIndex& index,
                           std::unique_ptr<Scorer> scorer,
                           EvalStrategy strategy)
    : corpus_(corpus),
      index_(index),
      scorer_(std::move(scorer)),
      stats_(CollectionStats::Of(index)) {
  TOPPRIV_CHECK(scorer_ != nullptr);
  set_eval_strategy(strategy);
}

void SearchEngine::set_eval_strategy(EvalStrategy strategy) {
  util::MutexLock lock(&strategy_mu_);
  strategy_ = strategy;
  if (strategy == EvalStrategy::kMaxScore && term_bounds_ == nullptr) {
    term_bounds_ = std::make_shared<const std::vector<double>>(
        ComputeTermImpactBounds(index_, stats_, *scorer_));
  }
}

std::vector<ScoredDoc> SearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  static thread_local EvalScratch scratch;
  return Evaluate(terms, k, &scratch);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k,
    EvalScratch* scratch) const {
  if (terms.empty() || k == 0) return {};
  // Snapshot the strategy knob and its (immutable) bound table under the
  // lock; evaluation itself runs lock-free on the snapshot, so a
  // concurrent set_eval_strategy can never expose a half-written pair.
  EvalStrategy strategy;
  std::shared_ptr<const std::vector<double>> bounds;
  {
    util::MutexLock lock(&strategy_mu_);
    strategy = strategy_;
    bounds = term_bounds_;
  }
  std::vector<QueryTerm> query = CollapseQuery(terms);
  std::vector<uint32_t> dfs(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    dfs[qi] = index_.DocFreq(query[qi].term);
  }
  return EvaluateTopK(strategy, index_, stats_, *scorer_, query, dfs, k,
                      scratch, bounds == nullptr ? nullptr : bounds.get());
}

util::StatusOr<std::vector<ScoredDoc>> SearchEngine::EvaluateWithOptions(
    const std::vector<text::TermId>& terms, size_t k,
    const QueryOptions& options) const {
  const util::Deadline* deadline = options.deadline;
  if (deadline != nullptr && deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  if (terms.empty() || k == 0) return std::vector<ScoredDoc>{};
  EvalStrategy strategy;
  std::shared_ptr<const std::vector<double>> bounds;
  {
    util::MutexLock lock(&strategy_mu_);
    strategy = strategy_;
    bounds = term_bounds_;
  }
  std::vector<QueryTerm> query = CollapseQuery(terms);
  std::vector<uint32_t> dfs(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    dfs[qi] = index_.DocFreq(query[qi].term);
  }
  static thread_local EvalScratch scratch;
  std::vector<ScoredDoc> results =
      EvaluateTopK(strategy, index_, stats_, *scorer_, query, dfs, k, &scratch,
                   bounds == nullptr ? nullptr : bounds.get(),
                   /*exclude=*/nullptr, deadline);
  if (deadline != nullptr && deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  return results;
}

}  // namespace toppriv::search
