#include "search/engine.h"

#include <algorithm>

#include "util/check.h"

namespace toppriv::search {

void EvalScratch::Prepare(size_t num_documents) {
  if (scores_.size() < num_documents) {
    // Scores need no initialization: a slot is only read after its
    // first-touch assignment below.
    scores_.resize(num_documents);
    is_touched_.resize(num_documents, 0);
  }
  // Self-healing reset in case a previous query was abandoned mid-flight.
  for (corpus::DocId doc : touched_) is_touched_[doc] = 0;
  touched_.clear();
}

std::vector<QueryTerm> CollapseQuery(const std::vector<text::TermId>& terms) {
  // Sort then run-length collapse. Queries are a handful of terms, so this
  // beats any hash map — and unlike a hash map its order is canonical, not
  // an artifact of bucket history, which the sharded engine's bit-parity
  // contract relies on.
  std::vector<text::TermId> sorted = terms;
  std::sort(sorted.begin(), sorted.end());
  std::vector<QueryTerm> query;
  query.reserve(sorted.size());
  for (text::TermId t : sorted) {
    if (!query.empty() && query.back().term == t) {
      ++query.back().qtf;
    } else {
      query.push_back(QueryTerm{t, 1});
    }
  }
  return query;
}

std::vector<ScoredDoc> AccumulateTopK(const index::InvertedIndex& index,
                                      const CollectionStats& stats,
                                      const Scorer& scorer,
                                      const std::vector<QueryTerm>& query,
                                      const std::vector<uint32_t>& dfs,
                                      size_t k, EvalScratch* scratch) {
  TOPPRIV_CHECK_EQ(query.size(), dfs.size());
  if (query.empty() || k == 0) return {};

  scratch->Prepare(index.num_documents());

  // Term-at-a-time accumulation over posting lists into the contiguous
  // per-document array; documents containing none of the query terms are
  // never touched (the scalability property the paper's PIR discussion
  // contrasts against). The first touch assigns 0.0 before accumulating so
  // a slot's history cannot leak between queries.
  std::vector<double>& scores = scratch->scores_;
  std::vector<char>& is_touched = scratch->is_touched_;
  std::vector<corpus::DocId>& touched = scratch->touched_;
  for (size_t qi = 0; qi < query.size(); ++qi) {
    const index::PostingList& list = index.Postings(query[qi].term);
    if (list.empty() || dfs[qi] == 0) continue;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      const index::Posting& p = it.Get();
      TOPPRIV_DCHECK(p.doc < scores.size());
      if (!is_touched[p.doc]) {
        is_touched[p.doc] = 1;
        touched.push_back(p.doc);
        scores[p.doc] = 0.0;
      }
      scores[p.doc] += scorer.TermScore(stats, index.DocLength(p.doc), p.tf,
                                        dfs[qi], query[qi].qtf);
    }
  }

  TopK topk(k);
  for (corpus::DocId doc : touched) {
    topk.Offer(doc, scorer.Normalize(stats, index.DocLength(doc), scores[doc]));
  }
  // Leave the scratch clean for the next query (O(touched), not O(docs)).
  for (corpus::DocId doc : touched) is_touched[doc] = 0;
  touched.clear();
  return topk.Finish();
}

SearchEngine::SearchEngine(const corpus::Corpus& corpus,
                           const index::InvertedIndex& index,
                           std::unique_ptr<Scorer> scorer)
    : corpus_(corpus),
      index_(index),
      scorer_(std::move(scorer)),
      stats_(CollectionStats::Of(index)) {
  TOPPRIV_CHECK(scorer_ != nullptr);
}

std::vector<ScoredDoc> SearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  static thread_local EvalScratch scratch;
  return Evaluate(terms, k, &scratch);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k,
    EvalScratch* scratch) const {
  if (terms.empty() || k == 0) return {};
  std::vector<QueryTerm> query = CollapseQuery(terms);
  std::vector<uint32_t> dfs(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    dfs[qi] = index_.DocFreq(query[qi].term);
  }
  return AccumulateTopK(index_, stats_, *scorer_, query, dfs, k, scratch);
}

}  // namespace toppriv::search
