#include "search/engine.h"

#include <unordered_map>

#include "util/check.h"

namespace toppriv::search {

void EvalScratch::Prepare(size_t num_documents) {
  if (scores_.size() < num_documents) {
    // Scores need no initialization: a slot is only read after its
    // first-touch assignment below.
    scores_.resize(num_documents);
    is_touched_.resize(num_documents, 0);
  }
  // Self-healing reset in case a previous query was abandoned mid-flight.
  for (corpus::DocId doc : touched_) is_touched_[doc] = 0;
  touched_.clear();
}

SearchEngine::SearchEngine(const corpus::Corpus& corpus,
                           const index::InvertedIndex& index,
                           std::unique_ptr<Scorer> scorer)
    : corpus_(corpus), index_(index), scorer_(std::move(scorer)) {
  TOPPRIV_CHECK(scorer_ != nullptr);
}

std::vector<ScoredDoc> SearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  static thread_local EvalScratch scratch;
  return Evaluate(terms, k, &scratch);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k,
    EvalScratch* scratch) const {
  if (terms.empty() || k == 0) return {};

  scratch->Prepare(index_.num_documents());

  // Collapse the query to (term, qtf) pairs. Deliberately a fresh map per
  // call, not part of the scratch: a reused map's bucket history would
  // change its iteration order — and with it the floating-point
  // accumulation order — making results depend on what the thread ran
  // before. Queries are a handful of terms; the per-document accumulator
  // was the allocation that mattered.
  std::unordered_map<text::TermId, uint32_t> query_tf;
  for (text::TermId t : terms) ++query_tf[t];

  // Term-at-a-time accumulation over posting lists into the contiguous
  // per-document array; documents containing none of the query terms are
  // never touched (the scalability property the paper's PIR discussion
  // contrasts against). The first touch assigns 0.0 before accumulating so
  // the arithmetic matches the old hash-map accumulator bit for bit.
  std::vector<double>& scores = scratch->scores_;
  std::vector<char>& is_touched = scratch->is_touched_;
  std::vector<corpus::DocId>& touched = scratch->touched_;
  for (const auto& [term, qtf] : query_tf) {
    const index::PostingList& list = index_.Postings(term);
    uint32_t df = list.size();
    if (df == 0) continue;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      const index::Posting& p = it.Get();
      TOPPRIV_DCHECK(p.doc < scores.size());
      if (!is_touched[p.doc]) {
        is_touched[p.doc] = 1;
        touched.push_back(p.doc);
        scores[p.doc] = 0.0;
      }
      scores[p.doc] += scorer_->TermScore(index_, p.doc, p.tf, df, qtf);
    }
  }

  TopK topk(k);
  for (corpus::DocId doc : touched) {
    topk.Offer(doc, scorer_->Normalize(index_, doc, scores[doc]));
  }
  // Leave the scratch clean for the next query (O(touched), not O(docs)).
  for (corpus::DocId doc : touched) is_touched[doc] = 0;
  touched.clear();
  return topk.Finish();
}

}  // namespace toppriv::search
