#include "search/engine.h"

#include <unordered_map>

#include "util/check.h"

namespace toppriv::search {

SearchEngine::SearchEngine(const corpus::Corpus& corpus,
                           const index::InvertedIndex& index,
                           std::unique_ptr<Scorer> scorer)
    : corpus_(corpus), index_(index), scorer_(std::move(scorer)) {
  TOPPRIV_CHECK(scorer_ != nullptr);
}

std::vector<ScoredDoc> SearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> SearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  if (terms.empty() || k == 0) return {};

  // Collapse the query to (term, qtf) pairs.
  std::unordered_map<text::TermId, uint32_t> query_tf;
  for (text::TermId t : terms) ++query_tf[t];

  // Term-at-a-time accumulation over posting lists; documents containing
  // none of the query terms are never touched (the scalability property the
  // paper's PIR discussion contrasts against).
  std::unordered_map<corpus::DocId, double> accumulators;
  for (const auto& [term, qtf] : query_tf) {
    const index::PostingList& list = index_.Postings(term);
    uint32_t df = list.size();
    if (df == 0) continue;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      const index::Posting& p = it.Get();
      accumulators[p.doc] +=
          scorer_->TermScore(index_, p.doc, p.tf, df, qtf);
    }
  }

  TopK topk(k);
  for (const auto& [doc, acc] : accumulators) {
    topk.Offer(doc, scorer_->Normalize(index_, doc, acc));
  }
  return topk.Finish();
}

}  // namespace toppriv::search
