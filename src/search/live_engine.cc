#include "search/live_engine.h"

#include <utility>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace toppriv::search {

LiveSearchEngine::LiveSearchEngine(const corpus::Corpus& corpus,
                                   index::live::LiveIndex& live,
                                   std::unique_ptr<Scorer> scorer,
                                   EvalStrategy strategy,
                                   util::ThreadPool* eval_pool)
    : corpus_(corpus),
      live_(live),
      scorer_(std::move(scorer)),
      eval_pool_(eval_pool),
      strategy_(strategy) {
  TOPPRIV_CHECK(scorer_ != nullptr);
}

std::vector<ScoredDoc> LiveSearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> LiveSearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  const std::shared_ptr<const index::live::IndexSnapshot> snapshot =
      live_.Acquire();
  return EvaluateOn(*snapshot, terms, k);
}

util::StatusOr<std::vector<ScoredDoc>> LiveSearchEngine::EvaluateWithOptions(
    const std::vector<text::TermId>& terms, size_t k,
    const QueryOptions& options) const {
  const util::Deadline* deadline = options.deadline;
  if (deadline != nullptr && deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  const std::shared_ptr<const index::live::IndexSnapshot> snapshot =
      live_.Acquire();
  std::vector<ScoredDoc> results = EvaluateOn(*snapshot, terms, k, deadline);
  if (deadline != nullptr && deadline->Expired()) {
    TOPPRIV_COUNTER_INC("search.deadline_exceeded");
    return util::Status::DeadlineExceeded("query deadline expired");
  }
  return results;
}

std::vector<std::shared_ptr<const std::vector<double>>>
LiveSearchEngine::SegmentBounds(const index::live::IndexSnapshot& snapshot,
                                const CollectionStats& stats) const {
  const size_t n = snapshot.num_segments();
  std::vector<std::shared_ptr<const std::vector<double>>> tables(n);
  std::shared_ptr<const BoundsCache> cache;
  {
    util::MutexLock lock(&bounds_mu_);
    cache = bounds_cache_;
  }
  // A cache generation is usable only at the exact df-version it was
  // computed at: the tables bake in the global df and collection stats,
  // and a stale (previous-version) bound could fall below a real term
  // contribution and break MaxScore's prune-safety. Segment identity is
  // the second key — a merge creates new segments without bumping the
  // version (it is df-neutral), so its outputs miss here and compute.
  const bool cache_current =
      cache != nullptr && cache->df_version == snapshot.df_version();
  bool computed = false;
  for (size_t s = 0; s < n; ++s) {
    const index::live::SnapshotSegment& ss = snapshot.segment(s);
    if (cache_current) {
      for (const auto& [segment, table] : cache->tables) {
        if (segment.get() == ss.segment.get()) {
          tables[s] = table;
          break;
        }
      }
    }
    if (tables[s] == nullptr) {
      tables[s] = std::make_shared<const std::vector<double>>(
          ComputeTermImpactBounds(ss.segment->index(), stats, *scorer_,
                                  &snapshot.global_df()));
      computed = true;
    }
  }
  if (computed &&
      (cache == nullptr || snapshot.df_version() >= cache->df_version)) {
    // Publish this snapshot's full table set (last writer wins; an
    // EvaluateOn against an OLD pinned snapshot never clobbers a newer
    // cache thanks to the version guard above).
    auto fresh = std::make_shared<BoundsCache>();
    fresh->df_version = snapshot.df_version();
    fresh->tables.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      fresh->tables.emplace_back(snapshot.segment(s).segment, tables[s]);
    }
    util::MutexLock lock(&bounds_mu_);
    bounds_cache_ = std::move(fresh);
  }
  return tables;
}

std::vector<ScoredDoc> LiveSearchEngine::EvaluateOn(
    const index::live::IndexSnapshot& snapshot,
    const std::vector<text::TermId>& terms, size_t k,
    const util::Deadline* deadline) const {
  if (terms.empty() || k == 0) return {};

  EvalStrategy strategy;
  {
    util::MutexLock lock(&strategy_mu_);
    strategy = strategy_;
  }

  // One canonical query plan for every segment: canonical term order,
  // GLOBAL live document frequencies, global live collection stats.
  const std::vector<QueryTerm> query = CollapseQuery(terms);
  std::vector<uint32_t> dfs(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    dfs[qi] = snapshot.DocFreq(query[qi].term);
  }
  CollectionStats stats;
  stats.num_documents = snapshot.num_documents();
  stats.avg_doc_length = snapshot.avg_doc_length();
  stats.total_tokens = snapshot.total_tokens();

  std::vector<std::shared_ptr<const std::vector<double>>> bounds;
  if (strategy == EvalStrategy::kMaxScore) {
    bounds = SegmentBounds(snapshot, stats);
  }

  // Scatter over the segments — sequentially, or fanned out on the
  // borrowed pool. Either way each iteration fills only its own slot with
  // its own thread-local scratch, and the merge below walks the slots in
  // segment order on this thread, so results are bit-identical across
  // thread counts (see file comment).
  const size_t n = snapshot.num_segments();
  std::vector<std::vector<ScoredDoc>> per_segment(n);
  TOPPRIV_TRACE_SPAN(fanout_span, "search.segment_fanout");
  TOPPRIV_SCOPED_TIMER_US("search.segment_fanout_us");
  TOPPRIV_HISTOGRAM_OBSERVE("search.segment_fanout_width", n,
                            util::CountBuckets());
  const auto eval_segment = [&](size_t s) {
    static thread_local EvalScratch scratch;
    const index::live::SnapshotSegment& ss = snapshot.segment(s);
    per_segment[s] = EvaluateTopK(
        strategy, ss.segment->index(), stats, *scorer_, query, dfs, k,
        &scratch, bounds.empty() ? nullptr : bounds[s].get(),
        ss.deleted.get(), deadline);
  };
  if (eval_pool_ != nullptr && n > 1) {
    eval_pool_->ParallelFor(n, eval_segment);
  } else {
    for (size_t s = 0; s < n; ++s) eval_segment(s);
  }

  // Deterministic gather: lift local ids into the snapshot's dense space
  // in segment order; the global top-k is a subset of the union of
  // per-segment top-k lists.
  TopK merged(k);
  for (size_t s = 0; s < n; ++s) {
    const index::live::SnapshotSegment& ss = snapshot.segment(s);
    for (const ScoredDoc& sd : per_segment[s]) {
      merged.Offer(ss.DenseId(sd.doc), sd.score);
    }
  }
  return merged.Finish();
}

}  // namespace toppriv::search
