#include "search/live_engine.h"

#include "util/check.h"

namespace toppriv::search {

LiveSearchEngine::LiveSearchEngine(const corpus::Corpus& corpus,
                                   index::live::LiveIndex& live,
                                   std::unique_ptr<Scorer> scorer,
                                   EvalStrategy strategy)
    : corpus_(corpus),
      live_(live),
      scorer_(std::move(scorer)),
      strategy_(strategy) {
  TOPPRIV_CHECK(scorer_ != nullptr);
}

std::vector<ScoredDoc> LiveSearchEngine::Search(
    const std::vector<text::TermId>& terms, size_t k, uint64_t cycle_id) {
  log_.Record(cycle_id, terms);
  return Evaluate(terms, k);
}

std::vector<ScoredDoc> LiveSearchEngine::Evaluate(
    const std::vector<text::TermId>& terms, size_t k) const {
  const std::shared_ptr<const index::live::IndexSnapshot> snapshot =
      live_.Acquire();
  return EvaluateOn(*snapshot, terms, k);
}

std::vector<ScoredDoc> LiveSearchEngine::EvaluateOn(
    const index::live::IndexSnapshot& snapshot,
    const std::vector<text::TermId>& terms, size_t k) const {
  if (terms.empty() || k == 0) return {};

  // One canonical query plan for every segment: canonical term order,
  // GLOBAL live document frequencies, global live collection stats.
  const std::vector<QueryTerm> query = CollapseQuery(terms);
  std::vector<uint32_t> dfs(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    dfs[qi] = snapshot.DocFreq(query[qi].term);
  }
  CollectionStats stats;
  stats.num_documents = snapshot.num_documents();
  stats.avg_doc_length = snapshot.avg_doc_length();
  stats.total_tokens = snapshot.total_tokens();

  // Scatter over the segments sequentially (sessions parallelize above
  // this layer), lifting local ids into the snapshot's dense space; the
  // global top-k is a subset of the union of per-segment top-k lists.
  static thread_local EvalScratch scratch;
  TopK merged(k);
  for (size_t s = 0; s < snapshot.num_segments(); ++s) {
    const index::live::SnapshotSegment& ss = snapshot.segment(s);
    std::vector<ScoredDoc> results = EvaluateTopK(
        strategy_, ss.segment->index(), stats, *scorer_, query, dfs, k,
        &scratch, /*term_bounds=*/nullptr, ss.deleted.get());
    for (const ScoredDoc& sd : results) {
      merged.Offer(ss.DenseId(sd.doc), sd.score);
    }
  }
  return merged.Finish();
}

}  // namespace toppriv::search
