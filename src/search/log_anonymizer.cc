#include "search/log_anonymizer.h"

#include <cmath>

namespace toppriv::search {

namespace {

// Keyed SplitMix64-style mixer.
uint64_t KeyedMix(uint64_t key, uint64_t value) {
  uint64_t z = value + key * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t LogAnonymizer::Pseudonym(uint64_t user_id) const {
  return KeyedMix(policy_.key, user_id ^ 0xabcdef);
}

uint64_t LogAnonymizer::HashTerm(text::TermId term) const {
  return KeyedMix(policy_.key, term);
}

std::vector<AnonymizedQuery> LogAnonymizer::Anonymize(
    uint64_t user_id, const std::vector<LoggedQuery>& entries) const {
  std::vector<AnonymizedQuery> out;
  out.reserve(entries.size());
  const uint64_t pseudonym = Pseudonym(user_id);
  for (const LoggedQuery& entry : entries) {
    AnonymizedQuery record;
    record.pseudonym = pseudonym;
    record.time_bucket =
        policy_.time_bucket_seconds > 0.0
            ? static_cast<uint64_t>(
                  std::floor(entry.timestamp / policy_.time_bucket_seconds))
            : 0;
    for (text::TermId term : entry.terms) {
      if (term < vocab_.size() &&
          vocab_.DocFreq(term) < policy_.min_doc_freq_to_keep) {
        continue;  // rare quasi-identifier: drop
      }
      record.hashed_terms.push_back(HashTerm(term));
    }
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace toppriv::search
