// Ranked retrieval over a LiveIndex: acquire a snapshot, evaluate every
// segment with the shared cores, merge into the global top-k.
//
// Parity contract (tests/live_index_test.cc): for any ingest schedule —
// batch splits, merges, deletes-then-reinserts — results are BIT-identical
// to the monolithic SearchEngine over a static InvertedIndex::Build of the
// live collection, under both evaluation strategies and all scorers. The
// same three PR 3 ingredients, restated for segments:
//   1. every segment scores with the snapshot's GLOBAL live collection
//      statistics and per-term document frequencies (global IDF), never a
//      segment's local ones;
//   2. both engines run the identical evaluation cores over the identical
//      canonical CollapseQuery order, with tombstoned documents skipped
//      without perturbing any survivor's floating-point op sequence;
//   3. per-segment results lift local doc ids to the snapshot's DENSE id
//      space (live docs renumbered in ingest order — exactly the static
//      build's assignment) and merge through TopK's (score desc, doc asc)
//      total order, so ties break identically.
//
// Two serving accelerations ride on the parity contract, both invisible in
// the results:
//
// PARALLEL FAN-OUT. Construction may borrow a util::ThreadPool; each
// Evaluate then fans the per-segment evaluations out over its workers.
// Determinism: every iteration writes only its own pre-allocated result
// slot with its own thread-local scratch, each segment's arithmetic is
// untouched (same core, same inputs), and the final merge walks the slots
// in segment order on the calling thread — so the pooled path is
// bit-identical to the sequential one regardless of completion order. The
// pool must not be one the caller itself blocks inside (ParallelFor from a
// worker of the same pool deadlocks), so the serving bench gives the
// engine a pool distinct from the session driver's.
//
// CACHED IMPACT BOUNDS. MaxScore here used to run with the analytic
// per-query Scorer::UpperBound only (term_bounds = nullptr): an exact
// impact table is a function of the global df and collection stats, which
// change with every ingest/delete, so an UNVERSIONED cached table would go
// stale — and a stale bound can fall below a real contribution and break
// prune-safety. The fix is the df-version protocol: LiveIndex bumps a
// counter on every df-changing mutation and stamps it on each snapshot;
// the engine caches per-segment ComputeTermImpactBounds tables keyed by
// (segment identity, df-version) and discards the cache wholesale the
// moment a snapshot carries a newer version. A matching version implies
// the global df and collection stats the tables were computed from are
// EXACTLY the snapshot's (merges do not bump the version — they preserve
// the live doc set — so their fresh segments just compute their tables on
// first use). Tighter-vs-analytic bounds never change results, only
// pruning work: MaxScore re-accumulates every surviving candidate's
// contributions in canonical order, which the parity suite locks down
// across {analytic, cached} × {sequential, pooled}.
#ifndef TOPPRIV_SEARCH_LIVE_ENGINE_H_
#define TOPPRIV_SEARCH_LIVE_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "corpus/corpus.h"
#include "index/live/live_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "search/topk.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace toppriv::search {

/// Snapshot-isolated search engine over a LiveIndex.
class LiveSearchEngine : public QueryEngine {
 public:
  /// Borrows the corpus (for corpus() consumers) and the live index; both
  /// must outlive the engine. Each Evaluate acquires the index's current
  /// snapshot, so concurrent ingest/merge/delete never races a query.
  /// `eval_pool`, when non-null, is a borrowed pool the per-segment
  /// evaluations fan out on (see file comment for the determinism and
  /// no-self-pool rules); null evaluates segments sequentially.
  LiveSearchEngine(const corpus::Corpus& corpus, index::live::LiveIndex& live,
                   std::unique_ptr<Scorer> scorer,
                   EvalStrategy strategy = EvalStrategy::kTAAT,
                   util::ThreadPool* eval_pool = nullptr);

  LiveSearchEngine(const LiveSearchEngine&) = delete;
  LiveSearchEngine& operator=(const LiveSearchEngine&) = delete;

  std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                size_t k, uint64_t cycle_id = 0) override;

  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k) const override
      EXCLUDES(strategy_mu_, bounds_mu_);

  /// Deadline-aware evaluation against the current snapshot: the deadline
  /// (shared sticky cancel flag) reaches every segment's eval core, so one
  /// expiry observation stops the whole per-segment fan-out. Accepted
  /// queries are bit-identical to Evaluate. A Degraded index still serves
  /// this path — reads come from the last published snapshot by design.
  util::StatusOr<std::vector<ScoredDoc>> EvaluateWithOptions(
      const std::vector<text::TermId>& terms, size_t k,
      const QueryOptions& options) const override
      EXCLUDES(strategy_mu_, bounds_mu_);

  /// Evaluation pinned to a caller-held snapshot (what Evaluate does with
  /// the current one). Exposed so tests can prove snapshot isolation:
  /// results against an old snapshot must not move while the index churns.
  std::vector<ScoredDoc> EvaluateOn(const index::live::IndexSnapshot& snapshot,
                                    const std::vector<text::TermId>& terms,
                                    size_t k,
                                    const util::Deadline* deadline = nullptr)
      const EXCLUDES(strategy_mu_, bounds_mu_);

  const QueryLog& query_log() const override { return log_; }
  QueryLog& mutable_query_log() override { return log_; }

  const corpus::Corpus& corpus() const override { return corpus_; }
  const index::live::LiveIndex& live_index() const { return live_; }
  const Scorer& scorer() const override { return *scorer_; }

  /// Segment-evaluation threads (1 = sequential scatter).
  size_t num_threads() const {
    return eval_pool_ != nullptr ? eval_pool_->num_threads() : 1;
  }

  EvalStrategy eval_strategy() const override EXCLUDES(strategy_mu_) {
    util::MutexLock lock(&strategy_mu_);
    return strategy_;
  }
  /// Thread-safe (same discipline as the other engines): the strategy
  /// lives behind strategy_mu_; in-flight Evaluate calls finish under the
  /// strategy they started with. No eager bound build here — live bounds
  /// are per-snapshot and build lazily on the first MaxScore evaluation.
  void set_eval_strategy(EvalStrategy strategy) EXCLUDES(strategy_mu_) {
    util::MutexLock lock(&strategy_mu_);
    strategy_ = strategy;
  }

 private:
  /// One immutable generation of cached bound tables: the df-version the
  /// global stats were read at, plus (segment identity → table) pairs.
  /// Shared out under bounds_mu_ as a const snapshot — the PR 7 rule: no
  /// lazy unguarded init, readers clone the pointer and go lock-free.
  struct BoundsCache {
    uint64_t df_version = 0;
    std::vector<std::pair<std::shared_ptr<const index::live::Segment>,
                          std::shared_ptr<const std::vector<double>>>>
        tables;
  };

  /// Returns per-segment bound tables for `snapshot` (parallel to its
  /// segment list), serving hits from the cache when the df-version
  /// matches and computing + re-caching the rest.
  std::vector<std::shared_ptr<const std::vector<double>>> SegmentBounds(
      const index::live::IndexSnapshot& snapshot,
      const CollectionStats& stats) const EXCLUDES(bounds_mu_);

  const corpus::Corpus& corpus_;
  index::live::LiveIndex& live_;
  std::unique_ptr<Scorer> scorer_;
  /// Borrowed fan-out pool; null = sequential. Never Submit/ParallelFor
  /// targets of the caller's own blocking pool (constructor contract).
  util::ThreadPool* eval_pool_;
  mutable util::Mutex strategy_mu_;
  EvalStrategy strategy_ GUARDED_BY(strategy_mu_);
  /// Guards only the cache pointer swap; table computation runs outside.
  mutable util::Mutex bounds_mu_;
  mutable std::shared_ptr<const BoundsCache> bounds_cache_
      GUARDED_BY(bounds_mu_);
  QueryLog log_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_LIVE_ENGINE_H_
