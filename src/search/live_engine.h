// Ranked retrieval over a LiveIndex: acquire a snapshot, evaluate every
// segment with the shared cores, merge into the global top-k.
//
// Parity contract (tests/live_index_test.cc): for any ingest schedule —
// batch splits, merges, deletes-then-reinserts — results are BIT-identical
// to the monolithic SearchEngine over a static InvertedIndex::Build of the
// live collection, under both evaluation strategies and all scorers. The
// same three PR 3 ingredients, restated for segments:
//   1. every segment scores with the snapshot's GLOBAL live collection
//      statistics and per-term document frequencies (global IDF), never a
//      segment's local ones;
//   2. both engines run the identical evaluation cores over the identical
//      canonical CollapseQuery order, with tombstoned documents skipped
//      without perturbing any survivor's floating-point op sequence;
//   3. per-segment results lift local doc ids to the snapshot's DENSE id
//      space (live docs renumbered in ingest order — exactly the static
//      build's assignment) and merge through TopK's (score desc, doc asc)
//      total order, so ties break identically.
//
// Unlike the static engines, MaxScore here uses the analytic per-query
// Scorer::UpperBound (term_bounds = nullptr): an exact impact table is a
// function of the global df and collection stats, which change with every
// ingest/delete, so a cached table would go stale — and a stale (smaller-N
// or larger-df) bound can fall BELOW a real contribution and break
// prune-safety. The analytic bound is computed from the acquired
// snapshot's own stats, so it is always current; pruning is merely looser.
#ifndef TOPPRIV_SEARCH_LIVE_ENGINE_H_
#define TOPPRIV_SEARCH_LIVE_ENGINE_H_

#include <memory>
#include <vector>

#include "corpus/corpus.h"
#include "index/live/live_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "search/topk.h"

namespace toppriv::search {

/// Snapshot-isolated search engine over a LiveIndex.
class LiveSearchEngine : public QueryEngine {
 public:
  /// Borrows the corpus (for corpus() consumers) and the live index; both
  /// must outlive the engine. Each Evaluate acquires the index's current
  /// snapshot, so concurrent ingest/merge/delete never races a query.
  LiveSearchEngine(const corpus::Corpus& corpus, index::live::LiveIndex& live,
                   std::unique_ptr<Scorer> scorer,
                   EvalStrategy strategy = EvalStrategy::kTAAT);

  LiveSearchEngine(const LiveSearchEngine&) = delete;
  LiveSearchEngine& operator=(const LiveSearchEngine&) = delete;

  std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                size_t k, uint64_t cycle_id = 0) override;

  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k) const override;

  /// Evaluation pinned to a caller-held snapshot (what Evaluate does with
  /// the current one). Exposed so tests can prove snapshot isolation:
  /// results against an old snapshot must not move while the index churns.
  std::vector<ScoredDoc> EvaluateOn(const index::live::IndexSnapshot& snapshot,
                                    const std::vector<text::TermId>& terms,
                                    size_t k) const;

  const QueryLog& query_log() const override { return log_; }
  QueryLog& mutable_query_log() override { return log_; }

  const corpus::Corpus& corpus() const override { return corpus_; }
  const index::live::LiveIndex& live_index() const { return live_; }
  const Scorer& scorer() const override { return *scorer_; }

  EvalStrategy eval_strategy() const override { return strategy_; }
  /// NOT thread-safe: set before sharing with concurrent Evaluate callers.
  void set_eval_strategy(EvalStrategy strategy) { strategy_ = strategy; }

 private:
  const corpus::Corpus& corpus_;
  index::live::LiveIndex& live_;
  std::unique_ptr<Scorer> scorer_;
  EvalStrategy strategy_;
  QueryLog log_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_LIVE_ENGINE_H_
