// Bounded top-k accumulator (min-heap) for ranked retrieval.
#ifndef TOPPRIV_SEARCH_TOPK_H_
#define TOPPRIV_SEARCH_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "util/check.h"

namespace toppriv::search {

/// One ranked result.
struct ScoredDoc {
  corpus::DocId doc = 0;
  double score = 0.0;
};

/// Keeps the k highest-scoring documents seen so far; ties broken towards
/// lower doc ids for determinism.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { TOPPRIV_CHECK_GT(k, 0u); }

  /// Offers a candidate; O(log k) when it qualifies.
  void Offer(corpus::DocId doc, double score) {
    if (heap_.size() < k_) {
      heap_.push_back({doc, score});
      std::push_heap(heap_.begin(), heap_.end(), Worse);
      return;
    }
    if (Better(ScoredDoc{doc, score}, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Worse);
      heap_.back() = {doc, score};
      std::push_heap(heap_.begin(), heap_.end(), Worse);
    }
  }

  /// Extracts results in descending score order (ascending doc on ties).
  std::vector<ScoredDoc> Finish() {
    std::sort(heap_.begin(), heap_.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) { return Better(a, b); });
    std::vector<ScoredDoc> out = std::move(heap_);
    heap_.clear();
    return out;
  }

  size_t size() const { return heap_.size(); }

  /// True once k candidates are held — from then on Worst() is the live
  /// admission threshold (MaxScore prunes against it).
  bool AtCapacity() const { return heap_.size() >= k_; }

  /// The current k-th best (worst retained) candidate. Only meaningful
  /// once at least one candidate was offered.
  const ScoredDoc& Worst() const {
    TOPPRIV_CHECK(!heap_.empty());
    return heap_.front();
  }

 private:
  /// True if a strictly outranks b.
  static bool Better(const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }
  /// Heap comparator: the *worst* element sits at the front.
  static bool Worse(const ScoredDoc& a, const ScoredDoc& b) {
    return Better(a, b);
  }

  size_t k_;
  std::vector<ScoredDoc> heap_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_TOPK_H_
