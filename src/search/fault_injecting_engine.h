// Deterministic fault-injecting QueryEngine wrapper — the query-side twin
// of util::FaultInjectingFileSystem.
//
// Wraps any QueryEngine and injects scripted faults on the deadline-aware
// evaluation path, keyed by CALL INDEX (the n-th EvaluateWithOptions call
// observes the fault scheduled at n), so a chaos schedule composed with a
// deterministic workload replays bit-identically. Time is virtual: delays
// and hangs ADVANCE a shared ManualClock instead of sleeping, which keeps
// chaos runs instant and makes "stuck shard" a modelable event — a kHang
// pushes the clock past any finite deadline, and the inner engine's next
// block-granular poll observes expiry and unwinds. That is the tentpole
// property under test: a hang costs the session one deadline, never a
// wedge.
//
// Faults apply ONLY to EvaluateWithOptions. The plain Search/Evaluate
// paths forward untouched — they have no typed-status channel to report a
// fault through, and the chaos harness drives the deadline-aware path
// exclusively.
#ifndef TOPPRIV_SEARCH_FAULT_INJECTING_ENGINE_H_
#define TOPPRIV_SEARCH_FAULT_INJECTING_ENGINE_H_

#include <cstdint>
#include <vector>

#include "search/engine.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace toppriv::search {

/// One scripted fault, armed for a specific evaluation call.
struct EngineFault {
  enum class Kind {
    /// Advance the clock by `delay_nanos` before evaluating: the query may
    /// still make its deadline (slow shard) or miss it (too slow).
    kDelay,
    /// Fail the call with kUnavailable without evaluating (e.g. a replica
    /// refusing traffic).
    kError,
    /// Advance the clock past ANY finite deadline before evaluating: the
    /// model of a wedged shard. Only observable through a deadline — with
    /// an infinite deadline the query still completes (and proves the
    /// wrapper never perturbs results).
    kHang,
  };
  /// 0-based EvaluateWithOptions call index the fault fires on.
  uint64_t at_call = 0;
  Kind kind = Kind::kError;
  int64_t delay_nanos = 0;  // kDelay only
};

/// Thread-safe wrapper: concurrent query fleets share one instance and the
/// call counter hands out fault slots under a mutex.
class FaultInjectingEngine : public QueryEngine {
 public:
  /// Borrows the inner engine and the clock (both must outlive the
  /// wrapper). Deadlines composed with this engine must be built on the
  /// SAME ManualClock, or delays/hangs would be invisible to them.
  FaultInjectingEngine(QueryEngine* inner, util::ManualClock* clock)
      : inner_(inner), clock_(clock) {}

  FaultInjectingEngine(const FaultInjectingEngine&) = delete;
  FaultInjectingEngine& operator=(const FaultInjectingEngine&) = delete;

  /// Arms `fault` (multiple faults may be scheduled; at most one fires per
  /// call — the first match wins and is consumed).
  void ScheduleFault(EngineFault fault) EXCLUDES(mu_);
  void ClearFaults() EXCLUDES(mu_);

  /// Evaluations attempted / faults actually fired so far.
  uint64_t calls() const EXCLUDES(mu_);
  uint64_t faults_fired() const EXCLUDES(mu_);

  // QueryEngine — fault-free forwards.
  std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                size_t k, uint64_t cycle_id = 0) override {
    return inner_->Search(terms, k, cycle_id);
  }
  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k) const override {
    return inner_->Evaluate(terms, k);
  }
  const QueryLog& query_log() const override { return inner_->query_log(); }
  QueryLog& mutable_query_log() override {
    return inner_->mutable_query_log();
  }
  const corpus::Corpus& corpus() const override { return inner_->corpus(); }
  const Scorer& scorer() const override { return inner_->scorer(); }
  EvalStrategy eval_strategy() const override {
    return inner_->eval_strategy();
  }

  /// The faulted path. A call with no armed fault forwards verbatim, so
  /// accepted queries stay bit-identical to the unwrapped engine.
  util::StatusOr<std::vector<ScoredDoc>> EvaluateWithOptions(
      const std::vector<text::TermId>& terms, size_t k,
      const QueryOptions& options) const override EXCLUDES(mu_);

 private:
  QueryEngine* const inner_;
  util::ManualClock* const clock_;
  mutable util::Mutex mu_;
  mutable std::vector<EngineFault> faults_ GUARDED_BY(mu_);
  mutable uint64_t calls_ GUARDED_BY(mu_) = 0;
  mutable uint64_t faults_fired_ GUARDED_BY(mu_) = 0;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_FAULT_INJECTING_ENGINE_H_
