// Retrieval-quality metrics.
//
// Used to (a) sanity-check the search substrate against the corpus ground
// truth and (b) demonstrate the paper's usability claim: TopPriv returns the
// *exact* results of the genuine query (ghost results are discarded), unlike
// query-substitution schemes that perturb precision/recall.
#ifndef TOPPRIV_SEARCH_EVAL_H_
#define TOPPRIV_SEARCH_EVAL_H_

#include <vector>

#include "search/topk.h"

namespace toppriv::search {

/// Precision@k of `ranked` against the `relevant` set.
double PrecisionAtK(const std::vector<ScoredDoc>& ranked,
                    const std::vector<corpus::DocId>& relevant, size_t k);

/// Recall@k.
double RecallAtK(const std::vector<ScoredDoc>& ranked,
                 const std::vector<corpus::DocId>& relevant, size_t k);

/// Average precision over the full ranking.
double AveragePrecision(const std::vector<ScoredDoc>& ranked,
                        const std::vector<corpus::DocId>& relevant);

/// Binary-relevance nDCG@k.
double NdcgAtK(const std::vector<ScoredDoc>& ranked,
               const std::vector<corpus::DocId>& relevant, size_t k);

/// True if both rankings contain identical documents in identical order
/// (scores may differ by tolerance).
bool SameRanking(const std::vector<ScoredDoc>& a,
                 const std::vector<ScoredDoc>& b, double score_tolerance);

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_EVAL_H_
