// The enterprise text search engine (the paper's SE) plus the query log the
// curious adversary analyzes after the fact.
#ifndef TOPPRIV_SEARCH_ENGINE_H_
#define TOPPRIV_SEARCH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "search/scorer.h"
#include "search/topk.h"
#include "text/vocabulary.h"

namespace toppriv::search {

/// Reusable evaluation scratch: a contiguous score accumulator with one
/// slot per document, plus the touched-document list that makes clearing
/// O(touched) instead of O(num_documents). Reusing one scratch across
/// queries removes the per-query hash-map allocation that used to dominate
/// Evaluate. Not thread-safe: one scratch per thread (the scratch-less
/// Evaluate overload keeps a thread-local one).
class EvalScratch {
 public:
  EvalScratch() = default;
  EvalScratch(const EvalScratch&) = delete;
  EvalScratch& operator=(const EvalScratch&) = delete;

 private:
  friend class SearchEngine;

  /// Grows the accumulator to cover `num_documents` and resets any state a
  /// previous (possibly abandoned) query left behind.
  void Prepare(size_t num_documents);

  std::vector<double> scores_;
  std::vector<char> is_touched_;
  std::vector<corpus::DocId> touched_;
};

/// One entry in the engine-side query log: the adversary's view. Queries
/// arrive as bags of term ids; the engine cannot tell user queries from
/// ghost queries (that is the point of TopPriv).
struct LoggedQuery {
  uint64_t sequence = 0;
  /// Cycle tag: queries submitted together share a tag. The paper's threat
  /// model lets the adversary group a cycle (they arrive back-to-back), so
  /// the log keeps the grouping explicit; adversary/log_segmentation.h
  /// additionally models an adversary who must RECOVER the grouping from
  /// arrival times alone.
  uint64_t cycle_id = 0;
  /// Arrival time in seconds (simulation clock; 0 when untimed).
  double timestamp = 0.0;
  std::vector<text::TermId> terms;
};

/// Append-only log of everything the engine processed.
class QueryLog {
 public:
  void Record(uint64_t cycle_id, const std::vector<text::TermId>& terms,
              double timestamp = 0.0) {
    log_.push_back(LoggedQuery{next_seq_++, cycle_id, timestamp, terms});
  }
  const std::vector<LoggedQuery>& entries() const { return log_; }
  size_t size() const { return log_.size(); }
  void Clear() {
    log_.clear();
    next_seq_ = 0;
  }

 private:
  std::vector<LoggedQuery> log_;
  uint64_t next_seq_ = 0;
};

/// Similarity search engine over an inverted index.
///
/// The engine is deliberately unmodified by the privacy layer: TopPriv's
/// design constraint is that it works against existing engines (unlike the
/// PDX baseline, which requires a homomorphic scoring protocol).
class SearchEngine {
 public:
  /// The engine borrows the corpus and index; both must outlive it.
  SearchEngine(const corpus::Corpus& corpus, const index::InvertedIndex& index,
               std::unique_ptr<Scorer> scorer);

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// Processes a query (bag of term ids), returning the top-k documents.
  /// Every call is recorded in the query log under `cycle_id`.
  std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                size_t k, uint64_t cycle_id = 0);

  /// Term-at-a-time evaluation without logging (used internally and by
  /// tests that compare against the logged path). Uses a thread-local
  /// scratch, so concurrent callers (the serving driver's sessions) are
  /// safe.
  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k) const;

  /// Same, accumulating into the caller's scratch (identical results).
  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k, EvalScratch* scratch) const;

  const QueryLog& query_log() const { return log_; }
  QueryLog& mutable_query_log() { return log_; }

  const corpus::Corpus& corpus() const { return corpus_; }
  const index::InvertedIndex& index() const { return index_; }
  const Scorer& scorer() const { return *scorer_; }

 private:
  const corpus::Corpus& corpus_;
  const index::InvertedIndex& index_;
  std::unique_ptr<Scorer> scorer_;
  QueryLog log_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_ENGINE_H_
