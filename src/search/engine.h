// The enterprise text search engine (the paper's SE) plus the query log the
// curious adversary analyzes after the fact.
#ifndef TOPPRIV_SEARCH_ENGINE_H_
#define TOPPRIV_SEARCH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "index/inverted_index.h"
#include "search/scorer.h"
#include "search/topk.h"
#include "text/vocabulary.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace toppriv::search {

/// One query term after collapsing duplicates: the term and its query term
/// frequency.
struct QueryTerm {
  text::TermId term = 0;
  uint32_t qtf = 0;
};

/// How a query is evaluated against an index. Both strategies return
/// BIT-identical top-k lists (docs, scores, order) — the parity suites
/// enforce it — so the choice is purely a performance knob:
///  - kTAAT: term-at-a-time accumulation; touches every posting of every
///    query term. Simple, branch-light, optimal for tiny indexes.
///  - kMaxScore: document-at-a-time with per-term score upper bounds
///    (Turtle & Flood): once the top-k heap fills, terms whose summed
///    bounds cannot beat the k-th score stop generating candidates, docs
///    are abandoned mid-scoring when the remaining bounds cannot rescue
///    them, and whole 128-posting blocks are skipped via the block-max tf
///    bounds. Wins when lists are long relative to k.
enum class EvalStrategy { kTAAT, kMaxScore };

/// "taat" / "maxscore" (for logs, benches, and the env knob).
const char* EvalStrategyName(EvalStrategy strategy);

/// Reads TOPPRIV_EVAL_STRATEGY ("taat", default, or "maxscore").
EvalStrategy EvalStrategyFromEnv();

/// Per-term document-at-a-time cursor (MaxScore path): a position in the
/// term's block directory plus the batch-decoded current block. Lives in
/// EvalScratch so the ~1.5 KiB block buffers are reused across queries.
struct TermCursor {
  const index::PostingList* list = nullptr;
  /// Index into the canonical query order (for qtf/df lookups).
  size_t qi = 0;
  /// List-level score upper bound for this term.
  double ub = 0.0;
  /// Doc id at the current position, kept hot in the cursor so pivot scans
  /// never chase list->block(...) pointers. For an undecoded block this is
  /// its first_doc (exact — the cursor sits at the block start).
  corpus::DocId doc = 0;
  size_t block_idx = 0;
  uint32_t pos = 0;
  bool block_decoded = false;
  bool exhausted = false;
  index::PostingBlock block;
};

/// Reusable evaluation scratch: a contiguous score accumulator with one
/// slot per document, plus the touched-document list that makes clearing
/// O(touched) instead of O(num_documents). Reusing one scratch across
/// queries removes the per-query hash-map allocation that used to dominate
/// Evaluate. Not thread-safe: one scratch per thread (the scratch-less
/// Evaluate overloads keep a thread-local one).
class EvalScratch {
 public:
  EvalScratch() = default;
  EvalScratch(const EvalScratch&) = delete;
  EvalScratch& operator=(const EvalScratch&) = delete;

 private:
  friend std::vector<ScoredDoc> AccumulateTopK(const index::InvertedIndex&,
                                               const CollectionStats&,
                                               const Scorer&,
                                               const std::vector<QueryTerm>&,
                                               const std::vector<uint32_t>&,
                                               size_t, EvalScratch*,
                                               const std::vector<char>*,
                                               const util::Deadline*);
  friend std::vector<ScoredDoc> MaxScoreTopK(const index::InvertedIndex&,
                                             const CollectionStats&,
                                             const Scorer&,
                                             const std::vector<QueryTerm>&,
                                             const std::vector<uint32_t>&,
                                             size_t, EvalScratch*,
                                             const std::vector<double>*,
                                             const std::vector<char>*,
                                             const util::Deadline*);

  /// Grows the accumulator to cover `num_documents` and resets any state a
  /// previous (possibly abandoned) query left behind.
  void Prepare(size_t num_documents);

  // TAAT state: contiguous accumulator + touched list.
  std::vector<double> scores_;
  std::vector<char> is_touched_;
  std::vector<corpus::DocId> touched_;
  // MaxScore state: per-term cursors (block buffers reused across queries),
  // the ub-sorted order with its bound prefix sums, and the per-candidate
  // contribution cache (probed in bound order, re-summed canonically).
  std::vector<TermCursor> cursors_;
  std::vector<size_t> ub_order_;
  std::vector<double> sorted_prefix_ub_;
  std::vector<double> contrib_;
  std::vector<uint32_t> essential_;
  std::vector<uint32_t> hits_;
  std::vector<uint32_t> moved_;
};

/// Collapses a bag of term ids to unique (term, qtf) pairs in ascending
/// term order. The sorted order fixes the floating-point accumulation order
/// of every evaluation path — monolithic or per-shard — so results are
/// bit-identical across engines (and independent of any hash-map iteration
/// order).
std::vector<QueryTerm> CollapseQuery(const std::vector<text::TermId>& terms);

/// The shared term-at-a-time evaluation core: accumulates `query` over
/// `index`'s posting lists into `scratch`, scoring with the collection-wide
/// `stats` and the per-term document frequencies `dfs` (parallel to
/// `query`; the monolithic engine passes the index's own df, a sharded
/// engine passes the GLOBAL df so every shard scores identically), then
/// extracts the top `k`. Result doc ids are local to `index`; sharded
/// callers offset them by their shard's range base before merging.
/// Exposing this lets SearchEngine and ShardedSearchEngine run literally
/// the same arithmetic, which is what the bit-parity suite locks down.
///
/// `exclude`, when given, is a per-document tombstone mask (parallel to
/// `index`'s local doc-id space; nonzero = excluded): masked documents
/// never enter the top-k. The live index evaluates sealed segments with
/// their delete bitmaps here; since scoring a document reads only its own
/// posting tf, its own length and the collection-wide stats/df, skipping
/// masked documents changes no surviving document's score bits — which is
/// what keeps the live engine bit-identical to a static build of the
/// surviving corpus.
///
/// `deadline`, when given, is polled once per decoded block. On expiry the
/// core abandons the query and returns an EMPTY list — a partial top-k is
/// never surfaced, so accepted (non-expired) queries stay bit-identical to
/// a run with no deadline at all. Callers that passed a deadline must
/// re-check Expired() afterward and map the abandonment to
/// kDeadlineExceeded (EvaluateWithOptions does).
std::vector<ScoredDoc> AccumulateTopK(const index::InvertedIndex& index,
                                      const CollectionStats& stats,
                                      const Scorer& scorer,
                                      const std::vector<QueryTerm>& query,
                                      const std::vector<uint32_t>& dfs,
                                      size_t k, EvalScratch* scratch,
                                      const std::vector<char>* exclude =
                                          nullptr,
                                      const util::Deadline* deadline =
                                          nullptr);

/// Exact per-term impact bounds: for each term, the maximum TermScore any
/// of its postings can produce at qtf = 1 (one full walk of the index).
/// Much tighter than the analytic Scorer::UpperBound (which must assume
/// the worst doc length AND the list-max tf on the same posting), so the
/// MaxScore partition turns more terms non-essential and abandons
/// candidates earlier. Engines precompute this once per (index, scorer)
/// when the MaxScore strategy is selected — the classic "max impact"
/// metadata of impact-ordered indexes. `global_dfs`, when given, replaces
/// each list's local document frequency (sharded engines score with global
/// df, so their bounds must too).
std::vector<double> ComputeTermImpactBounds(
    const index::InvertedIndex& index, const CollectionStats& stats,
    const Scorer& scorer, const std::vector<uint32_t>* global_dfs = nullptr);

/// Document-at-a-time MaxScore evaluation: same inputs, same outputs as
/// AccumulateTopK — BIT-identical, because every document that survives
/// pruning re-accumulates its cached per-term contributions in the
/// identical canonical term order (CollapseQuery), and pruning is provably
/// safe: per-term bounds dominate every posting's TermScore, bound sums
/// carry a 1e-9 relative inflation so no floating-point association
/// difference can prune a document within rounding distance of the
/// threshold, and a document is only dropped when its inflated bound is
/// STRICTLY below the current k-th score (a tie could still win on doc id,
/// so ties are never pruned). `term_bounds` is the ComputeTermImpactBounds
/// table (nullptr falls back to the analytic Scorer::UpperBound).
/// `exclude` is the tombstone mask of AccumulateTopK: a masked pivot is
/// never scored or offered (its cursors advance past it), and the bounds
/// stay valid — they dominate every posting, masked ones included.
/// `deadline` follows the AccumulateTopK contract (polled per pivot
/// iteration here — every iteration decodes at most a handful of blocks —
/// and an expired query returns empty, never partial).
std::vector<ScoredDoc> MaxScoreTopK(const index::InvertedIndex& index,
                                    const CollectionStats& stats,
                                    const Scorer& scorer,
                                    const std::vector<QueryTerm>& query,
                                    const std::vector<uint32_t>& dfs,
                                    size_t k, EvalScratch* scratch,
                                    const std::vector<double>* term_bounds =
                                        nullptr,
                                    const std::vector<char>* exclude =
                                        nullptr,
                                    const util::Deadline* deadline =
                                        nullptr);

/// Strategy dispatch over the two cores above.
std::vector<ScoredDoc> EvaluateTopK(EvalStrategy strategy,
                                    const index::InvertedIndex& index,
                                    const CollectionStats& stats,
                                    const Scorer& scorer,
                                    const std::vector<QueryTerm>& query,
                                    const std::vector<uint32_t>& dfs,
                                    size_t k, EvalScratch* scratch,
                                    const std::vector<double>* term_bounds =
                                        nullptr,
                                    const std::vector<char>* exclude =
                                        nullptr,
                                    const util::Deadline* deadline =
                                        nullptr);

/// One entry in the engine-side query log: the adversary's view. Queries
/// arrive as bags of term ids; the engine cannot tell user queries from
/// ghost queries (that is the point of TopPriv).
struct LoggedQuery {
  uint64_t sequence = 0;
  /// Cycle tag: queries submitted together share a tag. The paper's threat
  /// model lets the adversary group a cycle (they arrive back-to-back), so
  /// the log keeps the grouping explicit; adversary/log_segmentation.h
  /// additionally models an adversary who must RECOVER the grouping from
  /// arrival times alone.
  uint64_t cycle_id = 0;
  /// Arrival time in seconds (simulation clock; 0 when untimed).
  double timestamp = 0.0;
  std::vector<text::TermId> terms;
};

/// Append-only log of everything the engine processed.
class QueryLog {
 public:
  /// Takes the term vector by value and moves it into the entry: an lvalue
  /// caller pays exactly one copy (into the parameter), an rvalue caller
  /// none — the old const-ref signature forced a copy into a temporary
  /// LoggedQuery on every call.
  void Record(uint64_t cycle_id, std::vector<text::TermId> terms,
              double timestamp = 0.0) {
    log_.push_back(
        LoggedQuery{next_seq_++, cycle_id, timestamp, std::move(terms)});
  }
  /// Pre-grows the log for a known batch (a protection cycle, a workload
  /// replay) so bulk submission does not re-allocate per query.
  void Reserve(size_t additional) { log_.reserve(log_.size() + additional); }
  const std::vector<LoggedQuery>& entries() const { return log_; }
  size_t size() const { return log_.size(); }
  void Clear() {
    log_.clear();
    next_seq_ = 0;
  }

 private:
  std::vector<LoggedQuery> log_;
  uint64_t next_seq_ = 0;
};

/// Per-call knobs for the failure-aware evaluation entry point.
struct QueryOptions {
  /// Cooperative deadline/cancellation, polled at block-decode granularity
  /// inside the eval cores and across shard/segment fan-out. Null = none.
  /// The Deadline's cancel flag is shared across the whole fan-out, so one
  /// expiry observation stops every sibling shard.
  const util::Deadline* deadline = nullptr;
};

/// Abstract ranked-retrieval engine: what the privacy layer (TrustedClient,
/// SessionProtector) and the serving driver program against. Implemented by
/// the monolithic SearchEngine and by ShardedSearchEngine; the sharding
/// test suite proves the two are interchangeable bit for bit, so every
/// layer above can swap one for the other freely.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Processes a query (bag of term ids), returning the top-k documents.
  /// Every call is recorded in the query log under `cycle_id`.
  virtual std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                        size_t k, uint64_t cycle_id = 0) = 0;

  /// Evaluation without logging (used internally and by tests that compare
  /// against the logged path). Uses thread-local scratch space, so
  /// concurrent callers (the serving driver's sessions) are safe.
  virtual std::vector<ScoredDoc> Evaluate(
      const std::vector<text::TermId>& terms, size_t k) const = 0;

  /// Deadline-aware evaluation. An accepted query returns results
  /// BIT-identical to Evaluate (the deadline machinery never perturbs
  /// surviving arithmetic); an expired or cancelled one returns
  /// kDeadlineExceeded and its partial work is discarded, never surfaced.
  /// The base implementation brackets Evaluate with expiry checks (coarse:
  /// a stuck engine still runs to completion); the real engines override
  /// it to poll inside the eval cores and across the shard fan-out, so a
  /// wedged shard costs at most one block decode past the deadline.
  virtual util::StatusOr<std::vector<ScoredDoc>> EvaluateWithOptions(
      const std::vector<text::TermId>& terms, size_t k,
      const QueryOptions& options) const;

  virtual const QueryLog& query_log() const = 0;
  virtual QueryLog& mutable_query_log() = 0;

  /// The corpus being searched (clients analyze raw text against its
  /// vocabulary).
  virtual const corpus::Corpus& corpus() const = 0;

  /// Scorer in use (for logs and benches).
  virtual const Scorer& scorer() const = 0;

  /// Evaluation strategy in use (for logs and benches).
  virtual EvalStrategy eval_strategy() const = 0;
};

/// Similarity search engine over a monolithic inverted index.
///
/// The engine is deliberately unmodified by the privacy layer: TopPriv's
/// design constraint is that it works against existing engines (unlike the
/// PDX baseline, which requires a homomorphic scoring protocol).
class SearchEngine : public QueryEngine {
 public:
  /// The engine borrows the corpus and index; both must outlive it.
  SearchEngine(const corpus::Corpus& corpus, const index::InvertedIndex& index,
               std::unique_ptr<Scorer> scorer,
               EvalStrategy strategy = EvalStrategy::kTAAT);

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  std::vector<ScoredDoc> Search(const std::vector<text::TermId>& terms,
                                size_t k, uint64_t cycle_id = 0) override;

  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k) const override
      EXCLUDES(strategy_mu_);

  /// Same, accumulating into the caller's scratch (identical results).
  std::vector<ScoredDoc> Evaluate(const std::vector<text::TermId>& terms,
                                  size_t k, EvalScratch* scratch) const
      EXCLUDES(strategy_mu_);

  /// Deadline threaded into the eval core (block-decode granularity).
  util::StatusOr<std::vector<ScoredDoc>> EvaluateWithOptions(
      const std::vector<text::TermId>& terms, size_t k,
      const QueryOptions& options) const override EXCLUDES(strategy_mu_);

  const QueryLog& query_log() const override { return log_; }
  QueryLog& mutable_query_log() override { return log_; }

  const corpus::Corpus& corpus() const override { return corpus_; }
  const index::InvertedIndex& index() const { return index_; }
  const Scorer& scorer() const override { return *scorer_; }

  EvalStrategy eval_strategy() const override EXCLUDES(strategy_mu_) {
    util::MutexLock lock(&strategy_mu_);
    return strategy_;
  }
  /// Strategies are interchangeable between queries (results are
  /// bit-identical by the parity contract). Selecting MaxScore (here or
  /// at construction) builds the per-term impact-bound table on first
  /// selection. Thread-safe: the strategy and its bound table live behind
  /// strategy_mu_, exactly like ShardedSearchEngine's (this engine kept
  /// the pre-PR-7 caller-beware contract until now — the last unguarded
  /// strategy flip in the tree). In-flight Evaluate calls finish under the
  /// strategy they started with.
  void set_eval_strategy(EvalStrategy strategy) EXCLUDES(strategy_mu_);

 private:
  const corpus::Corpus& corpus_;
  const index::InvertedIndex& index_;
  std::unique_ptr<Scorer> scorer_;
  CollectionStats stats_;
  /// Guards the evaluation-strategy switch (the one mutable knob shared
  /// with concurrent Evaluate callers). Held only for enum/pointer reads
  /// and the one-time bound-table build — never across evaluation.
  mutable util::Mutex strategy_mu_;
  EvalStrategy strategy_ GUARDED_BY(strategy_mu_) = EvalStrategy::kTAAT;
  /// ComputeTermImpactBounds table; non-null iff MaxScore was ever
  /// selected. The pointee is immutable — Evaluate snapshots the
  /// shared_ptr under strategy_mu_ and reads it lock-free.
  std::shared_ptr<const std::vector<double>> term_bounds_
      GUARDED_BY(strategy_mu_);
  QueryLog log_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_ENGINE_H_
