// Query-log anonymization (paper Section III: protecting user *identity* is
// orthogonal to TopPriv and "may be achieved through query log
// anonymization [Adar, WWW'07]"). This module provides that orthogonal
// layer so a deployment can publish or retain logs: user ids are replaced
// by keyed pseudonyms, and query terms can be hashed ("User 4xxxxx9"-style
// token masking) or dropped by rarity (rare terms are quasi-identifiers).
#ifndef TOPPRIV_SEARCH_LOG_ANONYMIZER_H_
#define TOPPRIV_SEARCH_LOG_ANONYMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "search/engine.h"
#include "text/vocabulary.h"

namespace toppriv::search {

/// One published log record.
struct AnonymizedQuery {
  /// Keyed pseudonym of the originating user.
  uint64_t pseudonym = 0;
  /// Cycle grouping is erased (sequence randomized bucketing is the
  /// caller's concern); only a coarse time bucket survives.
  uint64_t time_bucket = 0;
  /// Term tokens: either hashed ids or the surface string "\#<hash>" for
  /// masked terms, depending on policy.
  std::vector<uint64_t> hashed_terms;
};

/// Anonymization policy.
struct AnonymizerPolicy {
  /// Secret key for pseudonyms and term hashing (keyed FNV).
  uint64_t key = 0x5eed5;
  /// Terms occurring in fewer than this many documents are DROPPED rather
  /// than hashed — rare terms re-identify users even when hashed (the AOL
  /// lesson the paper opens with).
  uint32_t min_doc_freq_to_keep = 3;
  /// Width of the retained time bucket in seconds (coarsening).
  double time_bucket_seconds = 3600.0;
};

/// Stateless anonymizer over engine logs.
class LogAnonymizer {
 public:
  /// Borrows the vocabulary for document-frequency lookups.
  LogAnonymizer(const text::Vocabulary& vocab, AnonymizerPolicy policy)
      : vocab_(vocab), policy_(policy) {}

  /// Anonymizes one user's log entries under the policy.
  std::vector<AnonymizedQuery> Anonymize(
      uint64_t user_id, const std::vector<LoggedQuery>& entries) const;

  /// Keyed pseudonym for a user id (deterministic under one key).
  uint64_t Pseudonym(uint64_t user_id) const;

  /// Keyed hash of a term id.
  uint64_t HashTerm(text::TermId term) const;

  const AnonymizerPolicy& policy() const { return policy_; }

 private:
  const text::Vocabulary& vocab_;
  AnonymizerPolicy policy_;
};

}  // namespace toppriv::search

#endif  // TOPPRIV_SEARCH_LOG_ANONYMIZER_H_
