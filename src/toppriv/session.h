// Session-hardened TopPriv client (an extension beyond the paper).
//
// The paper protects each query cycle independently. A user who queries the
// SAME topic repeatedly, however, leaks through a cross-cycle intersection
// attack (adversary/intersection.h): her genuine topics recur in every
// cycle while the randomly-drawn masking topics churn, so intersecting the
// per-cycle top topics isolates the intention as the number of cycles
// grows. The defense here keeps a persistent per-user "cover story": the
// first cycle's masking topics are remembered and reused preferentially in
// later cycles, so the intersection converges to U ∪ cover-story instead of
// U alone, preserving the single-cycle (epsilon1, epsilon2) guarantee.
#ifndef TOPPRIV_TOPPRIV_SESSION_H_
#define TOPPRIV_TOPPRIV_SESSION_H_

#include <map>
#include <set>
#include <vector>

#include "toppriv/ghost_generator.h"

namespace toppriv::core {

/// Session policy knobs.
struct SessionOptions {
  /// Base generator options (ablation switches etc.).
  GeneratorOptions generator;
  /// Maximum cover-story size; once reached, new masking topics are only
  /// adopted when the existing ones are unusable for a query (e.g. they
  /// fall inside its intention).
  size_t max_cover_topics = 12;
};

/// Stateful wrapper that maintains the cover story across Protect calls.
/// Owns one long-lived GhostQueryGenerator: the generator's word-sampling
/// CDFs are precomputed at construction (O(T*V)), which a fresh generator
/// per cycle would pay on every query.
class SessionProtector {
 public:
  /// Borrows the model and inferencer (must outlive the protector).
  SessionProtector(const topicmodel::LdaModel& model,
                   const topicmodel::LdaInferencer& inferencer,
                   PrivacySpec spec, SessionOptions options = {});

  // Self-referential (generator_ points at ghosts_): not copyable/movable.
  SessionProtector(const SessionProtector&) = delete;
  SessionProtector& operator=(const SessionProtector&) = delete;

  /// Protects one query, reusing the session's cover-story topics where
  /// possible and absorbing any newly used masking topics into it.
  QueryCycle Protect(const std::vector<text::TermId>& user_query,
                     util::Rng* rng);

  /// Degraded-mode Protect: the ghost CACHE-REFRESH work is shed — the
  /// cycle reuses the frozen cover story and the memoized per-topic ghost
  /// queries verbatim, and newly used masking topics are NOT absorbed.
  /// Ghost EMISSION is untouched: the cycle still carries its full
  /// complement of decoys, because shedding one would silently void the
  /// (epsilon1, epsilon2) contract. This is what the serving layer's
  /// admission controller calls near saturation — freshness degrades
  /// before protection ever does.
  QueryCycle ProtectShedRefresh(const std::vector<text::TermId>& user_query,
                                util::Rng* rng);

  /// Current cover story (sorted).
  std::vector<topicmodel::TopicId> cover_story() const {
    return {cover_.begin(), cover_.end()};
  }

  const PrivacySpec& spec() const { return spec_; }

 private:
  QueryCycle ProtectImpl(const std::vector<text::TermId>& user_query,
                         util::Rng* rng, bool refresh_cover);

  PrivacySpec spec_;
  SessionOptions options_;
  std::set<topicmodel::TopicId> cover_;
  /// Per-topic memoized ghost queries (the textual cover story). Declared
  /// before generator_, whose options point at it.
  std::map<topicmodel::TopicId, std::vector<text::TermId>> ghosts_;
  GhostQueryGenerator generator_;
};

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_SESSION_H_
