// The trusted client module (paper Fig. 1, steps 1-2 and 4-5): formulates
// the cycle, submits it to the unmodified search engine, and filters out the
// ghost results so the user sees exactly the genuine query's results.
#ifndef TOPPRIV_TOPPRIV_CLIENT_H_
#define TOPPRIV_TOPPRIV_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "search/engine.h"
#include "text/analyzer.h"
#include "toppriv/ghost_generator.h"
#include "util/rng.h"

namespace toppriv::core {

/// Result of a protected search.
struct ProtectedSearchResult {
  /// Top-k results of the *genuine* query only (ghost results discarded).
  std::vector<search::ScoredDoc> results;
  /// The full cycle that was submitted (diagnostics; a real client would
  /// not surface this).
  QueryCycle cycle;
  /// Cycle id under which the engine logged the queries.
  uint64_t cycle_id = 0;
};

/// Client-side privacy proxy in front of a query engine (monolithic or
/// sharded — the client is agnostic, as the paper's design demands: the
/// server side stays unmodified whatever its internal architecture).
class TrustedClient {
 public:
  /// Borrows everything; all referents must outlive the client.
  TrustedClient(search::QueryEngine* engine, GhostQueryGenerator* generator,
                util::Rng rng)
      : engine_(engine), generator_(generator), rng_(rng) {}

  /// Protects and executes a query given as term ids.
  ProtectedSearchResult Search(const std::vector<text::TermId>& user_query,
                               size_t k);

  /// Convenience: analyzes raw text against the engine's vocabulary first.
  ProtectedSearchResult SearchText(const std::string& raw_query, size_t k,
                                   const text::Analyzer& analyzer);

  /// Executes the same query WITHOUT protection (baseline for the
  /// result-fidelity check; also logs to the engine).
  std::vector<search::ScoredDoc> UnprotectedSearch(
      const std::vector<text::TermId>& user_query, size_t k);

 private:
  search::QueryEngine* engine_;
  GhostQueryGenerator* generator_;
  util::Rng rng_;
  uint64_t next_cycle_id_ = 1;
};

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_CLIENT_H_
