#include "toppriv/session.h"

#include "util/trace.h"

namespace toppriv::core {

namespace {

GeneratorOptions WithSessionCache(
    GeneratorOptions options,
    std::map<topicmodel::TopicId, std::vector<text::TermId>>* cache) {
  options.ghost_cache = cache;
  return options;
}

}  // namespace

SessionProtector::SessionProtector(const topicmodel::LdaModel& model,
                                   const topicmodel::LdaInferencer& inferencer,
                                   PrivacySpec spec, SessionOptions options)
    : spec_(spec),
      options_(std::move(options)),
      generator_(model, inferencer, spec,
                 WithSessionCache(options_.generator, &ghosts_)) {}

QueryCycle SessionProtector::Protect(
    const std::vector<text::TermId>& user_query, util::Rng* rng) {
  return ProtectImpl(user_query, rng, /*refresh_cover=*/true);
}

QueryCycle SessionProtector::ProtectShedRefresh(
    const std::vector<text::TermId>& user_query, util::Rng* rng) {
  return ProtectImpl(user_query, rng, /*refresh_cover=*/false);
}

QueryCycle SessionProtector::ProtectImpl(
    const std::vector<text::TermId>& user_query, util::Rng* rng,
    bool refresh_cover) {
  TOPPRIV_TRACE_SPAN(protect_span, "toppriv.protect");
  generator_.set_preferred_masking_topics({cover_.begin(), cover_.end()});
  QueryCycle cycle = generator_.Protect(user_query, rng);

  // Absorb newly used masking topics into the cover story (bounded).
  // Skipped in degraded mode: the cover story freezes (stale but intact)
  // while the generator above still emitted every ghost — maintenance is
  // shed, protection is not.
  if (refresh_cover) {
    for (topicmodel::TopicId t : cycle.masking_topics) {
      if (cover_.size() >= options_.max_cover_topics && !cover_.count(t)) {
        continue;
      }
      cover_.insert(t);
    }
  }
  return cycle;
}

}  // namespace toppriv::core
