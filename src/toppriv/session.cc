#include "toppriv/session.h"

namespace toppriv::core {

namespace {

GeneratorOptions WithSessionCache(
    GeneratorOptions options,
    std::map<topicmodel::TopicId, std::vector<text::TermId>>* cache) {
  options.ghost_cache = cache;
  return options;
}

}  // namespace

SessionProtector::SessionProtector(const topicmodel::LdaModel& model,
                                   const topicmodel::LdaInferencer& inferencer,
                                   PrivacySpec spec, SessionOptions options)
    : spec_(spec),
      options_(std::move(options)),
      generator_(model, inferencer, spec,
                 WithSessionCache(options_.generator, &ghosts_)) {}

QueryCycle SessionProtector::Protect(
    const std::vector<text::TermId>& user_query, util::Rng* rng) {
  generator_.set_preferred_masking_topics({cover_.begin(), cover_.end()});
  QueryCycle cycle = generator_.Protect(user_query, rng);

  // Absorb newly used masking topics into the cover story (bounded).
  for (topicmodel::TopicId t : cycle.masking_topics) {
    if (cover_.size() >= options_.max_cover_topics && !cover_.count(t)) {
      continue;
    }
    cover_.insert(t);
  }
  return cycle;
}

}  // namespace toppriv::core
