#include "toppriv/session.h"

namespace toppriv::core {

SessionProtector::SessionProtector(const topicmodel::LdaModel& model,
                                   const topicmodel::LdaInferencer& inferencer,
                                   PrivacySpec spec, SessionOptions options)
    : model_(model),
      inferencer_(inferencer),
      spec_(spec),
      options_(options) {}

QueryCycle SessionProtector::Protect(
    const std::vector<text::TermId>& user_query, util::Rng* rng) {
  GeneratorOptions generator_options = options_.generator;
  generator_options.preferred_masking_topics = {cover_.begin(), cover_.end()};
  generator_options.ghost_cache = &ghosts_;

  // A fresh generator per call is cheap relative to inference, and keeps
  // the per-cycle algorithm identical to the paper's.
  GhostQueryGenerator generator(model_, inferencer_, spec_,
                                generator_options);
  QueryCycle cycle = generator.Protect(user_query, rng);

  // Absorb newly used masking topics into the cover story (bounded).
  for (topicmodel::TopicId t : cycle.masking_topics) {
    if (cover_.size() >= options_.max_cover_topics && !cover_.count(t)) {
      continue;
    }
    cover_.insert(t);
  }
  return cycle;
}

}  // namespace toppriv::core
