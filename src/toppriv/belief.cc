#include "toppriv/belief.h"

#include <algorithm>

#include "util/check.h"

namespace toppriv::core {

BeliefProfile MakeBeliefProfile(const topicmodel::LdaModel& model,
                                std::vector<double> posterior) {
  const std::vector<double>& prior = model.prior();
  TOPPRIV_CHECK_EQ(posterior.size(), prior.size());
  BeliefProfile profile;
  profile.boost.resize(posterior.size());
  for (size_t t = 0; t < posterior.size(); ++t) {
    profile.boost[t] = posterior[t] - prior[t];
  }
  profile.posterior = std::move(posterior);
  return profile;
}

std::vector<topicmodel::TopicId> ExtractIntention(const BeliefProfile& profile,
                                                  double epsilon1) {
  std::vector<topicmodel::TopicId> intention;
  for (size_t t = 0; t < profile.boost.size(); ++t) {
    if (profile.boost[t] > epsilon1) {
      intention.push_back(static_cast<topicmodel::TopicId>(t));
    }
  }
  return intention;
}

double Exposure(const std::vector<double>& boost,
                const std::vector<topicmodel::TopicId>& intention) {
  double worst = 0.0;
  bool first = true;
  for (topicmodel::TopicId t : intention) {
    TOPPRIV_CHECK_LT(t, boost.size());
    if (first || boost[t] > worst) {
      worst = boost[t];
      first = false;
    }
  }
  return intention.empty() ? 0.0 : worst;
}

double MaskLevel(const std::vector<double>& boost,
                 const std::vector<topicmodel::TopicId>& intention) {
  std::vector<bool> in_u(boost.size(), false);
  for (topicmodel::TopicId t : intention) in_u[t] = true;
  double best = 0.0;
  bool first = true;
  for (size_t t = 0; t < boost.size(); ++t) {
    if (in_u[t]) continue;
    if (first || boost[t] > best) {
      best = boost[t];
      first = false;
    }
  }
  return first ? 0.0 : best;
}

size_t BestRankOfIntention(const std::vector<double>& boost,
                           const std::vector<topicmodel::TopicId>& intention) {
  if (intention.empty()) return 0;
  // The best rank of an intention topic = 1 + number of topics with strictly
  // greater boost than the best intention topic.
  double best_intention_boost = boost[intention.front()];
  for (topicmodel::TopicId t : intention) {
    best_intention_boost = std::max(best_intention_boost, boost[t]);
  }
  size_t rank = 1;
  for (double b : boost) {
    if (b > best_intention_boost) ++rank;
  }
  return rank;
}

}  // namespace toppriv::core
