#include "toppriv/ghost_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "toppriv/belief.h"
#include "util/check.h"
#include "util/timer.h"

namespace toppriv::core {

namespace {

// Exposure of intention U under the Eq. 2 mixture of `posteriors`.
double CycleExposure(const std::vector<std::vector<double>>& posteriors,
                     const topicmodel::LdaModel& model,
                     const std::vector<topicmodel::TopicId>& intention) {
  std::vector<double> mix =
      topicmodel::LdaInferencer::CyclePosterior(posteriors);
  const std::vector<double>& prior = model.prior();
  double worst = 0.0;
  bool first = true;
  for (topicmodel::TopicId t : intention) {
    double boost = mix[t] - prior[t];
    if (first || boost > worst) {
      worst = boost;
      first = false;
    }
  }
  return intention.empty() ? 0.0 : worst;
}

}  // namespace

GhostQueryGenerator::GhostQueryGenerator(
    const topicmodel::LdaModel& model,
    const topicmodel::LdaInferencer& inferencer, PrivacySpec spec,
    GeneratorOptions options)
    : model_(model),
      inferencer_(inferencer),
      spec_(spec),
      options_(options),
      topic_cdfs_(model.num_topics()) {
  TOPPRIV_CHECK(spec_.Validate().ok());
}

const std::vector<double>& GhostQueryGenerator::TopicCdf(
    topicmodel::TopicId topic) {
  TOPPRIV_CHECK_LT(topic, topic_cdfs_.size());
  std::vector<double>& cdf = topic_cdfs_[topic];
  if (cdf.empty()) {
    util::Span<const float> row = model_.PhiRow(topic);
    cdf.reserve(row.size());
    double acc = 0.0;
    for (float p : row) {
      acc += static_cast<double>(p);
      cdf.push_back(acc);
    }
  }
  return cdf;
}

std::vector<text::TermId> GhostQueryGenerator::SampleGhostTerms(
    topicmodel::TopicId topic, size_t length, util::Rng* rng) {
  if (options_.ghost_cache != nullptr) {
    auto it = options_.ghost_cache->find(topic);
    if (it != options_.ghost_cache->end()) return it->second;
  }
  const size_t vocab_size = model_.vocab_size();
  length = std::min(length, vocab_size);

  const std::vector<double>* cdf;
  if (options_.coherent_ghosts) {
    cdf = &TopicCdf(topic);
  } else {
    // Ablation: uniform over the vocabulary (TrackMeNot-style random words).
    if (uniform_cdf_.empty()) {
      uniform_cdf_.reserve(vocab_size);
      for (size_t w = 0; w < vocab_size; ++w) {
        uniform_cdf_.push_back(static_cast<double>(w + 1));
      }
    }
    cdf = &uniform_cdf_;
  }

  std::unordered_set<text::TermId> used;
  std::vector<text::TermId> terms;
  terms.reserve(length);
  size_t attempts = 0;
  const size_t max_attempts = 60 * length + 200;
  while (terms.size() < length && attempts < max_attempts) {
    ++attempts;
    text::TermId w = static_cast<text::TermId>(rng->DiscreteFromCdf(*cdf));
    if (used.insert(w).second) terms.push_back(w);
  }
  if (options_.ghost_cache != nullptr && !terms.empty()) {
    (*options_.ghost_cache)[topic] = terms;
  }
  return terms;
}

QueryCycle GhostQueryGenerator::Protect(
    const std::vector<text::TermId>& user_query, util::Rng* rng) {
  util::WallTimer timer;
  const size_t num_topics = model_.num_topics();

  QueryCycle cycle;

  // Step 1: infer Pr(t|qu), extract U.
  BeliefProfile user_profile =
      MakeBeliefProfile(model_, inferencer_.InferQuery(user_query));
  cycle.intention = ExtractIntention(user_profile, spec_.epsilon1);
  cycle.user_boost = user_profile.boost;
  cycle.exposure_before = Exposure(user_profile.boost, cycle.intention);

  // Step 2: C = {qu}; Tm = X = empty.
  std::vector<std::vector<text::TermId>> queries = {user_query};
  std::vector<std::vector<double>> posteriors = {
      std::move(user_profile.posterior)};
  std::vector<bool> in_u(num_topics, false);
  for (topicmodel::TopicId t : cycle.intention) in_u[t] = true;
  std::vector<bool> in_tm(num_topics, false);
  std::vector<bool> in_x(num_topics, false);

  const bool has_preference = !options_.preferred_masking_topics.empty();

  // Returns the usable masking-topic candidates. When a session cover story
  // is configured, its topics come first IN PREFERENCE ORDER and
  // `use_in_order` is set: the caller must then take the front candidate
  // rather than a random one, so that consecutive cycles exercise the same
  // cover topics (otherwise short cycles would sample random cover subsets
  // and the cover would churn, defeating its purpose).
  auto candidate_topics = [&](bool* use_in_order) {
    std::vector<topicmodel::TopicId> out;
    *use_in_order = false;
    if (has_preference) {
      for (topicmodel::TopicId t : options_.preferred_masking_topics) {
        if (t < num_topics && !in_u[t] && !in_tm[t] && !in_x[t]) {
          out.push_back(t);
        }
      }
      if (!out.empty()) {
        *use_in_order = true;
        return out;
      }
    }
    for (size_t t = 0; t < num_topics; ++t) {
      if (!in_u[t] && !in_tm[t] && !in_x[t]) {
        out.push_back(static_cast<topicmodel::TopicId>(t));
      }
    }
    return out;
  };

  const bool fixed_mode = spec_.fixed_ghost_count > 0;
  // Set once fixed mode exhausts all candidate topics: from then on ghosts
  // are accepted unconditionally so the requested count is always reached.
  bool relax_rejection = false;
  double current_exposure = CycleExposure(posteriors, model_, cycle.intention);

  // Step 3: add ghosts until the intention is suppressed below epsilon2
  // (or, in fixed mode, until the requested count is reached).
  for (;;) {
    if (fixed_mode) {
      if (queries.size() - 1 >= spec_.fixed_ghost_count) break;
    } else {
      if (current_exposure <= spec_.epsilon2) break;
    }

    bool use_in_order = false;
    std::vector<topicmodel::TopicId> candidates = candidate_topics(&use_in_order);
    if (candidates.empty()) {
      if (fixed_mode) {
        // Reset X so the fixed count can always be met (the stopping rule
        // here is the count, not the exposure test), and stop rejecting —
        // otherwise the same topics would be rejected forever.
        relax_rejection = true;
        for (size_t t = 0; t < num_topics; ++t) in_x[t] = false;
        candidates = candidate_topics(&use_in_order);
        if (candidates.empty()) {
          // Every topic is in U or already used for a ghost; reuse allowed.
          for (size_t t = 0; t < num_topics; ++t) in_tm[t] = false;
          candidates = candidate_topics(&use_in_order);
        }
        if (candidates.empty()) break;
      } else {
        break;  // all masking topics exhausted (paper: exit the repeat loop)
      }
    }

    // Step 3a: ghost length as a random multiple of |qu|.
    size_t length;
    if (options_.fixed_ghost_length > 0) {
      length = options_.fixed_ghost_length;
    } else {
      double mult =
          rng->Uniform(spec_.min_length_mult, spec_.max_length_mult);
      length = static_cast<size_t>(
          std::lround(mult * static_cast<double>(user_query.size())));
    }
    if (length == 0) length = 1;

    // Step 3b: random masking topic, coherent ghost words.
    topicmodel::TopicId tm =
        use_in_order ? candidates.front()
                     : candidates[rng->UniformInt(candidates.size())];
    std::vector<text::TermId> ghost = SampleGhostTerms(tm, length, rng);
    if (ghost.empty()) {
      in_x[tm] = true;
      cycle.rejected_topics.push_back(tm);
      continue;
    }

    // Step 3c: accept only if the ghost reduces the intention's exposure.
    std::vector<double> ghost_posterior = inferencer_.InferQuery(ghost);
    posteriors.push_back(std::move(ghost_posterior));
    double new_exposure = CycleExposure(posteriors, model_, cycle.intention);
    bool effective = new_exposure < current_exposure || cycle.intention.empty();
    if (options_.use_rejection_test && !effective && !relax_rejection) {
      posteriors.pop_back();
      in_x[tm] = true;
      cycle.rejected_topics.push_back(tm);
      continue;
    }

    // Step 3d: accept.
    in_tm[tm] = true;
    cycle.masking_topics.push_back(tm);
    queries.push_back(std::move(ghost));
    current_exposure = new_exposure;
  }

  // Final cycle-level belief profile.
  std::vector<double> mix = topicmodel::LdaInferencer::CyclePosterior(posteriors);
  BeliefProfile cycle_profile = MakeBeliefProfile(model_, std::move(mix));
  cycle.cycle_boost = cycle_profile.boost;
  cycle.exposure_after = Exposure(cycle_profile.boost, cycle.intention);
  cycle.mask_level = MaskLevel(cycle_profile.boost, cycle.intention);
  cycle.met_epsilon2 = cycle.exposure_after <= spec_.epsilon2;

  // Step 4: shuffle, remembering where the user query landed.
  std::vector<size_t> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  cycle.queries.resize(queries.size());
  for (size_t i = 0; i < order.size(); ++i) {
    cycle.queries[i] = std::move(queries[order[i]]);
    if (order[i] == 0) cycle.user_index = i;
  }

  cycle.generation_seconds = timer.ElapsedSeconds();
  return cycle;
}

}  // namespace toppriv::core
