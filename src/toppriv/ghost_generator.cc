#include "toppriv/ghost_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "toppriv/belief.h"
#include "util/check.h"
#include "util/timer.h"

namespace toppriv::core {

namespace {

// Exposure of intention U under the Eq. 2 mixture whose per-topic posterior
// sums are `sum` (over `count` queries), optionally with one more candidate
// posterior appended. This is the running-sum form of CyclePosterior: the
// mixture for topic t is (sum[t] [+ candidate[t]]) / count, accumulated in
// the same order as a from-scratch recomputation, so accept/reject
// decisions are bit-identical to the O(v*T) version this replaces.
double MixtureExposure(const std::vector<double>& sum,
                       const std::vector<double>* candidate, size_t count,
                       const topicmodel::LdaModel& model,
                       const std::vector<topicmodel::TopicId>& intention) {
  if (intention.empty()) return 0.0;
  const std::vector<double>& prior = model.prior();
  const double inv = 1.0 / static_cast<double>(count);
  double worst = 0.0;
  bool first = true;
  for (topicmodel::TopicId t : intention) {
    double mixed = candidate == nullptr ? sum[t] : sum[t] + (*candidate)[t];
    double boost = mixed * inv - prior[t];
    if (first || boost > worst) {
      worst = boost;
      first = false;
    }
  }
  return worst;
}

}  // namespace

TopicCdfTable::TopicCdfTable(const topicmodel::LdaModel& model) {
  cdfs_.resize(model.num_topics());
  for (size_t topic = 0; topic < cdfs_.size(); ++topic) {
    util::Span<const float> row =
        model.PhiRow(static_cast<topicmodel::TopicId>(topic));
    std::vector<double>& cdf = cdfs_[topic];
    cdf.reserve(row.size());
    double acc = 0.0;
    for (float p : row) {
      acc += static_cast<double>(p);
      cdf.push_back(acc);
    }
  }
}

GhostQueryGenerator::GhostQueryGenerator(
    const topicmodel::LdaModel& model,
    const topicmodel::LdaInferencer& inferencer, PrivacySpec spec,
    GeneratorOptions options)
    : model_(model),
      inferencer_(inferencer),
      spec_(spec),
      options_(std::move(options)) {
  TOPPRIV_CHECK(spec_.Validate().ok());
  // Precompute the sampling CDFs once, eagerly: the previous lazy fill-in
  // under SampleGhostTerms was a data race the moment two threads shared a
  // generator, and cost nothing to hoist here.
  if (options_.coherent_ghosts) {
    if (options_.shared_topic_cdfs != nullptr) {
      TOPPRIV_CHECK_EQ(options_.shared_topic_cdfs->num_topics(),
                       model_.num_topics());
    } else {
      owned_topic_cdfs_ = std::make_unique<TopicCdfTable>(model_);
    }
  } else {
    // Ablation: uniform over the vocabulary (TrackMeNot-style random words).
    const size_t vocab_size = model_.vocab_size();
    uniform_cdf_.reserve(vocab_size);
    for (size_t w = 0; w < vocab_size; ++w) {
      uniform_cdf_.push_back(static_cast<double>(w + 1));
    }
  }
}

const std::vector<double>& GhostQueryGenerator::TopicCdf(
    topicmodel::TopicId topic) const {
  const TopicCdfTable* table = options_.shared_topic_cdfs != nullptr
                                   ? options_.shared_topic_cdfs
                                   : owned_topic_cdfs_.get();
  TOPPRIV_CHECK(table != nullptr);
  TOPPRIV_CHECK_LT(topic, table->num_topics());
  return table->row(topic);
}

std::vector<text::TermId> GhostQueryGenerator::SampleGhostTerms(
    topicmodel::TopicId topic, size_t length, util::Rng* rng) {
  const size_t vocab_size = model_.vocab_size();
  length = std::min(length, vocab_size);

  std::vector<text::TermId>* cached = nullptr;
  std::unordered_set<text::TermId> used;
  std::vector<text::TermId> terms;
  if (options_.ghost_cache != nullptr) {
    cached = &(*options_.ghost_cache)[topic];
    if (cached->size() >= length) {
      // Reuse the memoized ghost but honor the requested length: replaying
      // a wrong-length ghost verbatim would both mismatch |qg| ~ |qu| and
      // hand the adversary a deterministic marker (Section IV-D's defense
      // is the randomized choice).
      return std::vector<text::TermId>(cached->begin(),
                                       cached->begin() + length);
    }
    // Longer request: extend the memoized ghost, keeping it as a prefix so
    // the cover story stays consistent across cycles.
    terms = *cached;
    used.insert(terms.begin(), terms.end());
  }

  const std::vector<double>& cdf =
      options_.coherent_ghosts ? TopicCdf(topic) : uniform_cdf_;

  terms.reserve(length);
  size_t attempts = 0;
  const size_t max_attempts = 60 * length + 200;
  while (terms.size() < length && attempts < max_attempts) {
    ++attempts;
    text::TermId w = static_cast<text::TermId>(rng->DiscreteFromCdf(cdf));
    if (used.insert(w).second) terms.push_back(w);
  }
  if (cached != nullptr && terms.size() > cached->size()) {
    *cached = terms;
  }
  return terms;
}

QueryCycle GhostQueryGenerator::Protect(
    const std::vector<text::TermId>& user_query, util::Rng* rng) {
  util::WallTimer timer;
  const size_t num_topics = model_.num_topics();

  QueryCycle cycle;

  // Step 1: infer Pr(t|qu), extract U.
  BeliefProfile user_profile = MakeBeliefProfile(
      model_, inferencer_.InferQuery(user_query, &workspace_));
  cycle.intention = ExtractIntention(user_profile, spec_.epsilon1);
  cycle.user_boost = user_profile.boost;
  cycle.exposure_before = Exposure(user_profile.boost, cycle.intention);

  // Step 2: C = {qu}; Tm = X = empty. The cycle's Eq. 2 state is the
  // running per-topic posterior sum over the accepted queries.
  std::vector<std::vector<text::TermId>> queries = {user_query};
  std::vector<double> posterior_sum = std::move(user_profile.posterior);
  size_t cycle_queries = 1;
  std::vector<bool> in_u(num_topics, false);
  for (topicmodel::TopicId t : cycle.intention) in_u[t] = true;
  std::vector<bool> in_tm(num_topics, false);
  std::vector<bool> in_x(num_topics, false);

  const bool has_preference = !options_.preferred_masking_topics.empty();

  // Returns the usable masking-topic candidates. When a session cover story
  // is configured, its topics come first IN PREFERENCE ORDER and
  // `use_in_order` is set: the caller must then take the front candidate
  // rather than a random one, so that consecutive cycles exercise the same
  // cover topics (otherwise short cycles would sample random cover subsets
  // and the cover would churn, defeating its purpose).
  auto candidate_topics = [&](bool* use_in_order) {
    std::vector<topicmodel::TopicId> out;
    *use_in_order = false;
    if (has_preference) {
      for (topicmodel::TopicId t : options_.preferred_masking_topics) {
        if (t < num_topics && !in_u[t] && !in_tm[t] && !in_x[t]) {
          out.push_back(t);
        }
      }
      if (!out.empty()) {
        *use_in_order = true;
        return out;
      }
    }
    for (size_t t = 0; t < num_topics; ++t) {
      if (!in_u[t] && !in_tm[t] && !in_x[t]) {
        out.push_back(static_cast<topicmodel::TopicId>(t));
      }
    }
    return out;
  };

  const bool fixed_mode = spec_.fixed_ghost_count > 0;
  // Set once fixed mode exhausts all candidate topics: from then on ghosts
  // are accepted unconditionally so the requested count is always reached.
  bool relax_rejection = false;
  double current_exposure = MixtureExposure(posterior_sum, nullptr,
                                            cycle_queries, model_,
                                            cycle.intention);

  // Step 3: add ghosts until the intention is suppressed below epsilon2
  // (or, in fixed mode, until the requested count is reached).
  for (;;) {
    if (fixed_mode) {
      if (queries.size() - 1 >= spec_.fixed_ghost_count) break;
    } else {
      if (current_exposure <= spec_.epsilon2) break;
    }

    bool use_in_order = false;
    std::vector<topicmodel::TopicId> candidates = candidate_topics(&use_in_order);
    if (candidates.empty()) {
      if (fixed_mode) {
        // Reset X so the fixed count can always be met (the stopping rule
        // here is the count, not the exposure test), and stop rejecting —
        // otherwise the same topics would be rejected forever.
        relax_rejection = true;
        for (size_t t = 0; t < num_topics; ++t) in_x[t] = false;
        candidates = candidate_topics(&use_in_order);
        if (candidates.empty()) {
          // Every topic is in U or already used for a ghost; reuse allowed.
          for (size_t t = 0; t < num_topics; ++t) in_tm[t] = false;
          candidates = candidate_topics(&use_in_order);
        }
        if (candidates.empty()) break;
      } else {
        break;  // all masking topics exhausted (paper: exit the repeat loop)
      }
    }

    // Step 3a: ghost length as a random multiple of |qu|.
    size_t length;
    if (options_.fixed_ghost_length > 0) {
      length = options_.fixed_ghost_length;
    } else {
      double mult =
          rng->Uniform(spec_.min_length_mult, spec_.max_length_mult);
      length = static_cast<size_t>(
          std::lround(mult * static_cast<double>(user_query.size())));
    }
    if (length == 0) length = 1;

    // Step 3b: random masking topic, coherent ghost words.
    topicmodel::TopicId tm =
        use_in_order ? candidates.front()
                     : candidates[rng->UniformInt(candidates.size())];
    std::vector<text::TermId> ghost = SampleGhostTerms(tm, length, rng);
    if (ghost.empty()) {
      in_x[tm] = true;
      cycle.rejected_topics.push_back(tm);
      continue;
    }

    // Step 3c: accept only if the ghost reduces the intention's exposure.
    // One O(T) inference + O(|U|) mixture probe per candidate; the sum is
    // only committed on acceptance.
    std::vector<double> ghost_posterior =
        inferencer_.InferQuery(ghost, &workspace_);
    double new_exposure =
        MixtureExposure(posterior_sum, &ghost_posterior, cycle_queries + 1,
                        model_, cycle.intention);
    bool effective = new_exposure < current_exposure || cycle.intention.empty();
    if (options_.use_rejection_test && !effective && !relax_rejection) {
      in_x[tm] = true;
      cycle.rejected_topics.push_back(tm);
      continue;
    }

    // Step 3d: accept.
    for (size_t t = 0; t < num_topics; ++t) {
      posterior_sum[t] += ghost_posterior[t];
    }
    ++cycle_queries;
    in_tm[tm] = true;
    cycle.masking_topics.push_back(tm);
    queries.push_back(std::move(ghost));
    current_exposure = new_exposure;
  }

  // Final cycle-level belief profile (Eq. 2 mixture from the running sum).
  std::vector<double> mix(num_topics);
  const double inv = 1.0 / static_cast<double>(cycle_queries);
  for (size_t t = 0; t < num_topics; ++t) mix[t] = posterior_sum[t] * inv;
  BeliefProfile cycle_profile = MakeBeliefProfile(model_, std::move(mix));
  cycle.cycle_boost = cycle_profile.boost;
  cycle.exposure_after = Exposure(cycle_profile.boost, cycle.intention);
  cycle.mask_level = MaskLevel(cycle_profile.boost, cycle.intention);
  cycle.met_epsilon2 = cycle.exposure_after <= spec_.epsilon2;

  // Step 4: shuffle, remembering where the user query landed.
  std::vector<size_t> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  cycle.queries.resize(queries.size());
  for (size_t i = 0; i < order.size(); ++i) {
    cycle.queries[i] = std::move(queries[order[i]]);
    if (order[i] == 0) cycle.user_index = i;
  }

  cycle.generation_seconds = timer.ElapsedSeconds();
  return cycle;
}

}  // namespace toppriv::core
