// The TopPriv topic-cognizant ghost-query generation algorithm
// (paper Section IV-C).
//
// Given a user query, the generator:
//   1. infers the posterior Pr(t|qu) and extracts the intention
//      U = {t : B(t|qu) > epsilon1};
//   2. repeatedly picks a random masking topic tm from T \ U \ Tm \ X,
//      composes a semantically coherent ghost query from words with high
//      Pr(w|tm) (Step 3b), and accepts it only if it strictly reduces
//      max_{t in U} B(t|C) (Step 3c, rejected topics accumulate in X);
//   3. stops when B(t|C) <= epsilon2 for all t in U, or when every masking
//      topic has been tried (termination is therefore guaranteed);
//   4. shuffles the cycle (Step 4).
//
// Exposure over a growing cycle uses Eq. 2: the cycle posterior is the
// uniform mixture of per-query posteriors, so each candidate ghost costs a
// single query inference rather than a whole-cycle inference.
#ifndef TOPPRIV_TOPPRIV_GHOST_GENERATOR_H_
#define TOPPRIV_TOPPRIV_GHOST_GENERATOR_H_

#include <map>
#include <vector>

#include "text/vocabulary.h"
#include "topicmodel/inference.h"
#include "topicmodel/lda_model.h"
#include "toppriv/cycle.h"
#include "toppriv/privacy_spec.h"
#include "util/rng.h"

namespace toppriv::core {

/// Ablation/behavior switches (defaults = the paper's algorithm).
struct GeneratorOptions {
  /// Step 3c: reject ghosts that fail to reduce the intention's exposure.
  /// Disabling this is the "no rejection test" ablation.
  bool use_rejection_test = true;
  /// Step 3b: draw all ghost words from one masking topic (semantic
  /// coherence, Def. 3). Disabling samples words uniformly from the whole
  /// vocabulary — the TrackMeNot-style ablation.
  bool coherent_ghosts = true;
  /// Fixed ghost length (tokens) when > 0; otherwise the spec's
  /// length-multiplier rule applies. Ablation knob.
  size_t fixed_ghost_length = 0;
  /// When non-empty, masking topics are drawn from this set first and from
  /// the full catalog only once it is exhausted. Used by the session-
  /// hardened client (toppriv/session.h) to keep a consistent cover story
  /// across cycles, which blunts the cross-cycle intersection attack.
  std::vector<topicmodel::TopicId> preferred_masking_topics;
  /// Optional ghost-query memo, owned by the caller (session client):
  /// the first ghost generated for a masking topic is remembered and reused
  /// verbatim in later cycles. A consistent fake interest both looks like
  /// real repeat-searching behaviour and keeps the cover topics' per-cycle
  /// boosts stable, which is what defeats the intersection attack.
  std::map<topicmodel::TopicId, std::vector<text::TermId>>* ghost_cache =
      nullptr;
};

/// Generates (epsilon1, epsilon2)-private query cycles.
class GhostQueryGenerator {
 public:
  /// Borrows the model and inferencer; both must outlive the generator.
  GhostQueryGenerator(const topicmodel::LdaModel& model,
                      const topicmodel::LdaInferencer& inferencer,
                      PrivacySpec spec, GeneratorOptions options = {});

  /// Runs the algorithm for one user query. `rng` drives masking-topic and
  /// word selection (the randomness that defeats the probing attack of
  /// Section IV-D).
  QueryCycle Protect(const std::vector<text::TermId>& user_query,
                     util::Rng* rng);

  const PrivacySpec& spec() const { return spec_; }
  const GeneratorOptions& generator_options() const { return options_; }

 private:
  /// Samples `length` distinct terms biased towards high Pr(w|topic).
  std::vector<text::TermId> SampleGhostTerms(topicmodel::TopicId topic,
                                             size_t length, util::Rng* rng);

  /// Lazily-built per-topic CDF over Pr(w|t) for fast word sampling.
  const std::vector<double>& TopicCdf(topicmodel::TopicId topic);

  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
  PrivacySpec spec_;
  GeneratorOptions options_;
  std::vector<std::vector<double>> topic_cdfs_;
  std::vector<double> uniform_cdf_;
};

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_GHOST_GENERATOR_H_
