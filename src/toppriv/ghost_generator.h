// The TopPriv topic-cognizant ghost-query generation algorithm
// (paper Section IV-C).
//
// Given a user query, the generator:
//   1. infers the posterior Pr(t|qu) and extracts the intention
//      U = {t : B(t|qu) > epsilon1};
//   2. repeatedly picks a random masking topic tm from T \ U \ Tm \ X,
//      composes a semantically coherent ghost query from words with high
//      Pr(w|tm) (Step 3b), and accepts it only if it strictly reduces
//      max_{t in U} B(t|C) (Step 3c, rejected topics accumulate in X);
//   3. stops when B(t|C) <= epsilon2 for all t in U, or when every masking
//      topic has been tried (termination is therefore guaranteed);
//   4. shuffles the cycle (Step 4).
//
// Exposure over a growing cycle uses Eq. 2: the cycle posterior is the
// uniform mixture of per-query posteriors. Protect keeps the per-topic
// posterior sum incrementally, so evaluating a candidate ghost costs O(T)
// (one query inference plus one mixture update) instead of recomputing the
// whole-cycle mixture, O(v*T), per candidate.
//
// Thread-compatibility: the word-sampling CDFs are precomputed at
// construction and never mutated afterwards, so const methods are safe to
// call concurrently. Protect mutates internal inference scratch — use one
// generator per thread (the serving driver gives each session its own).
#ifndef TOPPRIV_TOPPRIV_GHOST_GENERATOR_H_
#define TOPPRIV_TOPPRIV_GHOST_GENERATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "text/vocabulary.h"
#include "topicmodel/inference.h"
#include "topicmodel/lda_model.h"
#include "toppriv/cycle.h"
#include "toppriv/privacy_spec.h"
#include "util/rng.h"

namespace toppriv::core {

/// Immutable per-topic word-sampling CDFs over Pr(w|t). Building one costs
/// O(T*V) time and memory, and the table depends only on the model — so a
/// multi-session host (serving::SessionDriver) builds it once and lends it
/// to every generator instead of paying the build and the footprint per
/// session. Read-only after construction, hence safe to share across
/// threads.
class TopicCdfTable {
 public:
  explicit TopicCdfTable(const topicmodel::LdaModel& model);

  const std::vector<double>& row(topicmodel::TopicId topic) const {
    return cdfs_[topic];
  }
  size_t num_topics() const { return cdfs_.size(); }

 private:
  std::vector<std::vector<double>> cdfs_;
};

/// Ablation/behavior switches (defaults = the paper's algorithm).
struct GeneratorOptions {
  /// Step 3c: reject ghosts that fail to reduce the intention's exposure.
  /// Disabling this is the "no rejection test" ablation.
  bool use_rejection_test = true;
  /// Step 3b: draw all ghost words from one masking topic (semantic
  /// coherence, Def. 3). Disabling samples words uniformly from the whole
  /// vocabulary — the TrackMeNot-style ablation.
  bool coherent_ghosts = true;
  /// Fixed ghost length (tokens) when > 0; otherwise the spec's
  /// length-multiplier rule applies. Ablation knob.
  size_t fixed_ghost_length = 0;
  /// When non-empty, masking topics are drawn from this set first and from
  /// the full catalog only once it is exhausted. Used by the session-
  /// hardened client (toppriv/session.h) to keep a consistent cover story
  /// across cycles, which blunts the cross-cycle intersection attack.
  std::vector<topicmodel::TopicId> preferred_masking_topics;
  /// Optional ghost-query memo, owned by the caller (session client): the
  /// ghost words generated for a masking topic are remembered, and later
  /// cycles reuse them as a prefix — extending or truncating to the
  /// requested length, never replaying a wrong-length ghost verbatim. A
  /// consistent fake interest both looks like real repeat-searching
  /// behaviour and keeps the cover topics' per-cycle boosts stable, which
  /// is what defeats the intersection attack.
  std::map<topicmodel::TopicId, std::vector<text::TermId>>* ghost_cache =
      nullptr;
  /// Optional borrowed CDF table (must outlive the generator and match the
  /// model's topic count). When null and `coherent_ghosts` is set, the
  /// generator builds a private table at construction.
  const TopicCdfTable* shared_topic_cdfs = nullptr;
};

/// Generates (epsilon1, epsilon2)-private query cycles.
class GhostQueryGenerator {
 public:
  /// Borrows the model and inferencer; both must outlive the generator.
  /// Precomputes the per-topic word-sampling CDFs (O(T*V)), so construct
  /// once per session rather than once per cycle.
  GhostQueryGenerator(const topicmodel::LdaModel& model,
                      const topicmodel::LdaInferencer& inferencer,
                      PrivacySpec spec, GeneratorOptions options = {});

  /// Runs the algorithm for one user query. `rng` drives masking-topic and
  /// word selection (the randomness that defeats the probing attack of
  /// Section IV-D).
  QueryCycle Protect(const std::vector<text::TermId>& user_query,
                     util::Rng* rng);

  /// Replaces the preferred masking-topic list. SessionProtector refreshes
  /// the cover story between cycles through this instead of rebuilding the
  /// generator (and its precomputed CDFs) per cycle.
  void set_preferred_masking_topics(std::vector<topicmodel::TopicId> topics) {
    options_.preferred_masking_topics = std::move(topics);
  }

  const PrivacySpec& spec() const { return spec_; }
  const GeneratorOptions& generator_options() const { return options_; }

 private:
  /// Samples `length` distinct terms biased towards high Pr(w|topic). With
  /// a ghost cache, the memoized ghost is reused as a prefix and extended
  /// when the request is longer.
  std::vector<text::TermId> SampleGhostTerms(topicmodel::TopicId topic,
                                             size_t length, util::Rng* rng);

  /// Per-topic CDF over Pr(w|t), precomputed at construction (immutable).
  const std::vector<double>& TopicCdf(topicmodel::TopicId topic) const;

  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
  PrivacySpec spec_;
  GeneratorOptions options_;
  /// Private CDF table; empty when options_.shared_topic_cdfs is borrowed
  /// instead. Immutable after construction (thread-safe reads).
  std::unique_ptr<TopicCdfTable> owned_topic_cdfs_;
  std::vector<double> uniform_cdf_;
  /// Gibbs scratch reused across Protect calls (what makes Protect
  /// single-threaded per generator).
  topicmodel::InferenceWorkspace workspace_;
};

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_GHOST_GENERATOR_H_
